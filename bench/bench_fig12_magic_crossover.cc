// E1 (Figures 1 and 2): execution cost of the motivating query under the
// original plan (no magic), the magic-rewritten plan (Filter Join forced),
// and the cost-based optimizer's choice, as the fraction of qualifying
// departments sweeps from very selective to non-selective.
//
// Paper claim: magic wins by orders of magnitude when few departments are
// big/young, and *loses* when every department qualifies; the cost-based
// optimizer should track the winner on both sides of the crossover.

#include <benchmark/benchmark.h>

#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

double MeasuredCost(Database* db, const char* query,
                    OptimizerOptions::MagicMode mode) {
  db->mutable_optimizer_options()->magic_mode = mode;
  auto result = db->Query(query);
  MAGICDB_CHECK_OK(result.status());
  return result->counters.TotalCost();
}

void PrintCrossoverTable() {
  std::cout << "=== E1 / Figures 1-2: magic-vs-original crossover "
               "(Emp=5000, Dept=1000) ===\n"
            << "cost unit = one page I/O; qualifying fraction applies to "
               "both D.budget and E.age predicates\n\n";
  TablePrinter table({"qualify_frac", "original(no magic)", "always magic",
                      "cost-based choice", "chosen plan uses FilterJoin",
                      "speedup best/orig"});
  for (double frac : {0.001, 0.01, 0.05, 0.2, 0.5, 0.8, 1.0}) {
    Figure1Options opts;
    opts.num_depts = 1000;
    opts.emps_per_dept = 5;
    opts.young_frac = frac;
    opts.big_frac = frac;
    auto db = MakeFigure1Database(opts);

    const double original = MeasuredCost(
        db.get(), kFigure1Query, OptimizerOptions::MagicMode::kNever);
    const double always = MeasuredCost(
        db.get(), kFigure1Query,
        OptimizerOptions::MagicMode::kAlwaysOnVirtual);
    db->mutable_optimizer_options()->magic_mode =
        OptimizerOptions::MagicMode::kCostBased;
    auto chosen = db->Query(kFigure1Query);
    MAGICDB_CHECK_OK(chosen.status());
    const double cost_based = chosen->counters.TotalCost();

    table.AddRow({FormatCost(frac), FormatCost(original), FormatCost(always),
                  FormatCost(cost_based),
                  chosen->filter_joins.empty() ? "no" : "yes",
                  FormatCost(original / std::max(1e-9, cost_based))});
  }
  table.Print();
  std::cout << "\n";
}

void PrintExpensiveViewTable() {
  std::cout << "=== E1b: expensive view (join + aggregate inside) — the "
               "regime of the paper's orders-of-magnitude claims ===\n"
            << "DepComp joins Emp with Bonus before aggregating; magic "
               "restricts both.\n\n";
  TablePrinter table({"qualify_frac", "original(no magic)",
                      "cost-based choice", "uses FilterJoin",
                      "speedup best/orig"});
  for (double frac : {0.005, 0.02, 0.1, 0.3, 0.7, 1.0}) {
    ExpensiveViewOptions opts;
    opts.num_depts = 2500;
    opts.emps_per_dept = 5;
    opts.bonuses_per_emp = 6;
    opts.young_frac = frac;
    opts.big_frac = frac;
    auto db = MakeExpensiveViewDatabase(opts);

    const double original = MeasuredCost(
        db.get(), kExpensiveViewQuery, OptimizerOptions::MagicMode::kNever);
    db->mutable_optimizer_options()->magic_mode =
        OptimizerOptions::MagicMode::kCostBased;
    auto chosen = db->Query(kExpensiveViewQuery);
    MAGICDB_CHECK_OK(chosen.status());
    const double cost_based = chosen->counters.TotalCost();

    table.AddRow({FormatCost(frac), FormatCost(original),
                  FormatCost(cost_based),
                  chosen->filter_joins.empty() ? "no" : "yes",
                  FormatCost(original / std::max(1e-9, cost_based))});
  }
  table.Print();
  std::cout << "\n";
}

void BM_Figure1CostBased(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = static_cast<int>(state.range(0));
  opts.emps_per_dept = 5;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  auto db = MakeFigure1Database(opts);
  for (auto _ : state) {
    auto result = db->Query(kFigure1Query);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_Figure1CostBased)->Arg(100)->Arg(500);

void BM_Figure1NoMagic(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = static_cast<int>(state.range(0));
  opts.emps_per_dept = 5;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  auto db = MakeFigure1Database(opts);
  db->mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  for (auto _ : state) {
    auto result = db->Query(kFigure1Query);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_Figure1NoMagic)->Arg(100)->Arg(500);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintCrossoverTable();
  magicdb::bench::PrintExpensiveViewTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
