// E12 (§3.3): ablation of the three search-space limitations. Reports, for
// each configuration, the optimizer effort and the quality (estimated and
// measured cost) of the chosen plan:
//   - all limitations (the paper's proposal),
//   - Limitation 2 relaxed (all production-set prefixes explored),
//   - Limitation 3 narrowed to exact-only / Bloom-only filter sets,
//   - Filter Join disabled entirely (classic System R).

#include <benchmark/benchmark.h>

#include <chrono>
#include <functional>
#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

void AddConfigRow(TablePrinter* table, Database* db,
                  const std::string& label,
                  const std::function<void(OptimizerOptions*)>& configure) {
  OptimizerOptions opts;
  configure(&opts);
  *db->mutable_optimizer_options() = opts;
  const auto start = std::chrono::steady_clock::now();
  auto result = db->Query(kExpensiveViewQuery);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  if (!result.ok()) {
    table->AddRow({label, "-", "-", "-", "-", "-"});
    return;
  }
  table->AddRow({label,
                 std::to_string(result->optimizer_stats.filter_joins_costed),
                 std::to_string(result->optimizer_stats.join_steps_costed),
                 std::to_string(micros), FormatCost(result->est_cost),
                 FormatCost(result->counters.TotalCost())});
}

void PrintLimitationsTable() {
  std::cout << "=== E12 / Section 3.3: limitations ablation (expensive-view "
               "workload, 3% qualify) ===\n\n";
  ExpensiveViewOptions opts;
  opts.num_depts = 800;
  opts.emps_per_dept = 5;
  opts.bonuses_per_emp = 4;
  opts.young_frac = 0.03;
  opts.big_frac = 0.03;
  auto db = MakeExpensiveViewDatabase(opts);

  TablePrinter table({"configuration", "FJ costings", "join steps",
                      "plan+exec us", "est cost", "measured cost"});
  AddConfigRow(&table, db.get(), "Limitations 1-3 (paper default)",
               [](OptimizerOptions*) {});
  AddConfigRow(&table, db.get(), "Limitation 2 off (prefix productions)",
               [](OptimizerOptions* o) {
                 o->explore_prefix_production_sets = true;
               });
  AddConfigRow(&table, db.get(), "Limitation 3: exact filter sets only",
               [](OptimizerOptions* o) {
                 o->consider_bloom_filter_sets = false;
               });
  AddConfigRow(&table, db.get(), "Limitation 3: Bloom filter sets only",
               [](OptimizerOptions* o) {
                 o->consider_exact_filter_sets = false;
               });
  AddConfigRow(&table, db.get(), "Limitation 3 + partial-key filter sets",
               [](OptimizerOptions* o) {
                 o->consider_partial_key_filter_sets = true;
               });
  AddConfigRow(&table, db.get(), "Filter Join disabled (System R baseline)",
               [](OptimizerOptions* o) {
                 o->magic_mode = OptimizerOptions::MagicMode::kNever;
               });
  table.Print();
  std::cout << "\n(the prefix ablation multiplies FJ costings without "
               "improving this plan; Bloom-only forfeits the join-style "
               "rewrite and its index-driven restriction)\n\n";
}

void BM_LimitationsDefault(benchmark::State& state) {
  ExpensiveViewOptions opts;
  opts.num_depts = 400;
  auto db = MakeExpensiveViewDatabase(opts);
  for (auto _ : state) {
    auto result = db->Query(kExpensiveViewQuery);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_LimitationsDefault);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintLimitationsTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
