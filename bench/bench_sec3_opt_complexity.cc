// E7 (§3): adding the Filter Join under Limitations 1-3 must not change
// the asymptotic complexity of join optimization. This bench sweeps the
// number of join inputs and reports optimizer effort (DP entries, join
// steps costed, planning time) for a classic System R, the paper's
// proposal, and the Limitation-2 ablation (prefix production sets), whose
// extra O(N) factor becomes visible in the step counts.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "src/common/logging.h"
#include "src/optimizer/optimizer.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

struct Effort {
  int64_t steps;
  int64_t dp_entries;
  int64_t filter_joins;
  int64_t micros;
};

Effort MeasurePlanning(Database* db, const std::string& query,
                       const OptimizerOptions& opts) {
  auto logical = db->Bind(query);
  MAGICDB_CHECK_OK(logical.status());
  Optimizer optimizer(db->catalog(), opts);
  const auto start = std::chrono::steady_clock::now();
  auto plan = optimizer.Optimize(*logical);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  MAGICDB_CHECK_OK(plan.status());
  return {optimizer.stats().join_steps_costed, optimizer.stats().dp_entries,
          optimizer.stats().filter_joins_costed, micros};
}

void PrintComplexityTable() {
  std::cout << "=== E7 / Section 3: optimization effort vs number of join "
               "inputs ===\n"
            << "star join of Fact with N dimension views; steps = (subset, "
               "inner, method) combinations costed\n\n";
  TablePrinter table({"N inputs", "no FJ: steps", "no FJ: us",
                      "FJ+Limits: steps", "FJ+Limits: us",
                      "FJ+prefixes: steps", "FJ+prefixes: us",
                      "prefix/limit step ratio"});
  for (int dims : {2, 3, 4, 5, 6, 7}) {
    StarOptions sopts;
    sopts.num_dims = dims;
    sopts.fact_rows = 500;
    sopts.dim_rows = 50;
    sopts.view_dims = dims;  // every dimension is a virtual relation
    auto db = MakeStarDatabase(sopts);
    const std::string query = StarQuery(dims);

    OptimizerOptions no_fj;
    no_fj.magic_mode = OptimizerOptions::MagicMode::kNever;
    Effort a = MeasurePlanning(db.get(), query, no_fj);

    OptimizerOptions with_fj;  // paper defaults: Limitations 1-3 applied
    Effort b = MeasurePlanning(db.get(), query, with_fj);

    OptimizerOptions prefixes = with_fj;
    prefixes.explore_prefix_production_sets = true;
    Effort c = MeasurePlanning(db.get(), query, prefixes);

    table.AddRow({std::to_string(dims + 1), std::to_string(a.steps),
                  std::to_string(a.micros), std::to_string(b.steps),
                  std::to_string(b.micros), std::to_string(c.steps),
                  std::to_string(c.micros),
                  FormatCost(static_cast<double>(c.filter_joins) /
                             std::max<int64_t>(1, b.filter_joins))});
  }
  table.Print();
  std::cout << "\n(the last column is the Filter-Join costings ratio: the "
               "prefix ablation grows with chain length, the paper's "
               "limited search does not)\n\n";
}

void BM_OptimizeStar(benchmark::State& state) {
  const int dims = static_cast<int>(state.range(0));
  StarOptions sopts;
  sopts.num_dims = dims;
  sopts.fact_rows = 500;
  sopts.dim_rows = 50;
  sopts.view_dims = dims;
  auto db = MakeStarDatabase(sopts);
  const std::string query = StarQuery(dims);
  auto logical = db->Bind(query);
  MAGICDB_CHECK_OK(logical.status());
  for (auto _ : state) {
    Optimizer optimizer(db->catalog());
    auto plan = optimizer.Optimize(*logical);
    MAGICDB_CHECK_OK(plan.status());
    benchmark::DoNotOptimize(plan->est_cost);
  }
}
BENCHMARK(BM_OptimizeStar)->Arg(3)->Arg(5)->Arg(7);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintComplexityTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
