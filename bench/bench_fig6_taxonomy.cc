// E6 (Figure 6 / Appendix A): the cross-domain join-technique taxonomy.
// For each domain (stored relation, remote relation, view, user-defined
// relation) the bench executes every applicable strategy from the paper's
// table on a matched workload and reports measured cost — repeated probe,
// full computation, filter join, and lossy filter rows.

#include <benchmark/benchmark.h>

#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

/// Runs `query` with exactly the strategy the option combination permits;
/// returns measured cost ("-" when infeasible).
std::string RunWith(Database* db, const std::string& query,
                    const std::function<void(OptimizerOptions*)>& configure) {
  OptimizerOptions saved = *db->mutable_optimizer_options();
  OptimizerOptions opts;  // fresh defaults
  configure(&opts);
  *db->mutable_optimizer_options() = opts;
  auto result = db->Query(query);
  *db->mutable_optimizer_options() = saved;
  if (!result.ok()) return "-";
  return FormatCost(result->counters.TotalCost());
}

void DisableAll(OptimizerOptions* o) {
  o->enable_nested_loops = false;
  o->enable_hash_join = false;
  o->enable_sort_merge = false;
  o->enable_index_nested_loops = false;
  o->enable_function_memo = false;
  o->magic_mode = OptimizerOptions::MagicMode::kNever;
  o->filter_join_on_stored = false;
}

void PrintStoredRelationRow() {
  TwoTableOptions opts;
  opts.r_rows = 500;
  opts.s_rows = 20000;
  opts.r_keys = 40;
  opts.s_keys = 4000;
  auto db = MakeTwoTableDatabase(opts);

  TablePrinter table({"strategy (stored relation)", "measured cost"});
  table.AddRow({"repeated probe: indexed nested loops",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_index_nested_loops = true;
                })});
  table.AddRow({"full computation: hash join",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                })});
  table.AddRow({"full computation: sort-merge",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_sort_merge = true;
                })});
  table.AddRow({"full computation: nested loops",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_nested_loops = true;
                })});
  table.AddRow({"filter join: local semi-join (exact)",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->magic_mode = OptimizerOptions::MagicMode::kCostBased;
                  o->filter_join_on_stored = true;
                  o->consider_bloom_filter_sets = false;
                })});
  table.AddRow({"lossy filter: Bloom semi-join",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->magic_mode = OptimizerOptions::MagicMode::kCostBased;
                  o->filter_join_on_stored = true;
                  o->consider_exact_filter_sets = false;
                })});
  table.Print();
  std::cout << "\n";
}

void PrintRemoteRelationRow() {
  TwoTableOptions opts;
  opts.r_rows = 500;
  opts.s_rows = 20000;
  opts.r_keys = 40;
  opts.s_keys = 4000;
  opts.s_site = 1;
  auto db = MakeTwoTableDatabase(opts);

  TablePrinter table({"strategy (remote relation, S at site 1)",
                      "measured cost"});
  table.AddRow({"repeated probe: fetch matches (System R*)",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_index_nested_loops = true;
                })});
  table.AddRow({"full computation: fetch inner, local hash join",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                })});
  table.AddRow({"filter join: semi-join (SDD-1)",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;  // final join method
                  o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
                  o->consider_bloom_filter_sets = false;
                })});
  table.AddRow({"lossy filter: Bloom filter shipped",
                RunWith(db.get(), kTwoTableQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                  o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
                  o->consider_exact_filter_sets = false;
                })});
  table.Print();
  std::cout << "\n";
}

void PrintViewRow() {
  Figure1Options opts;
  opts.num_depts = 400;
  opts.emps_per_dept = 5;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  auto db = MakeFigure1Database(opts);

  TablePrinter table({"strategy (view / table expression)", "measured cost"});
  table.AddRow({"repeated probe: correlation (nested iteration)",
                RunWith(db.get(), kFigure1Query, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_nested_loops = true;
                })});
  table.AddRow({"full computation: decorrelation + hash join",
                RunWith(db.get(), kFigure1Query, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                  o->enable_index_nested_loops = true;
                })});
  table.AddRow({"filter join: magic sets",
                RunWith(db.get(), kFigure1Query, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                  o->enable_index_nested_loops = true;
                  o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
                  o->consider_bloom_filter_sets = false;
                })});
  table.AddRow({"lossy filter: magic with Bloom filter set",
                RunWith(db.get(), kFigure1Query, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                  o->enable_index_nested_loops = true;
                  o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
                  o->consider_exact_filter_sets = false;
                })});
  table.Print();
  std::cout << "\n";
}

void PrintUdrRow() {
  UdrOptions opts;
  opts.calls = 2000;
  opts.distinct_args = 50;
  auto db = MakeUdrDatabase(opts);

  TablePrinter table({"strategy (user-defined relation)", "measured cost"});
  table.AddRow({"repeated probe: procedure invocation per row",
                RunWith(db.get(), kUdrQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                })});
  table.AddRow({"repeated probe w/ caching: memoized invocation",
                RunWith(db.get(), kUdrQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_function_memo = true;
                })});
  table.AddRow({"filter join: consecutive procedure calls",
                RunWith(db.get(), kUdrQuery, [](OptimizerOptions* o) {
                  DisableAll(o);
                  o->enable_hash_join = true;
                  o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
                  o->consider_bloom_filter_sets = false;
                })});
  table.Print();
  std::cout << "\n";
}

void PrintTaxonomy() {
  std::cout << "=== E6 / Figure 6: join-technique taxonomy across domains "
               "===\n\n";
  PrintStoredRelationRow();
  PrintRemoteRelationRow();
  PrintViewRow();
  PrintUdrRow();
}

void BM_TaxonomyViewMagic(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = 200;
  auto db = MakeFigure1Database(opts);
  for (auto _ : state) {
    auto result = db->Query(kFigure1Query);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_TaxonomyViewMagic);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintTaxonomy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
