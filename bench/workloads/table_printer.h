#ifndef MAGICDB_BENCH_WORKLOADS_TABLE_PRINTER_H_
#define MAGICDB_BENCH_WORKLOADS_TABLE_PRINTER_H_

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

namespace magicdb::bench {

/// Aligned text tables for the paper-style outputs the benches print.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void Print(std::ostream& os = std::cout) const {
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (size_t c = 0; c < widths.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : "";
        os << (c > 0 ? " | " : "") << cell
           << std::string(widths[c] - cell.size(), ' ');
      }
      os << "\n";
    };
    print_row(headers_);
    size_t total = 0;
    for (size_t w : widths) total += w + 3;
    os << std::string(total > 3 ? total - 3 : 0, '-') << "\n";
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace magicdb::bench

#endif  // MAGICDB_BENCH_WORKLOADS_TABLE_PRINTER_H_
