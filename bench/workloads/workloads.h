#ifndef MAGICDB_BENCH_WORKLOADS_WORKLOADS_H_
#define MAGICDB_BENCH_WORKLOADS_WORKLOADS_H_

// Workload generators for the paper-reproduction benchmarks (see DESIGN.md
// experiment index). All generators are deterministic given the seed.

#include <memory>
#include <string>

#include "src/db/database.h"

namespace magicdb::bench {

/// The motivating workload of Figure 1: Emp(did, sal, age),
/// Dept(did, budget), and the DepAvgSal view. The two fractions control how
/// many departments qualify — the knob the paper's argument turns on.
struct Figure1Options {
  int num_depts = 100;
  int emps_per_dept = 10;
  double young_frac = 0.3;  // P(emp.age < 30)
  double big_frac = 0.3;    // P(dept.budget > 100000)
  uint64_t seed = 42;
  /// Home Dept at this site (> 0) to make the query distributed.
  int dept_site = 0;
  /// Build hash indexes on the join columns (enables index nested loops).
  bool build_indexes = true;
};

std::unique_ptr<Database> MakeFigure1Database(const Figure1Options& opts);

/// The Figure-1 query text (binds against MakeFigure1Database).
extern const char* kFigure1Query;

/// Variants of the Figure-1 query used by the SIPS ablation (E11): the
/// production set restricted to big departments only, young employees only,
/// or nothing.
extern const char* kFigure1QueryBigOnly;
extern const char* kFigure1QueryYoungOnly;

/// The "expensive view" variant of Figure 1: total compensation requires a
/// join inside the view, so computing it for every department is far more
/// expensive than for the qualifying few — the regime where the paper's
/// orders-of-magnitude claims for magic apply.
///
///   Emp(eid, did, sal, age), Dept(did, budget), Bonus(eid, amount),
///   DepComp = SELECT E.did, AVG(E.sal + B.amount) FROM Emp E, Bonus B
///             WHERE E.eid = B.eid GROUP BY E.did.
struct ExpensiveViewOptions {
  int num_depts = 500;
  int emps_per_dept = 5;
  int bonuses_per_emp = 4;
  double young_frac = 0.05;
  double big_frac = 0.05;
  uint64_t seed = 99;
};

std::unique_ptr<Database> MakeExpensiveViewDatabase(
    const ExpensiveViewOptions& opts);

extern const char* kExpensiveViewQuery;

/// Two stored relations R(k, payload) and S(k, payload) with controllable
/// key counts — the local semi-join workload (§5.3) and the distributed
/// workload (§5.1, with `s_site` > 0).
struct TwoTableOptions {
  int r_rows = 1000;
  int s_rows = 10000;
  int r_keys = 100;   // distinct join keys in R
  int s_keys = 1000;  // distinct join keys in S
  int payload_cols = 2;
  uint64_t seed = 7;
  int s_site = 0;
  bool build_indexes = true;
};

std::unique_ptr<Database> MakeTwoTableDatabase(const TwoTableOptions& opts);

/// Join query over the two-table schema: SELECT ... FROM R, S WHERE R.k=S.k.
extern const char* kTwoTableQuery;

/// UDR workload (§5.2): a table Calls(arg, tag) and a registered table
/// function "compute" whose per-invocation cost dominates. `distinct_args`
/// controls the duplication factor.
struct UdrOptions {
  int calls = 1000;
  int distinct_args = 50;
  uint64_t seed = 13;
};

std::unique_ptr<Database> MakeUdrDatabase(const UdrOptions& opts);

extern const char* kUdrQuery;

/// Skewed three-table chain for the adaptive re-optimization bake-off:
/// Fact(k, a, b) carries a == b on every row, so the conjunctive filter
/// `F.a < 1 AND F.b < 1` is 10x underestimated under the optimizer's
/// independence assumption (1% estimated, 10% actual). Mid(k, j) expands
/// every Fact key by `mid_fanout`; Red(j, w) keeps only every
/// `red_every`-th j value. Planned from the estimate, driving the joins
/// from the "tiny" filtered Fact looks cheapest; with the true
/// cardinality that order materializes a `mid_fanout`-times exploded
/// intermediate, and reducing Mid by Red first is far cheaper. The gap
/// between those two orders is exactly what runtime cardinality feedback
/// recovers.
struct SkewedChainOptions {
  int fact_rows = 40000;
  int keys = 4500;      // distinct k in Fact and Mid
  int mid_fanout = 10;  // Mid rows per key
  int red_every = 7;    // Red keeps every red_every-th j value
};

std::unique_ptr<Database> MakeSkewedChainDatabase(
    const SkewedChainOptions& opts);

/// Chain query over the skewed schema. Run it with a planning memory
/// budget small enough that every build side is priced by the HashSpill
/// term: the optimizer then strictly builds the smaller input, which puts
/// the underestimated filtered Fact on the observable (build) side of its
/// first hash join.
extern const char* kSkewedChainQuery;

/// Star-schema generator for the optimizer-complexity experiment (E7):
/// a fact table joined with `num_dims` dimension tables, optionally turning
/// some dimensions into views.
struct StarOptions {
  int num_dims = 4;
  int fact_rows = 2000;
  int dim_rows = 100;
  int view_dims = 1;  // how many dimensions are wrapped in views
  uint64_t seed = 21;
};

std::unique_ptr<Database> MakeStarDatabase(const StarOptions& opts);

/// Join of the fact table with the first `num_dims` dimensions.
std::string StarQuery(int num_dims);

/// Formats a numeric cell for the paper-style tables benches print.
std::string FormatCost(double cost);

}  // namespace magicdb::bench

#endif  // MAGICDB_BENCH_WORKLOADS_WORKLOADS_H_
