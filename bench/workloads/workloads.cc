#include "workloads/workloads.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/random.h"

namespace magicdb::bench {

const char* kFigure1Query =
    "SELECT E.did, E.sal, V.avgsal "
    "FROM Emp E, Dept D, DepAvgSal V "
    "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
    "AND E.age < 30 AND D.budget > 100000";

const char* kFigure1QueryBigOnly =
    "SELECT D.did, V.avgsal "
    "FROM Dept D, DepAvgSal V "
    "WHERE D.did = V.did AND D.budget > 100000";

const char* kFigure1QueryYoungOnly =
    "SELECT E.did, E.sal, V.avgsal "
    "FROM Emp E, DepAvgSal V "
    "WHERE E.did = V.did AND E.sal > V.avgsal AND E.age < 30";

std::unique_ptr<Database> MakeFigure1Database(const Figure1Options& opts) {
  auto db = std::make_unique<Database>();
  MAGICDB_CHECK_OK(
      db->Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  if (opts.dept_site > 0) {
    Schema dept_schema(
        {{"", "did", DataType::kInt64}, {"", "budget", DataType::kDouble}});
    MAGICDB_CHECK_OK(
        db->catalog()->CreateRemoteTable("Dept", dept_schema, opts.dept_site)
            .status());
  } else {
    MAGICDB_CHECK_OK(
        db->Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  }

  Random rng(opts.seed);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < opts.num_depts; ++d) {
    depts.push_back(
        {Value::Int64(d),
         Value::Double(rng.Bernoulli(opts.big_frac) ? 200000.0 : 50000.0)});
    for (int e = 0; e < opts.emps_per_dept; ++e) {
      emps.push_back(
          {Value::Int64(d),
           Value::Double(50000.0 + rng.NextDouble() * 100000.0),
           Value::Int64(rng.Bernoulli(opts.young_frac) ? 25 : 45)});
    }
  }
  MAGICDB_CHECK_OK(db->LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db->LoadRows("Emp", std::move(emps)));
  if (opts.build_indexes) {
    (*db->catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
    (*db->catalog()->Lookup("Dept"))->table->CreateHashIndex({0});
    MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  }
  MAGICDB_CHECK_OK(
      db->Execute("CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal "
                  "FROM Emp GROUP BY did"));
  return db;
}

const char* kExpensiveViewQuery =
    "SELECT E.did, E.sal, V.avgcomp "
    "FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgcomp "
    "AND E.age < 30 AND D.budget > 100000";

std::unique_ptr<Database> MakeExpensiveViewDatabase(
    const ExpensiveViewOptions& opts) {
  auto db = std::make_unique<Database>();
  MAGICDB_CHECK_OK(db->Execute(
      "CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));

  Random rng(opts.seed);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < opts.num_depts; ++d) {
    depts.push_back(
        {Value::Int64(d),
         Value::Double(rng.Bernoulli(opts.big_frac) ? 200000.0 : 50000.0)});
    for (int e = 0; e < opts.emps_per_dept; ++e, ++eid) {
      emps.push_back(
          {Value::Int64(eid), Value::Int64(d),
           Value::Double(50000.0 + rng.NextDouble() * 100000.0),
           Value::Int64(rng.Bernoulli(opts.young_frac) ? 25 : 45)});
      for (int b = 0; b < opts.bonuses_per_emp; ++b) {
        bonuses.push_back(
            {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
      }
    }
  }
  MAGICDB_CHECK_OK(db->LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db->LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db->LoadRows("Bonus", std::move(bonuses)));
  (*db->catalog()->Lookup("Emp"))->table->CreateHashIndex({1});    // did
  (*db->catalog()->Lookup("Emp"))->table->CreateHashIndex({0});    // eid
  (*db->catalog()->Lookup("Dept"))->table->CreateHashIndex({0});
  (*db->catalog()->Lookup("Bonus"))->table->CreateHashIndex({0});  // eid
  MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db->Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  return db;
}

const char* kTwoTableQuery =
    "SELECT R.k, R.p0, S.p0 FROM R, S WHERE R.k = S.k";

std::unique_ptr<Database> MakeTwoTableDatabase(const TwoTableOptions& opts) {
  auto db = std::make_unique<Database>();
  std::string cols = "(k INT";
  for (int i = 0; i < opts.payload_cols; ++i) {
    cols += ", p" + std::to_string(i) + " INT";
  }
  cols += ")";
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE R " + cols));
  if (opts.s_site > 0) {
    Schema s_schema({{"", "k", DataType::kInt64}});
    for (int i = 0; i < opts.payload_cols; ++i) {
      s_schema.AddColumn({"", "p" + std::to_string(i), DataType::kInt64});
    }
    MAGICDB_CHECK_OK(
        db->catalog()->CreateRemoteTable("S", s_schema, opts.s_site)
            .status());
  } else {
    MAGICDB_CHECK_OK(db->Execute("CREATE TABLE S " + cols));
  }

  Random rng(opts.seed);
  auto make_rows = [&](int n, int keys) {
    std::vector<Tuple> rows;
    rows.reserve(n);
    for (int i = 0; i < n; ++i) {
      Tuple t = {Value::Int64(static_cast<int64_t>(rng.Uniform(keys)))};
      for (int c = 0; c < opts.payload_cols; ++c) {
        t.push_back(Value::Int64(i));
      }
      rows.push_back(std::move(t));
    }
    return rows;
  };
  MAGICDB_CHECK_OK(db->LoadRows("R", make_rows(opts.r_rows, opts.r_keys)));
  MAGICDB_CHECK_OK(db->LoadRows("S", make_rows(opts.s_rows, opts.s_keys)));
  if (opts.build_indexes) {
    (*db->catalog()->Lookup("R"))->table->CreateHashIndex({0});
    (*db->catalog()->Lookup("S"))->table->CreateHashIndex({0});
    MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  }
  return db;
}

const char* kUdrQuery =
    "SELECT C.arg, F.result FROM Calls C, compute F WHERE C.arg = F.arg";

std::unique_ptr<Database> MakeUdrDatabase(const UdrOptions& opts) {
  auto db = std::make_unique<Database>();
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Calls (arg INT, tag INT)"));
  Random rng(opts.seed);
  std::vector<Tuple> rows;
  for (int i = 0; i < opts.calls; ++i) {
    rows.push_back(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(opts.distinct_args))),
         Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db->LoadRows("Calls", std::move(rows)));
  Schema args({{"", "arg", DataType::kInt64}});
  Schema results({{"", "result", DataType::kInt64}});
  MAGICDB_CHECK_OK(db->catalog()->RegisterFunction(
      std::make_unique<LambdaTableFunction>(
          "compute", args, results,
          [](const Tuple& in, std::vector<Tuple>* out) {
            // A deliberately "expensive" deterministic computation.
            int64_t x = in[0].AsInt64();
            int64_t acc = 0;
            for (int i = 0; i < 64; ++i) acc = acc * 31 + ((x + i) % 97);
            out->push_back({Value::Int64(acc)});
            return Status::OK();
          })));
  return db;
}

const char* kSkewedChainQuery =
    "SELECT F.k, R.w FROM Mid M, Fact F, Red R "
    "WHERE F.k = M.k AND M.j = R.j AND F.a < 1 AND F.b < 1";

std::unique_ptr<Database> MakeSkewedChainDatabase(
    const SkewedChainOptions& opts) {
  auto db = std::make_unique<Database>();
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Fact (k INT, a INT, b INT)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Mid (k INT, j INT)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Red (j INT, w INT)"));
  std::vector<Tuple> fact, mid, red;
  fact.reserve(opts.fact_rows);
  // a == b on every row: each predicate alone passes 10% and the histogram
  // knows it, but the conjunction also passes 10% where independence
  // predicts 1%.
  for (int i = 0; i < opts.fact_rows; ++i) {
    fact.push_back({Value::Int64(i % opts.keys), Value::Int64(i % 10),
                    Value::Int64(i % 10)});
  }
  mid.reserve(static_cast<size_t>(opts.keys) * opts.mid_fanout);
  for (int k = 0; k < opts.keys; ++k) {
    for (int t = 0; t < opts.mid_fanout; ++t) {
      const int64_t j = static_cast<int64_t>(k) * opts.mid_fanout + t;
      mid.push_back({Value::Int64(k), Value::Int64(j)});
      if (j % opts.red_every == 0) {
        red.push_back({Value::Int64(j), Value::Int64(j * 3)});
      }
    }
  }
  MAGICDB_CHECK_OK(db->LoadRows("Fact", std::move(fact)));
  MAGICDB_CHECK_OK(db->LoadRows("Mid", std::move(mid)));
  MAGICDB_CHECK_OK(db->LoadRows("Red", std::move(red)));
  MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  return db;
}

std::unique_ptr<Database> MakeStarDatabase(const StarOptions& opts) {
  auto db = std::make_unique<Database>();
  // Fact(d0, d1, ..., measure)
  std::string fact_cols = "(";
  for (int i = 0; i < opts.num_dims; ++i) {
    fact_cols += "d" + std::to_string(i) + " INT, ";
  }
  fact_cols += "measure DOUBLE)";
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Fact " + fact_cols));
  Random rng(opts.seed);
  std::vector<Tuple> fact_rows;
  for (int r = 0; r < opts.fact_rows; ++r) {
    Tuple t;
    for (int i = 0; i < opts.num_dims; ++i) {
      t.push_back(Value::Int64(static_cast<int64_t>(rng.Uniform(
          static_cast<uint64_t>(opts.dim_rows)))));
    }
    t.push_back(Value::Double(rng.NextDouble() * 100));
    fact_rows.push_back(std::move(t));
  }
  MAGICDB_CHECK_OK(db->LoadRows("Fact", std::move(fact_rows)));

  for (int i = 0; i < opts.num_dims; ++i) {
    const std::string base = "DimBase" + std::to_string(i);
    MAGICDB_CHECK_OK(
        db->Execute("CREATE TABLE " + base + " (id INT, attr INT)"));
    std::vector<Tuple> rows;
    for (int r = 0; r < opts.dim_rows; ++r) {
      rows.push_back({Value::Int64(r),
                      Value::Int64(static_cast<int64_t>(rng.Uniform(10)))});
    }
    MAGICDB_CHECK_OK(db->LoadRows(base, std::move(rows)));
    (*db->catalog()->Lookup(base))->table->CreateHashIndex({0});
    const std::string dim = "Dim" + std::to_string(i);
    if (i < opts.view_dims) {
      // Dimension exposed through an aggregating view (a virtual relation).
      MAGICDB_CHECK_OK(db->Execute(
          "CREATE VIEW " + dim + " AS SELECT id, MAX(attr) AS attr FROM " +
          base + " GROUP BY id"));
    } else {
      MAGICDB_CHECK_OK(db->Execute("CREATE VIEW " + dim +
                                   " AS SELECT id, attr FROM " + base));
    }
  }
  MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  return db;
}

std::string StarQuery(int num_dims) {
  std::string from = "Fact F";
  std::string where;
  for (int i = 0; i < num_dims; ++i) {
    const std::string d = "D" + std::to_string(i);
    from += ", Dim" + std::to_string(i) + " " + d;
    if (!where.empty()) where += " AND ";
    where += "F.d" + std::to_string(i) + " = " + d + ".id";
    where += " AND " + d + ".attr < 5";
  }
  return "SELECT F.measure FROM " + from + " WHERE " + where;
}

std::string FormatCost(double cost) {
  std::ostringstream os;
  if (cost >= 1000) {
    os.precision(0);
  } else if (cost >= 10) {
    os.precision(1);
  } else {
    os.precision(3);
  }
  os << std::fixed << cost;
  return os.str();
}

}  // namespace magicdb::bench
