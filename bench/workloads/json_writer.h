#ifndef MAGICDB_BENCH_WORKLOADS_JSON_WRITER_H_
#define MAGICDB_BENCH_WORKLOADS_JSON_WRITER_H_

// Minimal JSON emitter for bench binaries' --json output. Build a tree of
// Json values (objects keep insertion order so files diff cleanly across
// runs), then Dump() or WriteJsonFile(). No parsing, no dependencies.

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace magicdb::bench {

class Json {
 public:
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }
  static Json Str(std::string s) {
    Json j(Kind::kString);
    j.str_ = std::move(s);
    return j;
  }
  static Json Num(double v) {
    Json j(Kind::kNumber);
    j.num_ = v;
    return j;
  }
  static Json Int(int64_t v) {
    Json j(Kind::kInt);
    j.int_ = v;
    return j;
  }
  static Json Bool(bool v) {
    Json j(Kind::kBool);
    j.bool_ = v;
    return j;
  }

  // Object field setters (chainable). Using on a non-object is a no-op.
  Json& Set(const std::string& key, Json value) {
    if (kind_ == Kind::kObject) fields_.emplace_back(key, std::move(value));
    return *this;
  }
  Json& Set(const std::string& key, const std::string& v) {
    return Set(key, Str(v));
  }
  Json& Set(const std::string& key, const char* v) { return Set(key, Str(v)); }
  Json& Set(const std::string& key, double v) { return Set(key, Num(v)); }
  Json& Set(const std::string& key, int64_t v) { return Set(key, Int(v)); }
  Json& Set(const std::string& key, int v) {
    return Set(key, Int(static_cast<int64_t>(v)));
  }
  Json& Set(const std::string& key, bool v) { return Set(key, Bool(v)); }

  // Array append.
  Json& Append(Json value) {
    if (kind_ == Kind::kArray) items_.push_back(std::move(value));
    return *this;
  }

  std::string Dump(int indent = 2) const {
    std::ostringstream os;
    Write(os, indent, 0);
    os << "\n";
    return os.str();
  }

 private:
  enum class Kind { kObject, kArray, kString, kNumber, kInt, kBool };

  explicit Json(Kind kind) : kind_(kind) {}

  static void Escape(std::ostream& os, const std::string& s) {
    os << '"';
    for (char c : s) {
      switch (c) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os << buf;
          } else {
            os << c;
          }
      }
    }
    os << '"';
  }

  void Write(std::ostream& os, int indent, int depth) const {
    const std::string pad(static_cast<size_t>(indent) * (depth + 1), ' ');
    const std::string close_pad(static_cast<size_t>(indent) * depth, ' ');
    switch (kind_) {
      case Kind::kObject: {
        if (fields_.empty()) {
          os << "{}";
          return;
        }
        os << "{\n";
        for (size_t i = 0; i < fields_.size(); ++i) {
          os << pad;
          Escape(os, fields_[i].first);
          os << ": ";
          fields_[i].second.Write(os, indent, depth + 1);
          os << (i + 1 < fields_.size() ? ",\n" : "\n");
        }
        os << close_pad << "}";
        return;
      }
      case Kind::kArray: {
        if (items_.empty()) {
          os << "[]";
          return;
        }
        os << "[\n";
        for (size_t i = 0; i < items_.size(); ++i) {
          os << pad;
          items_[i].Write(os, indent, depth + 1);
          os << (i + 1 < items_.size() ? ",\n" : "\n");
        }
        os << close_pad << "]";
        return;
      }
      case Kind::kString:
        Escape(os, str_);
        return;
      case Kind::kNumber: {
        std::ostringstream num;
        num.setf(std::ios::fixed);
        num.precision(6);
        num << num_;
        os << num.str();
        return;
      }
      case Kind::kInt:
        os << int_;
        return;
      case Kind::kBool:
        os << (bool_ ? "true" : "false");
        return;
    }
  }

  Kind kind_;
  std::vector<std::pair<std::string, Json>> fields_;
  std::vector<Json> items_;
  std::string str_;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool bool_ = false;
};

/// Writes `json` to `path`; returns false (with a message on stderr) when
/// the file cannot be opened.
inline bool WriteJsonFile(const std::string& path, const Json& json) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write JSON output to " << path << "\n";
    return false;
  }
  out << json.Dump();
  return static_cast<bool>(out);
}

/// Pulls the value following `--json` out of argv; empty = not requested.
inline std::string JsonPathFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") return argv[i + 1];
  }
  return "";
}

}  // namespace magicdb::bench

#endif  // MAGICDB_BENCH_WORKLOADS_JSON_WRITER_H_
