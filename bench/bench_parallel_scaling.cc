// Parallel scaling of the morsel-driven executor (src/parallel) on the
// Figure-1/2 workload: wall-clock speedup of Database::ExecuteParallel at
// DoP in {1, 2, 4, 8}, for the plan shapes the executor parallelizes —
// the no-magic hash-join plan, the magic FilterJoin plan, and two-phase
// parallel GROUP BY aggregation at both cardinality extremes
// (low-cardinality = merge-heavy, high-cardinality = partition-heavy).
//
// Two invariants are asserted on every run, not just reported:
//   * rows are byte-identical to the DoP=1 execution, in the same order;
//   * the merged per-worker cost counters equal the DoP=1 counters exactly
//     (the Table-1 accounting contract at any degree of parallelism).
//
// Speedup is hardware-bound: on an N-core machine DoP > N adds scheduling
// overhead without adding compute, so the table prints the detected core
// count and the reader should judge the curve against it.
//
// `--smoke` shrinks tables, repetitions, and the DoP set to {1, 2} so CI
// (scripts/check.sh) can run the determinism assertions quickly.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include "src/common/logging.h"
#include "workloads/json_writer.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

int g_repetitions = 5;
std::vector<int> g_dops = {1, 2, 4, 8};

double MedianWallMs(Database* db, const char* query, int dop,
                    QueryResult* out) {
  std::vector<double> ms;
  for (int r = 0; r < g_repetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = db->ExecuteParallel(query, dop);
    const auto t1 = std::chrono::steady_clock::now();
    MAGICDB_CHECK_OK(result.status());
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (r == 0) *out = std::move(*result);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

void CheckIdentical(const QueryResult& base, const QueryResult& got) {
  MAGICDB_CHECK(got.rows.size() == base.rows.size());
  for (size_t i = 0; i < base.rows.size(); ++i) {
    MAGICDB_CHECK(CompareTuples(got.rows[i], base.rows[i]) == 0);
  }
  MAGICDB_CHECK(got.counters.pages_read == base.counters.pages_read);
  MAGICDB_CHECK(got.counters.pages_written == base.counters.pages_written);
  MAGICDB_CHECK(got.counters.tuples_processed ==
                base.counters.tuples_processed);
  MAGICDB_CHECK(got.counters.exprs_evaluated == base.counters.exprs_evaluated);
  MAGICDB_CHECK(got.counters.hash_operations == base.counters.hash_operations);
  MAGICDB_CHECK(got.counters.messages_sent == base.counters.messages_sent);
  MAGICDB_CHECK(got.counters.bytes_shipped == base.counters.bytes_shipped);
}

std::string Fmt(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << v;
  return os.str();
}

// Two-way join over base tables only: both hash-join sides are scan
// chains, so the partitioned-build path parallelizes it.
const char* kTwoWayJoinQuery =
    "SELECT E.did, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";

// GROUP BY workloads for the two-phase parallel aggregation. Aggregates are
// chosen so every double addition involved is exact (COUNT, SUM over int64,
// MIN/MAX): byte-identity is then a hard assertion, not a tolerance.
//
// Low cardinality: age has two distinct values, so workers build tiny
// partial tables and nearly all work concentrates in the partitioned merge.
const char* kGroupByLowCardQuery =
    "SELECT E.age, COUNT(*) AS c, SUM(E.did) AS s, MIN(E.sal) AS m "
    "FROM Emp E GROUP BY E.age";
// High cardinality: sal is effectively unique per row, so partial tables
// are large and the hash-partition routing dominates.
const char* kGroupByHighCardQuery =
    "SELECT E.sal, COUNT(*) AS c, MAX(E.age) AS m "
    "FROM Emp E GROUP BY E.sal";

/// Runs `query` at every DoP in g_dops, printing the scaling table and
/// asserting byte-identical rows + exactly-merged counters against DoP=1.
void RunScalingLoop(Database* db, const char* plan_key, const char* query,
                    Json* json_results) {
  TablePrinter table({"dop", "used_dop", "wall_ms(median)", "speedup",
                      "measured_cost", "rows", "fallback"});
  QueryResult base;
  double base_ms = 0.0;
  for (int dop : g_dops) {
    QueryResult result;
    const double ms = MedianWallMs(db, query, dop, &result);
    if (dop == 1) {
      base_ms = ms;
    } else {
      CheckIdentical(base, result);
    }
    const double speedup = dop == 1 ? 1.0 : base_ms / std::max(1e-9, ms);
    table.AddRow({std::to_string(dop), std::to_string(result.used_dop),
                  Fmt(ms), Fmt(speedup), Fmt(result.counters.TotalCost()),
                  std::to_string(result.rows.size()),
                  result.parallel_fallback_reason.empty()
                      ? "-"
                      : result.parallel_fallback_reason});
    if (json_results != nullptr) {
      json_results->Append(
          Json::Object()
              .Set("plan", plan_key)
              .Set("dop", dop)
              .Set("used_dop", result.used_dop)
              .Set("wall_ms_median", ms)
              .Set("speedup", speedup)
              .Set("measured_cost", result.counters.TotalCost())
              .Set("rows", static_cast<int64_t>(result.rows.size()))
              .Set("fallback_reason", result.parallel_fallback_reason));
    }
    if (dop == 1) base = std::move(result);
  }
  table.Print();
  std::cout << "(rows and merged counters verified identical to dop=1 at "
               "every dop)\n\n";
}

void PrintScalingTable(const char* title, const char* plan_key,
                       const char* query, OptimizerOptions::MagicMode mode,
                       bool smoke, Json* json_results) {
  Figure1Options opts;
  opts.num_depts = smoke ? 200 : 2000;
  opts.emps_per_dept = smoke ? 10 : 50;
  opts.young_frac = 0.05;  // selective regime: magic wins and is chosen
  opts.big_frac = 0.05;
  opts.build_indexes = false;  // keep the plan in hash-join territory
  auto db = MakeFigure1Database(opts);
  auto* options = db->mutable_optimizer_options();
  options->magic_mode = mode;
  options->enable_nested_loops = false;
  options->enable_index_nested_loops = false;
  options->enable_sort_merge = false;

  std::cout << "=== " << title << " (Dept=" << opts.num_depts
            << ", Emp=" << opts.num_depts * opts.emps_per_dept << ") ===\n\n";
  RunScalingLoop(db.get(), plan_key, query, json_results);
}

void PrintAggScalingTable(const char* title, const char* plan_key,
                          const char* query, bool smoke, Json* json_results) {
  Figure1Options opts;
  // 1M input rows (2000 x 500) in the full run: large enough that the
  // accumulate phase dominates and DoP-4 speedup is observable on a
  // multi-core box.
  opts.num_depts = smoke ? 100 : 2000;
  opts.emps_per_dept = smoke ? 20 : 500;
  opts.build_indexes = false;
  auto db = MakeFigure1Database(opts);
  auto* options = db->mutable_optimizer_options();
  options->enable_nested_loops = false;
  options->enable_index_nested_loops = false;
  options->enable_sort_merge = false;

  std::cout << "=== " << title
            << " (Emp=" << opts.num_depts * opts.emps_per_dept << ") ===\n\n";
  RunScalingLoop(db.get(), plan_key, query, json_results);
}

// ----- Vectorized batch execution vs tuple-at-a-time -----

double MedianQueryWallMs(Database* db, const char* query, QueryResult* out) {
  std::vector<double> ms;
  for (int r = 0; r < g_repetitions; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = db->Query(query);
    const auto t1 = std::chrono::steady_clock::now();
    MAGICDB_CHECK_OK(result.status());
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    if (r == 0) *out = std::move(*result);
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Same plan, same rows, same counters — only the execution mode differs:
/// tuple-at-a-time (batch_size 0) vs vectorized (1024-row batches). Run at
/// DoP 1 on the hot-path shapes so the speedup isolates per-row
/// interpretation overhead (virtual Next() calls, per-row cancellation and
/// memory-governor traffic) rather than parallel scheduling effects.
void PrintBatchVsRow(bool smoke, Json* json_results) {
  Figure1Options opts;
  opts.num_depts = smoke ? 100 : 2000;
  opts.emps_per_dept = smoke ? 20 : 500;
  opts.build_indexes = false;
  auto db = MakeFigure1Database(opts);
  auto* options = db->mutable_optimizer_options();
  options->enable_nested_loops = false;
  options->enable_index_nested_loops = false;
  options->enable_sort_merge = false;

  const struct {
    const char* plan_key;
    const char* query;
  } shapes[] = {
      {"scan_filter_project",
       "SELECT E.did, E.sal + 1000.0 FROM Emp E WHERE E.age < 30"},
      {"group_by_low_cardinality", kGroupByLowCardQuery},
      {"group_by_high_cardinality", kGroupByHighCardQuery},
      {"two_way_hash_join", kTwoWayJoinQuery},
  };

  std::cout << "=== Vectorized batch vs tuple-at-a-time, DoP 1 (Emp="
            << opts.num_depts * opts.emps_per_dept << ") ===\n\n";
  TablePrinter table(
      {"plan", "row_ms(median)", "batch_ms(median)", "speedup", "rows"});
  for (const auto& shape : shapes) {
    db->set_exec_batch_size(0);
    QueryResult row_result;
    const double row_ms = MedianQueryWallMs(db.get(), shape.query,
                                            &row_result);
    db->set_exec_batch_size(RowBatch::kDefaultCapacity);
    QueryResult batch_result;
    const double batch_ms = MedianQueryWallMs(db.get(), shape.query,
                                              &batch_result);
    CheckIdentical(row_result, batch_result);
    const double speedup = row_ms / std::max(1e-9, batch_ms);
    table.AddRow({shape.plan_key, Fmt(row_ms), Fmt(batch_ms), Fmt(speedup),
                  std::to_string(batch_result.rows.size())});
    if (json_results != nullptr) {
      json_results->Append(
          Json::Object()
              .Set("plan", shape.plan_key)
              .Set("dop", 1)
              .Set("batch_size",
                   static_cast<int64_t>(RowBatch::kDefaultCapacity))
              .Set("row_wall_ms_median", row_ms)
              .Set("batch_wall_ms_median", batch_ms)
              .Set("speedup", speedup)
              .Set("rows", static_cast<int64_t>(batch_result.rows.size())));
    }
  }
  table.Print();
  std::cout << "(rows and counters verified identical between modes)\n\n";
}

// ----- Adaptive re-optimization bake-off (DP vs greedy vs adaptive) -----

/// One (backend, adaptive, dop) cell of the bake-off.
struct BakeoffCell {
  QueryResult first;       // repetition 0: pays any feedback-driven re-plan
  QueryResult steady;      // final repetition: plans from the feedback store
  double median_ms = 0.0;  // over all repetitions
  double first_ms = 0.0;
  double steady_ms = 0.0;  // median over repetitions after the first
  int64_t reoptimizations = 0;  // summed over repetitions
};

BakeoffCell RunBakeoffCell(Database* db, const char* query,
                           const char* backend, bool adaptive, int dop) {
  // Each cell starts from a cold feedback store so every cell observes the
  // same estimate error and the dop sweep stays rep-for-rep comparable.
  db->feedback_store()->Clear();
  db->mutable_optimizer_options()->join_order_backend = backend;
  BakeoffCell cell;
  std::vector<double> all_ms, steady_ms;
  for (int r = 0; r < g_repetitions; ++r) {
    ExecOptions eo;
    eo.dop = dop;
    eo.reoptimize_qerror_threshold = adaptive ? 2.0 : 0.0;
    eo.persist_feedback = adaptive;
    const auto t0 = std::chrono::steady_clock::now();
    auto result = db->Run(query, eo);
    const auto t1 = std::chrono::steady_clock::now();
    MAGICDB_CHECK_OK(result.status());
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    all_ms.push_back(ms);
    if (r > 0) steady_ms.push_back(ms);
    cell.reoptimizations += result->reoptimizations;
    if (r == 0) {
      cell.first_ms = ms;
      cell.first = *result;
    }
    if (r == g_repetitions - 1) cell.steady = std::move(*result);
  }
  std::sort(all_ms.begin(), all_ms.end());
  std::sort(steady_ms.begin(), steady_ms.end());
  cell.median_ms = all_ms[all_ms.size() / 2];
  cell.steady_ms = steady_ms.empty() ? cell.first_ms
                                     : steady_ms[steady_ms.size() / 2];
  return cell;
}

/// Same answer set regardless of join order: order-insensitive comparison
/// for results produced by different plans.
void CheckSameMultiset(const QueryResult& a, const QueryResult& b) {
  MAGICDB_CHECK(a.rows.size() == b.rows.size());
  auto sorted = [](const QueryResult& r) {
    std::vector<Tuple> rows = r.rows;
    std::sort(rows.begin(), rows.end(),
              [](const Tuple& x, const Tuple& y) {
                return CompareTuples(x, y) < 0;
              });
    return rows;
  };
  const std::vector<Tuple> sa = sorted(a), sb = sorted(b);
  for (size_t i = 0; i < sa.size(); ++i) {
    MAGICDB_CHECK(CompareTuples(sa[i], sb[i]) == 0);
  }
}

/// The join-order bake-off on the skewed chain (see SkewedChainOptions):
/// static DP and static greedy plan from the 10x-wrong independence
/// estimate every time; the adaptive arm (DP backend + cardinality
/// feedback) aborts its first attempt at the first hash-join build, folds
/// the observed cardinality into an overlay, re-plans, and persists the
/// observation so later repetitions plan correctly from the start.
///
/// Asserted on every run: within an arm, rows and merged cost counters are
/// byte-identical across DoP (repetition-for-repetition, so restarted and
/// steady-state executions are both covered, re-opt on and off), and every
/// arm produces the same answer multiset.
void PrintAdaptiveBakeoff(bool smoke, Json* json_results) {
  SkewedChainOptions w;
  if (smoke) {
    w.fact_rows = 8000;
    w.keys = 900;
  }
  auto db = MakeSkewedChainDatabase(w);
  auto* options = db->mutable_optimizer_options();
  // Pure hash-join territory: the bake-off compares join orders, not
  // methods.
  options->magic_mode = OptimizerOptions::MagicMode::kNever;
  options->filter_join_on_stored = false;
  options->enable_nested_loops = false;
  options->enable_index_nested_loops = false;
  options->enable_sort_merge = false;
  // A small planning budget makes the HashSpill term price every
  // over-budget build side, so the optimizer strictly prefers building the
  // smaller input. Without it, build and probe cost the same per row and
  // tied build-side choices break arbitrarily. Execution keeps its own
  // default budget (ExecContext's), so runtime behavior is unchanged.
  options->memory_budget_bytes = 64 * 1024;

  const struct {
    const char* arm;
    const char* backend;
    bool adaptive;
  } arms[] = {
      {"dp_static", "dp", false},
      {"greedy_static", "greedy", false},
      {"dp_adaptive", "dp", true},
  };
  const std::vector<int> dops = smoke ? std::vector<int>{1, 2}
                                      : std::vector<int>{1, 4};

  std::cout << "=== Adaptive re-optimization bake-off, skewed chain (Fact="
            << w.fact_rows << ", Mid=" << w.keys * w.mid_fanout
            << ", filter underestimated 10x) ===\n\n";
  TablePrinter table({"arm", "dop", "first_ms", "steady_ms", "median_ms",
                      "reopts", "rows"});
  const QueryResult* reference = nullptr;
  QueryResult reference_storage;
  for (const auto& arm : arms) {
    BakeoffCell base;
    for (size_t d = 0; d < dops.size(); ++d) {
      BakeoffCell cell =
          RunBakeoffCell(db.get(), kSkewedChainQuery, arm.backend,
                         arm.adaptive, dops[d]);
      if (d == 0) {
        // Each arm's own restarted (first) and steady-state (last)
        // executions must be byte-identical at every dop, counters
        // included — aborted attempts never leak work into the totals.
        base = cell;
      } else {
        CheckIdentical(base.first, cell.first);
        CheckIdentical(base.steady, cell.steady);
        MAGICDB_CHECK(cell.reoptimizations == base.reoptimizations);
      }
      table.AddRow({arm.arm, std::to_string(dops[d]), Fmt(cell.first_ms),
                    Fmt(cell.steady_ms), Fmt(cell.median_ms),
                    std::to_string(cell.reoptimizations),
                    std::to_string(cell.steady.rows.size())});
      if (json_results != nullptr) {
        json_results->Append(
            Json::Object()
                .Set("arm", arm.arm)
                .Set("backend", arm.backend)
                .Set("adaptive", arm.adaptive)
                .Set("dop", dops[d])
                .Set("wall_ms_first", cell.first_ms)
                .Set("wall_ms_steady", cell.steady_ms)
                .Set("wall_ms_median", cell.median_ms)
                .Set("reoptimizations", cell.reoptimizations)
                .Set("rows", static_cast<int64_t>(cell.steady.rows.size())));
      }
    }
    if (std::getenv("MAGICDB_BENCH_DEBUG_EXPLAIN") != nullptr) {
      std::cout << "--- " << arm.arm << " first plan ---\n"
                << base.first.explain << "\n--- " << arm.arm
                << " steady plan ---\n"
                << base.steady.explain << "\n";
    }
    if (reference == nullptr) {
      reference_storage = std::move(base.steady);
      reference = &reference_storage;
    } else {
      CheckSameMultiset(*reference, base.steady);
    }
    MAGICDB_CHECK(arm.adaptive ? base.reoptimizations > 0
                               : base.reoptimizations == 0);
  }
  table.Print();
  std::cout << "(rows byte-identical across dop within each arm, same "
               "multiset across arms)\n\n";
}

void PrintScaling(bool smoke, const std::string& json_path) {
  std::cout << "hardware threads detected: "
            << std::thread::hardware_concurrency()
            << " — speedup beyond that count is not expected\n\n";
  Json results = Json::Array();
  Json* out = json_path.empty() ? nullptr : &results;
  PrintScalingTable("Parallel scaling, two-way hash-join plan",
                    "two_way_hash_join", kTwoWayJoinQuery,
                    OptimizerOptions::MagicMode::kNever, smoke, out);
  PrintScalingTable("Parallel scaling, magic FilterJoin plan",
                    "magic_filter_join", kFigure1Query,
                    OptimizerOptions::MagicMode::kAlwaysOnVirtual, smoke, out);
  PrintAggScalingTable(
      "Parallel scaling, GROUP BY low cardinality (merge-heavy)",
      "group_by_low_cardinality", kGroupByLowCardQuery, smoke, out);
  PrintAggScalingTable(
      "Parallel scaling, GROUP BY high cardinality (partition-heavy)",
      "group_by_high_cardinality", kGroupByHighCardQuery, smoke, out);
  Json batch_results = Json::Array();
  PrintBatchVsRow(smoke, json_path.empty() ? nullptr : &batch_results);
  Json bakeoff_results = Json::Array();
  PrintAdaptiveBakeoff(smoke, json_path.empty() ? nullptr : &bakeoff_results);
  if (out != nullptr) {
    Json doc = Json::Object()
                   .Set("benchmark", "bench_parallel_scaling")
                   .Set("hardware_threads",
                        static_cast<int64_t>(
                            std::thread::hardware_concurrency()))
                   .Set("repetitions", static_cast<int64_t>(g_repetitions))
                   .Set("smoke", smoke)
                   .Set("results", std::move(results))
                   .Set("batch_vs_row", std::move(batch_results))
                   .Set("adaptive_bakeoff", std::move(bakeoff_results));
    if (WriteJsonFile(json_path, doc)) {
      std::cout << "JSON results written to " << json_path << "\n";
    }
  }
}

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") smoke = true;
  }
  if (smoke) {
    magicdb::bench::g_repetitions = 2;
    magicdb::bench::g_dops = {1, 2};
  }
  magicdb::bench::PrintScaling(
      smoke, magicdb::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
