// E2 (Figure 3): the six left-deep join orders of the Figure-1 query, each
// costed with and without the Filter Join method. The rewriting of Figure 2
// corresponds to orders starting E-D / D-E; orders 3-4 induce the
// less-restrictive SIPS; orders 5-6 access the view first (no magic
// benefit). The DP's chosen cost must equal the minimum over all orders.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "src/common/logging.h"
#include "src/optimizer/optimizer.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

void PrintJoinOrderTable() {
  std::cout << "=== E2 / Figure 3: the six join orders of the Figure-1 "
               "query (estimated cost) ===\n\n";
  Figure1Options opts;
  opts.num_depts = 500;
  opts.emps_per_dept = 5;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  auto db = MakeFigure1Database(opts);

  auto logical = db->Bind(kFigure1Query);
  MAGICDB_CHECK_OK(logical.status());
  Optimizer optimizer(db->catalog());
  auto orders = optimizer.EnumerateJoinOrders(*logical);
  MAGICDB_CHECK_OK(orders.status());

  TablePrinter table({"#", "join order", "cost w/o FilterJoin",
                      "cost with FilterJoin", "methods with FilterJoin"});
  double best_with = -1;
  int idx = 0;
  for (const JoinOrderCost& joc : *orders) {
    std::string order;
    for (size_t i = 0; i < joc.order.size(); ++i) {
      if (i > 0) order += " -> ";
      order += joc.order[i];
    }
    table.AddRow({std::to_string(++idx), order,
                  FormatCost(joc.cost_without_filter_join),
                  FormatCost(joc.cost_with_filter_join), joc.methods_with});
    if (best_with < 0 || joc.cost_with_filter_join < best_with) {
      best_with = joc.cost_with_filter_join;
    }
  }
  table.Print();

  auto plan = optimizer.Optimize((*logical)->children()[0]);
  MAGICDB_CHECK_OK(plan.status());
  std::cout << "\nDP chosen join-block cost: " << FormatCost(plan->est_cost)
            << " (min over enumerated orders: " << FormatCost(best_with)
            << ")\n\n";
}

void BM_EnumerateJoinOrders(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = 200;
  auto db = MakeFigure1Database(opts);
  auto logical = db->Bind(kFigure1Query);
  MAGICDB_CHECK_OK(logical.status());
  for (auto _ : state) {
    Optimizer optimizer(db->catalog());
    auto orders = optimizer.EnumerateJoinOrders(*logical);
    MAGICDB_CHECK_OK(orders.status());
    benchmark::DoNotOptimize(*orders);
  }
}
BENCHMARK(BM_EnumerateJoinOrders);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintJoinOrderTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
