// E9 (§5.2): joins with user-defined relations. Sweeps the duplication
// factor of argument values and compares naive per-row invocation, memoized
// invocation (function caching), and the Filter Join (distinct arguments,
// consecutive calls). Function invocations are the dominant cost.

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

struct Outcome {
  double cost = -1;
  int64_t invocations = 0;
};

Outcome RunWith(Database* db, const std::function<void(OptimizerOptions*)>&
                                  configure) {
  OptimizerOptions opts;
  configure(&opts);
  *db->mutable_optimizer_options() = opts;
  auto result = db->Query(kUdrQuery);
  if (!result.ok()) return {};
  return {result->counters.TotalCost(),
          result->counters.function_invocations};
}

void PrintUdrSweep() {
  std::cout << "=== E9 / Section 5.2: user-defined relation joins vs "
               "argument duplication ===\n"
            << "Calls has 2000 rows; distinct argument values sweep below "
               "(invocation cost dominates)\n\n";
  TablePrinter table({"distinct args", "naive cost", "naive calls",
                      "memoized cost", "memo calls", "filter join cost",
                      "FJ calls", "optimizer choice"});
  for (int d : {1, 10, 100, 500, 2000}) {
    UdrOptions opts;
    opts.calls = 2000;
    opts.distinct_args = d;
    auto db = MakeUdrDatabase(opts);

    Outcome naive = RunWith(db.get(), [](OptimizerOptions* o) {
      o->enable_function_memo = false;
      o->magic_mode = OptimizerOptions::MagicMode::kNever;
    });
    Outcome memo = RunWith(db.get(), [](OptimizerOptions* o) {
      o->magic_mode = OptimizerOptions::MagicMode::kNever;
    });
    Outcome fj = RunWith(db.get(), [](OptimizerOptions* o) {
      o->enable_function_memo = false;
      o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
    });
    Outcome chosen = RunWith(db.get(), [](OptimizerOptions*) {});

    table.AddRow({std::to_string(d), FormatCost(naive.cost),
                  std::to_string(naive.invocations), FormatCost(memo.cost),
                  std::to_string(memo.invocations), FormatCost(fj.cost),
                  std::to_string(fj.invocations), FormatCost(chosen.cost)});
  }
  table.Print();
  std::cout << "\n(filter join and memoization both invoke once per "
               "distinct argument; the filter join additionally avoids the "
               "per-probe cache lookups)\n\n";
}

void BM_UdrOptimizerChoice(benchmark::State& state) {
  UdrOptions opts;
  opts.calls = 1000;
  opts.distinct_args = static_cast<int>(state.range(0));
  auto db = MakeUdrDatabase(opts);
  for (auto _ : state) {
    auto result = db->Query(kUdrQuery);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_UdrOptimizerChoice)->Arg(10)->Arg(1000);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintUdrSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
