// E11 (§2.1): the SIPS choice. Each join order induces a different filter
// set for the view — big-and-young departments (most restrictive), big
// only, young only, or none. The bench costs all six orders (=SIPS
// variants) of the Figure-1 query and compares the optimizer's cost-based
// pick against the Starburst-style heuristic and the best/worst variants.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "src/common/logging.h"
#include "src/optimizer/optimizer.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

void PrintSipsTable(double young_frac, double big_frac) {
  std::cout << "--- young_frac=" << young_frac << ", big_frac=" << big_frac
            << " ---\n";
  Figure1Options opts;
  opts.num_depts = 600;
  opts.emps_per_dept = 5;
  opts.young_frac = young_frac;
  opts.big_frac = big_frac;
  auto db = MakeFigure1Database(opts);

  auto logical = db->Bind(kFigure1Query);
  MAGICDB_CHECK_OK(logical.status());
  Optimizer optimizer(db->catalog());
  auto orders = optimizer.EnumerateJoinOrders(*logical);
  MAGICDB_CHECK_OK(orders.status());

  TablePrinter table({"SIPS (join order before V)", "estimated cost",
                      "filter set contents"});
  double best = -1, worst = -1;
  for (const JoinOrderCost& joc : *orders) {
    std::string order;
    for (size_t i = 0; i < joc.order.size(); ++i) {
      if (i > 0) order += "-";
      order += joc.order[i];
    }
    std::string sips;
    if (order == "E-D-V" || order == "D-E-V") {
      sips = "big AND young departments";
    } else if (order == "D-V-E") {
      sips = "big departments only";
    } else if (order == "E-V-D") {
      sips = "young-employee departments only";
    } else {
      sips = "none (view computed in full)";
    }
    table.AddRow({order, FormatCost(joc.cost_with_filter_join), sips});
    if (best < 0 || joc.cost_with_filter_join < best) {
      best = joc.cost_with_filter_join;
    }
    worst = std::max(worst, joc.cost_with_filter_join);
  }
  table.Print();

  auto chosen = optimizer.Optimize((*logical)->children()[0]);
  MAGICDB_CHECK_OK(chosen.status());

  db->mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  auto heuristic = db->Explain(kFigure1Query);
  MAGICDB_CHECK_OK(heuristic.status());

  std::cout << "cost-based pick: " << FormatCost(chosen->est_cost)
            << "  (best SIPS " << FormatCost(best) << ", worst "
            << FormatCost(worst) << ", spread "
            << FormatCost(worst / std::max(1e-9, best)) << "x)\n\n";
}

void PrintExpensiveViewSips() {
  std::cout << "--- expensive view (join inside), 0.5% qualify: SIPS "
               "choice is decisive ---\n";
  ExpensiveViewOptions opts;
  opts.num_depts = 1200;
  opts.emps_per_dept = 5;
  opts.bonuses_per_emp = 5;
  opts.young_frac = 0.005;
  opts.big_frac = 0.005;
  auto db = MakeExpensiveViewDatabase(opts);
  auto logical = db->Bind(kExpensiveViewQuery);
  MAGICDB_CHECK_OK(logical.status());
  Optimizer optimizer(db->catalog());
  auto orders = optimizer.EnumerateJoinOrders(*logical);
  MAGICDB_CHECK_OK(orders.status());
  TablePrinter table({"join order", "cost w/o FJ", "cost with FJ"});
  double best = -1, worst_plain = -1;
  for (const JoinOrderCost& joc : *orders) {
    std::string order;
    for (size_t i = 0; i < joc.order.size(); ++i) {
      if (i > 0) order += "-";
      order += joc.order[i];
    }
    table.AddRow({order, FormatCost(joc.cost_without_filter_join),
                  FormatCost(joc.cost_with_filter_join)});
    if (best < 0 || joc.cost_with_filter_join < best) {
      best = joc.cost_with_filter_join;
    }
    worst_plain = std::max(worst_plain, joc.cost_without_filter_join);
  }
  table.Print();
  std::cout << "best SIPS with FJ: " << FormatCost(best)
            << "; worst order without FJ: " << FormatCost(worst_plain)
            << " (" << FormatCost(worst_plain / std::max(1e-9, best))
            << "x spread)\n\n";
}

void PrintAblation() {
  std::cout << "=== E11 / Section 2.1: SIPS choices and their costs ===\n\n";
  PrintSipsTable(0.05, 0.05);  // both restrictive: combined SIPS best
  PrintSipsTable(0.05, 1.0);   // only the age predicate restricts
  PrintSipsTable(1.0, 0.05);   // only the budget predicate restricts
  PrintSipsTable(1.0, 1.0);    // nothing restricts: magic should not pay
  PrintExpensiveViewSips();
}

void BM_SipsEnumeration(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = 300;
  auto db = MakeFigure1Database(opts);
  auto logical = db->Bind(kFigure1Query);
  MAGICDB_CHECK_OK(logical.status());
  for (auto _ : state) {
    Optimizer optimizer(db->catalog());
    auto orders = optimizer.EnumerateJoinOrders(*logical);
    MAGICDB_CHECK_OK(orders.status());
    benchmark::DoNotOptimize(*orders);
  }
}
BENCHMARK(BM_SipsEnumeration);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
