// E3 (Table 1): the seven cost components of a Filter Join. For each
// workload the bench prints the optimizer's per-component prediction and
// compares the predicted total plan cost against the cost the executor
// actually measured (same units: page I/Os with CPU/communication
// weighting).

#include <benchmark/benchmark.h>

#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

void PrintComponentsFor(const std::string& label, const Figure1Options& opts) {
  auto db = MakeFigure1Database(opts);
  auto result = db->Query(kFigure1Query);
  MAGICDB_CHECK_OK(result.status());
  if (result->filter_joins.empty()) {
    std::cout << label << ": optimizer chose a non-FilterJoin plan "
              << "(est cost " << FormatCost(result->est_cost) << ")\n\n";
    return;
  }
  const FilterJoinCostBreakdown& bd = result->filter_joins[0];
  magicdb::FilterJoinMeasured ms;
  if (!result->filter_join_measured.empty()) {
    ms = result->filter_join_measured[0];
  }
  std::cout << "--- " << label << " ---\n";
  // Measured phases group JoinCost_P with ProductionCost_P (the outer is
  // drained and spooled in one pass) and FilterCost_Rk with AvailCost_Rk'
  // (pipelined); the table aligns the predictions the same way.
  TablePrinter table({"component (Table 1)", "predicted", "measured"});
  table.AddRow({"JoinCost_P + ProductionCost_P",
                FormatCost(bd.join_cost_p + bd.production_cost),
                FormatCost(ms.production)});
  table.AddRow({"ProjCost_F", FormatCost(bd.proj_cost),
                FormatCost(ms.projection)});
  table.AddRow({"AvailCost_F", FormatCost(bd.avail_cost_f),
                FormatCost(ms.avail_filter)});
  table.AddRow({"FilterCost_Rk + AvailCost_Rk'",
                FormatCost(bd.filter_cost_rk + bd.avail_cost_rk),
                FormatCost(ms.filter_inner)});
  table.AddRow({"FinalJoinCost", FormatCost(bd.final_join_cost),
                FormatCost(ms.final_join)});
  table.AddRow({"(total)", FormatCost(bd.join_cost_p + bd.StepTotal()),
                FormatCost(ms.Total())});
  table.Print();
  std::cout << "predicted |F| = " << FormatCost(bd.filter_set_size)
            << ", predicted |Rk'| = " << FormatCost(bd.restricted_rows)
            << "\n";
  std::cout << "whole plan: predicted = " << FormatCost(result->est_cost)
            << ", measured = "
            << FormatCost(result->counters.TotalCost())
            << " (ratio "
            << FormatCost(result->counters.TotalCost() /
                          std::max(1e-9, result->est_cost))
            << ")\n";
  std::cout << "measured counters: " << result->counters.ToString() << "\n\n";
}

void PrintTable1() {
  std::cout << "=== E3 / Table 1: Filter Join cost components, predicted "
               "vs measured ===\n\n";
  Figure1Options selective;
  selective.num_depts = 1000;
  selective.emps_per_dept = 5;
  selective.young_frac = 0.02;
  selective.big_frac = 0.02;
  PrintComponentsFor("highly selective (2% qualify)", selective);

  Figure1Options moderate;
  moderate.num_depts = 500;
  moderate.emps_per_dept = 10;
  moderate.young_frac = 0.2;
  moderate.big_frac = 0.2;
  PrintComponentsFor("moderately selective (20% qualify)", moderate);

  Figure1Options remote = selective;
  remote.dept_site = 1;
  PrintComponentsFor("distributed variant (Dept at site 1)", remote);
}

void BM_FilterJoinExecution(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = 500;
  opts.emps_per_dept = 5;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  auto db = MakeFigure1Database(opts);
  for (auto _ : state) {
    auto result = db->Query(kFigure1Query);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_FilterJoinExecution);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
