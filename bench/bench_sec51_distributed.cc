// E8 (§5.1): distributed joins. Reproduces the SDD-1 vs System R* debate:
// semi-join (a distributed Filter Join) wins when the filter is selective
// and tuples are wide (communication-dominated); fetch-inner wins when the
// filter removes little; fetch-matches wins for tiny outers. The cost-based
// optimizer should pick the winner in each regime.

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

std::string RunWith(Database* db, const std::string& query,
                    const std::function<void(OptimizerOptions*)>& configure,
                    double* cost_out = nullptr) {
  OptimizerOptions opts;
  configure(&opts);
  *db->mutable_optimizer_options() = opts;
  auto result = db->Query(query);
  if (!result.ok()) return "-";
  if (cost_out != nullptr) *cost_out = result->counters.TotalCost();
  return FormatCost(result->counters.TotalCost());
}

void ForceFetchMatches(OptimizerOptions* o) {
  o->enable_nested_loops = false;
  o->enable_hash_join = false;
  o->enable_sort_merge = false;
  o->magic_mode = OptimizerOptions::MagicMode::kNever;
  o->filter_join_on_stored = false;
}

void ForceFetchInner(OptimizerOptions* o) {
  o->enable_nested_loops = false;
  o->enable_index_nested_loops = false;
  o->enable_sort_merge = false;
  o->magic_mode = OptimizerOptions::MagicMode::kNever;
  o->filter_join_on_stored = false;
}

void ForceSemiJoin(OptimizerOptions* o) {
  o->enable_nested_loops = false;
  o->enable_index_nested_loops = false;
  o->enable_sort_merge = false;
  o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  o->consider_bloom_filter_sets = false;
}

void PrintSelectivitySweep() {
  std::cout << "=== E8 / Section 5.1: distributed join strategies vs filter "
               "selectivity ===\n"
            << "R local (500 rows), S remote at site 1 (20000 rows, wide "
               "tuples); sweep = distinct R keys\n\n";
  TablePrinter table({"R distinct keys", "fetch matches", "fetch inner",
                      "semi-join (filter join)", "optimizer choice",
                      "optimizer picked"});
  for (int r_keys : {5, 20, 100, 500, 2000}) {
    TwoTableOptions opts;
    opts.r_rows = 500;
    opts.s_rows = 20000;
    opts.r_keys = r_keys;
    opts.s_keys = 2000;
    opts.payload_cols = 8;  // wide tuples: shipping dominates
    opts.s_site = 1;
    auto db = MakeTwoTableDatabase(opts);

    const std::string fm =
        RunWith(db.get(), kTwoTableQuery, ForceFetchMatches);
    const std::string fi = RunWith(db.get(), kTwoTableQuery, ForceFetchInner);
    const std::string sj = RunWith(db.get(), kTwoTableQuery, ForceSemiJoin);
    double chosen_cost = 0;
    const std::string chosen = RunWith(
        db.get(), kTwoTableQuery, [](OptimizerOptions*) {}, &chosen_cost);

    db->mutable_optimizer_options()->magic_mode =
        OptimizerOptions::MagicMode::kCostBased;
    auto plan = db->Query(kTwoTableQuery);
    std::string what = "?";
    if (plan.ok()) {
      if (!plan->filter_joins.empty()) {
        what = "semi-join";
      } else if (plan->explain.find("remote") != std::string::npos) {
        what = "fetch matches";
      } else {
        what = "fetch inner";
      }
    }
    table.AddRow({std::to_string(r_keys), fm, fi, sj, chosen, what});
  }
  table.Print();
  std::cout << "\n";
}

void PrintWidthSweep() {
  std::cout << "--- communication/local cost ratio sweep (payload width) "
               "---\n\n";
  TablePrinter table({"payload cols", "fetch inner", "semi-join",
                      "semi-join wins"});
  for (int width : {1, 2, 4, 8, 16}) {
    TwoTableOptions opts;
    opts.r_rows = 400;
    opts.s_rows = 20000;
    opts.r_keys = 50;
    opts.s_keys = 2000;
    opts.payload_cols = width;
    opts.s_site = 1;
    auto db = MakeTwoTableDatabase(opts);
    double fi_cost = 0, sj_cost = 0;
    RunWith(db.get(), kTwoTableQuery, ForceFetchInner, &fi_cost);
    RunWith(db.get(), kTwoTableQuery, ForceSemiJoin, &sj_cost);
    table.AddRow({std::to_string(width), FormatCost(fi_cost),
                  FormatCost(sj_cost), sj_cost < fi_cost ? "yes" : "no"});
  }
  table.Print();
  std::cout << "\n";
}

void BM_DistributedOptimizerChoice(benchmark::State& state) {
  TwoTableOptions opts;
  opts.r_rows = 200;
  opts.s_rows = 5000;
  opts.r_keys = 20;
  opts.s_keys = 500;
  opts.s_site = 1;
  auto db = MakeTwoTableDatabase(opts);
  for (auto _ : state) {
    auto result = db->Query(kTwoTableQuery);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_DistributedOptimizerChoice);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintSelectivitySweep();
  magicdb::bench::PrintWidthSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
