// E4 (Figure 4): the restricted inner's result cardinality is (nearly)
// linear in the filter-set selectivity, so a straight line fitted through a
// few equivalence-class samples predicts it well. This bench measures the
// *actual* cardinality of the magic-restricted DepAvgSal view across the
// selectivity range, fits a line through k=4 sample points, and reports the
// fit error — regenerating the content of Figure 4.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "src/common/logging.h"
#include "src/optimizer/optimizer.h"
#include "src/rewrite/magic_rewrite.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

constexpr int kNumDepts = 1000;

/// Executes the magic-rewritten DepAvgSal plan against a filter set holding
/// the first `filter_keys` department ids; returns (measured rows, measured
/// cost).
std::pair<double, double> RunRestrictedView(Database* db,
                                            const LogicalPtr& rewritten,
                                            const std::string& binding,
                                            int filter_keys) {
  Optimizer optimizer(db->catalog());
  std::map<std::string, double> assumed = {
      {binding, static_cast<double>(std::max(1, filter_keys))}};
  auto plan = optimizer.OptimizeWithFilterSets(rewritten, assumed);
  MAGICDB_CHECK_OK(plan.status());

  ExecContext ctx;
  Schema key_schema({{"F", "did", DataType::kInt64}});
  std::vector<Tuple> keys;
  for (int d = 0; d < filter_keys; ++d) keys.push_back({Value::Int64(d)});
  ctx.BindFilterSet(binding,
                    FilterSetBinding::Exact(key_schema, std::move(keys)));
  auto rows = ExecuteToVector(plan->root.get(), &ctx);
  MAGICDB_CHECK_OK(rows.status());
  return {static_cast<double>(rows->size()), ctx.counters().TotalCost()};
}

void PrintFit() {
  std::cout << "=== E4 / Figure 4: restricted-view cardinality vs filter "
               "selectivity, straight-line fit ===\n"
            << "view = DepAvgSal over " << kNumDepts
            << " departments; filter set = first sigma*" << kNumDepts
            << " department ids\n\n";
  Figure1Options opts;
  opts.num_depts = kNumDepts;
  opts.emps_per_dept = 5;
  auto db = MakeFigure1Database(opts);
  const CatalogEntry* view = *db->catalog()->Lookup("DepAvgSal");
  auto rewritten =
      MagicRewrite(view->view_plan, {0}, "fig4_fs", RewriteStyle::kJoin);
  MAGICDB_CHECK_OK(rewritten.status());

  // Sample at the k=4 equivalence-class centers (as §4.2 proposes) and fit
  // a least-squares line through the samples.
  const int k = 4;
  double sum_s = 0, sum_r = 0, sum_ss = 0, sum_sr = 0;
  for (int b = 0; b < k; ++b) {
    const double sigma = (b + 0.5) / k;
    auto [rows, cost] = RunRestrictedView(
        db.get(), *rewritten, "fig4_fs",
        static_cast<int>(sigma * kNumDepts));
    sum_s += sigma;
    sum_r += rows;
    sum_ss += sigma * sigma;
    sum_sr += sigma * rows;
  }
  const double slope = (k * sum_sr - sum_s * sum_r) / (k * sum_ss - sum_s * sum_s);
  const double intercept = (sum_r - slope * sum_s) / k;
  std::cout << "fitted line: |restricted view| = " << FormatCost(intercept)
            << " + " << FormatCost(slope) << " * selectivity\n\n";

  TablePrinter table({"selectivity", "|F|", "actual rows", "fitted rows",
                      "rel. error", "measured cost"});
  double max_err = 0;
  for (double sigma : {0.01, 0.05, 0.1, 0.25, 0.4, 0.6, 0.75, 0.9, 1.0}) {
    const int keys = std::max(1, static_cast<int>(sigma * kNumDepts));
    auto [rows, cost] = RunRestrictedView(db.get(), *rewritten, "fig4_fs",
                                          keys);
    const double fitted = intercept + slope * sigma;
    const double err = rows > 0 ? std::abs(fitted - rows) / rows : 0.0;
    max_err = std::max(max_err, err);
    table.AddRow({FormatCost(sigma), std::to_string(keys), FormatCost(rows),
                  FormatCost(fitted), FormatCost(err), FormatCost(cost)});
  }
  table.Print();
  std::cout << "\nmax relative error of the straight-line fit: "
            << FormatCost(max_err) << "\n\n";
}

void BM_RestrictedViewExecution(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = kNumDepts;
  opts.emps_per_dept = 5;
  auto db = MakeFigure1Database(opts);
  const CatalogEntry* view = *db->catalog()->Lookup("DepAvgSal");
  auto rewritten =
      MagicRewrite(view->view_plan, {0}, "fig4_fs", RewriteStyle::kJoin);
  MAGICDB_CHECK_OK(rewritten.status());
  const int keys = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto [rows, cost] =
        RunRestrictedView(db.get(), *rewritten, "fig4_fs", keys);
    benchmark::DoNotOptimize(rows);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_RestrictedViewExecution)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintFit();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
