// E5 (Figure 5): the number of equivalence classes is a performance knob —
// more classes mean more nested optimizer invocations (higher optimization
// cost) but tighter cost/cardinality estimates. This bench sweeps the knob
// and reports optimization effort against estimate accuracy (predicted vs
// measured execution cost of the chosen plan).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

void PrintKnobTable() {
  std::cout << "=== E5 / Figure 5: equivalence classes as the "
               "optimization-cost vs accuracy knob ===\n\n";
  TablePrinter table({"eq. classes", "nested plans (misses)", "cache hits",
                      "planning us", "est cost", "measured cost",
                      "est/measured"});
  for (int k : {1, 2, 4, 8, 16}) {
    Figure1Options opts;
    opts.num_depts = 600;
    opts.emps_per_dept = 5;
    opts.young_frac = 0.1;
    opts.big_frac = 0.1;
    auto db = MakeFigure1Database(opts);
    db->mutable_optimizer_options()->equivalence_classes = k;

    const auto start = std::chrono::steady_clock::now();
    auto result = db->Query(kFigure1Query);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    MAGICDB_CHECK_OK(result.status());
    const double measured = result->counters.TotalCost();
    table.AddRow({std::to_string(k),
                  std::to_string(result->optimizer_stats.eq_class_misses),
                  std::to_string(result->optimizer_stats.eq_class_hits),
                  std::to_string(elapsed.count()),
                  FormatCost(result->est_cost), FormatCost(measured),
                  FormatCost(result->est_cost / std::max(1e-9, measured))});
  }
  table.Print();
  std::cout << "\n(planning time includes parse+bind+optimize+execute; the "
               "nested-plan count is the knob's direct effect)\n\n";
}

void BM_OptimizeWithKnob(benchmark::State& state) {
  Figure1Options opts;
  opts.num_depts = 400;
  opts.emps_per_dept = 5;
  auto db = MakeFigure1Database(opts);
  db->mutable_optimizer_options()->equivalence_classes =
      static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto explain = db->Explain(kFigure1Query);
    MAGICDB_CHECK_OK(explain.status());
    benchmark::DoNotOptimize(*explain);
  }
}
BENCHMARK(BM_OptimizeWithKnob)->Arg(1)->Arg(4)->Arg(16);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintKnobTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
