// E10 (§5.3): Filter Joins over plain stored relations. The local
// semi-join performs two scans of the outer and one of the inner; it beats
// the classic methods when the filter set is small and selective, and loses
// when it filters nothing. The bench sweeps the outer's distinct-key count.

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>

#include "src/common/logging.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

double RunWith(Database* db, const std::function<void(OptimizerOptions*)>&
                                 configure) {
  OptimizerOptions opts;
  opts.memory_budget_bytes = 64 * 1024;  // §5.3 presumes memory pressure
  configure(&opts);
  *db->mutable_optimizer_options() = opts;
  auto result = db->Query(kTwoTableQuery);
  MAGICDB_CHECK_OK(result.status());
  return result->counters.TotalCost();
}

void PrintLocalSemijoinSweep() {
  std::cout << "=== E10 / Section 5.3: local semi-join vs classic joins "
               "over stored relations ===\n"
            << "R = 10000 rows, S = 30000 rows over 10000 keys; memory "
               "budget 64KB (S build side spills); sweep = distinct keys "
               "in R\n\n";
  TablePrinter table({"R distinct keys", "hash join", "sort-merge",
                      "index NL", "local semi-join", "optimizer choice",
                      "semi-join wins"});
  for (int r_keys : {10, 100, 1000, 5000, 10000}) {
    TwoTableOptions opts;
    opts.r_rows = 10000;
    opts.s_rows = 30000;
    opts.r_keys = r_keys;
    opts.s_keys = 10000;
    opts.payload_cols = 6;
    auto db = MakeTwoTableDatabase(opts);

    const double hash = RunWith(db.get(), [](OptimizerOptions* o) {
      o->enable_index_nested_loops = false;
      o->enable_sort_merge = false;
      o->enable_nested_loops = false;
      o->magic_mode = OptimizerOptions::MagicMode::kNever;
    });
    const double smj = RunWith(db.get(), [](OptimizerOptions* o) {
      o->enable_index_nested_loops = false;
      o->enable_hash_join = false;
      o->enable_nested_loops = false;
      o->magic_mode = OptimizerOptions::MagicMode::kNever;
    });
    const double inl = RunWith(db.get(), [](OptimizerOptions* o) {
      o->enable_hash_join = false;
      o->enable_sort_merge = false;
      o->enable_nested_loops = false;
      o->magic_mode = OptimizerOptions::MagicMode::kNever;
    });
    const double semi = RunWith(db.get(), [](OptimizerOptions* o) {
      // With every classic method disabled the DP can only pick the
      // Filter Join (local semi-join).
      o->enable_index_nested_loops = false;
      o->enable_sort_merge = false;
      o->enable_nested_loops = false;
      o->enable_hash_join = false;
      o->filter_join_on_stored = true;
      o->consider_bloom_filter_sets = false;
    });
    const double chosen = RunWith(db.get(), [](OptimizerOptions*) {});

    const double best_classic = std::min({hash, smj, inl});
    table.AddRow({std::to_string(r_keys), FormatCost(hash), FormatCost(smj),
                  FormatCost(inl), FormatCost(semi), FormatCost(chosen),
                  semi < best_classic ? "yes" : "no"});
  }
  table.Print();
  std::cout << "\n";
}

void BM_LocalSemijoin(benchmark::State& state) {
  TwoTableOptions opts;
  opts.r_rows = 300;
  opts.s_rows = 10000;
  opts.r_keys = static_cast<int>(state.range(0));
  opts.s_keys = 5000;
  auto db = MakeTwoTableDatabase(opts);
  db->mutable_optimizer_options()->filter_join_on_stored = true;
  for (auto _ : state) {
    auto result = db->Query(kTwoTableQuery);
    MAGICDB_CHECK_OK(result.status());
    benchmark::DoNotOptimize(result->rows);
  }
}
BENCHMARK(BM_LocalSemijoin)->Arg(10)->Arg(300);

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::PrintLocalSemijoinSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
