// Closed-loop throughput of the query service (src/server): N sessions,
// each on its own thread, firing a mixed statement workload back-to-back
// at one shared QueryService. Reports QPS, p50/p95/p99 query latency (from
// the service's own histogram), and the plan-cache hit rate, at per-query
// DoP 1, 2 and 4.
//
// A second section exercises the streaming cursor path: one session drains
// a large scan through Session::Open/Cursor::Fetch and reports
// time-to-first-row vs time-to-last-row at DoP 1, 2 and 4, plus the
// observed queue peak and producer park count (the backpressure facts).
// Sequential streams deliver their first row after one scheduler quantum;
// a parallel gang runs to completion inside Open, so its first row costs
// almost the whole query — the gap is the documented trade-off.
//
// Correctness is asserted, not assumed: every session compares each result
// against a sequential Database::Query() baseline captured before the
// service starts — any row or counter divergence aborts the bench.
//
// Throughput is hardware-bound; the header prints the detected core count.
// `--json <path>` additionally writes the table as a JSON document.
// `--smoke` shrinks the workload to a seconds-long CI pass (used by
// scripts/check.sh under TSAN and ASAN to race-test the cursor plumbing).

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/server/cursor.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "workloads/json_writer.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

int g_sessions = 4;
int g_queries_per_session = 40;
int g_stream_iters = 3;

const char* kStatements[] = {
    kFigure1Query,
    kFigure1QueryYoungOnly,
    "SELECT E.did, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000",
};
constexpr int kNumStatements = 3;

// Streaming workload: a wide scan whose result dwarfs the cursor queue, so
// time-to-first-row genuinely measures streaming (not result size).
const char* kStreamQuery = "SELECT E.did, E.sal, E.age FROM Emp E";

// Low-memory workload: each shape retains hundreds of KB against a 64 KB
// per-query limit, so completing at all requires the spill subsystem.
// Keyed on sal (effectively unique), giving a ~240 KB self-join build and
// ~10000 aggregate groups on the fixed-size low-memory database.
struct LowMemQuery {
  const char* shape;
  const char* sql;
};
const LowMemQuery kLowMemQueries[] = {
    {"hash_join",
     "SELECT A.did, B.sal FROM Emp A, Emp B WHERE A.sal = B.sal"},
    {"hash_agg",
     "SELECT E.sal, COUNT(*) AS c, MIN(E.age) AS m FROM Emp E "
     "GROUP BY E.sal"},
    {"sort", "SELECT E.sal, E.age FROM Emp E ORDER BY sal DESC, age"},
};
constexpr int64_t kLowMemLimitBytes = 64 * 1024;

std::string Fmt(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << v;
  return os.str();
}

void CheckIdentical(const QueryResult& base, const QueryResult& got) {
  MAGICDB_CHECK(got.rows.size() == base.rows.size());
  for (size_t i = 0; i < base.rows.size(); ++i) {
    MAGICDB_CHECK(CompareTuples(got.rows[i], base.rows[i]) == 0);
  }
  MAGICDB_CHECK(got.counters.pages_read == base.counters.pages_read);
  MAGICDB_CHECK(got.counters.tuples_processed ==
                base.counters.tuples_processed);
  MAGICDB_CHECK(got.counters.exprs_evaluated == base.counters.exprs_evaluated);
  MAGICDB_CHECK(got.counters.hash_operations == base.counters.hash_operations);
}

struct RunResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
  int64_t morsels_stolen = 0;
};

RunResult RunClosedLoop(Database* db, const std::vector<QueryResult>& baseline,
                        int dop, int64_t batch_size = -1) {
  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(db, so);
  std::vector<std::unique_ptr<Session>> sessions;
  for (int s = 0; s < g_sessions; ++s) {
    sessions.push_back(service.CreateSession());
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(g_sessions);
  for (int s = 0; s < g_sessions; ++s) {
    threads.emplace_back([&, s] {
      Session* session = sessions[s].get();
      ExecOptions exec;
      exec.dop = dop;
      exec.batch_size = batch_size;
      for (int i = 0; i < g_queries_per_session; ++i) {
        const int qi = (s + i) % kNumStatements;
        auto r = session->Query(kStatements[qi], exec);
        MAGICDB_CHECK_OK(r.status());
        CheckIdentical(baseline[qi], *r);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ServiceStats stats = service.StatsSnapshot();
  MAGICDB_CHECK(stats.queries_completed == g_sessions * g_queries_per_session);
  RunResult out;
  out.qps = static_cast<double>(stats.queries_completed) / elapsed_s;
  out.p50_us = stats.query_latency_us_p50;
  out.p95_us = stats.query_latency_us_p95;
  out.p99_us = stats.query_latency_us_p99;
  out.hit_rate = static_cast<double>(stats.plan_cache_hits) /
                 static_cast<double>(stats.plan_cache_hits +
                                     stats.plan_cache_misses);
  out.morsels_stolen = stats.morsels_stolen;
  return out;
}

struct StreamResult {
  double ttfr_us = 0.0;  // time to first fetched row
  double ttlr_us = 0.0;  // time to last row (end of stream)
  int used_dop = 1;
  int64_t rows = 0;
  int64_t peak_buffered_rows = 0;
  int64_t producer_parks = 0;
};

StreamResult RunStreaming(Database* db, const QueryResult& baseline, int dop) {
  QueryServiceOptions so;
  so.pool_threads = 4;
  so.scheduler_quantum_rows = 256;
  so.stream_queue_rows = 512;  // tight queue: backpressure must engage
  QueryService service(db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.dop = dop;

  StreamResult best;
  for (int iter = 0; iter < g_stream_iters; ++iter) {
    const auto t0 = std::chrono::steady_clock::now();
    auto us_since_t0 = [&t0] {
      return std::chrono::duration<double, std::micro>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    auto cursor = session->Open(kStreamQuery, exec);
    MAGICDB_CHECK_OK(cursor.status());
    std::vector<Tuple> rows;
    rows.reserve(baseline.rows.size());
    double ttfr = 0.0;
    while (true) {
      auto batch = cursor->Fetch(256);
      MAGICDB_CHECK_OK(batch.status());
      if (batch->empty()) break;
      if (rows.empty()) ttfr = us_since_t0();
      for (Tuple& t : *batch) rows.push_back(std::move(t));
    }
    StreamResult out;
    out.ttfr_us = ttfr;
    out.ttlr_us = us_since_t0();
    out.used_dop = cursor->used_dop();
    out.rows = static_cast<int64_t>(rows.size());
    out.peak_buffered_rows = cursor->peak_buffered_rows();
    out.producer_parks = cursor->producer_parks();
    MAGICDB_CHECK(rows.size() == baseline.rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      MAGICDB_CHECK(CompareTuples(rows[i], baseline.rows[i]) == 0);
    }
    // The bounded-memory contract, asserted on every iteration.
    MAGICDB_CHECK(out.peak_buffered_rows <=
                  so.stream_queue_rows + so.scheduler_quantum_rows);
    MAGICDB_CHECK_OK(cursor->Close());
    if (iter == 0 || out.ttlr_us < best.ttlr_us) best = out;
  }
  return best;
}

struct LowMemResult {
  double in_memory_us = 0.0;
  double spill_us = 0.0;
  int64_t rows = 0;
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  int64_t memory_peak_bytes = 0;
};

/// One governed-vs-ungoverned pair per query shape on a dedicated
/// fixed-size database (the section's numbers should not shrink with
/// --smoke: a spill ratio on a tiny input measures nothing). Rows are
/// verified byte-identical between both runs and the sequential baseline.
LowMemResult RunLowMemory(Database* db, Session* session,
                          const QueryResult& baseline,
                          const LowMemQuery& q) {
  auto timed_drain = [&](const ExecOptions& exec, double* us,
                         int64_t* peak) -> CostCounters {
    const auto t0 = std::chrono::steady_clock::now();
    auto cursor = session->Open(q.sql, exec);
    MAGICDB_CHECK_OK(cursor.status());
    std::vector<Tuple> rows;
    while (true) {
      auto batch = cursor->Fetch(256);
      MAGICDB_CHECK_OK(batch.status());
      if (batch->empty()) break;
      for (Tuple& t : *batch) rows.push_back(std::move(t));
    }
    *us = std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - t0)
              .count();
    *peak = cursor->memory_peak_bytes();
    MAGICDB_CHECK(rows.size() == baseline.rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      MAGICDB_CHECK(CompareTuples(rows[i], baseline.rows[i]) == 0);
    }
    CostCounters counters = cursor->counters();
    MAGICDB_CHECK_OK(cursor->Close());
    return counters;
  };

  LowMemResult out;
  out.rows = static_cast<int64_t>(baseline.rows.size());
  int64_t unused_peak = 0;
  ExecOptions ungoverned;
  timed_drain(ungoverned, &out.in_memory_us, &unused_peak);

  ExecOptions governed;
  governed.memory_limit_bytes = kLowMemLimitBytes;
  const CostCounters counters =
      timed_drain(governed, &out.spill_us, &out.memory_peak_bytes);
  out.spill_bytes_written = counters.spill_bytes_written;
  out.spill_bytes_read = counters.spill_bytes_read;
  MAGICDB_CHECK(out.spill_bytes_written > 0);  // the limit must have bitten
  MAGICDB_CHECK(out.memory_peak_bytes <= kLowMemLimitBytes);
  return out;
}

// ----- overload section -----
//
// The overload-resilience contract, measured: a saturating fleet of
// background sessions must not destroy high-priority latency. Phase A runs
// the two high-priority sessions alone (unloaded p95); phase B adds eight
// background closed-loop sessions with a shed_queue_depth of 4, so the
// service sheds background work (Query()'s retry loop absorbs the
// rejections) while weighted-fair admission keeps the high sessions at the
// head of the line. max_concurrent is 1 in both phases: queries never
// share the CPU, so both phases pay the same head-of-line residual (phase
// A's from the sibling high session) and the comparison isolates what
// overload adds — queueing behind background work — from raw machine
// speed. The gate: loaded high p95 stays within 2x of the unloaded p95
// (floored at 1 ms to keep the ratio meaningful on fast machines).

struct OverloadResult {
  double unloaded_high_p95_us = 0.0;
  double high_p95_us = 0.0;
  double background_p95_us = 0.0;
  int64_t high_completed = 0;
  int64_t background_completed = 0;
  int64_t sheds = 0;
  int64_t shed_retries = 0;
  int64_t submitted = 0;
  double shed_rate = 0.0;
};

double P95Us(std::vector<double>* latencies) {
  if (latencies->empty()) return 0.0;
  std::sort(latencies->begin(), latencies->end());
  return (*latencies)[static_cast<size_t>(0.95 * (latencies->size() - 1))];
}

OverloadResult RunOverload(Database* db,
                           const std::vector<QueryResult>& baseline,
                           bool smoke) {
  constexpr int kHighSessions = 2;
  constexpr int kBackgroundSessions = 8;
  const auto window = std::chrono::milliseconds(smoke ? 200 : 800);

  // Runs `high + background` closed-loop sessions for one window; returns
  // client-observed latencies per class. Background queries may be shed
  // past Query()'s retry budget under saturation — that is the designed
  // outcome, not an error; everything that completes must stay
  // byte-identical.
  auto run_phase = [&](int background_sessions, std::vector<double>* high_lat,
                       std::vector<double>* bg_lat, int64_t* high_done,
                       int64_t* bg_done, ServiceStats* stats_out) {
    QueryServiceOptions so;
    so.pool_threads = 4;
    so.max_concurrent_queries = 1;
    so.shed_queue_depth = 4;
    QueryService service(db, so);
    SessionOptions high_opts;
    high_opts.priority = SessionPriority::kHigh;
    SessionOptions bg_opts;
    bg_opts.priority = SessionPriority::kBackground;

    const int total = kHighSessions + background_sessions;
    std::vector<std::unique_ptr<Session>> sessions;
    std::vector<std::vector<double>> lat(total);
    std::vector<int64_t> done(total, 0);
    for (int s = 0; s < total; ++s) {
      sessions.push_back(
          service.CreateSession(s < kHighSessions ? high_opts : bg_opts));
    }
    const auto deadline = std::chrono::steady_clock::now() + window;
    std::vector<std::thread> threads;
    threads.reserve(total);
    for (int s = 0; s < total; ++s) {
      threads.emplace_back([&, s] {
        Session* session = sessions[s].get();
        const bool is_high = s < kHighSessions;
        int i = 0;
        while (std::chrono::steady_clock::now() < deadline) {
          const int qi = (s + i++) % kNumStatements;
          const auto t0 = std::chrono::steady_clock::now();
          auto r = session->Query(kStatements[qi]);
          if (!r.ok()) {
            // Only background work may be refused, and only by overload.
            MAGICDB_CHECK(!is_high);
            MAGICDB_CHECK(r.status().code() == StatusCode::kUnavailable);
            continue;
          }
          CheckIdentical(baseline[qi], *r);
          lat[s].push_back(std::chrono::duration<double, std::micro>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
          ++done[s];
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int s = 0; s < total; ++s) {
      auto* sink = s < kHighSessions ? high_lat : bg_lat;
      sink->insert(sink->end(), lat[s].begin(), lat[s].end());
      *(s < kHighSessions ? high_done : bg_done) += done[s];
    }
    *stats_out = service.StatsSnapshot();
  };

  OverloadResult out;
  // Phase A: high-priority sessions alone — the unloaded latency floor.
  {
    std::vector<double> high_lat, bg_lat;
    int64_t high_done = 0, bg_done = 0;
    ServiceStats stats;
    run_phase(0, &high_lat, &bg_lat, &high_done, &bg_done, &stats);
    out.unloaded_high_p95_us = P95Us(&high_lat);
  }
  // Phase B: the same high sessions under a saturating background fleet.
  {
    std::vector<double> high_lat, bg_lat;
    ServiceStats stats;
    run_phase(kBackgroundSessions, &high_lat, &bg_lat, &out.high_completed,
              &out.background_completed, &stats);
    out.high_p95_us = P95Us(&high_lat);
    out.background_p95_us = P95Us(&bg_lat);
    out.sheds = stats.queries_shed;
    out.shed_retries = stats.query_shed_retries;
    out.submitted = stats.queries_submitted;
    out.shed_rate = static_cast<double>(out.sheds) /
                    static_cast<double>(std::max<int64_t>(
                        1, out.sheds + stats.queries_submitted));
  }
  MAGICDB_CHECK(out.high_completed > 0);
  return out;
}

void Run(const std::string& json_path, bool smoke) {
  if (smoke) {
    g_sessions = 2;
    g_queries_per_session = 4;
    g_stream_iters = 1;
  }
  std::cout << "hardware threads detected: "
            << std::thread::hardware_concurrency() << "\n";
  std::cout << "closed loop: " << g_sessions << " sessions x "
            << g_queries_per_session << " queries, " << kNumStatements
            << " distinct statements, shared pool of 4 workers\n\n";

  Figure1Options opts;
  opts.num_depts = smoke ? 100 : 500;
  opts.emps_per_dept = 20;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  opts.build_indexes = false;
  auto db = MakeFigure1Database(opts);
  auto* options = db->mutable_optimizer_options();
  options->enable_nested_loops = false;
  options->enable_index_nested_loops = false;
  options->enable_sort_merge = false;

  // Sequential ground truth for every statement, before the service runs.
  std::vector<QueryResult> baseline;
  for (const char* q : kStatements) {
    auto r = db->Query(q);
    MAGICDB_CHECK_OK(r.status());
    baseline.push_back(std::move(*r));
  }
  auto stream_baseline = db->Query(kStreamQuery);
  MAGICDB_CHECK_OK(stream_baseline.status());

  TablePrinter table({"dop", "qps", "p50_us", "p95_us", "p99_us",
                      "plan_cache_hit_rate", "morsels_stolen"});
  Json results = Json::Array();
  for (int dop : {1, 2, 4}) {
    const RunResult r = RunClosedLoop(db.get(), baseline, dop);
    table.AddRow({std::to_string(dop), Fmt(r.qps), Fmt(r.p50_us),
                  Fmt(r.p95_us), Fmt(r.p99_us), Fmt(r.hit_rate),
                  std::to_string(r.morsels_stolen)});
    results.Append(Json::Object()
                       .Set("dop", dop)
                       .Set("qps", r.qps)
                       .Set("p50_us", r.p50_us)
                       .Set("p95_us", r.p95_us)
                       .Set("p99_us", r.p99_us)
                       .Set("plan_cache_hit_rate", r.hit_rate)
                       .Set("morsels_stolen", r.morsels_stolen));
  }
  table.Print();
  std::cout << "(every result verified byte-identical to Database::Query(), "
               "counters exact)\n\n";

  // Batch-vs-row section: the same closed loop at DoP 1, with the
  // per-query batch size pinned explicitly — 0 (tuple-at-a-time) vs 1024
  // (vectorized) — isolating the vectorized pump's throughput effect from
  // parallelism and plan differences (the plan-cache key includes the
  // batch size, so the two modes never share a pooled plan instance).
  std::cout << "batch vs row: same closed loop at DoP 1, explicit "
               "batch_size 0 vs 1024\n\n";
  TablePrinter batch_table(
      {"batch_size", "qps", "p50_us", "p95_us", "p99_us"});
  Json batch_results = Json::Array();
  double row_qps = 0.0;
  for (int64_t batch : {int64_t{0}, int64_t{1024}}) {
    const RunResult r = RunClosedLoop(db.get(), baseline, 1, batch);
    if (batch == 0) row_qps = r.qps;
    batch_table.AddRow({std::to_string(batch), Fmt(r.qps), Fmt(r.p50_us),
                        Fmt(r.p95_us), Fmt(r.p99_us)});
    batch_results.Append(Json::Object()
                             .Set("batch_size", batch)
                             .Set("dop", 1)
                             .Set("qps", r.qps)
                             .Set("p50_us", r.p50_us)
                             .Set("p95_us", r.p95_us)
                             .Set("p99_us", r.p99_us)
                             .Set("qps_vs_row", r.qps / std::max(1e-9,
                                                                 row_qps)));
  }
  batch_table.Print();
  std::cout << "(identical rows and counters in both modes)\n\n";

  std::cout << "streaming: " << stream_baseline->rows.size()
            << "-row scan through Session::Open / Cursor::Fetch(256), "
               "queue high-water 512 rows\n\n";
  TablePrinter stream_table({"dop", "used_dop", "rows", "ttfr_us", "ttlr_us",
                             "peak_buffered_rows", "producer_parks"});
  Json stream_results = Json::Array();
  for (int dop : {1, 2, 4}) {
    const StreamResult r = RunStreaming(db.get(), *stream_baseline, dop);
    stream_table.AddRow({std::to_string(dop), std::to_string(r.used_dop),
                         std::to_string(r.rows), Fmt(r.ttfr_us),
                         Fmt(r.ttlr_us), std::to_string(r.peak_buffered_rows),
                         std::to_string(r.producer_parks)});
    stream_results.Append(Json::Object()
                              .Set("dop", dop)
                              .Set("used_dop", r.used_dop)
                              .Set("rows", r.rows)
                              .Set("ttfr_us", r.ttfr_us)
                              .Set("ttlr_us", r.ttlr_us)
                              .Set("peak_buffered_rows", r.peak_buffered_rows)
                              .Set("producer_parks", r.producer_parks));
  }
  stream_table.Print();
  std::cout << "(batches concatenate byte-identical to Database::Query(); "
               "peak buffered rows bounded by queue + one quantum)\n\n";

  // Low-memory section: out-of-core throughput. Fixed-size database on
  // purpose — see RunLowMemory.
  Figure1Options lm_opts = opts;
  lm_opts.num_depts = 500;
  auto lm_db = MakeFigure1Database(lm_opts);
  auto* lm_options = lm_db->mutable_optimizer_options();
  lm_options->enable_nested_loops = false;
  lm_options->enable_index_nested_loops = false;
  lm_options->enable_sort_merge = false;
  char spill_dir_templ[] = "/tmp/magicdb-bench-spill-XXXXXX";
  MAGICDB_CHECK(mkdtemp(spill_dir_templ) != nullptr);
  QueryServiceOptions lm_so;
  lm_so.pool_threads = 2;
  lm_so.spill_dir = spill_dir_templ;
  // Small write buffers: with a 64 KB limit the per-partition buffers and
  // the final merge frames must fit inside the limit they serve.
  lm_so.spill_batch_bytes = 256;
  // The result queue charges against the same limit and cannot spill; keep
  // its high-water mark well under the governed budget.
  lm_so.scheduler_quantum_rows = 128;
  lm_so.stream_queue_rows = 256;
  QueryService lm_service(lm_db.get(), lm_so);
  std::unique_ptr<Session> lm_session = lm_service.CreateSession();

  std::cout << "low-memory: governed at " << kLowMemLimitBytes
            << " bytes per query (spill area " << spill_dir_templ
            << ") vs ungoverned, sequential, 10000-row Emp\n\n";
  TablePrinter lm_table({"shape", "rows", "in_memory_us", "spill_us",
                         "slowdown", "spill_written", "spill_read",
                         "peak_bytes"});
  Json lm_results = Json::Array();
  for (const LowMemQuery& q : kLowMemQueries) {
    auto lm_baseline = lm_db->Query(q.sql);
    MAGICDB_CHECK_OK(lm_baseline.status());
    const LowMemResult r =
        RunLowMemory(lm_db.get(), lm_session.get(), *lm_baseline, q);
    lm_table.AddRow({q.shape, std::to_string(r.rows), Fmt(r.in_memory_us),
                     Fmt(r.spill_us), Fmt(r.spill_us / r.in_memory_us),
                     std::to_string(r.spill_bytes_written),
                     std::to_string(r.spill_bytes_read),
                     std::to_string(r.memory_peak_bytes)});
    lm_results.Append(Json::Object()
                          .Set("shape", q.shape)
                          .Set("rows", r.rows)
                          .Set("in_memory_us", r.in_memory_us)
                          .Set("spill_us", r.spill_us)
                          .Set("spill_bytes_written", r.spill_bytes_written)
                          .Set("spill_bytes_read", r.spill_bytes_read)
                          .Set("memory_peak_bytes", r.memory_peak_bytes)
                          .Set("memory_limit_bytes", kLowMemLimitBytes));
  }
  lm_table.Print();
  std::cout << "(rows byte-identical in-memory vs spilled; tracker peak "
               "never exceeds the limit)\n";
  rmdir(spill_dir_templ);  // succeeds only if every temp file was unlinked

  // Overload section: high-priority latency under a saturating background
  // fleet, with shedding engaged.
  std::cout << "\noverload: 2 high-priority sessions, unloaded vs under 8 "
               "background sessions (max_concurrent 1, shed_queue_depth 4)"
               "\n\n";
  const OverloadResult ov = RunOverload(db.get(), baseline, smoke);
  TablePrinter ov_table({"priority", "p95_us", "completed"});
  ov_table.AddRow({"high (unloaded)", Fmt(ov.unloaded_high_p95_us), "-"});
  ov_table.AddRow({"high (overload)", Fmt(ov.high_p95_us),
                   std::to_string(ov.high_completed)});
  ov_table.AddRow({"background (overload)", Fmt(ov.background_p95_us),
                   std::to_string(ov.background_completed)});
  ov_table.Print();
  std::cout << "sheds=" << ov.sheds << " shed_retries=" << ov.shed_retries
            << " shed_rate=" << Fmt(ov.shed_rate)
            << " (asserted: loaded high p95 within 2x of unloaded; "
               "survivors byte-identical)\n";
  MAGICDB_CHECK(ov.high_p95_us <=
                2.0 * std::max(ov.unloaded_high_p95_us, 1000.0));
  Json ov_result =
      Json::Object()
          .Set("sessions_high", 2)
          .Set("sessions_background", 8)
          .Set("max_concurrent_queries", 1)
          .Set("shed_queue_depth", 4)
          .Set("unloaded_high_p95_us", ov.unloaded_high_p95_us)
          .Set("high_p95_us", ov.high_p95_us)
          .Set("background_p95_us", ov.background_p95_us)
          .Set("high_p95_vs_unloaded",
               ov.high_p95_us / std::max(ov.unloaded_high_p95_us, 1e-9))
          .Set("high_completed", ov.high_completed)
          .Set("background_completed", ov.background_completed)
          .Set("sheds", ov.sheds)
          .Set("shed_retries", ov.shed_retries)
          .Set("queries_submitted", ov.submitted)
          .Set("shed_rate", ov.shed_rate);

  if (!json_path.empty()) {
    Json doc = Json::Object()
                   .Set("benchmark", "bench_server_throughput")
                   .Set("hardware_threads",
                        static_cast<int64_t>(
                            std::thread::hardware_concurrency()))
                   .Set("sessions", g_sessions)
                   .Set("queries_per_session", g_queries_per_session)
                   .Set("pool_threads", 4)
                   .Set("results", std::move(results))
                   .Set("batch_vs_row", std::move(batch_results))
                   .Set("streaming", std::move(stream_results))
                   .Set("low_memory", std::move(lm_results))
                   .Set("overload", std::move(ov_result));
    if (WriteJsonFile(json_path, doc)) {
      std::cout << "JSON results written to " << json_path << "\n";
    }
  }
}

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  magicdb::bench::Run(magicdb::bench::JsonPathFromArgs(argc, argv), smoke);
  return 0;
}
