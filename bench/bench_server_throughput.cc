// Closed-loop throughput of the query service (src/server): N sessions,
// each on its own thread, firing a mixed statement workload back-to-back
// at one shared QueryService. Reports QPS, p50/p95/p99 query latency (from
// the service's own histogram), and the plan-cache hit rate, at per-query
// DoP 1, 2 and 4.
//
// Correctness is asserted, not assumed: every session compares each result
// against a sequential Database::Query() baseline captured before the
// service starts — any row or counter divergence aborts the bench.
//
// Throughput is hardware-bound; the header prints the detected core count.
// `--json <path>` additionally writes the table as a JSON document.

#include <atomic>
#include <chrono>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "workloads/json_writer.h"
#include "workloads/table_printer.h"
#include "workloads/workloads.h"

namespace magicdb::bench {
namespace {

constexpr int kSessions = 4;
constexpr int kQueriesPerSession = 40;

const char* kStatements[] = {
    kFigure1Query,
    kFigure1QueryYoungOnly,
    "SELECT E.did, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000",
};
constexpr int kNumStatements = 3;

std::string Fmt(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << v;
  return os.str();
}

void CheckIdentical(const QueryResult& base, const QueryResult& got) {
  MAGICDB_CHECK(got.rows.size() == base.rows.size());
  for (size_t i = 0; i < base.rows.size(); ++i) {
    MAGICDB_CHECK(CompareTuples(got.rows[i], base.rows[i]) == 0);
  }
  MAGICDB_CHECK(got.counters.pages_read == base.counters.pages_read);
  MAGICDB_CHECK(got.counters.tuples_processed ==
                base.counters.tuples_processed);
  MAGICDB_CHECK(got.counters.exprs_evaluated == base.counters.exprs_evaluated);
  MAGICDB_CHECK(got.counters.hash_operations == base.counters.hash_operations);
}

struct RunResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double hit_rate = 0.0;
  int64_t morsels_stolen = 0;
};

RunResult RunClosedLoop(Database* db, const std::vector<QueryResult>& baseline,
                        int dop) {
  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(db, so);
  std::vector<std::unique_ptr<Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.CreateSession());
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      Session* session = sessions[s].get();
      ExecOptions exec;
      exec.dop = dop;
      for (int i = 0; i < kQueriesPerSession; ++i) {
        const int qi = (s + i) % kNumStatements;
        auto r = session->Query(kStatements[qi], exec);
        MAGICDB_CHECK_OK(r.status());
        CheckIdentical(baseline[qi], *r);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ServiceStats stats = service.StatsSnapshot();
  MAGICDB_CHECK(stats.queries_completed == kSessions * kQueriesPerSession);
  RunResult out;
  out.qps = static_cast<double>(stats.queries_completed) / elapsed_s;
  out.p50_us = stats.query_latency_us_p50;
  out.p95_us = stats.query_latency_us_p95;
  out.p99_us = stats.query_latency_us_p99;
  out.hit_rate = static_cast<double>(stats.plan_cache_hits) /
                 static_cast<double>(stats.plan_cache_hits +
                                     stats.plan_cache_misses);
  out.morsels_stolen = stats.morsels_stolen;
  return out;
}

void Run(const std::string& json_path) {
  std::cout << "hardware threads detected: "
            << std::thread::hardware_concurrency() << "\n";
  std::cout << "closed loop: " << kSessions << " sessions x "
            << kQueriesPerSession << " queries, " << kNumStatements
            << " distinct statements, shared pool of 4 workers\n\n";

  Figure1Options opts;
  opts.num_depts = 500;
  opts.emps_per_dept = 20;
  opts.young_frac = 0.05;
  opts.big_frac = 0.05;
  opts.build_indexes = false;
  auto db = MakeFigure1Database(opts);
  auto* options = db->mutable_optimizer_options();
  options->enable_nested_loops = false;
  options->enable_index_nested_loops = false;
  options->enable_sort_merge = false;

  // Sequential ground truth for every statement, before the service runs.
  std::vector<QueryResult> baseline;
  for (const char* q : kStatements) {
    auto r = db->Query(q);
    MAGICDB_CHECK_OK(r.status());
    baseline.push_back(std::move(*r));
  }

  TablePrinter table({"dop", "qps", "p50_us", "p95_us", "p99_us",
                      "plan_cache_hit_rate", "morsels_stolen"});
  Json results = Json::Array();
  for (int dop : {1, 2, 4}) {
    const RunResult r = RunClosedLoop(db.get(), baseline, dop);
    table.AddRow({std::to_string(dop), Fmt(r.qps), Fmt(r.p50_us),
                  Fmt(r.p95_us), Fmt(r.p99_us), Fmt(r.hit_rate),
                  std::to_string(r.morsels_stolen)});
    results.Append(Json::Object()
                       .Set("dop", dop)
                       .Set("qps", r.qps)
                       .Set("p50_us", r.p50_us)
                       .Set("p95_us", r.p95_us)
                       .Set("p99_us", r.p99_us)
                       .Set("plan_cache_hit_rate", r.hit_rate)
                       .Set("morsels_stolen", r.morsels_stolen));
  }
  table.Print();
  std::cout << "(every result verified byte-identical to Database::Query(), "
               "counters exact)\n";

  if (!json_path.empty()) {
    Json doc = Json::Object()
                   .Set("benchmark", "bench_server_throughput")
                   .Set("hardware_threads",
                        static_cast<int64_t>(
                            std::thread::hardware_concurrency()))
                   .Set("sessions", kSessions)
                   .Set("queries_per_session", kQueriesPerSession)
                   .Set("pool_threads", 4)
                   .Set("results", std::move(results));
    if (WriteJsonFile(json_path, doc)) {
      std::cout << "JSON results written to " << json_path << "\n";
    }
  }
}

}  // namespace
}  // namespace magicdb::bench

int main(int argc, char** argv) {
  magicdb::bench::Run(magicdb::bench::JsonPathFromArgs(argc, argv));
  return 0;
}
