// Tests for order-providing access paths (ordered-index scans) and the
// stacked-view magic rewrite.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/exec/scan_ops.h"
#include "src/rewrite/magic_rewrite.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

TEST(OrderedIndexScanTest, ProducesRowsInKeyOrder) {
  Schema s({{"t", "k", DataType::kInt64}, {"t", "v", DataType::kInt64}});
  Table t("t", s);
  OrderedIndex* index = t.CreateOrderedIndex({0});
  Random rng(44);
  for (int i = 0; i < 100; ++i) {
    MAGICDB_CHECK_OK(t.Insert(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(1000))),
         Value::Int64(i)}));
  }
  ExecContext ctx;
  OrderedIndexScanOp scan(&t, index, "x");
  auto rows = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 100u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE((*rows)[i - 1][0].AsInt64(), (*rows)[i][0].AsInt64());
  }
  EXPECT_EQ(scan.schema().column(0).qualifier, "x");
  // Charged: tree height + table pages.
  EXPECT_GE(ctx.counters().pages_read, t.NumPages());
}

TEST(OrderedIndexScanTest, SameMultisetAsSeqScan) {
  Schema s({{"t", "k", DataType::kInt64}});
  Table t("t", s);
  OrderedIndex* index = t.CreateOrderedIndex({0});
  for (int i = 9; i >= 0; --i) {
    MAGICDB_CHECK_OK(t.Insert({Value::Int64(i % 4)}));
  }
  ExecContext ctx;
  OrderedIndexScanOp ordered(&t, index);
  SeqScanOp seq(&t);
  auto a = ExecuteToVector(&ordered, &ctx);
  auto b = ExecuteToVector(&seq, &ctx);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(SameMultiset(*a, *b));
}

TEST(OrderedAccessPathTest, OptimizerUsesOrderedScanForSortMergeChain) {
  // With only sort-merge joins available and ordered indexes on the join
  // keys, the DP should seed ordered scans and skip redundant sorts.
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE A (k INT, p INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE B (k INT, q INT)"));
  Random rng(45);
  std::vector<Tuple> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(50))),
                 Value::Int64(i)});
    b.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(50))),
                 Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("A", std::move(a)));
  MAGICDB_CHECK_OK(db.LoadRows("B", std::move(b)));
  (*db.catalog()->Lookup("A"))->table->CreateOrderedIndex({0});
  (*db.catalog()->Lookup("B"))->table->CreateOrderedIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());

  OptimizerOptions opts;
  opts.enable_hash_join = false;
  opts.enable_index_nested_loops = false;
  opts.enable_nested_loops = false;
  opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  opts.filter_join_on_stored = false;
  *db.mutable_optimizer_options() = opts;
  const char* query = "SELECT A.p, B.q FROM A, B WHERE A.k = B.k";
  auto smj = db.Query(query);
  ASSERT_TRUE(smj.ok()) << smj.status().ToString();
  EXPECT_NE(smj->explain.find("outer presorted"), std::string::npos)
      << smj->explain;
  EXPECT_NE(smj->explain.find("OrderedIndexScan"), std::string::npos)
      << smj->explain;

  // Results agree with the unrestricted optimizer.
  *db.mutable_optimizer_options() = OptimizerOptions();
  auto free_choice = db.Query(query);
  ASSERT_TRUE(free_choice.ok());
  EXPECT_TRUE(SameMultiset(smj->rows, free_choice->rows));
}

TEST(OrderedAccessPathTest, DisabledWithoutInterestingOrders) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE A (k INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE B (k INT)"));
  std::vector<Tuple> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({Value::Int64(i % 5)});
  MAGICDB_CHECK_OK(db.LoadRows("A", rows));
  MAGICDB_CHECK_OK(db.LoadRows("B", std::move(rows)));
  (*db.catalog()->Lookup("A"))->table->CreateOrderedIndex({0});
  db.mutable_optimizer_options()->interesting_orders = false;
  auto result = db.Query("SELECT A.k FROM A, B WHERE A.k = B.k");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->explain.find("OrderedIndexScan"), std::string::npos);
}

TEST(StackedViewRewriteTest, RestrictionPushesThroughTwoViewLevels) {
  // YoungEmp is a view over Emp; DepAvgYoung aggregates over YoungEmp.
  // The rewrite must reach the base scan through both views.
  Database db;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  Random rng(46);
  std::vector<Tuple> emps;
  for (int d = 0; d < 40; ++d) {
    for (int e = 0; e < 5; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(40000 + rng.NextDouble() * 60000),
                      Value::Int64(20 + static_cast<int64_t>(rng.Uniform(30)))});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW YoungEmp AS SELECT did, sal FROM Emp WHERE age < 30"));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepAvgYoung AS SELECT did, AVG(sal) AS a FROM YoungEmp "
      "GROUP BY did"));

  const CatalogEntry* outer_view = *db.catalog()->Lookup("DepAvgYoung");
  auto rewritten = MagicRewrite(outer_view->view_plan, {0}, "sv1",
                                RewriteStyle::kProbe, db.catalog());
  ASSERT_TRUE(rewritten.ok());
  // Without catalog expansion the probe would anchor at depth 2 (above the
  // YoungEmp scan); with expansion it reaches below the inner view's
  // Project/Filter, i.e. deeper.
  auto unexpanded = MagicRewrite(outer_view->view_plan, {0}, "sv2",
                                 RewriteStyle::kProbe, nullptr);
  ASSERT_TRUE(unexpanded.ok());
  EXPECT_GT(ProbeDepth(*rewritten), ProbeDepth(*unexpanded));
}

TEST(StackedViewRewriteTest, StackedViewQueryCorrectUnderAllModes) {
  Database db;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(47);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < 60; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.15) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 5; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(40000 + rng.NextDouble() * 60000),
                      Value::Int64(20 + static_cast<int64_t>(rng.Uniform(30)))});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW YoungEmp AS SELECT did, sal FROM Emp WHERE age < 30"));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepAvgYoung AS SELECT did, AVG(sal) AS a FROM YoungEmp "
      "GROUP BY did"));

  const char* query =
      "SELECT D.did, V.a FROM Dept D, DepAvgYoung V "
      "WHERE D.did = V.did AND D.budget > 100000";
  auto magic = db.Query(query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(magic->rows, plain->rows));
}

}  // namespace
}  // namespace magicdb
