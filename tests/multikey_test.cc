// Multi-attribute join keys (§2.1): when a join has several attributes the
// filter set may use all of them or only a subset ("lossy by omission").
// These tests check correctness of multi-key magic and the partial-key
// SIPS option.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/scan_ops.h"
#include "src/rewrite/magic_rewrite.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

/// Orders(region, product, qty) and a view aggregating by (region,
/// product); the query joins on both attributes.
class MultiKeyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MAGICDB_CHECK_OK(db_.Execute(
        "CREATE TABLE Orders (region INT, product INT, qty INT)"));
    MAGICDB_CHECK_OK(db_.Execute(
        "CREATE TABLE Promo (region INT, product INT, discount DOUBLE)"));
    Random rng(31);
    std::vector<Tuple> orders, promos;
    for (int i = 0; i < 2000; ++i) {
      orders.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(20))),
                        Value::Int64(static_cast<int64_t>(rng.Uniform(30))),
                        Value::Int64(1 + static_cast<int64_t>(rng.Uniform(9)))});
    }
    for (int r = 0; r < 20; ++r) {
      for (int p = 0; p < 30; ++p) {
        if (rng.Bernoulli(0.1)) {  // 10% of (region, product) pairs promoted
          promos.push_back({Value::Int64(r), Value::Int64(p),
                            Value::Double(rng.NextDouble() * 0.5)});
        }
      }
    }
    MAGICDB_CHECK_OK(db_.LoadRows("Orders", std::move(orders)));
    MAGICDB_CHECK_OK(db_.LoadRows("Promo", std::move(promos)));
    MAGICDB_CHECK_OK(db_.catalog()->AnalyzeAll());
    MAGICDB_CHECK_OK(db_.Execute(
        "CREATE VIEW SalesByRP AS SELECT region, product, SUM(qty) AS "
        "total FROM Orders GROUP BY region, product"));
  }

  static constexpr const char* kQuery =
      "SELECT P.region, P.product, V.total "
      "FROM Promo P, SalesByRP V "
      "WHERE P.region = V.region AND P.product = V.product "
      "AND P.discount > 0.25";

  Database db_;
};

TEST_F(MultiKeyFixture, MultiKeyMagicMatchesBaseline) {
  auto magic = db_.Query(kQuery);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db_.Query(kQuery);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(magic->rows, plain->rows));
}

TEST_F(MultiKeyFixture, ForcedMultiKeyFilterJoinIsCorrect) {
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  auto forced = db_.Query(kQuery);
  ASSERT_TRUE(forced.ok()) << forced.status().ToString();
  ASSERT_FALSE(forced->filter_joins.empty());
  // Default Limitation 3: every join attribute contributes.
  EXPECT_EQ(forced->filter_joins[0].filter_key_count, 2);

  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db_.Query(kQuery);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(forced->rows, plain->rows));
}

TEST_F(MultiKeyFixture, PartialKeyOptionKeepsResults) {
  db_.mutable_optimizer_options()->consider_partial_key_filter_sets = true;
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  auto partial = db_.Query(kQuery);
  ASSERT_TRUE(partial.ok()) << partial.status().ToString();

  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db_.Query(kQuery);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(partial->rows, plain->rows));
}

TEST_F(MultiKeyFixture, PartialKeyOptionCostsMoreVariants) {
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  auto all_keys = db_.Query(kQuery);
  ASSERT_TRUE(all_keys.ok());

  db_.mutable_optimizer_options()->consider_partial_key_filter_sets = true;
  auto with_partial = db_.Query(kQuery);
  ASSERT_TRUE(with_partial.ok());
  EXPECT_GT(with_partial->optimizer_stats.filter_joins_costed,
            all_keys->optimizer_stats.filter_joins_costed);
  // The chosen plan can only improve (or stay equal) in estimated cost.
  EXPECT_LE(with_partial->est_cost, all_keys->est_cost * 1.0001);
}

TEST(MultiKeyRewriteTest, TwoKeyPushBelowAggregate) {
  Schema base({{"O", "region", DataType::kInt64},
               {"O", "product", DataType::kInt64},
               {"O", "qty", DataType::kInt64}});
  auto scan = std::make_shared<RelScanNode>("Orders", "O", base);
  std::vector<ExprPtr> groups = {
      MakeColumnRef(0, DataType::kInt64, "O.region"),
      MakeColumnRef(1, DataType::kInt64, "O.product")};
  std::vector<AggSpec> aggs = {
      {AggFunc::kSum, MakeColumnRef(2, DataType::kInt64, "O.qty"), "total"}};
  Schema out({{"", "region", DataType::kInt64},
              {"", "product", DataType::kInt64},
              {"", "total", DataType::kInt64}});
  auto view = std::make_shared<AggregateNode>(scan, groups, aggs, out);

  // Both keys are group-by columns: pushable below the aggregate.
  auto both = MagicRewrite(view, {0, 1}, "mk1", RewriteStyle::kProbe);
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(ProbeDepth(*both), 1);

  // A single key is still pushable (partial SIPS).
  auto single = MagicRewrite(view, {1}, "mk2", RewriteStyle::kProbe);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(ProbeDepth(*single), 1);
  const auto* probe = static_cast<const FilterSetProbeNode*>(
      (*single)->children()[0].get());
  EXPECT_EQ(probe->key_columns(), (std::vector<int>{1}));

  // Keys including the aggregate output stay above it.
  auto agg_key = MagicRewrite(view, {0, 2}, "mk3", RewriteStyle::kProbe);
  ASSERT_TRUE(agg_key.ok());
  EXPECT_EQ(ProbeDepth(*agg_key), 0);
}

TEST(MultiKeyExecTest, PartialFilterKeysAreLossyButJoinIsExact) {
  // Operator-level check: FilterJoinOp with a single-attribute filter over
  // a two-attribute join returns exactly the two-attribute join result.
  Schema rs({{"r", "a", DataType::kInt64}, {"r", "b", DataType::kInt64}});
  Schema ss({{"s", "a", DataType::kInt64},
             {"s", "b", DataType::kInt64},
             {"s", "y", DataType::kInt64}});
  Table r("r", rs), s("s", ss);
  Random rng(33);
  for (int i = 0; i < 50; ++i) {
    MAGICDB_CHECK_OK(r.Insert({Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                               Value::Int64(static_cast<int64_t>(rng.Uniform(5)))}));
    MAGICDB_CHECK_OK(
        s.Insert({Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                  Value::Int64(static_cast<int64_t>(rng.Uniform(5))),
                  Value::Int64(i)}));
  }
  std::vector<Tuple> expected;
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    for (int64_t j = 0; j < s.NumRows(); ++j) {
      if (r.row(i)[0] == s.row(j)[0] && r.row(i)[1] == s.row(j)[1]) {
        expected.push_back(ConcatTuples(r.row(i), s.row(j)));
      }
    }
  }
  ExecContext ctx;
  const std::string id = "mk_exec";
  // Filter only on attribute a (position 0 of the key list).
  auto inner = std::make_unique<FilterProbeOp>(std::make_unique<SeqScanOp>(&s),
                                               id, std::vector<int>{0});
  FilterJoinOp join(std::make_unique<SeqScanOp>(&r), std::move(inner), id,
                    {0, 1}, {0, 1}, nullptr, FilterSetImpl::kExact, 0, 10.0,
                    /*filter_key_positions=*/{0});
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(SameMultiset(*rows, expected));
}

}  // namespace
}  // namespace magicdb
