#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/exec/aggregate_op.h"
#include "src/exec/basic_ops.h"
#include "src/exec/scan_ops.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

Schema TestSchema() {
  return Schema({{"t", "a", DataType::kInt64},
                 {"t", "b", DataType::kInt64},
                 {"t", "s", DataType::kString}});
}

std::unique_ptr<Table> MakeTable(int n, int b_mod = 3) {
  auto t = std::make_unique<Table>("t", TestSchema());
  for (int i = 0; i < n; ++i) {
    MAGICDB_CHECK_OK(t->Insert({Value::Int64(i), Value::Int64(i % b_mod),
                                Value::String("s" + std::to_string(i % 2))}));
  }
  return t;
}

TEST(SeqScanTest, ProducesAllRowsAndChargesPages) {
  auto t = MakeTable(5);
  ExecContext ctx;
  SeqScanOp scan(t.get());
  auto rows = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(ctx.counters().pages_read, 1);
  EXPECT_EQ(ctx.counters().tuples_processed, 5);
}

TEST(SeqScanTest, EmptyTableNoCharge) {
  Table t("t", TestSchema());
  ExecContext ctx;
  SeqScanOp scan(&t);
  auto rows = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(ctx.counters().pages_read, 0);
}

TEST(SeqScanTest, PageChargesMatchTableNumPages) {
  auto t = MakeTable(500);
  ExecContext ctx;
  SeqScanOp scan(t.get());
  ASSERT_TRUE(ExecuteToVector(&scan, &ctx).ok());
  EXPECT_EQ(ctx.counters().pages_read, t->NumPages());
}

TEST(SeqScanTest, AliasRequalifiesSchema) {
  auto t = MakeTable(1);
  SeqScanOp scan(t.get(), "X");
  EXPECT_EQ(scan.schema().column(0).qualifier, "X");
}

TEST(SeqScanTest, ReopenRescans) {
  auto t = MakeTable(4);
  ExecContext ctx;
  SeqScanOp scan(t.get());
  ASSERT_TRUE(ExecuteToVector(&scan, &ctx).ok());
  auto again = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 4u);
  EXPECT_EQ(ctx.counters().pages_read, 2);  // two full scans
}

TEST(VectorScanTest, ScansWithoutOwnership) {
  std::vector<Tuple> rows = {{Value::Int64(1)}, {Value::Int64(2)}};
  Schema s({{"v", "x", DataType::kInt64}});
  ExecContext ctx;
  VectorScanOp scan(&rows, s);
  auto out = ExecuteToVector(&scan, &ctx);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(FilterOpTest, FiltersByPredicate) {
  auto t = MakeTable(10);
  ExecContext ctx;
  auto pred = MakeComparison(CompareOp::kLt,
                             MakeColumnRef(0, DataType::kInt64),
                             MakeLiteral(Value::Int64(4)));
  FilterOp op(std::make_unique<SeqScanOp>(t.get()), pred);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);
  EXPECT_EQ(ctx.counters().exprs_evaluated, 10);
}

TEST(FilterOpTest, NullPredicateResultDropsTuple) {
  Table t("t", Schema({{"t", "a", DataType::kInt64}}));
  MAGICDB_CHECK_OK(t.Insert({Value::Null()}));
  MAGICDB_CHECK_OK(t.Insert({Value::Int64(1)}));
  ExecContext ctx;
  auto pred = MakeComparison(CompareOp::kEq,
                             MakeColumnRef(0, DataType::kInt64),
                             MakeLiteral(Value::Int64(1)));
  FilterOp op(std::make_unique<SeqScanOp>(&t), pred);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(ProjectOpTest, ComputesExpressions) {
  auto t = MakeTable(3);
  ExecContext ctx;
  std::vector<ExprPtr> exprs = {
      MakeArithmetic(ArithOp::kAdd, MakeColumnRef(0, DataType::kInt64),
                     MakeColumnRef(1, DataType::kInt64))};
  Schema out_schema({{"", "sum", DataType::kInt64}});
  ProjectOp op(std::make_unique<SeqScanOp>(t.get()), exprs, out_schema);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[2][0], Value::Int64(2 + 2 % 3));
}

TEST(DistinctOpTest, RemovesDuplicates) {
  auto t = MakeTable(10);
  ExecContext ctx;
  std::vector<ExprPtr> exprs = {MakeColumnRef(1, DataType::kInt64)};
  Schema s({{"", "b", DataType::kInt64}});
  auto proj = std::make_unique<ProjectOp>(std::make_unique<SeqScanOp>(t.get()),
                                          exprs, s);
  DistinctOp op(std::move(proj));
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // b = i % 3
}

TEST(DistinctOpTest, DistinctOnNullsCollapsesThem) {
  Table t("t", Schema({{"t", "a", DataType::kInt64}}));
  MAGICDB_CHECK_OK(t.Insert({Value::Null()}));
  MAGICDB_CHECK_OK(t.Insert({Value::Null()}));
  ExecContext ctx;
  DistinctOp op(std::make_unique<SeqScanOp>(&t));
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(SortOpTest, SortsAscendingAndDescending) {
  auto t = MakeTable(5);
  ExecContext ctx;
  std::vector<SortOp::SortKey> keys = {
      {MakeColumnRef(0, DataType::kInt64), /*ascending=*/false}};
  SortOp op(std::make_unique<SeqScanOp>(t.get()), keys);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0][0], Value::Int64(4));
  EXPECT_EQ((*rows)[4][0], Value::Int64(0));
}

TEST(SortOpTest, MultiKeySort) {
  auto t = MakeTable(6);
  ExecContext ctx;
  std::vector<SortOp::SortKey> keys = {
      {MakeColumnRef(1, DataType::kInt64), true},
      {MakeColumnRef(0, DataType::kInt64), false}};
  SortOp op(std::make_unique<SeqScanOp>(t.get()), keys);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  // b groups 0,0,1,1,2,2 (i%3: rows 0,3 | 1,4 | 2,5); within group a desc.
  EXPECT_EQ((*rows)[0][0], Value::Int64(3));
  EXPECT_EQ((*rows)[1][0], Value::Int64(0));
}

TEST(SortOpTest, ExternalPassChargedWhenOverBudget) {
  auto t = MakeTable(2000);
  ExecContext ctx;
  ctx.set_memory_budget_bytes(1024);  // force external pass
  std::vector<SortOp::SortKey> keys = {{MakeColumnRef(0, DataType::kInt64),
                                        true}};
  SortOp op(std::make_unique<SeqScanOp>(t.get()), keys);
  ASSERT_TRUE(ExecuteToVector(&op, &ctx).ok());
  EXPECT_GT(ctx.counters().pages_written, 0);
}

TEST(MaterializeOpTest, SpoolsOnceReplaysManyTimes) {
  auto t = MakeTable(4);
  ExecContext ctx;
  MaterializeOp op(std::make_unique<SeqScanOp>(t.get()));
  ASSERT_TRUE(ExecuteToVector(&op, &ctx).ok());
  const int64_t writes_after_first = ctx.counters().pages_written;
  EXPECT_GT(writes_after_first, 0);
  auto again = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 4u);
  // No extra writes, only reads, and no rescan of the base table.
  EXPECT_EQ(ctx.counters().pages_written, writes_after_first);
  EXPECT_EQ(ctx.counters().pages_read, 3);  // 1 base scan + 2 spool reads
}

TEST(LimitOpTest, CutsOffOutput) {
  auto t = MakeTable(10);
  ExecContext ctx;
  LimitOp op(std::make_unique<SeqScanOp>(t.get()), 3);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

TEST(HashAggregateTest, GroupByWithAverage) {
  auto t = MakeTable(9);  // b = i % 3, three groups of 3
  ExecContext ctx;
  std::vector<ExprPtr> groups = {MakeColumnRef(1, DataType::kInt64, "b")};
  std::vector<AggSpec> aggs = {
      {AggFunc::kAvg, MakeColumnRef(0, DataType::kInt64, "a"), "avg_a"},
      {AggFunc::kCountStar, nullptr, "cnt"}};
  Schema out({{"", "b", DataType::kInt64},
              {"", "avg_a", DataType::kDouble},
              {"", "cnt", DataType::kInt64}});
  HashAggregateOp op(std::make_unique<SeqScanOp>(t.get()), groups, aggs, out);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 3u);
  // Group b=0 holds a in {0,3,6} -> avg 3.
  for (const Tuple& r : *rows) {
    if (r[0] == Value::Int64(0)) {
      EXPECT_DOUBLE_EQ(r[1].AsDouble(), 3.0);
      EXPECT_EQ(r[2], Value::Int64(3));
    }
  }
}

TEST(HashAggregateTest, MinMaxSumCount) {
  auto t = MakeTable(5);
  ExecContext ctx;
  std::vector<AggSpec> aggs = {
      {AggFunc::kMin, MakeColumnRef(0, DataType::kInt64), "mn"},
      {AggFunc::kMax, MakeColumnRef(0, DataType::kInt64), "mx"},
      {AggFunc::kSum, MakeColumnRef(0, DataType::kInt64), "sm"},
      {AggFunc::kCount, MakeColumnRef(0, DataType::kInt64), "ct"}};
  Schema out({{"", "mn", DataType::kInt64},
              {"", "mx", DataType::kInt64},
              {"", "sm", DataType::kInt64},
              {"", "ct", DataType::kInt64}});
  HashAggregateOp op(std::make_unique<SeqScanOp>(t.get()), {}, aggs, out);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Int64(0));
  EXPECT_EQ((*rows)[0][1], Value::Int64(4));
  EXPECT_EQ((*rows)[0][2], Value::Int64(10));
  EXPECT_EQ((*rows)[0][3], Value::Int64(5));
}

TEST(HashAggregateTest, EmptyInputScalarAggregate) {
  Table t("t", TestSchema());
  ExecContext ctx;
  std::vector<AggSpec> aggs = {
      {AggFunc::kCountStar, nullptr, "cnt"},
      {AggFunc::kSum, MakeColumnRef(0, DataType::kInt64), "sm"}};
  Schema out({{"", "cnt", DataType::kInt64}, {"", "sm", DataType::kInt64}});
  HashAggregateOp op(std::make_unique<SeqScanOp>(&t), {}, aggs, out);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], Value::Int64(0));
  EXPECT_TRUE((*rows)[0][1].is_null());  // SUM over empty is NULL
}

TEST(HashAggregateTest, EmptyInputGroupedAggregateIsEmpty) {
  Table t("t", TestSchema());
  ExecContext ctx;
  std::vector<ExprPtr> groups = {MakeColumnRef(1, DataType::kInt64)};
  std::vector<AggSpec> aggs = {{AggFunc::kCountStar, nullptr, "cnt"}};
  Schema out({{"", "b", DataType::kInt64}, {"", "cnt", DataType::kInt64}});
  HashAggregateOp op(std::make_unique<SeqScanOp>(&t), groups, aggs, out);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(HashAggregateTest, AggregatesSkipNulls) {
  Table t("t", Schema({{"t", "a", DataType::kInt64}}));
  MAGICDB_CHECK_OK(t.Insert({Value::Int64(2)}));
  MAGICDB_CHECK_OK(t.Insert({Value::Null()}));
  MAGICDB_CHECK_OK(t.Insert({Value::Int64(4)}));
  ExecContext ctx;
  std::vector<AggSpec> aggs = {
      {AggFunc::kAvg, MakeColumnRef(0, DataType::kInt64), "av"},
      {AggFunc::kCount, MakeColumnRef(0, DataType::kInt64), "ct"},
      {AggFunc::kCountStar, nullptr, "cs"}};
  Schema out({{"", "av", DataType::kDouble},
              {"", "ct", DataType::kInt64},
              {"", "cs", DataType::kInt64}});
  HashAggregateOp op(std::make_unique<SeqScanOp>(&t), {}, aggs, out);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_DOUBLE_EQ((*rows)[0][0].AsDouble(), 3.0);
  EXPECT_EQ((*rows)[0][1], Value::Int64(2));
  EXPECT_EQ((*rows)[0][2], Value::Int64(3));
}

}  // namespace
}  // namespace magicdb
