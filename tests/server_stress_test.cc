// Multi-threaded stress tests for the query service: N concurrent sessions
// firing mixed sequential/parallel queries at one shared pool, asserting
// every result byte-identical to a sequential Database::Query() baseline
// with exactly equal cost counters; plus deadline enforcement on a
// deliberately slow query while its neighbors run to completion, and DDL
// racing queries.

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

bool RowsIdentical(const std::vector<Tuple>& a, const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareTuples(a[i], b[i]) != 0) return false;
  }
  return true;
}

void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(41);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 150; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 6; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

const char* kQueries[] = {
    "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000",
    "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND D.did = V.did AND D.budget > 100000 "
    "AND E.sal > V.avgcomp",
    "SELECT E.eid, B.amount FROM Emp E, Bonus B "
    "WHERE E.eid = B.eid AND E.age < 30",
    "SELECT D.did, D.budget FROM Dept D WHERE D.budget > 100000",
};
constexpr int kNumQueries = 4;

TEST(ServerStressTest, ConcurrentSessionsMatchSequentialBaseline) {
  Database db;
  MakeWorkload(&db);

  // Sequential ground truth, computed before the service exists.
  std::vector<QueryResult> baselines;
  for (const char* q : kQueries) {
    auto r = db.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    baselines.push_back(std::move(*r));
  }
  ASSERT_FALSE(baselines[0].rows.empty());
  ASSERT_FALSE(baselines[1].rows.empty());

  QueryServiceOptions so;
  so.pool_threads = 4;
  so.max_concurrent_queries = 6;
  QueryService service(&db, so);

  constexpr int kSessions = 6;
  constexpr int kRounds = 12;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.CreateSession());
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      Session* session = sessions[s].get();
      for (int round = 0; round < kRounds; ++round) {
        const int qi = (s + round) % kNumQueries;
        ExecOptions exec;
        // Mix sequential and gang-parallel executions on the shared pool.
        exec.dop = (s + round) % 3 == 0 ? 2 : 1;
        auto r = session->Query(kQueries[qi], exec);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!RowsIdentical(r->rows, baselines[qi].rows)) {
          mismatches.fetch_add(1);
          continue;
        }
        const CostCounters& a = r->counters;
        const CostCounters& b = baselines[qi].counters;
        if (a.pages_read != b.pages_read ||
            a.tuples_processed != b.tuples_processed ||
            a.exprs_evaluated != b.exprs_evaluated ||
            a.hash_operations != b.hash_operations ||
            a.function_invocations != b.function_invocations) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.queries_submitted, kSessions * kRounds);
  EXPECT_EQ(stats.queries_completed, kSessions * kRounds);
  EXPECT_EQ(stats.queries_failed, 0);
  // 4 distinct statements, every session shares one options fingerprint.
  // Concurrent first executions of the same statement can race to plan it
  // (both miss, the cache keeps one result), so the miss count is bounded,
  // not exact: at least one per statement, at most one per statement per
  // session; every remaining execution must hit.
  EXPECT_GE(stats.plan_cache_misses, kNumQueries);
  EXPECT_LE(stats.plan_cache_misses, kNumQueries * kSessions);
  EXPECT_EQ(stats.plan_cache_hits + stats.plan_cache_misses,
            kSessions * kRounds);
}

TEST(ServerStressTest, SlowQueryHitsDeadlineWhileNeighborsComplete) {
  Database db;
  MakeWorkload(&db);
  // A join that fans out ~100x per probe row: Big1 x Big2 on a key with 30
  // distinct values over 3000/3000 rows -> ~300k output rows, comfortably
  // slower than the deadline below at any machine speed we run on.
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Big1 (k INT, v INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Big2 (k INT, w INT)"));
  std::vector<Tuple> b1, b2;
  for (int i = 0; i < 3000; ++i) {
    b1.push_back({Value::Int64(i % 30), Value::Int64(i)});
    b2.push_back({Value::Int64(i % 30), Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("Big1", std::move(b1)));
  MAGICDB_CHECK_OK(db.LoadRows("Big2", std::move(b2)));
  const char* slow_query =
      "SELECT A.v, B.w FROM Big1 A, Big2 B WHERE A.k = B.k";
  const char* fast_query =
      "SELECT D.did, D.budget FROM Dept D WHERE D.budget > 100000";
  auto fast_baseline = db.Query(fast_query);
  ASSERT_TRUE(fast_baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> slow_session = service.CreateSession();
  std::unique_ptr<Session> fast_session = service.CreateSession();

  std::atomic<int> fast_failures{0};
  std::atomic<bool> stop{false};
  std::thread neighbor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = fast_session->Query(fast_query);
      if (!r.ok() || !RowsIdentical(r->rows, fast_baseline->rows)) {
        fast_failures.fetch_add(1);
      }
    }
  });

  for (int i = 0; i < 3; ++i) {
    ExecOptions exec;
    exec.timeout = std::chrono::microseconds(2000);
    auto r = slow_session->Query(slow_query, exec);
    ASSERT_FALSE(r.ok()) << "slow query finished under its deadline";
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
        << r.status().ToString();
  }
  // Cancellation from another thread, mid-execution.
  {
    ExecOptions exec;
    exec.cancel_token = std::make_shared<CancelToken>();
    std::thread canceller([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      exec.cancel_token->Cancel();
    });
    auto r = slow_session->Query(slow_query, exec);
    canceller.join();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kCancelled)
        << r.status().ToString();
  }
  stop.store(true);
  neighbor.join();
  EXPECT_EQ(fast_failures.load(), 0);

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.deadlines_exceeded, 3);
  EXPECT_EQ(stats.queries_cancelled, 1);

  // The pool is healthy afterwards: the slow query without a deadline
  // completes and matches a direct execution.
  auto full = slow_session->Query(slow_query);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto direct = db.Query(slow_query);
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(RowsIdentical(full->rows, direct->rows));
  ExpectCountersEqual(full->counters, direct->counters);
}

TEST(ServerStressTest, ConcurrentCursorsStreamIdenticalResults) {
  Database db;
  MakeWorkload(&db);
  std::vector<QueryResult> baselines;
  for (const char* q : kQueries) {
    auto r = db.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    baselines.push_back(std::move(*r));
  }

  QueryServiceOptions so;
  so.pool_threads = 4;
  so.max_concurrent_queries = 6;
  so.scheduler_quantum_rows = 32;  // many quanta per query
  so.stream_queue_rows = 64;       // tight queues: backpressure engages
  QueryService service(&db, so);

  constexpr int kSessions = 6;
  constexpr int kRounds = 10;
  std::vector<std::unique_ptr<Session>> sessions;
  for (int s = 0; s < kSessions; ++s) {
    sessions.push_back(service.CreateSession());
  }

  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      Session* session = sessions[s].get();
      for (int round = 0; round < kRounds; ++round) {
        const int qi = (s + round) % kNumQueries;
        ExecOptions exec;
        exec.dop = (s + round) % 3 == 0 ? 2 : 1;
        auto cursor = session->Open(kQueries[qi], exec);
        if (!cursor.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (round % 5 == 4) {
          // Every fifth round: abandon mid-stream. The destructor must
          // cancel + drain + release without disturbing the neighbors.
          auto b = cursor->Fetch(3);
          if (!b.ok()) failures.fetch_add(1);
          continue;
        }
        std::vector<Tuple> rows;
        bool ok = true;
        while (true) {
          auto batch = cursor->Fetch(1 + (s + round) % 17);
          if (!batch.ok()) {
            failures.fetch_add(1);
            ok = false;
            break;
          }
          if (batch->empty()) break;
          for (Tuple& t : *batch) rows.push_back(std::move(t));
        }
        if (ok && !RowsIdentical(rows, baselines[qi].rows)) {
          mismatches.fetch_add(1);
        }
        if (!cursor->Close().ok() && ok) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.open_cursors, 0);
  EXPECT_EQ(stats.cursors_opened, kSessions * kRounds);
  EXPECT_GT(stats.rows_streamed, 0);
}

TEST(ServerStressTest, DdlRacingQueriesStaysConsistent) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  const char* query =
      "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
      "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";
  auto baseline = db.Query(query);
  ASSERT_TRUE(baseline.ok());

  std::atomic<int> bad{0};
  std::thread querier([&] {
    for (int i = 0; i < 40; ++i) {
      auto r = session->Query(query);
      if (!r.ok() || !RowsIdentical(r->rows, baseline->rows)) {
        bad.fetch_add(1);
      }
    }
  });
  // DDL storms in parallel; the epoch moves, cached plans die, results
  // must never change (the new tables/views are unrelated).
  for (int i = 0; i < 10; ++i) {
    MAGICDB_CHECK_OK(service.Execute("CREATE TABLE Junk" + std::to_string(i) +
                                     " (x INT)"));
  }
  querier.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_GE(service.StatsSnapshot().ddl_epoch, 10);
}

}  // namespace
}  // namespace magicdb
