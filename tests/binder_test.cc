// Binder edge cases: aggregate expressions, grouping rules, name
// resolution, and IN/BETWEEN desugaring end to end.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/db/database.h"

namespace magicdb {
namespace {

class BinderFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MAGICDB_CHECK_OK(db_.Execute("CREATE TABLE t (g INT, v INT, w DOUBLE)"));
    std::vector<Tuple> rows;
    for (int i = 0; i < 12; ++i) {
      rows.push_back({Value::Int64(i % 3), Value::Int64(i),
                      Value::Double(i * 0.5)});
    }
    MAGICDB_CHECK_OK(db_.LoadRows("t", std::move(rows)));
  }

  Database db_;
};

TEST_F(BinderFixture, ArithmeticOverAggregates) {
  auto result = db_.Query(
      "SELECT g, SUM(v) + COUNT(*) AS sc, SUM(v) / COUNT(*) AS avg_v "
      "FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  // Group 0: v in {0,3,6,9}: sum 18, count 4.
  EXPECT_EQ(result->rows[0][1], Value::Int64(22));
  EXPECT_DOUBLE_EQ(result->rows[0][2].AsDouble(), 4.5);
}

TEST_F(BinderFixture, SameAggregateReusedOnce) {
  // SUM(v) appears three times; the aggregate is computed once and the
  // plan still evaluates correctly.
  auto result = db_.Query(
      "SELECT SUM(v), SUM(v) + 1, SUM(v) * 2 FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(66));
  EXPECT_EQ(result->rows[0][1], Value::Int64(67));
  EXPECT_EQ(result->rows[0][2], Value::Int64(132));
}

TEST_F(BinderFixture, CountOfExpression) {
  auto result = db_.Query("SELECT COUNT(v + 1) FROM t");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0], Value::Int64(12));
}

TEST_F(BinderFixture, AggregateOfArithmetic) {
  auto result = db_.Query("SELECT g, MAX(v * 2) FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Group 2: v in {2,5,8,11} -> max(v*2) = 22.
  EXPECT_EQ(result->rows[2][1], Value::Int64(22));
}

TEST_F(BinderFixture, HavingReusesSelectAggregate) {
  auto result = db_.Query(
      "SELECT g, SUM(v) AS s FROM t GROUP BY g HAVING SUM(v) > 20 "
      "ORDER BY s DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 2u);  // sums are 18, 22, 26
  EXPECT_EQ(result->rows[0][1], Value::Int64(26));
}

TEST_F(BinderFixture, HavingWithNewAggregate) {
  auto result = db_.Query(
      "SELECT g FROM t GROUP BY g HAVING MIN(v) < 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);  // only group 0 has min 0
}

TEST_F(BinderFixture, GroupByExpression) {
  // Division is double-typed, so v / 6 yields one group per v; use an
  // integer expression with three distinct values instead.
  auto result = db_.Query(
      "SELECT g + 1 AS g1, COUNT(*) FROM t GROUP BY g + 1 ORDER BY g1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(1));
  EXPECT_EQ(result->rows[0][1], Value::Int64(4));
}

TEST_F(BinderFixture, InListExecutesCorrectly) {
  auto result = db_.Query("SELECT v FROM t WHERE v IN (1, 5, 9, 42)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(BinderFixture, BetweenExecutesCorrectly) {
  auto result = db_.Query("SELECT v FROM t WHERE v BETWEEN 3 AND 6");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 4u);
}

TEST_F(BinderFixture, OrderByAliasOfComputedColumn) {
  auto result =
      db_.Query("SELECT v * -1 AS neg FROM t ORDER BY neg LIMIT 1");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows[0][0], Value::Int64(-11));
}

TEST_F(BinderFixture, MixedCaseKeywordsAndWhitespace) {
  auto result = db_.Query(
      "select   G, count( * )\n from T_WRONG, t where g = 0 group by g");
  EXPECT_FALSE(result.ok());  // unknown table T_WRONG
  result = db_.Query("select g, count(*) from t group by g");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(BinderFixture, ErrorMessagesNameTheProblem) {
  auto missing = db_.Query("SELECT nope FROM t");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("nope"), std::string::npos);

  auto ungrouped = db_.Query("SELECT v, SUM(w) FROM t GROUP BY g");
  ASSERT_FALSE(ungrouped.ok());
  EXPECT_EQ(ungrouped.status().code(), StatusCode::kBindError);

  auto agg_in_where = db_.Query("SELECT g FROM t WHERE SUM(v) > 1");
  ASSERT_FALSE(agg_in_where.ok());
  EXPECT_EQ(agg_in_where.status().code(), StatusCode::kBindError);

  auto agg_in_group = db_.Query("SELECT g FROM t GROUP BY SUM(v)");
  EXPECT_FALSE(agg_in_group.ok());
}

TEST_F(BinderFixture, StarWithGroupByRejected) {
  EXPECT_FALSE(db_.Query("SELECT * FROM t GROUP BY g").ok());
}

TEST_F(BinderFixture, DoubleAndIntComparison) {
  auto result = db_.Query("SELECT v FROM t WHERE w = 2");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);  // w = 2.0 at v = 4
  EXPECT_EQ(result->rows[0][0], Value::Int64(4));
}

}  // namespace
}  // namespace magicdb
