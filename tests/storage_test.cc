#include <gtest/gtest.h>

#include <algorithm>

#include "src/storage/index.h"
#include "src/storage/table.h"

namespace magicdb {
namespace {

Schema EmpSchema() {
  return Schema({{"Emp", "did", DataType::kInt64},
                 {"Emp", "sal", DataType::kDouble},
                 {"Emp", "age", DataType::kInt64}});
}

TEST(TableTest, InsertAndRead) {
  Table t("Emp", EmpSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int64(1), Value::Double(100.0), Value::Int64(25)})
          .ok());
  EXPECT_EQ(t.NumRows(), 1);
  EXPECT_EQ(t.row(0)[0], Value::Int64(1));
}

TEST(TableTest, ArityMismatchRejected) {
  Table t("Emp", EmpSchema());
  Status s = t.Insert({Value::Int64(1)});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.NumRows(), 0);
}

TEST(TableTest, TypeMismatchRejected) {
  Table t("Emp", EmpSchema());
  Status s = t.Insert(
      {Value::String("x"), Value::Double(1.0), Value::Int64(30)});
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
}

TEST(TableTest, IntAcceptedIntoDoubleColumnAndNormalized) {
  Table t("Emp", EmpSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int64(1), Value::Int64(100), Value::Int64(25)}).ok());
  EXPECT_EQ(t.row(0)[1].type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(t.row(0)[1].AsDouble(), 100.0);
}

TEST(TableTest, NullAcceptedAnywhere) {
  Table t("Emp", EmpSchema());
  ASSERT_TRUE(
      t.Insert({Value::Null(), Value::Null(), Value::Null()}).ok());
}

TEST(TableTest, PageCountTracksBytes) {
  Table t("Emp", EmpSchema());
  EXPECT_EQ(t.NumPages(), 0);
  // Tuple width = 8 + 8 + 8 = 24 bytes; 4096/24 = 170 rows/page.
  for (int i = 0; i < 171; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int64(i), Value::Double(i), Value::Int64(i)}).ok());
  }
  EXPECT_EQ(t.NumPages(), 2);  // 171*24 = 4104 bytes -> 2 pages
}

TEST(TableTest, InsertAllStopsOnBadRow) {
  Table t("Emp", EmpSchema());
  std::vector<Tuple> rows;
  rows.push_back({Value::Int64(1), Value::Double(1), Value::Int64(1)});
  rows.push_back({Value::Int64(2)});  // bad arity
  EXPECT_FALSE(t.InsertAll(std::move(rows)).ok());
  EXPECT_EQ(t.NumRows(), 1);
}

TEST(HashIndexTest, LookupFindsAllDuplicates) {
  Table t("Emp", EmpSchema());
  HashIndex* idx = t.CreateHashIndex({0});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int64(i % 3), Value::Double(i),
                          Value::Int64(20 + i)})
                    .ok());
  }
  std::vector<int64_t> hits = idx->Lookup({Value::Int64(1)});
  // Rows 1, 4, 7 have did=1.
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<int64_t>{1, 4, 7}));
  EXPECT_TRUE(idx->Lookup({Value::Int64(99)}).empty());
}

TEST(HashIndexTest, BuildsOverExistingRows) {
  Table t("Emp", EmpSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int64(5), Value::Double(1), Value::Int64(30)}).ok());
  HashIndex* idx = t.CreateHashIndex({0});
  EXPECT_EQ(idx->Lookup({Value::Int64(5)}).size(), 1u);
}

TEST(HashIndexTest, MultiColumnKey) {
  Table t("Emp", EmpSchema());
  HashIndex* idx = t.CreateHashIndex({0, 2});
  ASSERT_TRUE(
      t.Insert({Value::Int64(1), Value::Double(10), Value::Int64(30)}).ok());
  ASSERT_TRUE(
      t.Insert({Value::Int64(1), Value::Double(20), Value::Int64(40)}).ok());
  EXPECT_EQ(idx->Lookup({Value::Int64(1), Value::Int64(30)}).size(), 1u);
  EXPECT_EQ(idx->Lookup({Value::Int64(1), Value::Int64(99)}).size(), 0u);
}

TEST(HashIndexTest, CreateIsIdempotent) {
  Table t("Emp", EmpSchema());
  HashIndex* a = t.CreateHashIndex({0});
  HashIndex* b = t.CreateHashIndex({0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(t.FindHashIndex({0}), a);
  EXPECT_EQ(t.FindHashIndex({1}), nullptr);
}

TEST(OrderedIndexTest, EqualityLookup) {
  Table t("Emp", EmpSchema());
  OrderedIndex* idx = t.CreateOrderedIndex({2});
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(t.Insert({Value::Int64(i), Value::Double(i),
                          Value::Int64(20 + (i % 2))})
                    .ok());
  }
  EXPECT_EQ(idx->Lookup({Value::Int64(20)}).size(), 3u);
  EXPECT_EQ(idx->Lookup({Value::Int64(21)}).size(), 2u);
}

TEST(OrderedIndexTest, RangeScanOrdered) {
  Table t("Emp", EmpSchema());
  OrderedIndex* idx = t.CreateOrderedIndex({0});
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE(
        t.Insert({Value::Int64(i), Value::Double(i), Value::Int64(30)}).ok());
  }
  std::vector<int64_t> hits =
      idx->Range({Value::Int64(3)}, {Value::Int64(6)});
  ASSERT_EQ(hits.size(), 4u);
  // Returned in key order 3,4,5,6; rows were inserted in reverse.
  EXPECT_EQ(t.row(hits[0])[0], Value::Int64(3));
  EXPECT_EQ(t.row(hits[3])[0], Value::Int64(6));
}

TEST(OrderedIndexTest, OpenEndedRanges) {
  Table t("Emp", EmpSchema());
  OrderedIndex* idx = t.CreateOrderedIndex({0});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int64(i), Value::Double(i), Value::Int64(30)}).ok());
  }
  EXPECT_EQ(idx->Range({}, {Value::Int64(4)}).size(), 5u);
  EXPECT_EQ(idx->Range({Value::Int64(8)}, {}).size(), 2u);
  EXPECT_EQ(idx->Range({}, {}).size(), 10u);
}

TEST(OrderedIndexTest, ModelledHeightGrowsSlowly) {
  OrderedIndex idx({0});
  for (int i = 0; i < 10; ++i) {
    idx.Insert({Value::Int64(i)}, i);
  }
  EXPECT_EQ(idx.ModelledHeight(), 1);
  for (int i = 10; i < 1000; ++i) {
    idx.Insert({Value::Int64(i)}, i);
  }
  EXPECT_EQ(idx.ModelledHeight(), 2);
}

}  // namespace
}  // namespace magicdb
