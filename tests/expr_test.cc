#include <gtest/gtest.h>

#include "src/expr/expr.h"

namespace magicdb {
namespace {

ExprPtr Col(int i, DataType t = DataType::kInt64) {
  return MakeColumnRef(i, t, "c" + std::to_string(i));
}
ExprPtr Lit(int64_t v) { return MakeLiteral(Value::Int64(v)); }

TEST(ExprTest, LiteralEval) {
  auto e = MakeLiteral(Value::String("hi"));
  auto v = e->Eval({});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::String("hi"));
  EXPECT_EQ(e->result_type(), DataType::kString);
}

TEST(ExprTest, ColumnRefEval) {
  auto e = Col(1);
  Tuple row = {Value::Int64(10), Value::Int64(20)};
  auto v = e->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int64(20));
}

TEST(ExprTest, ColumnRefOutOfRangeErrors) {
  auto e = Col(5);
  EXPECT_FALSE(e->Eval({Value::Int64(1)}).ok());
}

TEST(ExprTest, ComparisonOps) {
  Tuple row = {Value::Int64(3), Value::Int64(7)};
  EXPECT_TRUE(EvalPredicate(*MakeComparison(CompareOp::kLt, Col(0), Col(1)),
                            row));
  EXPECT_FALSE(EvalPredicate(*MakeComparison(CompareOp::kGt, Col(0), Col(1)),
                             row));
  EXPECT_TRUE(EvalPredicate(*MakeComparison(CompareOp::kNe, Col(0), Col(1)),
                            row));
  EXPECT_TRUE(EvalPredicate(*MakeComparison(CompareOp::kEq, Col(0), Lit(3)),
                            row));
  EXPECT_TRUE(EvalPredicate(*MakeComparison(CompareOp::kLe, Col(0), Lit(3)),
                            row));
  EXPECT_TRUE(EvalPredicate(*MakeComparison(CompareOp::kGe, Col(1), Lit(7)),
                            row));
}

TEST(ExprTest, ComparisonWithNullIsNull) {
  auto e = MakeComparison(CompareOp::kEq, Col(0), Lit(1));
  auto v = e->Eval({Value::Null()});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_FALSE(EvalPredicate(*e, {Value::Null()}));
}

TEST(ExprTest, ArithmeticIntExact) {
  Tuple row = {Value::Int64(6), Value::Int64(4)};
  auto v = MakeArithmetic(ArithOp::kAdd, Col(0), Col(1))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int64(10));
  v = MakeArithmetic(ArithOp::kMul, Col(0), Col(1))->Eval(row);
  EXPECT_EQ(*v, Value::Int64(24));
  v = MakeArithmetic(ArithOp::kSub, Col(0), Col(1))->Eval(row);
  EXPECT_EQ(*v, Value::Int64(2));
}

TEST(ExprTest, DivisionAlwaysDouble) {
  Tuple row = {Value::Int64(7), Value::Int64(2)};
  auto v = MakeArithmetic(ArithOp::kDiv, Col(0), Col(1))->Eval(row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->type(), DataType::kDouble);
  EXPECT_DOUBLE_EQ(v->AsDouble(), 3.5);
}

TEST(ExprTest, DivisionByZeroErrors) {
  auto e = MakeArithmetic(ArithOp::kDiv, Lit(1), Lit(0));
  EXPECT_FALSE(e->Eval({}).ok());
}

TEST(ExprTest, ArithmeticNullPropagates) {
  auto e = MakeArithmetic(ArithOp::kAdd, Col(0), Lit(1));
  auto v = e->Eval({Value::Null()});
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, ArithmeticOverStringErrors) {
  auto e = MakeArithmetic(ArithOp::kAdd,
                          MakeLiteral(Value::String("a")), Lit(1));
  EXPECT_FALSE(e->Eval({}).ok());
}

TEST(ExprTest, KleeneAnd) {
  auto t = MakeLiteral(Value::Bool(true));
  auto f = MakeLiteral(Value::Bool(false));
  auto n = MakeLiteral(Value::Null());
  // false AND unknown = false
  auto v = MakeAnd(f, n)->Eval({});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Bool(false));
  // true AND unknown = unknown
  v = MakeAnd(t, n)->Eval({});
  EXPECT_TRUE(v->is_null());
  // true AND true = true
  v = MakeAnd(t, t)->Eval({});
  EXPECT_EQ(*v, Value::Bool(true));
}

TEST(ExprTest, KleeneOr) {
  auto t = MakeLiteral(Value::Bool(true));
  auto f = MakeLiteral(Value::Bool(false));
  auto n = MakeLiteral(Value::Null());
  // true OR unknown = true
  auto v = MakeOr(t, n)->Eval({});
  EXPECT_EQ(*v, Value::Bool(true));
  // false OR unknown = unknown
  v = MakeOr(f, n)->Eval({});
  EXPECT_TRUE(v->is_null());
  v = MakeOr(f, f)->Eval({});
  EXPECT_EQ(*v, Value::Bool(false));
}

TEST(ExprTest, NotSemantics) {
  auto v = MakeNot(MakeLiteral(Value::Bool(true)))->Eval({});
  EXPECT_EQ(*v, Value::Bool(false));
  v = MakeNot(MakeLiteral(Value::Null()))->Eval({});
  EXPECT_TRUE(v->is_null());
}

TEST(ExprTest, CollectColumnRefsDedups) {
  auto e = MakeAnd(MakeComparison(CompareOp::kEq, Col(2), Col(0)),
                   MakeComparison(CompareOp::kLt, Col(0), Lit(5)));
  std::vector<int> refs;
  e->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::vector<int>{0, 2}));
}

TEST(ExprTest, RemapColumns) {
  auto e = MakeComparison(CompareOp::kEq, Col(0), Col(2));
  std::vector<int> mapping = {5, -1, 7};
  auto r = e->RemapColumns(mapping);
  std::vector<int> refs;
  r->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::vector<int>{5, 7}));
  // Semantics preserved under the wider layout.
  Tuple row(8, Value::Null());
  row[5] = Value::Int64(3);
  row[7] = Value::Int64(3);
  EXPECT_TRUE(EvalPredicate(*r, row));
}

TEST(ExprTest, ConjoinAndSplitRoundTrip) {
  std::vector<ExprPtr> cs = {
      MakeComparison(CompareOp::kEq, Col(0), Lit(1)),
      MakeComparison(CompareOp::kLt, Col(1), Lit(2)),
      MakeComparison(CompareOp::kGt, Col(2), Lit(3))};
  ExprPtr all = ConjoinAll(cs);
  std::vector<ExprPtr> back;
  SplitConjuncts(all, &back);
  EXPECT_EQ(back.size(), 3u);
  EXPECT_EQ(ConjoinAll({}), nullptr);
}

TEST(ExprTest, SplitDoesNotCrossOr) {
  ExprPtr e = MakeOr(MakeComparison(CompareOp::kEq, Col(0), Lit(1)),
                     MakeComparison(CompareOp::kEq, Col(0), Lit(2)));
  std::vector<ExprPtr> parts;
  SplitConjuncts(e, &parts);
  EXPECT_EQ(parts.size(), 1u);
}

TEST(ExprTest, NodeCount) {
  auto e = MakeAnd(MakeComparison(CompareOp::kEq, Col(0), Lit(1)),
                   MakeComparison(CompareOp::kLt, Col(1), Lit(2)));
  EXPECT_EQ(e->NodeCount(), 7);
}

TEST(ExprTest, MakeColumnRefFromSchema) {
  Schema s({{"E", "did", DataType::kInt64}, {"E", "sal", DataType::kDouble}});
  auto e = MakeColumnRef(s, "E.sal");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->result_type(), DataType::kDouble);
  EXPECT_FALSE(MakeColumnRef(s, "E.missing").ok());
}

TEST(ExprTest, ToStringReadable) {
  auto e = MakeComparison(CompareOp::kGt, Col(0), Lit(30));
  EXPECT_EQ(e->ToString(), "(c0 > 30)");
}

}  // namespace
}  // namespace magicdb
