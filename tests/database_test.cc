#include <gtest/gtest.h>

#include <map>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

/// End-to-end fixture that sets up the paper's Figure-1 schema through SQL.
class DatabaseFigure1 : public ::testing::Test {
 protected:
  void Populate(int num_depts, int emps_per_dept, double young_frac,
                double big_frac, uint64_t seed = 7) {
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
    Random rng(seed);
    std::vector<Tuple> emps, depts;
    for (int d = 0; d < num_depts; ++d) {
      depts.push_back({Value::Int64(d), Value::Double(rng.Bernoulli(big_frac)
                                                          ? 200000.0
                                                          : 50000.0)});
      for (int e = 0; e < emps_per_dept; ++e) {
        emps.push_back({Value::Int64(d),
                        Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                        Value::Int64(rng.Bernoulli(young_frac) ? 25 : 45)});
      }
    }
    MAGICDB_CHECK_OK(db_.LoadRows("Dept", std::move(depts)));
    MAGICDB_CHECK_OK(db_.LoadRows("Emp", std::move(emps)));
    MAGICDB_CHECK_OK(db_.Execute(
        "CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal "
        "FROM Emp GROUP BY did"));
  }

  static constexpr const char* kFigure1Query =
      "SELECT E.did, E.sal, V.avgsal "
      "FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000";

  std::vector<Tuple> Reference() {
    const Table* emp = (*db_.catalog()->Lookup("Emp"))->table;
    const Table* dept = (*db_.catalog()->Lookup("Dept"))->table;
    std::map<int64_t, std::pair<double, int64_t>> sums;
    for (int64_t i = 0; i < emp->NumRows(); ++i) {
      auto& [s, c] = sums[emp->row(i)[0].AsInt64()];
      s += emp->row(i)[1].AsDouble();
      c += 1;
    }
    std::map<int64_t, double> budgets;
    for (int64_t i = 0; i < dept->NumRows(); ++i) {
      budgets[dept->row(i)[0].AsInt64()] = dept->row(i)[1].AsDouble();
    }
    std::vector<Tuple> out;
    for (int64_t i = 0; i < emp->NumRows(); ++i) {
      const Tuple& r = emp->row(i);
      const int64_t did = r[0].AsInt64();
      if (r[2].AsInt64() >= 30 || budgets[did] <= 100000.0) continue;
      const double avg = sums[did].first / sums[did].second;
      if (r[1].AsDouble() > avg) {
        out.push_back({Value::Int64(did), r[1], Value::Double(avg)});
      }
    }
    return out;
  }

  Database db_;
};

TEST_F(DatabaseFigure1, Figure1QueryCorrect) {
  Populate(25, 8, 0.3, 0.3);
  auto result = db_.Query(kFigure1Query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(SameMultiset(result->rows, Reference()));
  EXPECT_EQ(result->schema.num_columns(), 3);
}

TEST_F(DatabaseFigure1, MagicModesAgreeOnResults) {
  Populate(30, 6, 0.2, 0.2);
  auto cost_based = db_.Query(kFigure1Query);
  ASSERT_TRUE(cost_based.ok());
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto never = db_.Query(kFigure1Query);
  ASSERT_TRUE(never.ok());
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  auto always = db_.Query(kFigure1Query);
  ASSERT_TRUE(always.ok());
  EXPECT_TRUE(SameMultiset(cost_based->rows, never->rows));
  EXPECT_TRUE(SameMultiset(cost_based->rows, always->rows));
}

TEST_F(DatabaseFigure1, SelectiveWorkloadUsesFilterJoinAndWins) {
  Populate(400, 4, 0.02, 0.02);
  auto magic = db_.Query(kFigure1Query);
  ASSERT_TRUE(magic.ok());
  EXPECT_FALSE(magic->filter_joins.empty()) << magic->explain;

  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db_.Query(kFigure1Query);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(magic->rows, plain->rows));
  EXPECT_LT(magic->counters.TotalCost(), plain->counters.TotalCost());
}

TEST_F(DatabaseFigure1, ExplainShowsPlan) {
  Populate(10, 4, 0.5, 0.5);
  auto explain = db_.Explain(kFigure1Query);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("estimated cost="), std::string::npos);
  EXPECT_NE(explain->find("SeqScan"), std::string::npos);
}

TEST(DatabaseTest, CreateTableAndSimpleQueries) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT, b DOUBLE, s VARCHAR)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({Value::Int64(i), Value::Double(i * 0.5),
                    Value::String(i % 2 == 0 ? "even" : "odd")});
  }
  ASSERT_TRUE(db.LoadRows("t", std::move(rows)).ok());

  auto all = db.Query("SELECT * FROM t");
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->rows.size(), 10u);
  EXPECT_EQ(all->schema.num_columns(), 3);

  auto filtered = db.Query("SELECT a FROM t WHERE s = 'even' AND a > 2");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->rows.size(), 3u);  // 4, 6, 8

  auto computed = db.Query("SELECT a + 1 AS a1, b * 2 FROM t WHERE a = 3");
  ASSERT_TRUE(computed.ok());
  ASSERT_EQ(computed->rows.size(), 1u);
  EXPECT_EQ(computed->rows[0][0], Value::Int64(4));
  EXPECT_DOUBLE_EQ(computed->rows[0][1].AsDouble(), 3.0);
}

TEST(DatabaseTest, AggregationQueries) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (g INT, v INT)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 12; ++i) {
    rows.push_back({Value::Int64(i % 3), Value::Int64(i)});
  }
  ASSERT_TRUE(db.LoadRows("t", std::move(rows)).ok());

  auto grouped = db.Query(
      "SELECT g, COUNT(*) AS c, SUM(v) AS s, MIN(v), MAX(v), AVG(v) "
      "FROM t GROUP BY g ORDER BY g");
  ASSERT_TRUE(grouped.ok()) << grouped.status().ToString();
  ASSERT_EQ(grouped->rows.size(), 3u);
  // Group 0: v in {0,3,6,9}.
  EXPECT_EQ(grouped->rows[0][1], Value::Int64(4));
  EXPECT_EQ(grouped->rows[0][2], Value::Int64(18));
  EXPECT_EQ(grouped->rows[0][3], Value::Int64(0));
  EXPECT_EQ(grouped->rows[0][4], Value::Int64(9));
  EXPECT_DOUBLE_EQ(grouped->rows[0][5].AsDouble(), 4.5);

  auto having = db.Query(
      "SELECT g FROM t GROUP BY g HAVING SUM(v) > 20");
  ASSERT_TRUE(having.ok()) << having.status().ToString();
  EXPECT_EQ(having->rows.size(), 2u);  // groups 1 (22) and 2 (26)

  auto scalar = db.Query("SELECT COUNT(*), AVG(v) FROM t");
  ASSERT_TRUE(scalar.ok());
  ASSERT_EQ(scalar->rows.size(), 1u);
  EXPECT_EQ(scalar->rows[0][0], Value::Int64(12));
}

TEST(DatabaseTest, DistinctOrderLimit) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 20; ++i) rows.push_back({Value::Int64(i % 5)});
  ASSERT_TRUE(db.LoadRows("t", std::move(rows)).ok());

  auto result = db.Query("SELECT DISTINCT a FROM t ORDER BY a DESC LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(4));
  EXPECT_EQ(result->rows[2][0], Value::Int64(2));
}

TEST(DatabaseTest, ViewsComposable) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (g INT, v INT)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 30; ++i) {
    rows.push_back({Value::Int64(i % 5), Value::Int64(i)});
  }
  ASSERT_TRUE(db.LoadRows("t", std::move(rows)).ok());
  ASSERT_TRUE(db.Execute("CREATE VIEW sums AS SELECT g, SUM(v) AS s FROM t "
                         "GROUP BY g")
                  .ok());
  auto result =
      db.Query("SELECT t.v, S.s FROM t, sums S WHERE t.g = S.g AND t.v < 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST(DatabaseTest, ErrorPaths) {
  Database db;
  EXPECT_FALSE(db.Query("SELECT * FROM missing").ok());
  EXPECT_FALSE(db.Execute("SELECT 1 FROM x").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(db.Execute("CREATE TABLE t (a INT)").ok());  // duplicate
  EXPECT_FALSE(db.Query("SELECT b FROM t").ok());           // unknown column
  EXPECT_FALSE(db.Query("SELECT a FROM t WHERE AVG(a) > 1").ok());
  EXPECT_FALSE(db.Query("SELECT a, SUM(a) FROM t").ok());  // a not grouped
  EXPECT_FALSE(db.LoadRows("missing", {}).ok());
}

TEST(DatabaseTest, AmbiguousColumnRejected) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE r (k INT)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE s (k INT)").ok());
  EXPECT_FALSE(db.Query("SELECT k FROM r, s").ok());
  EXPECT_TRUE(db.Query("SELECT r.k FROM r, s").ok());
}

TEST(DatabaseTest, DuplicateAliasRejected) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE r (k INT)").ok());
  EXPECT_FALSE(db.Query("SELECT x.k FROM r x, r x").ok());
}

TEST(DatabaseTest, QueryResultToString) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.LoadRows("t", {{Value::Int64(1)}, {Value::Int64(2)}}).ok());
  auto result = db.Query("SELECT a FROM t");
  ASSERT_TRUE(result.ok());
  std::string text = result->ToString();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("(2 rows)"), std::string::npos);
}

TEST(DatabaseTest, SelfJoinWithAliases) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (k INT, v INT)").ok());
  std::vector<Tuple> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back({Value::Int64(i % 3), Value::Int64(i)});
  }
  ASSERT_TRUE(db.LoadRows("t", std::move(rows)).ok());
  auto result =
      db.Query("SELECT a.v, b.v FROM t a, t b WHERE a.k = b.k AND a.v < b.v");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 3u);  // pairs (0,3),(1,4),(2,5)
}

}  // namespace
}  // namespace magicdb
