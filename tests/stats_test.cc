#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/stats/histogram.h"
#include "src/stats/table_stats.h"

namespace magicdb {
namespace {

TEST(HistogramTest, EmptyInput) {
  auto h = EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.FractionBelow(10), 0.0);
}

TEST(HistogramTest, UniformFractionBelow) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(i);
  auto h = EquiDepthHistogram::Build(vals, 16);
  EXPECT_NEAR(h.FractionBelow(500), 0.5, 0.05);
  EXPECT_NEAR(h.FractionBelow(250), 0.25, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionBelow(-1), 0.0);
  EXPECT_DOUBLE_EQ(h.FractionBelow(10000), 1.0);
}

TEST(HistogramTest, FractionBetween) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(i);
  auto h = EquiDepthHistogram::Build(vals, 16);
  EXPECT_NEAR(h.FractionBetween(100, 300), 0.2, 0.05);
  EXPECT_DOUBLE_EQ(h.FractionBetween(300, 100), 0.0);
}

TEST(HistogramTest, FractionEqualOnSkewedData) {
  // 900 copies of 5, plus 100 distinct values.
  std::vector<double> vals(900, 5.0);
  for (int i = 0; i < 100; ++i) vals.push_back(100 + i);
  auto h = EquiDepthHistogram::Build(vals, 16);
  EXPECT_GT(h.FractionEqual(5.0), 0.5);
  EXPECT_LT(h.FractionEqual(150.0), 0.05);
  EXPECT_DOUBLE_EQ(h.FractionEqual(-3), 0.0);
}

TEST(HistogramTest, EqualValuesNeverStraddleBuckets) {
  std::vector<double> vals(100, 7.0);
  auto h = EquiDepthHistogram::Build(vals, 10);
  EXPECT_EQ(h.num_buckets(), 1);
  EXPECT_DOUBLE_EQ(h.FractionEqual(7.0), 1.0);
}

TEST(HistogramTest, MinMax) {
  auto h = EquiDepthHistogram::Build({3.0, 1.0, 2.0}, 4);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

TEST(TableStatsTest, AnalyzeBasics) {
  Schema s({{"t", "a", DataType::kInt64}, {"t", "name", DataType::kString}});
  Table t("t", s);
  for (int i = 0; i < 100; ++i) {
    MAGICDB_CHECK_OK(t.Insert(
        {Value::Int64(i % 10), Value::String("n" + std::to_string(i % 4))}));
  }
  TableStats st = TableStats::Analyze(t);
  EXPECT_EQ(st.num_rows, 100);
  EXPECT_EQ(st.num_pages, t.NumPages());
  ASSERT_EQ(st.columns.size(), 2u);
  EXPECT_EQ(st.columns[0].num_distinct, 10);
  EXPECT_EQ(st.columns[1].num_distinct, 4);
  EXPECT_TRUE(st.columns[0].numeric);
  EXPECT_FALSE(st.columns[1].numeric);
  EXPECT_DOUBLE_EQ(st.columns[0].min, 0.0);
  EXPECT_DOUBLE_EQ(st.columns[0].max, 9.0);
}

TEST(TableStatsTest, NullFraction) {
  Schema s({{"t", "a", DataType::kInt64}});
  Table t("t", s);
  for (int i = 0; i < 10; ++i) {
    MAGICDB_CHECK_OK(
        t.Insert({i < 3 ? Value::Null() : Value::Int64(i)}));
  }
  TableStats st = TableStats::Analyze(t);
  EXPECT_DOUBLE_EQ(st.columns[0].null_fraction, 0.3);
  EXPECT_EQ(st.columns[0].num_distinct, 7);
}

TEST(TableStatsTest, EmptyTable) {
  Schema s({{"t", "a", DataType::kInt64}});
  Table t("t", s);
  TableStats st = TableStats::Analyze(t);
  EXPECT_EQ(st.num_rows, 0);
  EXPECT_EQ(st.columns[0].num_distinct, 0);
  EXPECT_FALSE(st.columns[0].numeric);
}

TEST(YaoTest, BoundaryCases) {
  EXPECT_DOUBLE_EQ(YaoEstimate(0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(YaoEstimate(100, 10, 0), 0.0);
  EXPECT_DOUBLE_EQ(YaoEstimate(100, 10, 100), 10.0);
  EXPECT_DOUBLE_EQ(YaoEstimate(100, 10, 200), 10.0);
}

TEST(YaoTest, MonotoneInSampleSize) {
  double prev = 0;
  for (int k = 1; k <= 100; k += 10) {
    double d = YaoEstimate(1000, 50, k);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST(YaoTest, NeverExceedsDistinctOrSample) {
  for (int k = 1; k < 200; k += 7) {
    double d = YaoEstimate(200, 40, k);
    EXPECT_LE(d, 40.0 + 1e-9);
    EXPECT_LE(d, static_cast<double>(k) + 1e-9);
    EXPECT_GT(d, 0.0);
  }
}

TEST(YaoTest, MatchesSimulation) {
  // Empirical check: sample k of n rows with d distinct values and compare
  // observed distinct counts against the formula.
  const int64_t n = 1000, d = 50, k = 100;
  Random rng(77);
  double total = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    // Sample k row indexes without replacement (partial Fisher-Yates).
    std::vector<int> rows(n);
    for (int i = 0; i < n; ++i) rows[i] = i;
    std::vector<bool> seen(d, false);
    int distinct = 0;
    for (int i = 0; i < k; ++i) {
      const int j = i + static_cast<int>(rng.Uniform(n - i));
      std::swap(rows[i], rows[j]);
      const int value = rows[i] % d;
      if (!seen[value]) {
        seen[value] = true;
        ++distinct;
      }
    }
    total += distinct;
  }
  const double observed = total / trials;
  const double predicted = YaoEstimate(n, d, k);
  EXPECT_NEAR(observed, predicted, 2.0);
}

}  // namespace
}  // namespace magicdb
