// Golden end-to-end SQL tests: a fixed micro-warehouse and a battery of
// queries with hand-computed results, each executed under three optimizer
// configurations (cost-based, magic-off, methods-restricted) that must all
// agree with the golden answer.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/db/database.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

/// The warehouse:
///   Emp(did, sal, age):   12 employees over 4 departments, fixed values.
///   Dept(did, budget):    4 departments; 1 and 3 are "big".
///   view DepAvgSal:       AVG(sal) by did.
class GoldenFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
    // did, sal, age — three employees per department, deterministic.
    const double sal[4][3] = {{100, 200, 300},
                              {150, 150, 300},
                              {90, 110, 100},
                              {500, 100, 300}};
    const int64_t age[4][3] = {{25, 45, 45},
                               {25, 25, 45},
                               {45, 45, 45},
                               {25, 45, 25}};
    std::vector<Tuple> emps;
    for (int d = 0; d < 4; ++d) {
      for (int e = 0; e < 3; ++e) {
        emps.push_back({Value::Int64(d), Value::Double(sal[d][e]),
                        Value::Int64(age[d][e])});
      }
    }
    MAGICDB_CHECK_OK(db_.LoadRows("Emp", std::move(emps)));
    MAGICDB_CHECK_OK(db_.LoadRows(
        "Dept", {{Value::Int64(0), Value::Double(50000)},
                 {Value::Int64(1), Value::Double(150000)},
                 {Value::Int64(2), Value::Double(80000)},
                 {Value::Int64(3), Value::Double(200000)}}));
    (*db_.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
    MAGICDB_CHECK_OK(db_.catalog()->AnalyzeAll());
    MAGICDB_CHECK_OK(db_.Execute(
        "CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal FROM Emp "
        "GROUP BY did"));
  }

  /// Runs `sql` under several optimizer configurations and checks all
  /// agree with `expected`.
  void ExpectRows(const std::string& sql, std::vector<Tuple> expected) {
    struct Config {
      const char* name;
      void (*apply)(OptimizerOptions*);
    };
    const Config configs[] = {
        {"cost-based", [](OptimizerOptions*) {}},
        {"magic-off",
         [](OptimizerOptions* o) {
           o->magic_mode = OptimizerOptions::MagicMode::kNever;
         }},
        {"nl-only",
         [](OptimizerOptions* o) {
           o->enable_hash_join = false;
           o->enable_sort_merge = false;
           o->enable_index_nested_loops = false;
           o->magic_mode = OptimizerOptions::MagicMode::kNever;
           o->filter_join_on_stored = false;
         }},
    };
    for (const Config& config : configs) {
      OptimizerOptions opts;
      config.apply(&opts);
      *db_.mutable_optimizer_options() = opts;
      auto result = db_.Query(sql);
      ASSERT_TRUE(result.ok())
          << config.name << ": " << result.status().ToString();
      EXPECT_TRUE(SameMultiset(result->rows, expected))
          << config.name << "\nquery: " << sql << "\ngot "
          << result->rows.size() << " rows, want " << expected.size();
    }
  }

  Database db_;
};

TEST_F(GoldenFixture, SimpleProjection) {
  ExpectRows("SELECT did FROM Dept WHERE budget > 100000",
             {{Value::Int64(1)}, {Value::Int64(3)}});
}

TEST_F(GoldenFixture, ViewScanDirect) {
  // Averages: d0 = 200, d1 = 200, d2 = 100, d3 = 300.
  ExpectRows("SELECT did, avgsal FROM DepAvgSal",
             {{Value::Int64(0), Value::Double(200)},
              {Value::Int64(1), Value::Double(200)},
              {Value::Int64(2), Value::Double(100)},
              {Value::Int64(3), Value::Double(300)}});
}

TEST_F(GoldenFixture, Figure1Golden) {
  // Young (age<30) emps in big depts (1, 3) above their dept average:
  //   d1: young sal 150, 150 vs avg 200 -> none.
  //   d3: young sal 500 (>300 yes), 300 (=300 no) -> one row.
  ExpectRows(
      "SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000",
      {{Value::Int64(3), Value::Double(500), Value::Double(300)}});
}

TEST_F(GoldenFixture, AboveAverageAnyDept) {
  // All emps above their dept average (any dept, any age):
  //   d0: 300 > 200. d1: 300 > 200. d2: 110 > 100. d3: 500 > 300.
  ExpectRows(
      "SELECT E.sal FROM Emp E, DepAvgSal V "
      "WHERE E.did = V.did AND E.sal > V.avgsal",
      {{Value::Double(300)},
       {Value::Double(300)},
       {Value::Double(110)},
       {Value::Double(500)}});
}

TEST_F(GoldenFixture, GroupCountsWithHaving) {
  // Young (age<30) per dept: d0:1, d1:2, d2:0, d3:2.
  ExpectRows(
      "SELECT did, COUNT(*) AS n FROM Emp WHERE age < 30 GROUP BY did "
      "HAVING COUNT(*) > 1",
      {{Value::Int64(1), Value::Int64(2)},
       {Value::Int64(3), Value::Int64(2)}});
}

TEST_F(GoldenFixture, MinMaxPerDept) {
  ExpectRows("SELECT did, MIN(sal), MAX(sal) FROM Emp GROUP BY did",
             {{Value::Int64(0), Value::Double(100), Value::Double(300)},
              {Value::Int64(1), Value::Double(150), Value::Double(300)},
              {Value::Int64(2), Value::Double(90), Value::Double(110)},
              {Value::Int64(3), Value::Double(100), Value::Double(500)}});
}

TEST_F(GoldenFixture, DistinctAges) {
  ExpectRows("SELECT DISTINCT age FROM Emp",
             {{Value::Int64(25)}, {Value::Int64(45)}});
}

TEST_F(GoldenFixture, SelfJoinPairsInDept) {
  // Pairs of distinct employees in dept 2 with a.sal < b.sal:
  // (90,100),(90,110),(100,110).
  ExpectRows(
      "SELECT a.sal, b.sal FROM Emp a, Emp b "
      "WHERE a.did = b.did AND a.did = 2 AND a.sal < b.sal",
      {{Value::Double(90), Value::Double(100)},
       {Value::Double(90), Value::Double(110)},
       {Value::Double(100), Value::Double(110)}});
}

TEST_F(GoldenFixture, InListAndBetween) {
  ExpectRows(
      "SELECT sal FROM Emp WHERE did IN (0, 2) AND sal BETWEEN 100 AND 200",
      {{Value::Double(100)}, {Value::Double(200)}, {Value::Double(110)},
       {Value::Double(100)}});
}

TEST_F(GoldenFixture, ScalarAggregatesOverJoin) {
  // Total salary of employees in big departments: d1 600 + d3 900 = 1500.
  ExpectRows(
      "SELECT SUM(E.sal) FROM Emp E, Dept D "
      "WHERE E.did = D.did AND D.budget > 100000",
      {{Value::Double(1500)}});
}

TEST_F(GoldenFixture, OrderByLimitDeterministic) {
  OptimizerOptions opts;
  *db_.mutable_optimizer_options() = opts;
  auto result = db_.Query("SELECT sal FROM Emp ORDER BY sal DESC LIMIT 3");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 3u);
  EXPECT_EQ(result->rows[0][0], Value::Double(500));
  EXPECT_EQ(result->rows[1][0], Value::Double(300));
  EXPECT_EQ(result->rows[2][0], Value::Double(300));
}

TEST_F(GoldenFixture, ArithmeticInSelectAndWhere) {
  // sal = 100 appears in departments 0, 2 and 3.
  ExpectRows(
      "SELECT sal * 2 FROM Emp WHERE sal + 10 = 110",
      {{Value::Double(200)}, {Value::Double(200)}, {Value::Double(200)}});
}

TEST_F(GoldenFixture, CrossProductCount) {
  ExpectRows("SELECT COUNT(*) FROM Emp E, Dept D",
             {{Value::Int64(48)}});
}

TEST_F(GoldenFixture, EmptyResultStaysEmpty) {
  ExpectRows("SELECT did FROM Dept WHERE budget > 999999", {});
  ExpectRows(
      "SELECT E.did FROM Emp E, DepAvgSal V "
      "WHERE E.did = V.did AND V.avgsal > 1000",
      {});
}

}  // namespace
}  // namespace magicdb
