// Tests for the vectorized batch execution path: RowBatch mechanics,
// chunked memory reservation, selection-vector edge cases, mixed
// batch/row operator trees, and the headline guarantee — results, result
// order, and cost counters byte-identical to tuple-at-a-time execution
// at any DoP and any batch size, with and without spilling.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/exec/basic_ops.h"
#include "src/exec/exec_context.h"
#include "src/exec/row_batch.h"
#include "src/exec/scan_ops.h"
#include "src/expr/expr.h"
#include "src/server/query_service.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

// ----- RowBatch primitive -----

TEST(RowBatchTest, AppendSelectActiveRows) {
  RowBatch b(4);
  b.ResetForWrite(2);
  for (int i = 0; i < 3; ++i) {
    b.AppendTuple({Value::Int64(i), Value::String("r" + std::to_string(i))});
  }
  EXPECT_EQ(b.num_rows(), 3);
  EXPECT_EQ(b.ActiveRows(), 3);
  EXPECT_FALSE(b.full());
  b.SetSelection({0, 2});
  EXPECT_EQ(b.num_rows(), 3);  // physical rows unchanged
  EXPECT_EQ(b.ActiveRows(), 2);
  std::vector<Tuple> out;
  b.MoveActiveToTuples(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0][0].AsInt64(), 0);
  EXPECT_EQ(out[1][0].AsInt64(), 2);
}

TEST(RowBatchTest, CompactActiveGathersSurvivorsAndRanks) {
  RowBatch b(8);
  b.ResetForWrite(2);
  b.EnableRanks();
  for (int i = 0; i < 5; ++i) {
    b.AppendTuple({Value::Int64(i), Value::String("r" + std::to_string(i))});
    b.pos().push_back(100 + i);
    b.sub().push_back(i);
  }
  b.SetSelection({0, 2, 4});  // prefix row 0 stays put; 2 and 4 gather down
  b.CompactActive();
  EXPECT_FALSE(b.sel_active());
  ASSERT_EQ(b.num_rows(), 3);
  EXPECT_EQ(b.ActiveRows(), 3);
  ASSERT_EQ(b.column(0).size(), 3u);
  EXPECT_EQ(b.column(0)[0].AsInt64(), 0);
  EXPECT_EQ(b.column(0)[1].AsInt64(), 2);
  EXPECT_EQ(b.column(0)[2].AsInt64(), 4);
  EXPECT_EQ(b.column(1)[2].AsString(), "r4");
  ASSERT_EQ(b.pos().size(), 3u);
  EXPECT_EQ(b.pos()[1], 102);
  EXPECT_EQ(b.sub()[2], 4);
  // Compacting again (no selection) is a no-op.
  b.CompactActive();
  EXPECT_EQ(b.num_rows(), 3);

  // An empty selection compacts to an empty batch.
  b.SetSelection({});
  b.CompactActive();
  EXPECT_EQ(b.num_rows(), 0);
  EXPECT_FALSE(b.sel_active());
  EXPECT_TRUE(b.column(0).empty());
  EXPECT_TRUE(b.pos().empty());
}

TEST(RowBatchTest, EmptySelectionMeansNoActiveRows) {
  RowBatch b(4);
  b.ResetForWrite(1);
  b.AppendTuple({Value::Int64(7)});
  b.SetSelection({});
  EXPECT_EQ(b.ActiveRows(), 0);
  std::vector<Tuple> out;
  b.MoveActiveToTuples(&out);
  EXPECT_TRUE(out.empty());
}

TEST(RowBatchTest, ResetForWriteClearsSelectionAndRanks) {
  RowBatch b(2);
  b.ResetForWrite(1);
  b.AppendTuple({Value::Int64(1)});
  b.SetSelection({0});
  b.EnableRanks();
  b.pos().push_back(42);
  b.sub().push_back(0);
  b.ResetForWrite(1);
  EXPECT_EQ(b.num_rows(), 0);
  EXPECT_FALSE(b.sel_active());
  EXPECT_FALSE(b.has_ranks());
}

TEST(RowBatchTest, HelpersMatchTupleCounterparts) {
  RowBatch b(4);
  b.ResetForWrite(3);
  const std::vector<Tuple> rows = {
      {Value::Int64(5), Value::Null(), Value::String("abc")},
      {Value::Null(), Value::Double(1.5), Value::String("")},
      {Value::Int64(-9), Value::Int64(3), Value::Null()},
  };
  for (const Tuple& t : rows) b.AppendTuple(Tuple(t));
  const std::vector<int> keys = {0, 2};
  for (int32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(BatchRowByteWidth(b, r), TupleByteWidth(rows[r])) << r;
    EXPECT_EQ(BatchRowHasNullAt(b, r, keys), TupleHasNullAt(rows[r], keys))
        << r;
    EXPECT_EQ(HashBatchRowColumns(b, r, keys),
              HashTupleColumns(rows[r], keys))
        << r;
  }
}

// ----- BatchReserve: chunked charging with a tight peak -----

TEST(BatchReserveTest, HeadroomDoesNotInflatePeak) {
  auto tracker = std::make_shared<MemoryTracker>(/*limit_bytes=*/1 << 20);
  ExecContext ctx;
  ctx.set_memory_tracker(tracker);
  BatchReserve reserve;
  MAGICDB_CHECK_OK(reserve.Take(&ctx, 100));
  // The chunk is accounted against the limit but only the consumed 100
  // bytes are peak-visible.
  EXPECT_GE(tracker->used_bytes(), BatchReserve::kChunkBytes);
  EXPECT_EQ(tracker->peak_bytes(), 100);
  MAGICDB_CHECK_OK(reserve.Take(&ctx, 50));
  EXPECT_EQ(tracker->peak_bytes(), 150);
  reserve.ReleaseHeadroom(&ctx);
  EXPECT_EQ(tracker->used_bytes(), 150);
  ctx.ReleaseMemory(150);
  EXPECT_EQ(tracker->used_bytes(), 0);
  EXPECT_EQ(tracker->peak_bytes(), 150);  // peak is sticky
}

TEST(BatchReserveTest, BreachSurfacesAtRowModeByteCount) {
  auto tracker = std::make_shared<MemoryTracker>(/*limit_bytes=*/250);
  ExecContext ctx;
  ctx.set_memory_tracker(tracker);
  BatchReserve reserve;
  // The 16 KiB chunk reservation fails immediately, so every Take falls
  // back to exact charging: the third 100-byte charge is the first one a
  // 250-byte limit cannot hold — exactly where row mode fails.
  MAGICDB_CHECK_OK(reserve.Take(&ctx, 100));
  MAGICDB_CHECK_OK(reserve.Take(&ctx, 100));
  Status breach = reserve.Take(&ctx, 100);
  EXPECT_EQ(breach.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(tracker->used_bytes(), 200);
  EXPECT_EQ(reserve.headroom(), 0);
}

// ----- Selection-vector edge cases at the operator level -----

Schema EdgeSchema() {
  return Schema({{"t", "a", DataType::kInt64}, {"t", "b", DataType::kInt64}});
}

std::unique_ptr<Table> EdgeTable(int n, int null_every) {
  auto t = std::make_unique<Table>("t", EdgeSchema());
  for (int i = 0; i < n; ++i) {
    Value a = (null_every > 0 && i % null_every == 0) ? Value::Null()
                                                      : Value::Int64(i);
    MAGICDB_CHECK_OK(t->Insert({std::move(a), Value::Int64(i % 5)}));
  }
  return t;
}

StatusOr<std::vector<Tuple>> RunFilter(Table* t, int64_t batch_size,
                                       int64_t lt, CostCounters* counters) {
  ExecContext ctx;
  ctx.set_batch_size(batch_size);
  auto pred =
      MakeComparison(CompareOp::kLt, MakeColumnRef(0, DataType::kInt64),
                     MakeLiteral(Value::Int64(lt)));
  FilterOp op(std::make_unique<SeqScanOp>(t), pred);
  auto rows = ExecuteToVector(&op, &ctx);
  *counters = ctx.counters();
  return rows;
}

TEST(BatchEdgeCaseTest, EmptyInputProducesEmptyBatchStream) {
  auto t = EdgeTable(0, 0);
  for (int64_t batch : {1, 7, 1024}) {
    CostCounters batch_counters, row_counters;
    auto vec = RunFilter(t.get(), batch, 100, &batch_counters);
    auto row = RunFilter(t.get(), 0, 100, &row_counters);
    ASSERT_TRUE(vec.ok() && row.ok());
    EXPECT_TRUE(vec->empty());
    EXPECT_EQ(batch_counters.exprs_evaluated, row_counters.exprs_evaluated);
  }
}

TEST(BatchEdgeCaseTest, AllRowsFilteredStillTerminates) {
  auto t = EdgeTable(100, 0);
  for (int64_t batch : {1, 7, 1024}) {
    CostCounters batch_counters, row_counters;
    auto vec = RunFilter(t.get(), batch, -1, &batch_counters);  // none pass
    auto row = RunFilter(t.get(), 0, -1, &row_counters);
    ASSERT_TRUE(vec.ok() && row.ok());
    EXPECT_TRUE(vec->empty());
    EXPECT_EQ(batch_counters.exprs_evaluated, 100);
    EXPECT_EQ(batch_counters.exprs_evaluated, row_counters.exprs_evaluated);
    EXPECT_EQ(batch_counters.pages_read, row_counters.pages_read);
  }
}

TEST(BatchEdgeCaseTest, NullHeavyPredicateMatchesRowMode) {
  auto t = EdgeTable(101, /*null_every=*/2);  // half the rows NULL
  for (int64_t batch : {1, 7, 1024}) {
    CostCounters batch_counters, row_counters;
    auto vec = RunFilter(t.get(), batch, 50, &batch_counters);
    auto row = RunFilter(t.get(), 0, 50, &row_counters);
    ASSERT_TRUE(vec.ok() && row.ok());
    ASSERT_EQ(vec->size(), row->size());
    for (size_t i = 0; i < vec->size(); ++i) {
      EXPECT_EQ(CompareTuples((*vec)[i], (*row)[i]), 0) << "row " << i;
    }
    EXPECT_EQ(batch_counters.exprs_evaluated, row_counters.exprs_evaluated);
    EXPECT_EQ(batch_counters.tuples_processed, row_counters.tuples_processed);
  }
}

TEST(BatchEdgeCaseTest, RowOnlySortOverBatchFilterAdapts) {
  // SortOp has no native batch implementation: it drains its child through
  // the base-class row adapter while the child itself runs vectorized, and
  // its own output is re-batched by ExecuteToVector — a mixed tree.
  auto t = EdgeTable(200, /*null_every=*/7);
  auto run = [&](int64_t batch_size) {
    ExecContext ctx;
    ctx.set_batch_size(batch_size);
    auto pred =
        MakeComparison(CompareOp::kLt, MakeColumnRef(0, DataType::kInt64),
                       MakeLiteral(Value::Int64(150)));
    auto filter =
        std::make_unique<FilterOp>(std::make_unique<SeqScanOp>(t.get()), pred);
    std::vector<SortOp::SortKey> keys;
    keys.push_back({MakeColumnRef(0, DataType::kInt64), /*ascending=*/false});
    SortOp sort(std::move(filter), std::move(keys));
    auto rows = ExecuteToVector(&sort, &ctx);
    MAGICDB_CHECK_OK(rows.status());
    return std::make_pair(*rows, ctx.counters());
  };
  auto [row_rows, row_counters] = run(0);
  ASSERT_FALSE(row_rows.empty());
  for (int64_t batch : {1, 7, 1024}) {
    auto [vec_rows, vec_counters] = run(batch);
    ASSERT_EQ(vec_rows.size(), row_rows.size());
    for (size_t i = 0; i < vec_rows.size(); ++i) {
      EXPECT_EQ(CompareTuples(vec_rows[i], row_rows[i]), 0) << "row " << i;
    }
    EXPECT_EQ(vec_counters.exprs_evaluated, row_counters.exprs_evaluated);
  }
}

// ----- End-to-end byte-identity sweep -----

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// Emp/Dept/Bonus workload with NULL-ridden join/group keys and the DepComp
// aggregate view (plans a Filter Join under magic rewriting).
void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(29);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 120; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 7; ++e, ++eid) {
      // ~10% NULL join keys exercise the batch null screening in hash
      // build, probe, and aggregation.
      Value did = rng.Bernoulli(0.1) ? Value::Null() : Value::Int64(d);
      emps.push_back({Value::Int64(eid), std::move(did),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

const char* const kSweepQueries[] = {
    // Scan -> filter -> project (pure pipeline).
    "SELECT E.eid, E.sal + 1000 FROM Emp E WHERE E.age < 30",
    // Hash join with a residual predicate.
    "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000",
    // GROUP BY aggregation over a join.
    "SELECT E.did, COUNT(*), AVG(E.sal) FROM Emp E, Dept D "
    "WHERE E.did = D.did GROUP BY E.did",
    // Filter Join (magic) + final ORDER BY through the row-only SortOp.
    "SELECT E.did AS d, E.sal AS s, V.avgcomp FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgcomp "
    "ORDER BY d, s",
};

TEST(BatchIdentitySweepTest, DopTimesBatchSizeGridIsByteIdentical) {
  Database db;
  MakeWorkload(&db);
  for (const char* query : kSweepQueries) {
    SCOPED_TRACE(query);
    // Row-mode sequential execution is the reference.
    db.set_exec_batch_size(0);
    auto reference = db.Query(query);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (int dop : {1, 4}) {
      for (int64_t batch : {0, 1, 7, 1024}) {
        SCOPED_TRACE("dop=" + std::to_string(dop) +
                     " batch=" + std::to_string(batch));
        db.set_exec_batch_size(batch);
        auto result = db.ExecuteParallel(query, dop);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        ExpectRowsIdentical(result->rows, reference->rows);
        ExpectCountersEqual(result->counters, reference->counters);
      }
    }
  }
}

TEST(BatchIdentitySweepTest, SpillUnderTinyLimitIsByteIdentical) {
  char templ[] = "/tmp/magicdb-batch-test-XXXXXX";
  const char* dir = mkdtemp(templ);
  ASSERT_NE(dir, nullptr);
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 4;
  so.spill_dir = dir;
  so.spill_batch_bytes = 1024;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  const char* query =
      "SELECT E.did, COUNT(*), AVG(E.sal) FROM Emp E, Dept D "
      "WHERE E.did = D.did GROUP BY E.did";
  ExecOptions row_exec;
  row_exec.batch_size = 0;
  auto reference = session->Query(query, row_exec);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference->rows.empty());
  for (int64_t limit : {int64_t{16} * 1024, int64_t{0}}) {
    for (int64_t batch : {0, 7, 1024}) {
      SCOPED_TRACE("limit=" + std::to_string(limit) +
                   " batch=" + std::to_string(batch));
      ExecOptions exec;
      exec.memory_limit_bytes = limit;
      exec.batch_size = batch;
      auto result = session->Query(query, exec);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectRowsIdentical(result->rows, reference->rows);
    }
  }
}

TEST(BatchIdentitySweepTest, PlanCacheKeysBatchSizesSeparately) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  const char* query = "SELECT E.eid FROM Emp E WHERE E.age < 30";
  // Alternating batch sizes on one session must each execute correctly:
  // the effective batch size is part of the plan-cache key, so a tree
  // opened for one mode is never resumed in the other.
  std::vector<Tuple> reference;
  for (int round = 0; round < 2; ++round) {
    for (int64_t batch : {0, 1024, 7}) {
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " batch=" + std::to_string(batch));
      ExecOptions exec;
      exec.batch_size = batch;
      auto result = session->Query(query, exec);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      if (reference.empty()) reference = result->rows;
      ExpectRowsIdentical(result->rows, reference);
    }
  }
}

}  // namespace
}  // namespace magicdb
