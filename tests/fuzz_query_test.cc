// Randomized end-to-end fuzzing: generate random schemas, data and queries
// within the supported SQL subset, then execute each query under the
// cost-based optimizer and under a nested-loops-only reference
// configuration — results must agree exactly. Seeds are fixed, so failures
// reproduce deterministically.

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

/// Builds a random 2-3 table database with a view, returning table names.
std::vector<std::string> BuildRandomDatabase(Database* db, Random* rng) {
  const int num_tables = 2 + static_cast<int>(rng->Uniform(2));
  std::vector<std::string> tables;
  for (int t = 0; t < num_tables; ++t) {
    const std::string name = "t" + std::to_string(t);
    MAGICDB_CHECK_OK(
        db->Execute("CREATE TABLE " + name + " (k INT, v INT, w DOUBLE)"));
    const int rows = 5 + static_cast<int>(rng->Uniform(120));
    const int keys = 1 + static_cast<int>(rng->Uniform(15));
    std::vector<Tuple> data;
    for (int i = 0; i < rows; ++i) {
      // ~5% NULL keys to exercise three-valued join semantics.
      Value k = rng->Bernoulli(0.05)
                    ? Value::Null()
                    : Value::Int64(static_cast<int64_t>(rng->Uniform(keys)));
      data.push_back({k, Value::Int64(static_cast<int64_t>(rng->Uniform(50))),
                      Value::Double(rng->NextDouble() * 100)});
    }
    MAGICDB_CHECK_OK(db->LoadRows(name, std::move(data)));
    if (rng->Bernoulli(0.5)) {
      (*db->catalog()->Lookup(name))->table->CreateHashIndex({0});
    }
    tables.push_back(name);
  }
  MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  // A view over the first table.
  MAGICDB_CHECK_OK(db->Execute(
      "CREATE VIEW agg0 AS SELECT k, SUM(v) AS s, COUNT(*) AS c FROM t0 "
      "GROUP BY k"));
  tables.push_back("agg0");
  return tables;
}

/// Generates a random join query over 1-3 of the relations.
std::string RandomQuery(const std::vector<std::string>& tables, Random* rng) {
  const int nfrom = 1 + static_cast<int>(rng->Uniform(3));
  std::vector<std::string> aliases;
  std::ostringstream from;
  for (int i = 0; i < nfrom; ++i) {
    const std::string& table =
        tables[rng->Uniform(static_cast<uint64_t>(tables.size()))];
    const std::string alias = "r" + std::to_string(i);
    if (i > 0) from << ", ";
    from << table << " " << alias;
    aliases.push_back(alias);
  }
  std::ostringstream where;
  // Chain equi joins on k.
  for (size_t i = 1; i < aliases.size(); ++i) {
    if (i > 1) where << " AND ";
    where << aliases[i - 1] << ".k = " << aliases[i] << ".k";
  }
  // Optional local predicate.
  if (rng->Bernoulli(0.7)) {
    if (where.tellp() > 0) where << " AND ";
    where << aliases[0] << ".k "
          << (rng->Bernoulli(0.5) ? "<" : ">=") << " "
          << rng->Uniform(10);
  }
  std::string select = aliases[0] + ".k";
  for (size_t i = 0; i < aliases.size(); ++i) {
    select += ", " + aliases[i] + ".k";
  }
  std::string sql = "SELECT " + select + " FROM " + from.str();
  const std::string pred = where.str();
  if (!pred.empty()) sql += " WHERE " + pred;
  return sql;
}

class FuzzQueryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzQueryTest, AllModesAgreeOnRandomQueries) {
  Random rng(GetParam());
  Database db;
  const std::vector<std::string> tables = BuildRandomDatabase(&db, &rng);
  for (int q = 0; q < 12; ++q) {
    const std::string sql = RandomQuery(tables, &rng);
    // Reference: nested loops only, no magic.
    OptimizerOptions nl_only;
    nl_only.enable_hash_join = false;
    nl_only.enable_sort_merge = false;
    nl_only.enable_index_nested_loops = false;
    nl_only.magic_mode = OptimizerOptions::MagicMode::kNever;
    nl_only.filter_join_on_stored = false;
    *db.mutable_optimizer_options() = nl_only;
    auto reference = db.Query(sql);
    ASSERT_TRUE(reference.ok()) << sql << "\n"
                                << reference.status().ToString();

    for (auto mode : {OptimizerOptions::MagicMode::kCostBased,
                      OptimizerOptions::MagicMode::kAlwaysOnVirtual}) {
      OptimizerOptions opts;
      opts.magic_mode = mode;
      opts.filter_join_on_stored = true;
      *db.mutable_optimizer_options() = opts;
      auto result = db.Query(sql);
      ASSERT_TRUE(result.ok()) << sql << "\n" << result.status().ToString();
      EXPECT_TRUE(SameMultiset(result->rows, reference->rows))
          << "seed=" << GetParam() << " mode="
          << (mode == OptimizerOptions::MagicMode::kCostBased ? "cost"
                                                              : "always")
          << "\nquery: " << sql << "\ngot " << result->rows.size()
          << " rows, reference " << reference->rows.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzQueryTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace magicdb
