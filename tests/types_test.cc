#include <gtest/gtest.h>

#include "src/types/schema.h"
#include "src/types/tuple.h"
#include "src/types/value.h"

namespace magicdb {
namespace {

TEST(ValueTest, NullBasics) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
  EXPECT_EQ(Value::Null(), Value());
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_FALSE(Value::Bool(false).AsBool());
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Int64(1).type(), DataType::kInt64);
  EXPECT_EQ(Value::Double(1).type(), DataType::kDouble);
  EXPECT_EQ(Value::String("s").type(), DataType::kString);
}

TEST(ValueTest, NumericCoercion) {
  auto n = Value::Int64(3).AsNumeric();
  ASSERT_TRUE(n.ok());
  EXPECT_DOUBLE_EQ(*n, 3.0);
  auto d = Value::Double(3.5).AsNumeric();
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(*d, 3.5);
  EXPECT_FALSE(Value::String("x").AsNumeric().ok());
  EXPECT_FALSE(Value::Null().AsNumeric().ok());
}

TEST(ValueTest, CrossTypeNumericComparison) {
  EXPECT_EQ(Value::Int64(1).Compare(Value::Double(1.0)), 0);
  EXPECT_LT(Value::Int64(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int64(2)), 0);
}

TEST(ValueTest, NullOrdersFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null()), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("abc").Compare(Value::String("abc")), 0);
}

TEST(ValueTest, MixedTypeRankOrdering) {
  // bool < numeric < string (stable, arbitrary total order for sorting).
  EXPECT_LT(Value::Bool(true).Compare(Value::Int64(0)), 0);
  EXPECT_LT(Value::Int64(999).Compare(Value::String("")), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(7).Hash(), Value::Double(7.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int64(7).Hash(), Value::Int64(8).Hash());
}

TEST(ValueTest, LargeIntegerExactComparison) {
  // Values beyond double precision must still compare exactly as int64.
  const int64_t a = (1LL << 60) + 1;
  const int64_t b = (1LL << 60) + 2;
  EXPECT_LT(Value::Int64(a).Compare(Value::Int64(b)), 0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Int64(5).ToString(), "5");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
}

TEST(ValueTest, ByteWidth) {
  EXPECT_EQ(Value::Int64(1).ByteWidth(), 8);
  EXPECT_EQ(Value::String("abcd").ByteWidth(), 8);  // 4 chars + 4 overhead
}

TEST(SchemaTest, FindColumnQualified) {
  Schema s({{"E", "did", DataType::kInt64}, {"D", "did", DataType::kInt64}});
  auto idx = s.FindColumn("E", "did");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 0);
  idx = s.FindColumn("D", "did");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
}

TEST(SchemaTest, UnqualifiedAmbiguity) {
  Schema s({{"E", "did", DataType::kInt64}, {"D", "did", DataType::kInt64}});
  auto idx = s.FindColumn("", "did");
  ASSERT_FALSE(idx.ok());
  EXPECT_EQ(idx.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, UnqualifiedUnique) {
  Schema s({{"E", "did", DataType::kInt64}, {"E", "sal", DataType::kDouble}});
  auto idx = s.FindColumn("", "sal");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
}

TEST(SchemaTest, DottedLookup) {
  Schema s({{"E", "did", DataType::kInt64}, {"E", "sal", DataType::kDouble}});
  auto idx = s.FindColumn("E.sal");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
  EXPECT_FALSE(s.FindColumn("E.nope").ok());
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema a({{"E", "did", DataType::kInt64}});
  Schema b({{"D", "budget", DataType::kDouble}});
  Schema c = a.Concat(b);
  ASSERT_EQ(c.num_columns(), 2);
  EXPECT_EQ(c.column(0).name, "did");
  EXPECT_EQ(c.column(1).name, "budget");
}

TEST(SchemaTest, WithQualifier) {
  Schema a({{"E", "did", DataType::kInt64}, {"", "x", DataType::kString}});
  Schema q = a.WithQualifier("V");
  EXPECT_EQ(q.column(0).qualifier, "V");
  EXPECT_EQ(q.column(1).qualifier, "V");
}

TEST(SchemaTest, TupleWidthBytes) {
  Schema s({{"t", "a", DataType::kInt64},
            {"t", "b", DataType::kDouble},
            {"t", "c", DataType::kString},
            {"t", "d", DataType::kBool}});
  EXPECT_EQ(s.TupleWidthBytes(), 8 + 8 + 16 + 1);
}

TEST(TupleTest, ConcatAndProject) {
  Tuple a = {Value::Int64(1), Value::String("x")};
  Tuple b = {Value::Double(2.5)};
  Tuple c = ConcatTuples(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[2], Value::Double(2.5));
  Tuple p = ProjectTuple(c, {2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], Value::Double(2.5));
  EXPECT_EQ(p[1], Value::Int64(1));
}

TEST(TupleTest, HashColumnsMatchesEqualColumns) {
  Tuple a = {Value::Int64(1), Value::String("x"), Value::Int64(9)};
  Tuple b = {Value::Int64(1), Value::String("y"), Value::Int64(9)};
  EXPECT_EQ(HashTupleColumns(a, {0, 2}), HashTupleColumns(b, {0, 2}));
  EXPECT_NE(HashTupleColumns(a, {0, 1}), HashTupleColumns(b, {0, 1}));
}

TEST(TupleTest, CompareColumns) {
  Tuple a = {Value::Int64(1), Value::Int64(5)};
  Tuple b = {Value::Int64(5), Value::Int64(1)};
  EXPECT_EQ(CompareTupleColumns(a, b, {0}, {1}), 0);
  EXPECT_LT(CompareTupleColumns(a, b, {0}, {0}), 0);
}

TEST(TupleTest, WholeTupleCompare) {
  Tuple a = {Value::Int64(1), Value::Int64(2)};
  Tuple b = {Value::Int64(1), Value::Int64(3)};
  Tuple c = {Value::Int64(1)};
  EXPECT_LT(CompareTuples(a, b), 0);
  EXPECT_GT(CompareTuples(a, c), 0);  // longer tuple with equal prefix
  EXPECT_EQ(CompareTuples(a, a), 0);
}

TEST(TupleTest, ToStringRendering) {
  Tuple t = {Value::Int64(1), Value::Null()};
  EXPECT_EQ(TupleToString(t), "(1, NULL)");
}

}  // namespace
}  // namespace magicdb
