// Tests for the morsel-driven parallel execution subsystem: the
// work-stealing thread pool, morsel partitioning, and the end-to-end
// guarantees of ParallelExecutor / Database::ExecuteParallel — results
// byte-identical to sequential execution at any DoP, and merged per-worker
// cost counters exactly equal to a single-threaded execution's.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/exec/agg_state.h"
#include "src/exec/aggregate_op.h"
#include "src/expr/expr.h"
#include "src/optimizer/cost_model.h"
#include "src/parallel/morsel.h"
#include "src/parallel/parallel_exec.h"
#include "src/parallel/thread_pool.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

// ----- ThreadPool -----

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolTest, StealsUnderImbalance) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  // Pile all tasks onto worker 0's deque; the only way workers 1-3 can
  // contribute (and the pool drain in reasonable time) is by stealing.
  for (int i = 0; i < 64; ++i) {
    pool.SubmitTo(0, [&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 64);
  EXPECT_GT(pool.steal_count(), 0);
}

TEST(ThreadPoolTest, RunOnAllWorkersHitsEachWorkerOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  std::vector<Status> statuses = pool.RunOnAllWorkers([&](int w) -> Status {
    hits[w].fetch_add(1);
    return w == 1 ? Status::Internal("worker 1 fails") : Status::OK();
  });
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_FALSE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ----- MorselSource -----

TEST(MorselTest, MorselsArePageAligned) {
  MorselSource source(100000, /*rows_per_page=*/7, /*target_rows=*/4096);
  EXPECT_EQ(source.morsel_rows() % 7, 0);
  EXPECT_GE(source.morsel_rows(), 4096);
  Morsel m;
  while (source.Next(&m)) {
    EXPECT_EQ(m.begin % 7, 0);  // every morsel starts on a page boundary
    EXPECT_LE(m.end, 100000);
  }
}

TEST(MorselTest, ConcurrentClaimsCoverEveryRowExactlyOnce) {
  constexpr int64_t kRows = 100001;  // deliberately not a round number
  MorselSource source(kRows, /*rows_per_page=*/13, /*target_rows=*/512);
  std::vector<std::atomic<int>> claimed(kRows);
  for (auto& c : claimed) c.store(0);
  std::vector<std::thread> threads;
  std::vector<std::vector<int64_t>> first_rows(4);  // per-thread claim order
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Morsel m;
      while (source.Next(&m)) {
        first_rows[t].push_back(m.begin);
        for (int64_t r = m.begin; r < m.end; ++r) {
          claimed[r].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int64_t r = 0; r < kRows; ++r) {
    ASSERT_EQ(claimed[r].load(), 1) << "row " << r;
  }
  // Claims are monotonically increasing per thread — the property the
  // gather merge relies on.
  for (const auto& order : first_rows) {
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }
}

// ----- End-to-end parallel execution -----

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// Emp/Dept/Bonus workload (no indexes, hash joins only) with the DepComp
// aggregate view from the paper's running example.
void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(17);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 200; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 6; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  // Steer planning to hash joins (the parallel-safe join method); there
  // are no indexes, so index nested loops is out anyway.
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

TEST(ParallelExecTest, HashJoinQueryIdenticalAtDop4) {
  Database db;
  MakeWorkload(&db);
  const char* query =
      "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
      "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq->used_dop, 1);
  auto par = db.ExecuteParallel(query, 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 4) << par->parallel_fallback_reason;
  ASSERT_FALSE(seq->rows.empty());
  ExpectRowsIdentical(par->rows, seq->rows);
  ExpectCountersEqual(par->counters, seq->counters);
  // Query() must agree too (same plan, same order).
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  ExpectRowsIdentical(seq->rows, plain->rows);
  ExpectCountersEqual(seq->counters, plain->counters);
}

TEST(ParallelExecTest, FilterJoinQueryIdenticalAtEveryDop) {
  Database db;
  MakeWorkload(&db);
  // The optimizer plans this as HashJoin(FilterJoin(Dept, magic view),
  // Emp) — a Filter Join in the middle of the driving chain, exercising
  // the full parallel protocol: partitioned filter-set build, coordinator
  // inner, partitioned hash-join build, parallel probes.
  const char* query =
      "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgcomp "
      "AND E.age < 30 AND D.budget > 100000";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_FALSE(seq->rows.empty());
  ASSERT_FALSE(seq->filter_join_measured.empty())
      << "workload regressed: expected a Filter Join in the plan";
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
    // The summed per-phase Filter Join measurements also match.
    ASSERT_EQ(par->filter_join_measured.size(),
              seq->filter_join_measured.size());
    for (size_t i = 0; i < par->filter_join_measured.size(); ++i) {
      EXPECT_NEAR(par->filter_join_measured[i].Total(),
                  seq->filter_join_measured[i].Total(), 1e-6);
    }
  }
}

TEST(ParallelExecTest, ViewBuildSideFallsBack) {
  Database db;
  MakeWorkload(&db);
  // Here the cheapest plan hash-joins Emp against the aggregated view
  // directly; a build side that is not a base-table scan chain cannot be
  // partitioned, so the executor must fall back — and stay correct.
  const char* query =
      "SELECT E.eid, V.avgcomp FROM Emp E, DepComp V "
      "WHERE E.did = V.did AND E.sal > V.avgcomp AND E.age < 30";
  auto par = db.ExecuteParallel(query, 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  if (par->used_dop == 1) {
    EXPECT_FALSE(par->parallel_fallback_reason.empty());
  }
  ExpectRowsIdentical(par->rows, plain->rows);
  ExpectCountersEqual(par->counters, plain->counters);
}

TEST(ParallelExecTest, UnsafeShapesFallBackAndStayCorrect) {
  Database db;
  MakeWorkload(&db);
  // A Sort at the top is not a parallel-safe pipeline shape.
  const char* query =
      "SELECT E.eid, E.sal FROM Emp E WHERE E.age < 30 ORDER BY eid";
  auto par = db.ExecuteParallel(query, 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 1);
  EXPECT_FALSE(par->parallel_fallback_reason.empty());
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  ExpectRowsIdentical(par->rows, plain->rows);
  ExpectCountersEqual(par->counters, plain->counters);
}

// ----- Parallel aggregation -----

TEST(ParallelAggTest, GroupByIdenticalAtEveryDop) {
  Database db;
  MakeWorkload(&db);
  // COUNT / SUM(int) / MIN / MAX / AVG(int): every double addition the
  // merge performs is exact, so parallel results must be byte-identical to
  // sequential, not merely close.
  const char* query =
      "SELECT E.did, COUNT(*) AS c, SUM(E.eid) AS s, MIN(E.sal) AS mn, "
      "MAX(E.age) AS mx, AVG(E.eid) AS av FROM Emp E GROUP BY E.did";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_EQ(seq->rows.size(), 200u);
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
  }
  // The plain sequential path agrees too (same first-seen output order).
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  ExpectRowsIdentical(seq->rows, plain->rows);
  ExpectCountersEqual(seq->counters, plain->counters);
}

TEST(ParallelAggTest, GroupByOverHashJoinIdenticalAtEveryDop) {
  Database db;
  MakeWorkload(&db);
  // Aggregation above a partitioned hash join: group first-seen order is
  // ranked by the join's probe positions (with fan-out disambiguated by
  // the per-position emission index).
  const char* query =
      "SELECT E.did, COUNT(*) AS c, SUM(E.eid) AS s, MIN(E.sal) AS m "
      "FROM Emp E, Dept D WHERE E.did = D.did AND D.budget > 100000 "
      "GROUP BY E.did";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_FALSE(seq->rows.empty());
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
  }
}

TEST(ParallelAggTest, GroupByOverFilterJoinIdenticalAtEveryDop) {
  Database db;
  MakeWorkload(&db);
  // Aggregation above the magic Filter Join: the (pos, sub) ranks flow from
  // the filter join's probe positions through the aggregate's group
  // first-seen order.
  const char* query =
      "SELECT E.did, COUNT(*) AS c, MIN(E.sal) AS m "
      "FROM Emp E, Dept D, DepComp V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgcomp "
      "AND E.age < 30 AND D.budget > 100000 GROUP BY E.did";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_FALSE(seq->rows.empty());
  ASSERT_FALSE(seq->filter_join_measured.empty())
      << "workload regressed: expected a Filter Join in the plan";
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
  }
}

TEST(ParallelAggTest, NullOnlyGroupsStayNullAtEveryDop) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE T (g INT, v DOUBLE)"));
  std::vector<Tuple> rows;
  for (int i = 0; i < 4000; ++i) {
    const int g = i % 8;
    // Groups 0..3 carry (integer-valued) doubles; groups 4..7 are
    // NULL-only and must finalize to NULL / COUNT 0 after the merge.
    rows.push_back({Value::Int64(g), g < 4 ? Value::Double(i)
                                           : Value::Null()});
  }
  MAGICDB_CHECK_OK(db.LoadRows("T", std::move(rows)));
  const char* query =
      "SELECT T.g, COUNT(T.v) AS c, SUM(T.v) AS s, MIN(T.v) AS mn, "
      "AVG(T.v) AS a FROM T GROUP BY T.g";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_EQ(seq->rows.size(), 8u);
  for (const Tuple& row : seq->rows) {
    if (row[0].AsInt64() < 4) continue;
    EXPECT_EQ(row[1].AsInt64(), 0);
    EXPECT_TRUE(row[2].is_null());
    EXPECT_TRUE(row[3].is_null());
    EXPECT_TRUE(row[4].is_null());
  }
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
  }
}

TEST(ParallelAggTest, EmptyInputScalarAggregateOneRowAtEveryDop) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE T (g INT, v DOUBLE)"));
  // No rows loaded: a scalar aggregate still yields exactly one row, with
  // COUNT(*) = 0 and NULL for the value aggregates — at every DoP, even
  // though no worker ever claims a morsel.
  const char* query =
      "SELECT COUNT(*) AS c, COUNT(T.v) AS cv, SUM(T.v) AS s, "
      "MIN(T.v) AS m FROM T";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_EQ(seq->rows.size(), 1u);
  EXPECT_EQ(seq->rows[0][0].AsInt64(), 0);
  EXPECT_EQ(seq->rows[0][1].AsInt64(), 0);
  EXPECT_TRUE(seq->rows[0][2].is_null());
  EXPECT_TRUE(seq->rows[0][3].is_null());
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
  }
}

// Builds a partial state over int64 inputs exactly as the operator's
// accumulate path does.
AggState MakeIntState(std::initializer_list<int64_t> vals) {
  AggState st;
  for (int64_t v : vals) {
    st.count += 1;
    st.sum += static_cast<double>(v);
    if (st.int_sum) st.isum += v;
    Value val = Value::Int64(v);
    if (st.min.is_null() || val.Compare(st.min) < 0) st.min = val;
    if (st.max.is_null() || val.Compare(st.max) > 0) st.max = val;
  }
  return st;
}

TEST(AggStateTest, CombineAddsExactlyAndEmptyIsIdentity) {
  AggState a = MakeIntState({1, 2, 3});
  AggState b = MakeIntState({10, -5});
  AggState merged = a;
  merged.CombineFrom(b);
  EXPECT_EQ(merged.count, 5);
  EXPECT_TRUE(merged.int_sum);
  EXPECT_EQ(merged.isum, 11);
  EXPECT_EQ(merged.sum, 11.0);
  EXPECT_EQ(merged.min.AsInt64(), -5);
  EXPECT_EQ(merged.max.AsInt64(), 10);

  // An empty (all-NULL / no-input) partial is the combine identity.
  AggState with_empty = a;
  with_empty.CombineFrom(AggState{});
  EXPECT_EQ(with_empty.count, a.count);
  EXPECT_EQ(with_empty.isum, a.isum);
  EXPECT_TRUE(with_empty.int_sum);
  EXPECT_EQ(with_empty.min.Compare(a.min), 0);
  EXPECT_EQ(with_empty.max.Compare(a.max), 0);
}

TEST(AggStateTest, Int64PromotionIdenticalUnderMergeOrder) {
  AggState ints = MakeIntState({1, 2, 3});
  AggState dbls;  // one double input: 2.5 forces SUM promotion
  dbls.count = 1;
  dbls.sum = 2.5;
  dbls.int_sum = false;
  dbls.min = Value::Double(2.5);
  dbls.max = Value::Double(2.5);

  AggState ab = ints;
  ab.CombineFrom(dbls);
  AggState ba = dbls;
  ba.CombineFrom(ints);
  // Either merge order demotes int64 exactness — exactly as a sequential
  // pass over the union of inputs would — and yields the same sum.
  EXPECT_FALSE(ab.int_sum);
  EXPECT_FALSE(ba.int_sum);
  EXPECT_EQ(ab.sum, 8.5);
  EXPECT_EQ(ba.sum, 8.5);
  EXPECT_EQ(ab.count, 4);
  EXPECT_EQ(ba.count, 4);
  EXPECT_EQ(ab.min.Compare(ba.min), 0);
  EXPECT_EQ(ab.max.Compare(ba.max), 0);
}

// Source operator that never checks the cancellation token, isolating the
// aggregate build loop's own checkpoint.
class UncheckedSourceOp final : public Operator {
 public:
  UncheckedSourceOp(Schema schema, int64_t rows)
      : Operator(std::move(schema)), rows_(rows) {}
  Status Open(ExecContext* /*ctx*/) override {
    next_ = 0;
    return Status::OK();
  }
  Status Next(Tuple* out, bool* eof) override {
    if (next_ >= rows_) {
      *eof = true;
      return Status::OK();
    }
    *out = {Value::Int64(next_ % 7), Value::Int64(next_)};
    ++next_;
    *eof = false;
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  std::string Describe() const override { return "UncheckedSource"; }

 private:
  int64_t rows_;
  int64_t next_ = 0;
};

TEST(ParallelAggTest, BuildLoopHitsCancellationCheckpoint) {
  Schema in(std::vector<Column>{{"t", "g", DataType::kInt64},
                                {"t", "v", DataType::kInt64}});
  std::vector<ExprPtr> group_by;
  group_by.push_back(MakeColumnRef(0, DataType::kInt64, "g"));
  std::vector<AggSpec> aggs;
  AggSpec spec;
  spec.func = AggFunc::kSum;
  spec.arg = MakeColumnRef(1, DataType::kInt64, "v");
  spec.output_name = "s";
  aggs.push_back(std::move(spec));
  Schema out(std::vector<Column>{{"", "g", DataType::kInt64},
                                 {"", "s", DataType::kInt64}});
  HashAggregateOp agg(std::make_unique<UncheckedSourceOp>(in, 100000),
                      std::move(group_by), std::move(aggs), out);
  ExecContext ctx;
  auto token = std::make_shared<CancelToken>();
  token->Cancel();
  ctx.set_cancel_token(token);
  // The child never checks the token, so only the aggregate's build-loop
  // checkpoint can stop this 100k-row aggregation.
  Status st = agg.Open(&ctx);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCancelled);
}

TEST(ParallelExecTest, LimitFallsBack) {
  Database db;
  MakeWorkload(&db);
  auto par = db.ExecuteParallel("SELECT E.eid FROM Emp E LIMIT 5", 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 1);
  EXPECT_EQ(par->parallel_fallback_reason, "LIMIT clause");
  EXPECT_EQ(par->rows.size(), 5u);
}

TEST(ParallelExecTest, DopCostingKnobDividesCpuTermsOnly) {
  const double seq_scan_1 = costs::SeqScan(10000, 8, 1);
  const double seq_scan_4 = costs::SeqScan(10000, 8, 4);
  EXPECT_LT(seq_scan_4, seq_scan_1);
  // Page term unchanged: the difference is exactly 3/4 of the CPU term.
  EXPECT_NEAR(seq_scan_1 - seq_scan_4,
              CostConstants::kCpuTupleCost * 10000 * 0.75, 1e-9);
  EXPECT_NEAR(costs::HashBuild(1000, 4), costs::HashBuild(1000) / 4.0, 1e-9);
  EXPECT_NEAR(costs::HashProbe(1000, 100, 2),
              costs::HashProbe(1000, 100) / 2.0, 1e-9);
  EXPECT_NEAR(costs::HashAggregate(1000, 3000, 50, 4),
              costs::HashAggregate(1000, 3000, 50) / 4.0, 1e-9);
  // At dop=1 the aggregate formula decomposes into the pre-existing terms,
  // so sequential plan costs are unchanged by the refactor.
  EXPECT_NEAR(costs::HashAggregate(1000, 3000, 50),
              costs::HashBuild(1000) + costs::ExprEval(3000) +
                  costs::TupleCpu(50),
              1e-12);

  // The knob flows through OptimizerOptions into plan cost estimates.
  Database db;
  MakeWorkload(&db);
  const char* query =
      "SELECT E.eid FROM Emp E, Dept D WHERE E.did = D.did";
  auto est1 = db.Query(query);
  ASSERT_TRUE(est1.ok());
  db.mutable_optimizer_options()->degree_of_parallelism = 4;
  auto est4 = db.Query(query);
  ASSERT_TRUE(est4.ok());
  EXPECT_LT(est4->est_cost, est1->est_cost);

  // GROUP BY plans are credited for parallel aggregation too.
  const char* agg_query =
      "SELECT E.did, COUNT(*) AS c FROM Emp E GROUP BY E.did";
  db.mutable_optimizer_options()->degree_of_parallelism = 1;
  auto agg1 = db.Query(agg_query);
  ASSERT_TRUE(agg1.ok());
  db.mutable_optimizer_options()->degree_of_parallelism = 4;
  auto agg4 = db.Query(agg_query);
  ASSERT_TRUE(agg4.ok());
  EXPECT_LT(agg4->est_cost, agg1->est_cost);
}

}  // namespace
}  // namespace magicdb
