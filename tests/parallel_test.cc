// Tests for the morsel-driven parallel execution subsystem: the
// work-stealing thread pool, morsel partitioning, and the end-to-end
// guarantees of ParallelExecutor / Database::ExecuteParallel — results
// byte-identical to sequential execution at any DoP, and merged per-worker
// cost counters exactly equal to a single-threaded execution's.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/optimizer/cost_model.h"
#include "src/parallel/morsel.h"
#include "src/parallel/parallel_exec.h"
#include "src/parallel/thread_pool.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

// ----- ThreadPool -----

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPoolTest, StealsUnderImbalance) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  // Pile all tasks onto worker 0's deque; the only way workers 1-3 can
  // contribute (and the pool drain in reasonable time) is by stealing.
  for (int i = 0; i < 64; ++i) {
    pool.SubmitTo(0, [&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 64);
  EXPECT_GT(pool.steal_count(), 0);
}

TEST(ThreadPoolTest, RunOnAllWorkersHitsEachWorkerOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  std::vector<Status> statuses = pool.RunOnAllWorkers([&](int w) -> Status {
    hits[w].fetch_add(1);
    return w == 1 ? Status::Internal("worker 1 fails") : Status::OK();
  });
  ASSERT_EQ(statuses.size(), 3u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_FALSE(statuses[1].ok());
  EXPECT_TRUE(statuses[2].ok());
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// ----- MorselSource -----

TEST(MorselTest, MorselsArePageAligned) {
  MorselSource source(100000, /*rows_per_page=*/7, /*target_rows=*/4096);
  EXPECT_EQ(source.morsel_rows() % 7, 0);
  EXPECT_GE(source.morsel_rows(), 4096);
  Morsel m;
  while (source.Next(&m)) {
    EXPECT_EQ(m.begin % 7, 0);  // every morsel starts on a page boundary
    EXPECT_LE(m.end, 100000);
  }
}

TEST(MorselTest, ConcurrentClaimsCoverEveryRowExactlyOnce) {
  constexpr int64_t kRows = 100001;  // deliberately not a round number
  MorselSource source(kRows, /*rows_per_page=*/13, /*target_rows=*/512);
  std::vector<std::atomic<int>> claimed(kRows);
  for (auto& c : claimed) c.store(0);
  std::vector<std::thread> threads;
  std::vector<std::vector<int64_t>> first_rows(4);  // per-thread claim order
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Morsel m;
      while (source.Next(&m)) {
        first_rows[t].push_back(m.begin);
        for (int64_t r = m.begin; r < m.end; ++r) {
          claimed[r].fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int64_t r = 0; r < kRows; ++r) {
    ASSERT_EQ(claimed[r].load(), 1) << "row " << r;
  }
  // Claims are monotonically increasing per thread — the property the
  // gather merge relies on.
  for (const auto& order : first_rows) {
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }
}

// ----- End-to-end parallel execution -----

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// Emp/Dept/Bonus workload (no indexes, hash joins only) with the DepComp
// aggregate view from the paper's running example.
void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(17);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 200; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 6; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  // Steer planning to hash joins (the parallel-safe join method); there
  // are no indexes, so index nested loops is out anyway.
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

TEST(ParallelExecTest, HashJoinQueryIdenticalAtDop4) {
  Database db;
  MakeWorkload(&db);
  const char* query =
      "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
      "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_EQ(seq->used_dop, 1);
  auto par = db.ExecuteParallel(query, 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 4) << par->parallel_fallback_reason;
  ASSERT_FALSE(seq->rows.empty());
  ExpectRowsIdentical(par->rows, seq->rows);
  ExpectCountersEqual(par->counters, seq->counters);
  // Query() must agree too (same plan, same order).
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  ExpectRowsIdentical(seq->rows, plain->rows);
  ExpectCountersEqual(seq->counters, plain->counters);
}

TEST(ParallelExecTest, FilterJoinQueryIdenticalAtEveryDop) {
  Database db;
  MakeWorkload(&db);
  // The optimizer plans this as HashJoin(FilterJoin(Dept, magic view),
  // Emp) — a Filter Join in the middle of the driving chain, exercising
  // the full parallel protocol: partitioned filter-set build, coordinator
  // inner, partitioned hash-join build, parallel probes.
  const char* query =
      "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgcomp "
      "AND E.age < 30 AND D.budget > 100000";
  auto seq = db.ExecuteParallel(query, 1);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  ASSERT_FALSE(seq->rows.empty());
  ASSERT_FALSE(seq->filter_join_measured.empty())
      << "workload regressed: expected a Filter Join in the plan";
  for (int dop : {2, 4, 8}) {
    auto par = db.ExecuteParallel(query, dop);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    EXPECT_EQ(par->used_dop, dop) << par->parallel_fallback_reason;
    ExpectRowsIdentical(par->rows, seq->rows);
    ExpectCountersEqual(par->counters, seq->counters);
    // The summed per-phase Filter Join measurements also match.
    ASSERT_EQ(par->filter_join_measured.size(),
              seq->filter_join_measured.size());
    for (size_t i = 0; i < par->filter_join_measured.size(); ++i) {
      EXPECT_NEAR(par->filter_join_measured[i].Total(),
                  seq->filter_join_measured[i].Total(), 1e-6);
    }
  }
}

TEST(ParallelExecTest, ViewBuildSideFallsBack) {
  Database db;
  MakeWorkload(&db);
  // Here the cheapest plan hash-joins Emp against the aggregated view
  // directly; a build side that is not a base-table scan chain cannot be
  // partitioned, so the executor must fall back — and stay correct.
  const char* query =
      "SELECT E.eid, V.avgcomp FROM Emp E, DepComp V "
      "WHERE E.did = V.did AND E.sal > V.avgcomp AND E.age < 30";
  auto par = db.ExecuteParallel(query, 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  if (par->used_dop == 1) {
    EXPECT_FALSE(par->parallel_fallback_reason.empty());
  }
  ExpectRowsIdentical(par->rows, plain->rows);
  ExpectCountersEqual(par->counters, plain->counters);
}

TEST(ParallelExecTest, UnsafeShapesFallBackAndStayCorrect) {
  Database db;
  MakeWorkload(&db);
  // Aggregation at the top is not a parallel-safe pipeline shape.
  const char* query =
      "SELECT E.did, AVG(E.sal) AS a FROM Emp E GROUP BY E.did";
  auto par = db.ExecuteParallel(query, 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 1);
  EXPECT_FALSE(par->parallel_fallback_reason.empty());
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  ExpectRowsIdentical(par->rows, plain->rows);
  ExpectCountersEqual(par->counters, plain->counters);
}

TEST(ParallelExecTest, LimitFallsBack) {
  Database db;
  MakeWorkload(&db);
  auto par = db.ExecuteParallel("SELECT E.eid FROM Emp E LIMIT 5", 4);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 1);
  EXPECT_EQ(par->parallel_fallback_reason, "LIMIT clause");
  EXPECT_EQ(par->rows.size(), 5u);
}

TEST(ParallelExecTest, DopCostingKnobDividesCpuTermsOnly) {
  const double seq_scan_1 = costs::SeqScan(10000, 8, 1);
  const double seq_scan_4 = costs::SeqScan(10000, 8, 4);
  EXPECT_LT(seq_scan_4, seq_scan_1);
  // Page term unchanged: the difference is exactly 3/4 of the CPU term.
  EXPECT_NEAR(seq_scan_1 - seq_scan_4,
              CostConstants::kCpuTupleCost * 10000 * 0.75, 1e-9);
  EXPECT_NEAR(costs::HashBuild(1000, 4), costs::HashBuild(1000) / 4.0, 1e-9);
  EXPECT_NEAR(costs::HashProbe(1000, 100, 2),
              costs::HashProbe(1000, 100) / 2.0, 1e-9);

  // The knob flows through OptimizerOptions into plan cost estimates.
  Database db;
  MakeWorkload(&db);
  const char* query =
      "SELECT E.eid FROM Emp E, Dept D WHERE E.did = D.did";
  auto est1 = db.Query(query);
  ASSERT_TRUE(est1.ok());
  db.mutable_optimizer_options()->degree_of_parallelism = 4;
  auto est4 = db.Query(query);
  ASSERT_TRUE(est4.ok());
  EXPECT_LT(est4->est_cost, est1->est_cost);
}

}  // namespace
}  // namespace magicdb
