#include <gtest/gtest.h>

#include "src/bloom/bloom_filter.h"
#include "src/common/hash.h"
#include "src/common/random.h"

namespace magicdb {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter f(4096, 5);
  Random rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 300; ++i) keys.push_back(rng.NextUint64());
  for (uint64_t k : keys) f.Add(k);
  for (uint64_t k : keys) EXPECT_TRUE(f.MayContain(k));
}

TEST(BloomFilterTest, FalsePositivesBounded) {
  BloomFilter f = BloomFilter::ForExpectedKeys(1000, 0.01);
  Random rng(2);
  for (int i = 0; i < 1000; ++i) f.Add(HashUint64(i));
  int fp = 0;
  const int probes = 10000;
  for (int i = 0; i < probes; ++i) {
    if (f.MayContain(HashUint64(1000000 + i))) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.03);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter f(1024, 4);
  Random rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(f.MayContain(rng.NextUint64()));
  }
}

TEST(BloomFilterTest, SizingRoundsUp) {
  BloomFilter f(1, 1);
  EXPECT_EQ(f.num_bits(), 64);
  BloomFilter g(65, 1);
  EXPECT_EQ(g.num_bits(), 128);
}

TEST(BloomFilterTest, HashCountClamped) {
  BloomFilter f(64, 100);
  EXPECT_LE(f.num_hashes(), 16);
  BloomFilter g(64, 0);
  EXPECT_GE(g.num_hashes(), 1);
}

TEST(BloomFilterTest, ForExpectedKeysHitsTargetRate) {
  BloomFilter f = BloomFilter::ForExpectedKeys(500, 0.05);
  for (int i = 0; i < 500; ++i) f.Add(HashUint64(i * 7919));
  EXPECT_NEAR(f.EstimatedFalsePositiveRate(), 0.05, 0.04);
}

TEST(BloomFilterTest, SizeBytesMatchesBits) {
  BloomFilter f(4096, 3);
  EXPECT_EQ(f.SizeBytes(), 4096 / 8);
}

TEST(BloomFilterTest, SaturatedFilterApproachesAllPositive) {
  BloomFilter f(64, 2);
  Random rng(4);
  for (int i = 0; i < 1000; ++i) f.Add(rng.NextUint64());
  int hits = 0;
  for (int i = 0; i < 100; ++i) {
    if (f.MayContain(rng.NextUint64())) ++hits;
  }
  EXPECT_GT(hits, 90);
  EXPECT_GT(f.EstimatedFalsePositiveRate(), 0.9);
}

}  // namespace
}  // namespace magicdb
