#include <gtest/gtest.h>

#include "src/catalog/catalog.h"
#include "src/common/logging.h"

namespace magicdb {
namespace {

Schema EmpSchema() {
  return Schema({{"", "did", DataType::kInt64},
                 {"", "sal", DataType::kDouble},
                 {"", "age", DataType::kInt64}});
}

TEST(CatalogTest, CreateAndLookupTable) {
  Catalog cat;
  auto t = cat.CreateTable("Emp", EmpSchema());
  ASSERT_TRUE(t.ok());
  auto entry = cat.Lookup("Emp");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogEntry::Kind::kBaseTable);
  EXPECT_EQ((*entry)->table, *t);
  EXPECT_FALSE((*entry)->IsVirtual());
  EXPECT_EQ((*entry)->schema.column(0).qualifier, "Emp");
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Emp", EmpSchema()).ok());
  EXPECT_EQ(cat.CreateTable("Emp", EmpSchema()).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, LookupMissing) {
  Catalog cat;
  EXPECT_EQ(cat.Lookup("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RemoteTableIsVirtualWithSite) {
  Catalog cat;
  auto t = cat.CreateRemoteTable("RemoteEmp", EmpSchema(), 2);
  ASSERT_TRUE(t.ok());
  auto entry = cat.Lookup("RemoteEmp");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogEntry::Kind::kRemoteTable);
  EXPECT_EQ((*entry)->site, 2);
  EXPECT_TRUE((*entry)->IsVirtual());
}

TEST(CatalogTest, RemoteSiteMustBePositive) {
  Catalog cat;
  EXPECT_FALSE(cat.CreateRemoteTable("R", EmpSchema(), 0).ok());
  EXPECT_FALSE(cat.CreateRemoteTable("R", EmpSchema(), -1).ok());
}

TEST(CatalogTest, RegisterViewRequalifiesSchema) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Emp", EmpSchema()).ok());
  auto entry = cat.Lookup("Emp");
  auto scan = std::make_shared<RelScanNode>("Emp", "E",
                                            (*entry)->schema.WithQualifier("E"));
  ASSERT_TRUE(cat.RegisterView("V", scan).ok());
  auto view = cat.Lookup("V");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->kind, CatalogEntry::Kind::kView);
  EXPECT_TRUE((*view)->IsVirtual());
  EXPECT_EQ((*view)->schema.column(0).qualifier, "V");
  EXPECT_NE((*view)->view_plan, nullptr);
}

TEST(CatalogTest, RegisterFunction) {
  Catalog cat;
  Schema args({{"", "x", DataType::kInt64}});
  Schema results({{"", "y", DataType::kInt64}});
  auto fn = std::make_unique<LambdaTableFunction>(
      "fn", args, results, [](const Tuple&, std::vector<Tuple>* out) {
        out->push_back({Value::Int64(1)});
        return Status::OK();
      });
  ASSERT_TRUE(cat.RegisterFunction(std::move(fn)).ok());
  auto entry = cat.Lookup("fn");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->kind, CatalogEntry::Kind::kTableFunction);
  EXPECT_EQ((*entry)->schema.num_columns(), 2);  // args ++ results
  EXPECT_TRUE((*entry)->IsVirtual());
}

TEST(CatalogTest, AnalyzeComputesStats) {
  Catalog cat;
  auto t = cat.CreateTable("Emp", EmpSchema());
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 50; ++i) {
    MAGICDB_CHECK_OK((*t)->Insert({Value::Int64(i % 5), Value::Double(i),
                                   Value::Int64(20 + i % 10)}));
  }
  ASSERT_TRUE(cat.Analyze("Emp").ok());
  auto entry = cat.Lookup("Emp");
  EXPECT_TRUE((*entry)->stats_valid);
  EXPECT_EQ((*entry)->stats.num_rows, 50);
  EXPECT_EQ((*entry)->stats.columns[0].num_distinct, 5);
}

TEST(CatalogTest, AnalyzeViewFails) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("Emp", EmpSchema()).ok());
  auto entry = cat.Lookup("Emp");
  auto scan = std::make_shared<RelScanNode>(
      "Emp", "E", (*entry)->schema.WithQualifier("E"));
  ASSERT_TRUE(cat.RegisterView("V", scan).ok());
  EXPECT_FALSE(cat.Analyze("V").ok());
}

TEST(CatalogTest, AnalyzeAllCoversStoredRelations) {
  Catalog cat;
  auto a = cat.CreateTable("A", EmpSchema());
  auto b = cat.CreateRemoteTable("B", EmpSchema(), 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  MAGICDB_CHECK_OK(
      (*a)->Insert({Value::Int64(1), Value::Double(1), Value::Int64(30)}));
  ASSERT_TRUE(cat.AnalyzeAll().ok());
  EXPECT_TRUE((*cat.Lookup("A"))->stats_valid);
  EXPECT_TRUE((*cat.Lookup("B"))->stats_valid);
}

TEST(CatalogTest, RelationNamesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("B", EmpSchema()).ok());
  ASSERT_TRUE(cat.CreateTable("A", EmpSchema()).ok());
  auto names = cat.RelationNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "A");
  EXPECT_EQ(names[1], "B");
}

TEST(LogicalPlanTest, TreePrinting) {
  Schema s({{"E", "did", DataType::kInt64}});
  auto scan = std::make_shared<RelScanNode>("Emp", "E", s);
  auto filter = std::make_shared<FilterNode>(
      scan, MakeComparison(CompareOp::kLt,
                           MakeColumnRef(0, DataType::kInt64, "E.did"),
                           MakeLiteral(Value::Int64(5))));
  std::string tree = filter->ToString();
  EXPECT_NE(tree.find("Filter"), std::string::npos);
  EXPECT_NE(tree.find("Scan Emp AS E"), std::string::npos);
}

TEST(LogicalPlanTest, AggSpecResultTypes) {
  AggSpec count_star{AggFunc::kCountStar, nullptr, "c"};
  EXPECT_EQ(count_star.ResultType(), DataType::kInt64);
  AggSpec avg{AggFunc::kAvg, MakeColumnRef(0, DataType::kInt64), "a"};
  EXPECT_EQ(avg.ResultType(), DataType::kDouble);
  AggSpec sum_int{AggFunc::kSum, MakeColumnRef(0, DataType::kInt64), "s"};
  EXPECT_EQ(sum_int.ResultType(), DataType::kInt64);
  AggSpec sum_dbl{AggFunc::kSum, MakeColumnRef(0, DataType::kDouble), "s"};
  EXPECT_EQ(sum_dbl.ResultType(), DataType::kDouble);
  AggSpec mx{AggFunc::kMax, MakeColumnRef(0, DataType::kString), "m"};
  EXPECT_EQ(mx.ResultType(), DataType::kString);
}

}  // namespace
}  // namespace magicdb
