#include <gtest/gtest.h>

#include "src/sql/lexer.h"
#include "src/sql/parser.h"

namespace magicdb {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE a >= 1.5");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 9u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "a");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Tokenize("select From wHeRe");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "FROM");
  EXPECT_EQ((*tokens)[2].text, "WHERE");
}

TEST(LexerTest, NumbersIntAndFloat) {
  auto tokens = Tokenize("42 3.14 1e3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.14);
  EXPECT_EQ((*tokens)[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[2].float_value, 1000.0);
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- comment\n 1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kInteger);
}

TEST(LexerTest, TwoCharSymbols) {
  auto tokens = Tokenize("a <> b <= c >= d != e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "<=");
  EXPECT_EQ((*tokens)[5].text, ">=");
  EXPECT_EQ((*tokens)[7].text, "!=");
}

TEST(LexerTest, BadCharacterFails) { EXPECT_FALSE(Tokenize("a @ b").ok()); }

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseStatement("SELECT a, b FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kSelect);
  ASSERT_EQ(stmt->select->items.size(), 2u);
  EXPECT_EQ(stmt->select->from[0].name, "t");
  EXPECT_EQ(stmt->select->from[0].alias, "t");
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  auto stmt = ParseStatement("SELECT E.did AS d, E.sal s FROM Emp E");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->items[0].alias, "d");
  EXPECT_EQ(stmt->select->items[1].alias, "s");
  EXPECT_EQ(stmt->select->from[0].alias, "E");
}

TEST(ParserTest, WhereWithPrecedence) {
  auto stmt =
      ParseStatement("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  // OR is the root; AND binds tighter.
  const ParsedExpr& w = *stmt->select->where;
  EXPECT_EQ(w.kind, ParsedExpr::Kind::kBinary);
  EXPECT_EQ(w.op, "OR");
  EXPECT_EQ(w.right->op, "AND");
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseStatement("SELECT a + b * c FROM t");
  ASSERT_TRUE(stmt.ok());
  const ParsedExpr& e = *stmt->select->items[0].expr;
  EXPECT_EQ(e.op, "+");
  EXPECT_EQ(e.right->op, "*");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = ParseStatement("SELECT (a + b) * c FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->op, "*");
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = ParseStatement(
      "SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY did "
      "HAVING COUNT(*) > 2");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->group_by.size(), 1u);
  ASSERT_NE(stmt->select->having, nullptr);
  EXPECT_EQ(stmt->select->items[1].expr->kind, ParsedExpr::Kind::kFuncCall);
  EXPECT_EQ(stmt->select->items[1].expr->func, "AVG");
}

TEST(ParserTest, CountStar) {
  auto stmt = ParseStatement("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->items[0].expr->star);
}

TEST(ParserTest, OrderByLimitDistinct) {
  auto stmt = ParseStatement(
      "SELECT DISTINCT a FROM t ORDER BY a DESC, b LIMIT 7");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_TRUE(stmt->select->distinct);
  ASSERT_EQ(stmt->select->order_by.size(), 2u);
  EXPECT_FALSE(stmt->select->order_by[0].ascending);
  EXPECT_TRUE(stmt->select->order_by[1].ascending);
  EXPECT_EQ(stmt->select->limit, 7);
}

TEST(ParserTest, Between) {
  auto stmt = ParseStatement("SELECT a FROM t WHERE a BETWEEN 1 AND 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->op, "AND");
  EXPECT_EQ(stmt->select->where->left->op, ">=");
  EXPECT_EQ(stmt->select->where->right->op, "<=");
}

TEST(ParserTest, CreateView) {
  auto stmt = ParseStatement(
      "CREATE VIEW V AS SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY "
      "did");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kCreateView);
  EXPECT_EQ(stmt->name, "V");
  ASSERT_NE(stmt->select, nullptr);
}

TEST(ParserTest, CreateTable) {
  auto stmt = ParseStatement(
      "CREATE TABLE Emp (did INT, sal DOUBLE, name VARCHAR(20), ok BOOL)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->kind, Statement::Kind::kCreateTable);
  ASSERT_EQ(stmt->columns.size(), 4u);
  EXPECT_EQ(stmt->columns[0].type, DataType::kInt64);
  EXPECT_EQ(stmt->columns[1].type, DataType::kDouble);
  EXPECT_EQ(stmt->columns[2].type, DataType::kString);
  EXPECT_EQ(stmt->columns[3].type, DataType::kBool);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseStatement("SELECT * FROM t;");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(stmt->select->items[0].star);
}

TEST(ParserTest, QualifiedIdentifiers) {
  auto stmt = ParseStatement("SELECT E.did FROM Emp E WHERE E.did = D.did");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->parts,
            (std::vector<std::string>{"E", "did"}));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("SELECT").ok());
  EXPECT_FALSE(ParseStatement("SELECT a").ok());           // missing FROM
  EXPECT_FALSE(ParseStatement("SELECT a FROM").ok());      // missing table
  EXPECT_FALSE(ParseStatement("FROM t SELECT a").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra garbage (").ok());
  EXPECT_FALSE(ParseStatement("CREATE NONSENSE x").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE (a = 1").ok());
}

TEST(ParserTest, InList) {
  auto stmt = ParseStatement("SELECT a FROM t WHERE a IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Desugars to (a=1 OR a=2) OR a=3.
  const ParsedExpr& w = *stmt->select->where;
  EXPECT_EQ(w.op, "OR");
  EXPECT_EQ(w.right->op, "=");
  EXPECT_EQ(w.left->op, "OR");
}

TEST(ParserTest, InListSingleElement) {
  auto stmt = ParseStatement("SELECT a FROM t WHERE a IN (7)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->where->op, "=");
}

TEST(ParserTest, NotInList) {
  auto stmt = ParseStatement("SELECT a FROM t WHERE NOT a IN (1, 2)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->select->where->kind, ParsedExpr::Kind::kUnary);
  EXPECT_EQ(stmt->select->where->op, "NOT");
}

TEST(ParserTest, InListErrors) {
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a IN (1,").ok());
}

TEST(ParserTest, NegativeNumbersAndUnaryMinus) {
  auto stmt = ParseStatement("SELECT -a FROM t WHERE a > -5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->select->items[0].expr->kind, ParsedExpr::Kind::kUnary);
  EXPECT_EQ(stmt->select->items[0].expr->op, "-");
}

}  // namespace
}  // namespace magicdb
