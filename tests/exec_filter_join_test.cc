#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/exec/basic_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/function_ops.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

Schema RSchema() {
  return Schema({{"r", "k", DataType::kInt64}, {"r", "x", DataType::kInt64}});
}
Schema SSchema() {
  return Schema({{"s", "k", DataType::kInt64}, {"s", "y", DataType::kInt64}});
}

std::unique_ptr<Table> MakeR(int n, int key_mod) {
  auto t = std::make_unique<Table>("r", RSchema());
  for (int i = 0; i < n; ++i) {
    MAGICDB_CHECK_OK(t->Insert({Value::Int64(i % key_mod), Value::Int64(i)}));
  }
  return t;
}

std::unique_ptr<Table> MakeS(int n, int key_mod) {
  auto t = std::make_unique<Table>("s", SSchema());
  for (int i = 0; i < n; ++i) {
    MAGICDB_CHECK_OK(
        t->Insert({Value::Int64(i % key_mod), Value::Int64(i * 10)}));
  }
  return t;
}

std::vector<Tuple> ReferenceJoin(const Table& r, const Table& s) {
  std::vector<Tuple> out;
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    for (int64_t j = 0; j < s.NumRows(); ++j) {
      if (r.row(i)[0].Compare(s.row(j)[0]) == 0) {
        out.push_back(ConcatTuples(r.row(i), s.row(j)));
      }
    }
  }
  return out;
}

/// Builds a FilterJoin whose inner is Scan(s) restricted by the filter set —
/// the local-semijoin shape of §5.3.
std::unique_ptr<FilterJoinOp> MakeFilterJoin(const Table* r, const Table* s,
                                             FilterSetImpl impl,
                                             int ship_site = 0) {
  const std::string binding_id = "fs_test";
  auto inner = std::make_unique<FilterProbeOp>(std::make_unique<SeqScanOp>(s),
                                               binding_id, std::vector<int>{0});
  return std::make_unique<FilterJoinOp>(
      std::make_unique<SeqScanOp>(r), std::move(inner), binding_id,
      std::vector<int>{0}, std::vector<int>{0}, nullptr, impl, ship_site);
}

TEST(FilterSetBindingTest, ExactMembership) {
  Schema ks({{"", "k", DataType::kInt64}});
  auto b = FilterSetBinding::Exact(
      ks, {{Value::Int64(1)}, {Value::Int64(3)}});
  EXPECT_EQ(b->NumKeys(), 2);
  EXPECT_TRUE(b->MayContain({Value::Int64(1)}, {0}));
  EXPECT_FALSE(b->MayContain({Value::Int64(2)}, {0}));
  EXPECT_FALSE(b->is_bloom());
}

TEST(FilterSetBindingTest, ProbeColumnsSelectFromWiderTuple) {
  Schema ks({{"", "k", DataType::kInt64}});
  auto b = FilterSetBinding::Exact(ks, {{Value::Int64(7)}});
  Tuple wide = {Value::String("pad"), Value::Int64(7), Value::Int64(9)};
  EXPECT_TRUE(b->MayContain(wide, {1}));
  EXPECT_FALSE(b->MayContain(wide, {2}));
}

TEST(FilterSetBindingTest, BloomNoFalseNegatives) {
  Schema ks({{"", "k", DataType::kInt64}});
  std::vector<Tuple> keys;
  for (int i = 0; i < 200; ++i) keys.push_back({Value::Int64(i * 3)});
  auto b = FilterSetBinding::Bloom(ks, keys, 10.0);
  EXPECT_TRUE(b->is_bloom());
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(b->MayContain({Value::Int64(i * 3)}, {0}));
  }
}

TEST(FilterSetBindingTest, BloomFalsePositiveRateBounded) {
  Schema ks({{"", "k", DataType::kInt64}});
  std::vector<Tuple> keys;
  for (int i = 0; i < 500; ++i) keys.push_back({Value::Int64(i)});
  auto b = FilterSetBinding::Bloom(ks, keys, 10.0);
  int fp = 0;
  const int probes = 2000;
  for (int i = 0; i < probes; ++i) {
    if (b->MayContain({Value::Int64(1000000 + i)}, {0})) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / probes, 0.05);
}

TEST(FilterSetBindingTest, BloomSmallerThanExactForLargeSets) {
  Schema ks({{"", "k", DataType::kInt64}});
  std::vector<Tuple> keys;
  for (int i = 0; i < 10000; ++i) keys.push_back({Value::Int64(i)});
  auto exact = FilterSetBinding::Exact(ks, keys);
  auto bloom = FilterSetBinding::Bloom(ks, keys, 10.0);
  EXPECT_LT(bloom->SizeBytes(), exact->SizeBytes());
}

TEST(FilterProbeOpTest, RestrictsChildToFilterSet) {
  auto s = MakeS(10, 10);
  ExecContext ctx;
  Schema ks({{"", "k", DataType::kInt64}});
  ctx.BindFilterSet("f1", FilterSetBinding::Exact(
                              ks, {{Value::Int64(2)}, {Value::Int64(5)}}));
  FilterProbeOp op(std::make_unique<SeqScanOp>(s.get()), "f1", {0});
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(FilterProbeOpTest, MissingBindingFailsOpen) {
  auto s = MakeS(3, 3);
  ExecContext ctx;
  FilterProbeOp op(std::make_unique<SeqScanOp>(s.get()), "nope", {0});
  EXPECT_FALSE(op.Open(&ctx).ok());
}

TEST(FilterSetScanOpTest, ScansKeysAsRelation) {
  ExecContext ctx;
  Schema ks({{"F", "k", DataType::kInt64}});
  ctx.BindFilterSet("f2", FilterSetBinding::Exact(
                              ks, {{Value::Int64(1)}, {Value::Int64(2)}}));
  FilterSetScanOp op("f2", ks);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST(FilterSetScanOpTest, BloomBindingCannotBeScanned) {
  ExecContext ctx;
  Schema ks({{"F", "k", DataType::kInt64}});
  ctx.BindFilterSet("f3",
                    FilterSetBinding::Bloom(ks, {{Value::Int64(1)}}, 10.0));
  FilterSetScanOp op("f3", ks);
  EXPECT_FALSE(op.Open(&ctx).ok());
}

TEST(FilterJoinOpTest, ExactMatchesReference) {
  auto r = MakeR(20, 4);
  auto s = MakeS(30, 12);
  ExecContext ctx;
  auto join = MakeFilterJoin(r.get(), s.get(), FilterSetImpl::kExact);
  auto rows = ExecuteToVector(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(SameMultiset(*rows, ReferenceJoin(*r, *s)));
  EXPECT_EQ(join->last_filter_set_size(), 4);
}

TEST(FilterJoinOpTest, BloomMatchesReference) {
  // The Bloom filter set is lossy (superset) but the final join re-checks
  // key equality, so results are identical.
  auto r = MakeR(20, 4);
  auto s = MakeS(30, 12);
  ExecContext ctx;
  auto join = MakeFilterJoin(r.get(), s.get(), FilterSetImpl::kBloom);
  auto rows = ExecuteToVector(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(SameMultiset(*rows, ReferenceJoin(*r, *s)));
}

TEST(FilterJoinOpTest, EmptyOuterYieldsEmpty) {
  Table r("r", RSchema());
  auto s = MakeS(10, 10);
  ExecContext ctx;
  auto join = MakeFilterJoin(&r, s.get(), FilterSetImpl::kExact);
  auto rows = ExecuteToVector(join.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(join->last_filter_set_size(), 0);
}

TEST(FilterJoinOpTest, ShipsFilterWhenRemote) {
  auto r = MakeR(10, 5);
  auto s = MakeS(10, 5);
  ExecContext ctx;
  auto join = MakeFilterJoin(r.get(), s.get(), FilterSetImpl::kExact,
                             /*ship_site=*/2);
  ASSERT_TRUE(ExecuteToVector(join.get(), &ctx).ok());
  EXPECT_GE(ctx.counters().messages_sent, 1);
  EXPECT_GT(ctx.counters().bytes_shipped, 0);
}

TEST(FilterJoinOpTest, UnbindsFilterSetOnClose) {
  auto r = MakeR(5, 5);
  auto s = MakeS(5, 5);
  ExecContext ctx;
  auto join = MakeFilterJoin(r.get(), s.get(), FilterSetImpl::kExact);
  ASSERT_TRUE(ExecuteToVector(join.get(), &ctx).ok());
  EXPECT_FALSE(ctx.GetFilterSet("fs_test").ok());
}

TEST(FilterJoinOpTest, ResidualPredicateApplies) {
  auto r = MakeR(10, 5);
  auto s = MakeS(10, 5);
  ExecContext ctx;
  const std::string id = "fs_res";
  auto inner = std::make_unique<FilterProbeOp>(
      std::make_unique<SeqScanOp>(s.get()), id, std::vector<int>{0});
  auto residual = MakeComparison(CompareOp::kGt,
                                 MakeColumnRef(3, DataType::kInt64),
                                 MakeLiteral(Value::Int64(40)));
  FilterJoinOp join(std::make_unique<SeqScanOp>(r.get()), std::move(inner),
                    id, {0}, {0}, residual, FilterSetImpl::kExact);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  for (const Tuple& t : *rows) EXPECT_GT(t[3].AsInt64(), 40);
}

TEST(FilterJoinOpTest, SemiJoinScansInnerOnce) {
  // §5.3: filter join = two scans of outer (production + final) and one of
  // inner.
  auto r = MakeR(100, 3);
  auto s = MakeS(100, 50);
  ExecContext ctx;
  auto join = MakeFilterJoin(r.get(), s.get(), FilterSetImpl::kExact);
  ASSERT_TRUE(ExecuteToVector(join.get(), &ctx).ok());
  // Pages: outer scan (1) + spool write/read + inner scan (1).
  EXPECT_LE(ctx.counters().pages_read, r->NumPages() + s->NumPages() +
                                           r->NumPages() + 1);
}

TEST(ShipOpTest, LocalShipIsFree) {
  auto r = MakeR(10, 5);
  ExecContext ctx;
  ShipOp op(std::make_unique<SeqScanOp>(r.get()), 1, 1);
  ASSERT_TRUE(ExecuteToVector(&op, &ctx).ok());
  EXPECT_EQ(ctx.counters().messages_sent, 0);
  EXPECT_EQ(ctx.counters().bytes_shipped, 0);
}

TEST(ShipOpTest, RemoteShipChargesBytesAndMessages) {
  auto r = MakeR(100, 5);
  ExecContext ctx;
  ShipOp op(std::make_unique<SeqScanOp>(r.get()), 1, 0);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 100u);
  EXPECT_EQ(ctx.counters().bytes_shipped, 100 * 16);
  EXPECT_GE(ctx.counters().messages_sent, 1);
}

// ----- user-defined relation operators -----

std::unique_ptr<LambdaTableFunction> MakeSquareFn(int* invocations) {
  Schema args({{"", "v", DataType::kInt64}});
  Schema results({{"", "sq", DataType::kInt64}});
  return std::make_unique<LambdaTableFunction>(
      "square", args, results,
      [invocations](const Tuple& in, std::vector<Tuple>* out) {
        if (invocations != nullptr) ++*invocations;
        out->push_back({Value::Int64(in[0].AsInt64() * in[0].AsInt64())});
        return Status::OK();
      });
}

TEST(FunctionProbeJoinTest, NaiveInvokesPerOuterTuple) {
  auto r = MakeR(9, 3);  // keys 0,1,2 repeated 3x
  int invocations = 0;
  auto fn = MakeSquareFn(&invocations);
  ExecContext ctx;
  FunctionProbeJoinOp op(std::make_unique<SeqScanOp>(r.get()), fn.get(), {0},
                         nullptr, /*memoize=*/false);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
  EXPECT_EQ(invocations, 9);
  EXPECT_EQ(ctx.counters().function_invocations, 9);
  // Output: r.k, r.x, args.v, result.sq
  EXPECT_EQ((*rows)[0][3], Value::Int64(0));
}

TEST(FunctionProbeJoinTest, MemoizedInvokesPerDistinctArgs) {
  auto r = MakeR(9, 3);
  int invocations = 0;
  auto fn = MakeSquareFn(&invocations);
  ExecContext ctx;
  FunctionProbeJoinOp op(std::make_unique<SeqScanOp>(r.get()), fn.get(), {0},
                         nullptr, /*memoize=*/true);
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
  EXPECT_EQ(invocations, 3);
  EXPECT_EQ(op.cache_hits(), 6);
}

TEST(FunctionCallOpTest, InvokesPerInputRow) {
  std::vector<Tuple> args = {{Value::Int64(2)}, {Value::Int64(4)}};
  Schema arg_schema({{"", "v", DataType::kInt64}});
  int invocations = 0;
  auto fn = MakeSquareFn(&invocations);
  ExecContext ctx;
  FunctionCallOp op(
      std::make_unique<VectorScanOp>(&args, arg_schema, false), fn.get());
  auto rows = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], Value::Int64(4));
  EXPECT_EQ((*rows)[1][1], Value::Int64(16));
  EXPECT_EQ(invocations, 2);
}

TEST(FunctionJoinEquivalenceTest, FilterJoinCompositionMatchesNaive) {
  // Filter-join shape for UDRs: distinct args -> FunctionCall -> hash join
  // back with the outer. Must agree with the naive probe join.
  auto r = MakeR(20, 4);
  auto fn = MakeSquareFn(nullptr);
  ExecContext ctx;

  FunctionProbeJoinOp naive(std::make_unique<SeqScanOp>(r.get()), fn.get(),
                            {0}, nullptr, false);
  auto naive_rows = ExecuteToVector(&naive, &ctx);
  ASSERT_TRUE(naive_rows.ok());

  // Composition: distinct keys of r -> call -> join back.
  std::vector<ExprPtr> key_exprs = {MakeColumnRef(0, DataType::kInt64, "k")};
  Schema key_schema({{"", "v", DataType::kInt64}});
  auto distinct = std::make_unique<DistinctOp>(std::make_unique<ProjectOp>(
      std::make_unique<SeqScanOp>(r.get()), key_exprs, key_schema));
  auto call = std::make_unique<FunctionCallOp>(std::move(distinct), fn.get());
  HashJoinOp composed(std::make_unique<SeqScanOp>(r.get()), std::move(call),
                      {0}, {0}, nullptr);
  auto composed_rows = ExecuteToVector(&composed, &ctx);
  ASSERT_TRUE(composed_rows.ok());
  EXPECT_TRUE(SameMultiset(*naive_rows, *composed_rows));
}

}  // namespace
}  // namespace magicdb
