// Tests for streaming result cursors: Session::Open/Cursor::Fetch must
// deliver, batch by batch out of a bounded backpressured queue, exactly the
// bytes Session::Query (and Database::Query) materialize — at any DoP,
// including GROUP BY and Filter Join plans — while enforcing deadlines and
// cancellation between fetches, bounding resident result memory by the
// queue's high-water mark, surviving abandonment, and failing cleanly when
// DDL stales a live sequential stream.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/cancellation.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/server/cursor.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// Emp/Dept/Bonus workload with the DepComp aggregate view (the paper's
// running example), restricted to hash joins so plans stay parallel-safe.
void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(29);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 120; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 5; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

/// A table big enough that its full result dwarfs any cursor queue bound.
void LoadBigTable(Database* db, int64_t rows) {
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Big (k INT, v DOUBLE)"));
  Random rng(7);
  std::vector<Tuple> data;
  data.reserve(static_cast<size_t>(rows));
  for (int64_t i = 0; i < rows; ++i) {
    data.push_back({Value::Int64(i), Value::Double(rng.NextDouble())});
  }
  MAGICDB_CHECK_OK(db->LoadRows("Big", std::move(data)));
}

const char* kJoinQuery =
    "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";
const char* kAggQuery =
    "SELECT E.did, COUNT(*) AS c, SUM(E.eid) AS s, MIN(E.sal) AS m "
    "FROM Emp E GROUP BY E.did";
const char* kFilterJoinQuery =
    "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND D.did = V.did AND D.budget > 100000 "
    "AND E.sal > V.avgcomp";
const char* kBigQuery = "SELECT B.k, B.v FROM Big B";

/// Drains `cursor` with `batch_rows`-row fetches; returns the concatenation.
std::vector<Tuple> FetchAll(Cursor* cursor, int64_t batch_rows) {
  std::vector<Tuple> rows;
  while (true) {
    auto batch = cursor->Fetch(batch_rows);
    MAGICDB_CHECK_OK(batch.status());
    if (batch->empty()) break;
    for (Tuple& t : *batch) rows.push_back(std::move(t));
  }
  return rows;
}

// ----- Concat identity: streamed batches == materialized Query, any DoP -----

TEST(CursorTest, ConcatIdenticalToQueryAcrossDopSweep) {
  Database db;
  MakeWorkload(&db);
  // Plain join, parallel GROUP BY, and a Filter Join (magic) plan: the
  // three streaming shapes the identity guarantee is stated against.
  const std::vector<const char*> queries = {kJoinQuery, kAggQuery,
                                            kFilterJoinQuery};
  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  int64_t expected_completed = 0;
  for (const char* sql : queries) {
    auto baseline = db.Query(sql);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_FALSE(baseline->rows.empty());
    for (int dop : {1, 2, 4}) {
      ExecOptions exec;
      exec.dop = dop;
      auto cursor = session->Open(sql, exec);
      ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
      EXPECT_EQ(cursor->explain(), baseline->explain);
      // Odd batch size so batch boundaries never align with quanta.
      std::vector<Tuple> rows = FetchAll(&*cursor, 7);
      ExpectRowsIdentical(rows, baseline->rows);
      EXPECT_TRUE(cursor->done());
      ExpectCountersEqual(cursor->counters(), baseline->counters);
      MAGICDB_CHECK_OK(cursor->Close());
      ++expected_completed;
    }
  }
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.queries_completed, expected_completed);
  EXPECT_EQ(stats.cursors_opened, expected_completed);
  EXPECT_EQ(stats.open_cursors, 0);
  EXPECT_GT(stats.rows_streamed, 0);
  EXPECT_EQ(stats.parallel_fallbacks, 0);
}

TEST(CursorTest, QueryIsFetchAllOverCursor) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  auto materialized = session->Query(kFilterJoinQuery);
  ASSERT_TRUE(materialized.ok());
  auto cursor = session->Open(kFilterJoinQuery);
  ASSERT_TRUE(cursor.ok());
  std::vector<Tuple> rows = FetchAll(&*cursor, 100);
  ExpectRowsIdentical(rows, materialized->rows);
  ExpectCountersEqual(cursor->counters(), materialized->counters);
  EXPECT_EQ(cursor->filter_join_measured().size(),
            materialized->filter_join_measured.size());
  MAGICDB_CHECK_OK(cursor->Close());
  // Both executions (one through Query, one through Open) completed.
  EXPECT_EQ(service.StatsSnapshot().queries_completed, 2);
}

TEST(CursorTest, OpenPreparedStreamsLikeExecutePrepared) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  MAGICDB_CHECK_OK(session->Prepare("q", kJoinQuery));
  auto materialized = session->ExecutePrepared("q");
  ASSERT_TRUE(materialized.ok());
  auto cursor = session->OpenPrepared("q");
  ASSERT_TRUE(cursor.ok());
  ExpectRowsIdentical(FetchAll(&*cursor, 33), materialized->rows);
  MAGICDB_CHECK_OK(cursor->Close());
  EXPECT_FALSE(session->OpenPrepared("missing").ok());
}

// ----- Bounded memory: queue high-water mark, not result cardinality -----

TEST(CursorTest, PeakBufferedRowsBoundedByHighWaterMark) {
  Database db;
  constexpr int64_t kRows = 20000;
  LoadBigTable(&db, kRows);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.scheduler_quantum_rows = 64;
  so.stream_queue_rows = 128;  // result is > 10x any queue bound
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  auto baseline = db.Query(kBigQuery);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->rows.size(), static_cast<size_t>(kRows));

  auto cursor = session->Open(kBigQuery);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<Tuple> rows = FetchAll(&*cursor, 50);
  ExpectRowsIdentical(rows, baseline->rows);

  // The producer may overshoot the high-water mark by at most one quantum;
  // it must have parked (engaged backpressure) on a result this large.
  EXPECT_LE(cursor->peak_buffered_rows(),
            so.stream_queue_rows + so.scheduler_quantum_rows);
  EXPECT_GT(cursor->producer_parks(), 0);
  MAGICDB_CHECK_OK(cursor->Close());
  EXPECT_GT(service.StatsSnapshot().cursor_producer_parks, 0);
}

TEST(CursorTest, PerQueryQueueOverrideWins) {
  Database db;
  LoadBigTable(&db, 5000);
  QueryServiceOptions so;
  so.scheduler_quantum_rows = 32;
  so.stream_queue_rows = 4096;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.stream_queue_rows = 64;  // much tighter than the service default
  auto cursor = session->Open(kBigQuery, exec);
  ASSERT_TRUE(cursor.ok());
  std::vector<Tuple> rows = FetchAll(&*cursor, 25);
  EXPECT_EQ(rows.size(), 5000u);
  EXPECT_LE(cursor->peak_buffered_rows(),
            exec.stream_queue_rows + so.scheduler_quantum_rows);
  MAGICDB_CHECK_OK(cursor->Close());
}

// ----- Deadlines and cancellation between fetches -----

TEST(CursorTest, MidStreamDeadlineFailsFetchAndFreesSlot) {
  Database db;
  LoadBigTable(&db, 20000);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.max_concurrent_queries = 1;  // the open cursor holds the only ticket
  so.scheduler_quantum_rows = 64;
  so.stream_queue_rows = 128;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  ExecOptions exec;
  exec.cancel_token = std::make_shared<CancelToken>();
  auto cursor = session->Open(kBigQuery, exec);
  ASSERT_TRUE(cursor.ok());
  auto first = cursor->Fetch(10);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 10u);

  // Deadline fires between fetches: the next Fetch must surface it even
  // though rows are buffered, and the producer unwinds within a quantum.
  exec.cancel_token->SetTimeout(std::chrono::nanoseconds(-1));
  auto failed = cursor->Fetch(10);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded);
  Status closed = cursor->Close();
  EXPECT_EQ(closed.code(), StatusCode::kDeadlineExceeded);

  // Close released the admission ticket: with max_concurrent_queries=1 a
  // follow-up query only runs if the dead cursor's slot was freed.
  EXPECT_TRUE(session->Query(kBigQuery).ok());
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.deadlines_exceeded, 1);
  EXPECT_EQ(stats.open_cursors, 0);
}

TEST(CursorTest, MidStreamCancellationBetweenFetches) {
  Database db;
  LoadBigTable(&db, 20000);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.scheduler_quantum_rows = 64;
  so.stream_queue_rows = 128;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  ExecOptions exec;
  exec.cancel_token = std::make_shared<CancelToken>();
  auto cursor = session->Open(kBigQuery, exec);
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->Fetch(100).ok());
  exec.cancel_token->Cancel();
  auto failed = cursor->Fetch(100);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(cursor->Close().code(), StatusCode::kCancelled);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.queries_cancelled, 1);
  EXPECT_EQ(stats.open_cursors, 0);
}

TEST(CursorTest, AbandonedCursorDestructorReleasesResources) {
  Database db;
  LoadBigTable(&db, 20000);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.max_concurrent_queries = 1;
  so.scheduler_quantum_rows = 64;
  so.stream_queue_rows = 128;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  {
    auto cursor = session->Open(kBigQuery);
    ASSERT_TRUE(cursor.ok());
    ASSERT_TRUE(cursor->Fetch(10).ok());
    // Dropped without Close: the destructor cancels, drains, and releases.
  }
  EXPECT_TRUE(session->Query(kBigQuery).ok());  // ticket was freed
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.open_cursors, 0);
  EXPECT_GE(stats.queries_cancelled, 1);
}

TEST(CursorTest, FetchMisuseAndDoubleClose) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  auto cursor = session->Open(kJoinQuery);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->Fetch(0).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cursor->Fetch(-3).status().code(), StatusCode::kInvalidArgument);
  std::vector<Tuple> rows = FetchAll(&*cursor, 1000);
  EXPECT_FALSE(rows.empty());
  // Fetch past end of stream keeps returning the empty marker.
  auto again = cursor->Fetch(10);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
  MAGICDB_CHECK_OK(cursor->Close());
  EXPECT_EQ(cursor->Fetch(10).status().code(), StatusCode::kInvalidArgument);
  // Double close is idempotent and repeats the terminal status.
  MAGICDB_CHECK_OK(cursor->Close());
  EXPECT_EQ(service.StatsSnapshot().queries_completed, 1);
}

// ----- Shared pool: two sessions interleaving open cursors -----

TEST(CursorTest, TwoSessionsInterleaveCursorsOnSharedPool) {
  Database db;
  MakeWorkload(&db);
  auto baseline_join = db.Query(kJoinQuery);
  auto baseline_fj = db.Query(kFilterJoinQuery);
  ASSERT_TRUE(baseline_join.ok());
  ASSERT_TRUE(baseline_fj.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  so.scheduler_quantum_rows = 16;  // force many interleaved quanta
  so.stream_queue_rows = 32;
  QueryService service(&db, so);
  std::unique_ptr<Session> s1 = service.CreateSession();
  std::unique_ptr<Session> s2 = service.CreateSession();

  auto c1 = s1->Open(kJoinQuery);
  auto c2 = s2->Open(kFilterJoinQuery);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());

  // Alternate small fetches so both producers stay live simultaneously.
  std::vector<Tuple> rows1, rows2;
  bool done1 = false, done2 = false;
  while (!done1 || !done2) {
    if (!done1) {
      auto b = c1->Fetch(5);
      MAGICDB_CHECK_OK(b.status());
      if (b->empty()) done1 = true;
      for (Tuple& t : *b) rows1.push_back(std::move(t));
    }
    if (!done2) {
      auto b = c2->Fetch(5);
      MAGICDB_CHECK_OK(b.status());
      if (b->empty()) done2 = true;
      for (Tuple& t : *b) rows2.push_back(std::move(t));
    }
  }
  ExpectRowsIdentical(rows1, baseline_join->rows);
  ExpectRowsIdentical(rows2, baseline_fj->rows);
  MAGICDB_CHECK_OK(c1->Close());
  MAGICDB_CHECK_OK(c2->Close());
  EXPECT_EQ(service.StatsSnapshot().queries_completed, 2);
}

// ----- Cursor vs. DDL -----

TEST(CursorTest, SequentialCursorFailsCleanlyWhenDdlStalesPlan) {
  Database db;
  LoadBigTable(&db, 20000);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.scheduler_quantum_rows = 64;
  so.stream_queue_rows = 128;  // producer parks long before end of stream
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  auto cursor = session->Open(kBigQuery);
  ASSERT_TRUE(cursor.ok());
  ASSERT_TRUE(cursor->Fetch(10).ok());

  // DDL bumps the catalog epoch while the cursor is mid-stream. Already
  // buffered rows still arrive; the producer's next quantum then fails the
  // stream with a stale-plan error instead of reading replaced objects.
  MAGICDB_CHECK_OK(service.Execute("CREATE TABLE Zz (x INT)"));
  Status terminal = Status::OK();
  while (true) {
    auto batch = cursor->Fetch(50);
    if (!batch.ok()) {
      terminal = batch.status();
      break;
    }
    ASSERT_FALSE(batch->empty()) << "stream ended without stale-plan error";
  }
  EXPECT_EQ(terminal.code(), StatusCode::kFailedPrecondition) << terminal.ToString();
  EXPECT_EQ(cursor->Close().code(), StatusCode::kFailedPrecondition);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.cursors_stale, 1);
  // The service stays healthy: re-planning serves the fresh epoch.
  EXPECT_TRUE(session->Query(kBigQuery).ok());
}

TEST(CursorTest, ParallelStagedCursorSurvivesDdl) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  so.stream_queue_rows = 16;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.dop = 2;
  auto cursor = session->Open(kJoinQuery, exec);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor->used_dop(), 2) << cursor->parallel_fallback_reason();
  auto first = cursor->Fetch(3);
  ASSERT_TRUE(first.ok());

  // The gang ran inside Open: the staged rows pin the plan, so DDL cannot
  // stale a parallel cursor mid-stream.
  MAGICDB_CHECK_OK(service.Execute("CREATE TABLE Zz (x INT)"));
  std::vector<Tuple> rows = std::move(*first);
  for (Tuple& t : FetchAll(&*cursor, 11)) rows.push_back(std::move(t));
  ExpectRowsIdentical(rows, baseline->rows);
  ExpectCountersEqual(cursor->counters(), baseline->counters);
  MAGICDB_CHECK_OK(cursor->Close());
  EXPECT_EQ(service.StatsSnapshot().cursors_stale, 0);
}

TEST(CursorTest, MetricsTextExposesStreamingSeries) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  auto cursor = session->Open(kJoinQuery);
  ASSERT_TRUE(cursor.ok());
  FetchAll(&*cursor, 64);
  MAGICDB_CHECK_OK(cursor->Close());
  const std::string dump = service.MetricsText();
  EXPECT_NE(dump.find("magicdb_server_cursors_opened_total 1"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("magicdb_server_open_cursors 0"), std::string::npos);
  EXPECT_NE(dump.find("magicdb_server_rows_streamed_total"),
            std::string::npos);
  EXPECT_NE(dump.find("magicdb_server_cursor_batch_wait_us"),
            std::string::npos);
  const ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.cursors_opened, 1);
  EXPECT_GT(stats.rows_streamed, 0);
  EXPECT_NE(stats.ToString().find("cursors_opened=1"), std::string::npos);
}

}  // namespace
}  // namespace magicdb
