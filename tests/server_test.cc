// Tests for the query-service subsystem: metrics primitives, cancellation
// tokens, the plan cache's epoch-keyed invalidation, sessions/prepared
// statements, deadlines, and — the core guarantee — that every service
// execution path returns results byte-identical to Database::Query() with
// exactly equal cost counters.

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/cancellation.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/parallel/thread_pool.h"
#include "src/server/plan_cache.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

// ----- Metrics primitives -----

TEST(MetricsTest, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Set(7);
  EXPECT_EQ(c.Value(), 7);
}

TEST(MetricsTest, HistogramQuantilesBracketObservations) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Observe(i);
  EXPECT_EQ(h.Count(), 1000);
  EXPECT_EQ(h.Sum(), 1000 * 1001 / 2);
  // Bucket resolution is a factor of two; quantiles must land within it.
  EXPECT_GE(h.Quantile(0.5), 250.0);
  EXPECT_LE(h.Quantile(0.5), 1024.0);
  EXPECT_GE(h.Quantile(0.99), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.99), 1024.0);
}

TEST(MetricsTest, RegistryReturnsStablePointersAndDumps) {
  MetricsRegistry reg;
  Counter* a = reg.counter("magicdb_test_a_total");
  EXPECT_EQ(a, reg.counter("magicdb_test_a_total"));
  a->Add(3);
  reg.histogram("magicdb_test_lat_us")->Observe(100);
  std::string dump = reg.TextDump();
  EXPECT_NE(dump.find("magicdb_test_a_total 3"), std::string::npos) << dump;
  EXPECT_NE(dump.find("magicdb_test_lat_us"), std::string::npos) << dump;
  EXPECT_EQ(reg.CounterValues().at("magicdb_test_a_total"), 3);
}

// ----- CancelToken -----

TEST(CancelTokenTest, CancelIsSticky) {
  CancelToken token;
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineReportsDeadlineExceeded) {
  CancelToken token;
  token.SetTimeout(std::chrono::nanoseconds(-1));
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
  // First observed cause sticks: a later Cancel() cannot re-label it.
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineStaysLive) {
  CancelToken token;
  token.SetTimeout(std::chrono::hours(1));
  EXPECT_TRUE(token.Check().ok());
  EXPECT_TRUE(token.has_deadline());
}

// ----- ThreadPool::RunGang -----

TEST(ThreadPoolTest, RunGangRunsAllMembersAndCollectsStatuses) {
  ThreadPool pool(2);
  std::vector<Status> statuses = pool.RunGang(4, [](int i) -> Status {
    return i == 2 ? Status::Internal("member 2 fails") : Status::OK();
  });
  ASSERT_EQ(statuses.size(), 4u);
  EXPECT_TRUE(statuses[0].ok());
  EXPECT_FALSE(statuses[2].ok());
  EXPECT_TRUE(statuses[3].ok());
}

// ----- PlanCache -----

CachedPlanMeta MetaWithCost(double cost) {
  CachedPlanMeta meta;
  meta.est_cost = cost;
  return meta;
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache;
  CachedPlanMeta meta;
  EXPECT_FALSE(cache.Lookup("q1", /*epoch=*/0, &meta, nullptr));
  cache.Insert("q1", 0, MetaWithCost(7.0));
  ASSERT_TRUE(cache.Lookup("q1", 0, &meta, nullptr));
  EXPECT_DOUBLE_EQ(meta.est_cost, 7.0);
}

TEST(PlanCacheTest, EpochMismatchDropsEntry) {
  PlanCache cache;
  cache.Insert("q1", /*epoch=*/3, MetaWithCost(7.0));
  CachedPlanMeta meta;
  // A newer catalog epoch makes the entry stale: miss, and the entry is
  // gone so it can never be served again.
  EXPECT_FALSE(cache.Lookup("q1", /*epoch=*/4, &meta, nullptr));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("q1", 3, &meta, nullptr));
}

TEST(PlanCacheTest, StaleCheckInIsDropped) {
  PlanCache cache;
  cache.Insert("q1", 5, MetaWithCost(1.0));
  cache.CheckIn("q1", /*epoch=*/4, nullptr);  // null instance: no-op
  CachedPlanMeta meta;
  OpPtr instance;
  ASSERT_TRUE(cache.Lookup("q1", 5, &meta, &instance));
  EXPECT_EQ(instance, nullptr);  // nothing was pooled
}

TEST(PlanCacheTest, LruEvictsOldest) {
  PlanCache cache(/*max_entries=*/2);
  cache.Insert("a", 0, MetaWithCost(1.0));
  cache.Insert("b", 0, MetaWithCost(2.0));
  CachedPlanMeta meta;
  ASSERT_TRUE(cache.Lookup("a", 0, &meta, nullptr));  // refresh a
  cache.Insert("c", 0, MetaWithCost(3.0));            // evicts b
  EXPECT_TRUE(cache.Lookup("a", 0, &meta, nullptr));
  EXPECT_FALSE(cache.Lookup("b", 0, &meta, nullptr));
  EXPECT_TRUE(cache.Lookup("c", 0, &meta, nullptr));
  EXPECT_EQ(cache.evictions(), 1);
}

// ----- Catalog DDL epoch -----

TEST(CatalogEpochTest, DdlAndAnalyzeBumpEpoch) {
  Database db;
  const int64_t e0 = db.catalog()->ddl_epoch();
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE T (a INT, b DOUBLE)"));
  const int64_t e1 = db.catalog()->ddl_epoch();
  EXPECT_GT(e1, e0);
  // LoadRows runs ANALYZE, which also bumps (stats steer plan choice).
  MAGICDB_CHECK_OK(
      db.LoadRows("T", {{Value::Int64(1), Value::Double(2.0)}}));
  const int64_t e2 = db.catalog()->ddl_epoch();
  EXPECT_GT(e2, e1);
  MAGICDB_CHECK_OK(
      db.Execute("CREATE VIEW V AS SELECT a FROM T WHERE b > 0.0"));
  EXPECT_GT(db.catalog()->ddl_epoch(), e2);
}

// ----- QueryService / Session -----

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// Emp/Dept/Bonus workload with the DepComp aggregate view (the paper's
// running example), restricted to hash joins so plans stay parallel-safe.
void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(29);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 120; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 5; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

const char* kJoinQuery =
    "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";
const char* kMagicQuery =
    "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND D.did = V.did AND D.budget > 100000 "
    "AND E.sal > V.avgcomp";

TEST(QueryServiceTest, ResultsByteIdenticalToDatabaseQuery) {
  Database db;
  MakeWorkload(&db);
  auto baseline_join = db.Query(kJoinQuery);
  auto baseline_magic = db.Query(kMagicQuery);
  ASSERT_TRUE(baseline_join.ok());
  ASSERT_TRUE(baseline_magic.ok());
  ASSERT_FALSE(baseline_join->rows.empty());

  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  for (int round = 0; round < 3; ++round) {
    auto r1 = session->Query(kJoinQuery);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ExpectRowsIdentical(r1->rows, baseline_join->rows);
    ExpectCountersEqual(r1->counters, baseline_join->counters);
    EXPECT_EQ(r1->explain, baseline_join->explain);
    auto r2 = session->Query(kMagicQuery);
    ASSERT_TRUE(r2.ok()) << r2.status().ToString();
    ExpectRowsIdentical(r2->rows, baseline_magic->rows);
    ExpectCountersEqual(r2->counters, baseline_magic->counters);
  }
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.queries_completed, 6);
  // Round 1 misses both statements; rounds 2 and 3 hit.
  EXPECT_EQ(stats.plan_cache_misses, 2);
  EXPECT_EQ(stats.plan_cache_hits, 4);
  if (ResolveReoptQErrorThreshold(-1.0) <= 0) {
    // A forced re-optimization sweep (MAGICDB_TEST_REOPT_QERROR) replaces
    // cached instances with attempt-specific plans, which are never checked
    // back in — the reuse count is only deterministic without it.
    EXPECT_EQ(stats.plan_instance_reuses, 4);
  }
}

TEST(QueryServiceTest, ParallelQueryIdenticalOnSharedPool) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.dop = 4;
  auto par = session->Query(kJoinQuery, exec);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 4) << par->parallel_fallback_reason;
  ExpectRowsIdentical(par->rows, baseline->rows);
  ExpectCountersEqual(par->counters, baseline->counters);
}

TEST(QueryServiceTest, GroupByRunsParallelOnSharedPool) {
  Database db;
  MakeWorkload(&db);
  const char* agg_query =
      "SELECT E.did, COUNT(*) AS c, SUM(E.eid) AS s, MIN(E.sal) AS m "
      "FROM Emp E GROUP BY E.did";
  auto baseline = db.Query(agg_query);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.dop = 2;
  auto par = session->Query(agg_query, exec);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_EQ(par->used_dop, 2) << par->parallel_fallback_reason;
  ExpectRowsIdentical(par->rows, baseline->rows);
  ExpectCountersEqual(par->counters, baseline->counters);
  EXPECT_EQ(service.StatsSnapshot().parallel_fallbacks, 0);
}

TEST(QueryServiceTest, ParallelFallbacksAreCounted) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.dop = 4;
  // A Sort is an unsupported pipeline shape; LIMIT falls back before
  // planning replicas. Both must surface in the fallback metrics.
  auto sorted =
      session->Query("SELECT E.eid, E.sal FROM Emp E ORDER BY eid", exec);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(sorted->used_dop, 1);
  EXPECT_FALSE(sorted->parallel_fallback_reason.empty());
  auto limited = session->Query("SELECT E.eid FROM Emp E LIMIT 5", exec);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_EQ(limited->used_dop, 1);

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.parallel_fallbacks, 2);
  ASSERT_EQ(stats.parallel_fallback_reasons.size(), 2u);
  EXPECT_EQ(
      stats.parallel_fallback_reasons.at("unsupported_operator_in_pipeline"),
      1);
  EXPECT_EQ(stats.parallel_fallback_reasons.at("limit_clause"), 1);
  EXPECT_NE(stats.ToString().find("parallel_fallbacks=2"), std::string::npos);
  EXPECT_NE(service.MetricsText().find(
                "magicdb_server_parallel_fallbacks_total{reason="
                "limit_clause}"),
            std::string::npos);
}

TEST(QueryServiceTest, DdlInvalidatesCachedPlans) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();

  ASSERT_TRUE(session->Query(kJoinQuery).ok());
  ASSERT_TRUE(session->Query(kJoinQuery).ok());
  ServiceStats before = service.StatsSnapshot();
  EXPECT_EQ(before.plan_cache_hits, 1);
  EXPECT_EQ(before.plan_cache_misses, 1);

  // CREATE TABLE bumps the catalog epoch: the cached entry is stale and the
  // next execution must re-plan (a miss), never reuse the old plan.
  MAGICDB_CHECK_OK(service.Execute("CREATE TABLE Extra (x INT)"));
  ServiceStats after_ddl = service.StatsSnapshot();
  EXPECT_GT(after_ddl.ddl_epoch, before.ddl_epoch);

  auto r = session->Query(kJoinQuery);
  ASSERT_TRUE(r.ok());
  ServiceStats after = service.StatsSnapshot();
  EXPECT_EQ(after.plan_cache_misses, 2);
  EXPECT_EQ(after.plan_cache_hits, 1);

  // CREATE VIEW invalidates too.
  MAGICDB_CHECK_OK(service.Execute(
      "CREATE VIEW Cheap AS SELECT did FROM Dept WHERE budget < 100000"));
  ASSERT_TRUE(session->Query(kJoinQuery).ok());
  EXPECT_EQ(service.StatsSnapshot().plan_cache_misses, 3);
}

TEST(QueryServiceTest, LoadRowsInvalidatesAndMatchesFreshPlanning) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  ASSERT_TRUE(session->Query(kJoinQuery).ok());

  // New data changes statistics and possibly plan choice; the service must
  // serve exactly what a fresh Database::Query() would.
  Random rng(99);
  std::vector<Tuple> more;
  for (int i = 0; i < 400; ++i) {
    more.push_back({Value::Int64(10000 + i), Value::Int64(i % 120),
                    Value::Double(60000.0 + rng.NextDouble() * 50000.0),
                    Value::Int64(25)});
  }
  MAGICDB_CHECK_OK(service.LoadRows("Emp", std::move(more)));

  auto fresh = db.Query(kJoinQuery);
  ASSERT_TRUE(fresh.ok());
  auto served = session->Query(kJoinQuery);
  ASSERT_TRUE(served.ok());
  ExpectRowsIdentical(served->rows, fresh->rows);
  ExpectCountersEqual(served->counters, fresh->counters);
  EXPECT_EQ(served->explain, fresh->explain);
}

TEST(QueryServiceTest, SessionOptionsAreCacheKeyed) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> a = service.CreateSession();
  std::unique_ptr<Session> b = service.CreateSession();
  b->mutable_options()->magic_mode = OptimizerOptions::MagicMode::kNever;

  ASSERT_TRUE(a->Query(kMagicQuery).ok());
  // Different options fingerprint -> different key -> no cross-session hit.
  ASSERT_TRUE(b->Query(kMagicQuery).ok());
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.plan_cache_misses, 2);
  EXPECT_EQ(stats.plan_cache_hits, 0);

  // Same session, options changed in place: also a new key.
  a->mutable_options()->memory_budget_bytes *= 2;
  ASSERT_TRUE(a->Query(kMagicQuery).ok());
  EXPECT_EQ(service.StatsSnapshot().plan_cache_misses, 3);
}

TEST(QueryServiceTest, PreparedStatements) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();

  EXPECT_FALSE(session->Prepare("bad", "SELECT nope FROM Nowhere").ok());
  MAGICDB_CHECK_OK(session->Prepare("q", kJoinQuery));
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());
  auto r1 = session->ExecutePrepared("q");
  ASSERT_TRUE(r1.ok());
  ExpectRowsIdentical(r1->rows, baseline->rows);
  auto r2 = session->ExecutePrepared("q");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(session->ExecutePrepared("missing").ok());
  EXPECT_EQ(service.StatsSnapshot().plan_cache_hits, 1);
}

TEST(QueryServiceTest, CancelledTokenRejectsQuery) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.cancel_token = std::make_shared<CancelToken>();
  exec.cancel_token->Cancel();
  auto r = session->Query(kJoinQuery, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.StatsSnapshot().queries_cancelled, 1);
}

TEST(QueryServiceTest, ExpiredDeadlineRejectsQuery) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  ExecOptions exec;
  exec.timeout = std::chrono::microseconds(-1);  // expires immediately
  auto r = session->Query(kJoinQuery, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.StatsSnapshot().deadlines_exceeded, 1);
  // The service recovers: the next query without a deadline succeeds.
  EXPECT_TRUE(session->Query(kJoinQuery).ok());
}

TEST(QueryServiceTest, ExplainAndMetricsText) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  auto explain = session->Explain(kJoinQuery);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("HashJoin"), std::string::npos) << *explain;
  ASSERT_TRUE(session->Query(kJoinQuery).ok());
  std::string dump = service.MetricsText();
  EXPECT_NE(dump.find("magicdb_server_queries_completed_total 1"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("magicdb_server_query_latency_us"), std::string::npos);
  EXPECT_NE(dump.find("magicdb_server_plan_cache_misses_total 1"),
            std::string::npos);
  // Governance/retry series are registered (and zero) even when unused.
  EXPECT_NE(dump.find("magicdb_server_queries_resource_exhausted_total 0"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("magicdb_server_query_ddl_retries_total 0"),
            std::string::npos)
      << dump;
}

TEST(QueryServiceTest, MemoryGovernanceMetricsExported) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();

  // A governed query that completes records its peak memory.
  ExecOptions roomy;
  roomy.memory_limit_bytes = 256 * 1024 * 1024;
  ASSERT_TRUE(session->Query(kMagicQuery, roomy).ok());

  // A governed query that breaches counts as resource-exhausted.
  ExecOptions tiny;
  tiny.memory_limit_bytes = 256;
  auto r = session->Query(kMagicQuery, tiny);
  ASSERT_FALSE(r.ok());
  ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  std::string dump = service.MetricsText();
  EXPECT_NE(dump.find("magicdb_server_queries_resource_exhausted_total 1"),
            std::string::npos)
      << dump;
  EXPECT_NE(dump.find("magicdb_server_query_memory_bytes count=2"),
            std::string::npos)
      << dump;
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.queries_resource_exhausted, 1);
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
}

TEST(QueryServiceTest, ReoptimizationSurfacesInStatsAndResult) {
  // Fact.a == Fact.b on every row: the independence assumption puts the
  // filtered Fact at ~1% when ~10% qualifies, so the hash-join build above
  // it observes a ~10x q-error. Dim listed first keeps Fact on the build
  // side.
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Fact (k INT, a INT, b INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dim (k INT, tag INT)"));
  std::vector<Tuple> facts, dims;
  for (int i = 0; i < 4000; ++i) {
    facts.push_back({Value::Int64(i % 30), Value::Int64(i % 10),
                     Value::Int64(i % 10)});
  }
  for (int k = 0; k < 30; ++k) {
    dims.push_back({Value::Int64(k), Value::Int64(k * 7)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("Fact", std::move(facts)));
  MAGICDB_CHECK_OK(db.LoadRows("Dim", std::move(dims)));
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  const char* sql =
      "SELECT F.k, D.tag FROM Dim D, Fact F "
      "WHERE F.k = D.k AND F.a < 1 AND F.b < 1";

  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  ExecOptions off;
  off.reoptimize_qerror_threshold = 0.0;  // immune to the env-var sweep
  auto plain = session->Query(sql, off);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ(plain->reoptimizations, 0);

  ExecOptions adaptive;
  adaptive.reoptimize_qerror_threshold = 2.0;
  auto seq = session->Query(sql, adaptive);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  EXPECT_GE(seq->reoptimizations, 1);
  ASSERT_EQ(seq->rows.size(), plain->rows.size());
  EXPECT_FALSE(seq->feedback.empty());

  ExecOptions parallel = adaptive;
  parallel.dop = 4;
  auto par = session->Query(sql, parallel);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  EXPECT_GE(par->reoptimizations, 1);
  ExpectRowsIdentical(par->rows, seq->rows);

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.reoptimizations, 2);
  // The trigger site is the metric's reason label.
  EXPECT_GT(stats.reoptimization_reasons.count("hash_join_build"), 0u)
      << stats.ToString();
  // Plan-cache traffic is attributed to the join-order backend in use.
  int64_t dp_cache_traffic = 0;
  for (const auto& [backend, n] : stats.plan_cache_hits_by_backend) {
    if (backend == "dp") dp_cache_traffic += n;
  }
  for (const auto& [backend, n] : stats.plan_cache_misses_by_backend) {
    if (backend == "dp") dp_cache_traffic += n;
  }
  EXPECT_EQ(dp_cache_traffic,
            stats.plan_cache_hits + stats.plan_cache_misses);

  std::string dump = service.MetricsText();
  EXPECT_NE(dump.find("magicdb_server_reoptimizations_total{reason="),
            std::string::npos)
      << dump;
}

}  // namespace
}  // namespace magicdb
