// Out-of-core execution: the spill subsystem end to end.
//
// The contract under test: a governed query whose retained state exceeds
// memory_limit_bytes completes by spilling (Grace hash join, hybrid hash
// aggregation, external merge sort, staged-gather spill) with rows
// byte-identical to an ungoverned run at any DoP, while the MemoryTracker
// peak stays at or under the limit and the magicdb_spill_* counters record
// the I/O. Without a spill area — or with ExecOptions::allow_spill=false —
// the same queries keep failing fast with kResourceExhausted.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "src/spill/row_serde.h"
#include "src/spill/spill_manager.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

// ----- serialization primitives -----

TEST(RowSerdeTest, ValueRoundTripPreservesVariant) {
  const Value values[] = {Value::Null(), Value::Bool(true),
                          Value::Bool(false), Value::Int64(-42),
                          Value::Int64(int64_t{1} << 60), Value::Double(2.5),
                          Value::Double(-0.0), Value::String(""),
                          Value::String(std::string("spill\0bin", 9))};
  std::string buf;
  for (const Value& v : values) spill::AppendValue(&buf, v);
  spill::RecordReader reader(buf.data(), buf.size());
  for (const Value& expected : values) {
    Value got;
    ASSERT_TRUE(reader.ReadValue(&got).ok());
    EXPECT_EQ(got.Compare(expected), 0);
    EXPECT_EQ(got.is_null(), expected.is_null());
  }
  EXPECT_TRUE(reader.done());
}

TEST(RowSerdeTest, TupleRoundTripIsExact) {
  const Tuple t = {Value::Int64(7), Value::Null(), Value::Double(3.25),
                   Value::String("dept")};
  std::string buf;
  spill::AppendTuple(&buf, t);
  spill::RecordReader reader(buf.data(), buf.size());
  Tuple got;
  ASSERT_TRUE(reader.ReadTuple(&got).ok());
  ASSERT_EQ(got.size(), t.size());
  EXPECT_EQ(CompareTuples(got, t), 0);
  EXPECT_TRUE(got[1].is_null());
}

TEST(RowSerdeTest, StagedGroupRoundTripKeepsRankAndStates) {
  StagedGroup g;
  g.pos = 123;
  g.sub = 4;
  g.hash = 0xdeadbeefcafeULL;
  g.key = {Value::Int64(9)};
  AggState st;
  st.count = 5;
  st.sum = 12.5;
  st.isum = 12;
  st.int_sum = false;
  st.min = Value::Int64(1);
  st.max = Value::Int64(9);
  g.states = {st, AggState{}};

  std::string buf;
  spill::AppendStagedGroup(&buf, g);
  spill::RecordReader reader(buf.data(), buf.size());
  StagedGroup got;
  ASSERT_TRUE(reader.ReadStagedGroup(&got).ok());
  EXPECT_EQ(got.pos, g.pos);
  EXPECT_EQ(got.sub, g.sub);
  EXPECT_EQ(got.hash, g.hash);
  EXPECT_EQ(CompareTuples(got.key, g.key), 0);
  ASSERT_EQ(got.states.size(), 2u);
  EXPECT_EQ(got.states[0].count, 5);
  EXPECT_DOUBLE_EQ(got.states[0].sum, 12.5);
  EXPECT_EQ(got.states[0].isum, 12);
  EXPECT_FALSE(got.states[0].int_sum);
  EXPECT_EQ(got.states[0].min.Compare(st.min), 0);
  EXPECT_EQ(got.states[0].max.Compare(st.max), 0);
  EXPECT_EQ(got.states[1].count, 0);
  EXPECT_TRUE(got.states[1].min.is_null());
}

TEST(RowSerdeTest, TruncatedBufferSurfacesStatusNotUB) {
  std::string buf;
  spill::AppendTuple(&buf, {Value::String("long enough to truncate")});
  for (size_t len = 0; len < buf.size(); ++len) {
    spill::RecordReader reader(buf.data(), len);
    Tuple got;
    EXPECT_FALSE(reader.ReadTuple(&got).ok()) << "len=" << len;
  }
}

TEST(SpillPartitionTest, RouterRedistributesAcrossDepths) {
  // The same set of hashes must not all land in one child at the next
  // depth — the property that makes recursive partitioning converge.
  Random rng(99);
  std::vector<uint64_t> hashes;
  for (int i = 0; i < 512; ++i) {
    hashes.push_back(static_cast<uint64_t>(rng.UniformInt(0, 1 << 30)) * 2654435761ULL);
  }
  for (int depth = 0; depth < 4; ++depth) {
    std::vector<int> counts(8, 0);
    for (uint64_t h : hashes) {
      const uint64_t p = SpillPartitionOf(h, depth, 8);
      ASSERT_LT(p, 8u);
      counts[p]++;
    }
    for (int c : counts) EXPECT_LT(c, 512) << "depth " << depth;
  }
}

// ----- shared workload -----

std::string MakeSpillDir() {
  char templ[] = "/tmp/magicdb-spill-test-XXXXXX";
  const char* dir = mkdtemp(templ);
  MAGICDB_CHECK(dir != nullptr);
  return dir;
}

void MakeSpillWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Fact (k INT, grp INT, v DOUBLE, pad INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dim (k INT, w DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Skew (c INT, u DOUBLE)"));
  Random rng(17);
  std::vector<Tuple> fact, dim, skew;
  for (int i = 0; i < 4000; ++i) {
    fact.push_back({Value::Int64(i % 1000), Value::Int64(i % 37),
                    Value::Double(rng.NextDouble() * 1e6),
                    Value::Int64(rng.UniformInt(0, 1 << 20))});
    dim.push_back({Value::Int64(i % 1000), Value::Double(i * 0.5)});
  }
  // One giant duplicate key: the build-side shape recursion cannot split.
  for (int i = 0; i < 2000; ++i) {
    skew.push_back({Value::Int64(7), Value::Double(i * 1.0)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("Fact", std::move(fact)));
  MAGICDB_CHECK_OK(db.LoadRows("Dim", std::move(dim)));
  MAGICDB_CHECK_OK(db.LoadRows("Skew", std::move(skew)));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

// Each shape retains far more state than the tiny limits below allow: a
// ~64 KB hash-join build, ~1000 aggregate groups, a full-input sort, and
// a 4000-row staged parallel scan.
const char* kSpillJoinQuery =
    "SELECT F.k, F.v, D.w FROM Fact F, Dim D WHERE F.k = D.k";
const char* kSpillAggQuery =
    "SELECT F.k, COUNT(*) AS c, AVG(F.v) AS a FROM Fact F GROUP BY F.k";
const char* kSpillSortQuery =
    "SELECT F.k, F.v FROM Fact F ORDER BY v DESC, k";
const char* kSpillScanQuery = "SELECT F.k, F.grp, F.v FROM Fact F "
                              "WHERE F.pad >= 0";
const char* kSkewJoinQuery =
    "SELECT F.grp, S.u FROM Fact F, Skew S WHERE F.grp = S.c";

constexpr int64_t kTinyLimit = 48 * 1024;

QueryServiceOptions SpillServiceOptions(const std::string& dir) {
  QueryServiceOptions so;
  so.pool_threads = 4;
  so.spill_dir = dir;
  so.spill_batch_bytes = 1024;
  // Small quanta + queues keep the streamed-result charge well under the
  // tiny per-query limits (the sink cannot spill; only operators can).
  so.scheduler_quantum_rows = 128;
  so.stream_queue_rows = 256;
  return so;
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// ----- the acceptance matrix -----

TEST(SpillExecutionTest, JoinAggSortCompleteUnderTinyLimitAtAnyDop) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();

  // The pure scan is exercised separately: at dop=1 it retains no state
  // and correctly never spills, and at dop=4 its staged-gather spill reads
  // are deliberately uncharged (the gather merge is a free operator).
  for (const char* query :
       {kSpillJoinQuery, kSpillAggQuery, kSpillSortQuery}) {
    SCOPED_TRACE(query);
    // Ungoverned reference.
    auto baseline = session->Query(query);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    ASSERT_FALSE(baseline->rows.empty());

    for (int dop : {1, 4}) {
      SCOPED_TRACE("dop=" + std::to_string(dop));
      ExecOptions exec;
      exec.dop = dop;
      exec.memory_limit_bytes = kTinyLimit;
      auto governed = session->Query(query, exec);
      ASSERT_TRUE(governed.ok()) << governed.status().ToString();
      ExpectRowsIdentical(governed->rows, baseline->rows);
      EXPECT_GT(governed->counters.spill_bytes_written, 0);
      EXPECT_GT(governed->counters.spill_bytes_read, 0);
    }
  }

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GT(stats.spill_bytes_written, 0);
  EXPECT_GT(stats.spill_bytes_read, 0);
  EXPECT_GT(stats.spill_files_created, 0);
  EXPECT_GT(stats.spilled_queries, 0);
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
  const std::string metrics = service.MetricsText();
  EXPECT_NE(metrics.find("magicdb_spill_bytes_written_total"),
            std::string::npos);
  rmdir(dir.c_str());  // all temp files must be unlinked by now
}

TEST(SpillExecutionTest, PeakStaysUnderLimitWhileSpilling) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();

  for (const char* query : {kSpillJoinQuery, kSpillAggQuery, kSpillSortQuery}) {
    SCOPED_TRACE(query);
    ExecOptions exec;
    exec.memory_limit_bytes = kTinyLimit;
    auto cursor = session->Open(query, exec);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    int64_t rows = 0;
    while (true) {
      auto batch = cursor->Fetch(128);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      if (batch->empty()) break;
      rows += static_cast<int64_t>(batch->size());
    }
    EXPECT_GT(rows, 0);
    EXPECT_GT(cursor->counters().spill_bytes_written, 0);
    EXPECT_GT(cursor->memory_peak_bytes(), 0);
    EXPECT_LE(cursor->memory_peak_bytes(), kTinyLimit);
    ASSERT_TRUE(cursor->Close().ok());
  }
}

TEST(SpillExecutionTest, ParallelBreachDegradesToSequentialSpill) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();

  auto baseline = session->Query(kSpillJoinQuery);
  ASSERT_TRUE(baseline.ok());

  ExecOptions exec;
  exec.dop = 4;
  exec.memory_limit_bytes = kTinyLimit;
  auto governed = session->Query(kSpillJoinQuery, exec);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  ExpectRowsIdentical(governed->rows, baseline->rows);
  // The shared hash build cannot spill, so the gang's breach degrades the
  // query to the sequential out-of-core path — visible in the fallback
  // accounting, not in the results.
  EXPECT_EQ(governed->used_dop, 1);
  EXPECT_NE(governed->parallel_fallback_reason.find("memory pressure"),
            std::string::npos)
      << governed->parallel_fallback_reason;
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.parallel_fallbacks, 1);
  EXPECT_EQ(stats.used_gang_slots, 0);
}

TEST(SpillExecutionTest, ParallelScanSpillsStagedRowsAndStaysParallel) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();

  ExecOptions wide;
  wide.dop = 4;
  auto baseline = session->Query(kSpillScanQuery, wide);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->used_dop, 4);

  ExecOptions governed = wide;
  governed.memory_limit_bytes = kTinyLimit;
  auto spilled = session->Query(kSpillScanQuery, governed);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  // Staged gather rows overflow to per-worker spill files; the gang itself
  // completes, so the query keeps its parallelism.
  EXPECT_EQ(spilled->used_dop, 4);
  ExpectRowsIdentical(spilled->rows, baseline->rows);
  EXPECT_GT(spilled->counters.spill_bytes_written, 0);
}

// ----- opting out -----

TEST(SpillExecutionTest, AllowSpillFalseKeepsVerbatimResourceExhausted) {
  Database db;
  MakeSpillWorkload(&db);

  // Reference failure from a service with no spill area at all.
  Status no_spill_area;
  {
    QueryServiceOptions so;
    so.pool_threads = 2;
    QueryService service(&db, so);
    std::unique_ptr<Session> session = service.CreateSession();
    ExecOptions exec;
    exec.memory_limit_bytes = kTinyLimit;
    // Robust against a spill area injected via MAGICDB_TEST_SPILL_DIR
    // (the chaos build): the reference must stay a hard failure.
    exec.allow_spill = false;
    auto r = session->Query(kSpillAggQuery, exec);
    ASSERT_FALSE(r.ok());
    no_spill_area = r.status();
    EXPECT_EQ(no_spill_area.code(), StatusCode::kResourceExhausted);
  }

  // Same failure — same code, same message — when a spill area exists but
  // the query opted out.
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();
  for (int dop : {1, 4}) {
    SCOPED_TRACE("dop=" + std::to_string(dop));
    ExecOptions exec;
    exec.dop = dop;
    exec.memory_limit_bytes = kTinyLimit;
    exec.allow_spill = false;
    auto r = session->Query(kSpillAggQuery, exec);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(r.status().ToString(), no_spill_area.ToString());
  }
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.spilled_queries, 0);
  EXPECT_EQ(stats.spill_bytes_written, 0);
  EXPECT_EQ(stats.active_queries, 0);
}

// ----- governor boundary semantics -----

TEST(SpillExecutionTest, LimitExactlyAtPeakSucceedsWithoutSpilling) {
  Database db;
  MakeSpillWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  auto drain = [&](int64_t limit, int64_t* peak) -> Status {
    ExecOptions exec;
    exec.memory_limit_bytes = limit;
    // The boundary semantics under test are the hard-failure ones, even
    // when the chaos build injects a spill area via MAGICDB_TEST_SPILL_DIR.
    exec.allow_spill = false;
    auto cursor = session->Open(kSpillAggQuery, exec);
    if (!cursor.ok()) return cursor.status();
    while (true) {
      auto batch = cursor->Fetch(512);
      if (!batch.ok()) {
        cursor->Close();
        return batch.status();
      }
      if (batch->empty()) break;
    }
    *peak = cursor->memory_peak_bytes();
    return cursor->Close();
  };

  // Sequential execution is deterministic, so a rerun with the limit set to
  // the observed peak charges exactly the same bytes — and a limit equal to
  // the peak must succeed (the governor rejects only charges that would
  // exceed the limit).
  int64_t peak = 0;
  ASSERT_TRUE(drain(256 * 1024 * 1024, &peak).ok());
  ASSERT_GT(peak, 0);
  int64_t rerun_peak = 0;
  Status at_peak = drain(peak, &rerun_peak);
  ASSERT_TRUE(at_peak.ok()) << at_peak.ToString();
  EXPECT_EQ(rerun_peak, peak);
  // One byte less must fail.
  int64_t unused = 0;
  Status below = drain(peak - 1, &unused);
  ASSERT_FALSE(below.ok());
  EXPECT_EQ(below.code(), StatusCode::kResourceExhausted);
}

TEST(SpillExecutionTest, ZeroRowInputsSucceedUnderMinimalLimit) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();

  // Every operator shape, but the predicate filters out every row before
  // any state is retained: nothing to charge, nothing to spill.
  const char* zero_row_queries[] = {
      "SELECT F.k, F.v, D.w FROM Fact F, Dim D "
      "WHERE F.k = D.k AND F.pad < 0 AND D.w < 0",
      "SELECT F.k, COUNT(*) AS c FROM Fact F WHERE F.pad < 0 GROUP BY F.k",
      "SELECT F.k FROM Fact F WHERE F.pad < 0 ORDER BY k",
  };
  for (const char* query : zero_row_queries) {
    SCOPED_TRACE(query);
    ExecOptions exec;
    exec.memory_limit_bytes = 512;
    auto r = session->Query(query, exec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(r->rows.empty());
    EXPECT_EQ(r->counters.spill_bytes_written, 0);
  }
}

// ----- recursive partitioning -----

TEST(SpillExecutionTest, RecursiveRepartitioningSplitsOversizedPartitions) {
  Database db;
  MakeSpillWorkload(&db);
  // A unique-key self join with a ~768 KB build side: against a 48 KB
  // limit, every depth-0 partition (~96 KB) is itself over the in-memory
  // headroom and must be re-split at depth 1 (~12 KB) before it fits. The
  // depth recorded by the partition sets proves the recursive path ran —
  // the initial Grace split is depth 0.
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Big (k INT, u INT)"));
  std::vector<Tuple> big;
  for (int i = 0; i < 49152; ++i) {
    big.push_back({Value::Int64(i % 4000), Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("Big", std::move(big)));

  const std::string dir = MakeSpillDir();
  QueryServiceOptions so = SpillServiceOptions(dir);
  // Small write buffers keep the leaf-run merge frames (one per output
  // run) comfortably inside the limit even with 64 depth-1 partitions.
  so.spill_batch_bytes = 256;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  const char* query = "SELECT B.k, C.u FROM Big B, Big C WHERE B.u = C.u";
  auto baseline = session->Query(query);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_EQ(baseline->rows.size(), 49152u);

  ExecOptions exec;
  exec.memory_limit_bytes = kTinyLimit;
  auto governed = session->Query(query, exec);
  ASSERT_TRUE(governed.ok()) << governed.status().ToString();
  ExpectRowsIdentical(governed->rows, baseline->rows);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.spill_recursion_depth_max, 1) << stats.ToString();
  EXPECT_GT(stats.spill_partitions_opened, 8) << stats.ToString();
}

TEST(SpillExecutionTest, SingleGiantKeyExhaustsRecursionAndFailsCleanly) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryServiceOptions so = SpillServiceOptions(dir);
  // Small write buffers: the limit below must leave room for the
  // repartitioning machinery itself, so the failure comes from the
  // recursion bound rather than an unfittable buffer reservation.
  so.spill_batch_bytes = 256;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  // Every Skew row hashes identically, so recursive partitioning can never
  // shrink the oversized partition; the recursion bound turns an infinite
  // regress into a clean kResourceExhausted.
  ExecOptions exec;
  exec.memory_limit_bytes = 12 * 1024;
  auto r = session->Query(kSkewJoinQuery, exec);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
      << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("recursion depth"), std::string::npos)
      << r.status().ToString();

  // The failure is clean: no leaked admission state, and the same query
  // still succeeds ungoverned on the same service.
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
  auto ok = session->Query(kSkewJoinQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok->rows.empty());
}

#ifdef MAGICDB_FAILPOINTS

// ----- fault injection on the spill I/O path -----

TEST(SpillChaosTest, FaultsAtSpillSitesFailQueryButLeakNothing) {
  Database db;
  MakeSpillWorkload(&db);
  const std::string dir = MakeSpillDir();
  QueryService service(&db, SpillServiceOptions(dir));
  std::unique_ptr<Session> session = service.CreateSession();

  auto baseline = session->Query(kSpillJoinQuery);
  ASSERT_TRUE(baseline.ok());

  const char* kSpillSites[] = {"spill.write", "spill.read",
                               "spill.partition.open"};
  for (const char* site : kSpillSites) {
    SCOPED_TRACE(site);
    const std::string msg = std::string("chaos: ") + site;
    FailpointConfig config;
    config.inject = Status::Internal(msg);
    config.fire_from_hit = 3;  // let some I/O succeed first
    {
      ScopedFailpoint armed(site, config);
      for (const char* query :
           {kSpillJoinQuery, kSpillAggQuery, kSpillSortQuery}) {
        ExecOptions exec;
        exec.memory_limit_bytes = kTinyLimit;
        auto r = session->Query(query, exec);
        if (!r.ok()) {
          EXPECT_NE(r.status().ToString().find(msg), std::string::npos)
              << query << ": " << r.status().ToString();
        }
      }
    }
    EXPECT_GT(FailpointRegistry::Instance().Site(site)->hits(), 0)
        << site << " was never executed";

    ServiceStats stats = service.StatsSnapshot();
    EXPECT_EQ(stats.active_queries, 0);
    EXPECT_EQ(stats.used_gang_slots, 0);
    EXPECT_EQ(stats.open_cursors, 0);

    // Disarmed, the same spilling query works again — and the fault did
    // not strand temp files that block a later cleanup.
    ExecOptions exec;
    exec.memory_limit_bytes = kTinyLimit;
    auto after = session->Query(kSpillJoinQuery, exec);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ExpectRowsIdentical(after->rows, baseline->rows);
  }
}

// ----- fault injection on the catalog-mutation path -----

TEST(DdlChaosTest, FaultedDdlLeavesCatalogConsistent) {
  Database db;
  MakeSpillWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  auto baseline = session->Query(kSpillJoinQuery);
  ASSERT_TRUE(baseline.ok());

  struct Case {
    const char* site;
    const char* ddl;
  };
  const Case kCases[] = {
      {"server.ddl.execute", "CREATE TABLE Chaos1 (a INT)"},
      {"db.ddl.create_table", "CREATE TABLE Chaos2 (a INT)"},
      {"db.ddl.create_view",
       "CREATE VIEW ChaosV AS SELECT F.k FROM Fact F WHERE F.pad > 0"},
      {"catalog.ddl.epoch_bump", "CREATE TABLE Chaos3 (a INT)"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.site);
    const int64_t epoch_before = db.catalog()->ddl_epoch();
    const std::string msg = std::string("chaos: ") + c.site;
    FailpointConfig config;
    config.inject = Status::Internal(msg);
    {
      ScopedFailpoint armed(c.site, config);
      Status s = service.Execute(c.ddl);
      ASSERT_FALSE(s.ok());
      EXPECT_NE(s.ToString().find(msg), std::string::npos) << s.ToString();
    }
    // The fault must have been all-or-nothing: no epoch bump, no
    // half-registered object, and cached plans still valid.
    EXPECT_EQ(db.catalog()->ddl_epoch(), epoch_before);
    auto again = session->Query(kSpillJoinQuery);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectRowsIdentical(again->rows, baseline->rows);

    // Disarmed, the identical DDL succeeds (the name was never taken) and
    // bumps the epoch exactly once.
    MAGICDB_CHECK_OK(service.Execute(c.ddl));
    EXPECT_GT(db.catalog()->ddl_epoch(), epoch_before);
    ServiceStats stats = service.StatsSnapshot();
    EXPECT_EQ(stats.active_queries, 0);
    EXPECT_EQ(stats.used_gang_slots, 0);
    EXPECT_EQ(stats.open_cursors, 0);
  }

  // Queries keep working against the mutated catalog.
  auto after = session->Query(kSpillJoinQuery);
  ASSERT_TRUE(after.ok());
  ExpectRowsIdentical(after->rows, baseline->rows);
}

TEST(DdlChaosTest, EpochStaysMonotoneUnderFaultedDdlChurn) {
  Database db;
  MakeSpillWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);

  FailpointConfig config;
  config.inject = Status::Internal("chaos: ddl coinflip");
  config.probability = 0.5;
  config.seed = 11;
  int64_t last_epoch = db.catalog()->ddl_epoch();
  int successes = 0;
  {
    ScopedFailpoint armed(std::string("catalog.ddl.epoch_bump"), config);
    for (int i = 0; i < 20; ++i) {
      const std::string ddl =
          "CREATE TABLE Churn" + std::to_string(i) + " (a INT)";
      const Status s = service.Execute(ddl);
      const int64_t epoch = db.catalog()->ddl_epoch();
      if (s.ok()) {
        EXPECT_EQ(epoch, last_epoch + 1) << "ddl " << i;
        ++successes;
      } else {
        EXPECT_EQ(epoch, last_epoch) << "ddl " << i;
      }
      last_epoch = epoch;
    }
  }
  EXPECT_GT(successes, 0);
  EXPECT_LT(successes, 20);  // the coinflip must have fired at least once
}

#endif  // MAGICDB_FAILPOINTS

}  // namespace
}  // namespace magicdb
