// Chaos hardening of the query service: per-query memory governance (always
// compiled) and failpoint-driven fault injection (MAGICDB_FAILPOINTS builds).
//
// The invariant under test: a fault injected at ANY site — storage page
// reads, join/aggregate builds, the parallel merge barrier, sink push,
// plan-cache insert, cursor fetch, gang startup — must leave the service
// consistent: the failing query surfaces the injected Status, admission
// tickets and gang slots return to zero, no cursor stays open, and the very
// next query on the same service succeeds with byte-identical results.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/memory_tracker.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

// ----- MemoryTracker primitive -----

TEST(MemoryTrackerTest, ChargeReleaseAndPeak) {
  MemoryTracker tracker(/*limit_bytes=*/1000);
  EXPECT_TRUE(tracker.Charge(400).ok());
  EXPECT_TRUE(tracker.Charge(500).ok());
  EXPECT_EQ(tracker.used_bytes(), 900);
  EXPECT_EQ(tracker.peak_bytes(), 900);
  tracker.Release(600);
  EXPECT_EQ(tracker.used_bytes(), 300);
  EXPECT_EQ(tracker.peak_bytes(), 900);  // peak is sticky
}

TEST(MemoryTrackerTest, BreachRollsBackAndReportsResourceExhausted) {
  MemoryTracker tracker(/*limit_bytes=*/100);
  EXPECT_TRUE(tracker.Charge(90).ok());
  Status s = tracker.Charge(20);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // The failed charge must not stick: the query unwinds, but the tracker
  // still reflects only successfully charged bytes.
  EXPECT_EQ(tracker.used_bytes(), 90);
  EXPECT_TRUE(tracker.Charge(10).ok());
}

TEST(MemoryTrackerTest, NonPositiveLimitIsUnlimited) {
  MemoryTracker tracker(/*limit_bytes=*/0);
  EXPECT_TRUE(tracker.Charge(int64_t{1} << 40).ok());
  EXPECT_EQ(tracker.limit_bytes(), 0);
}

// ----- Shared workload (the paper's Emp/Dept/Bonus running example) -----

void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(31);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 120; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 5; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

const char* kJoinQuery =
    "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND D.budget > 100000";
const char* kMagicQuery =
    "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND D.did = V.did AND D.budget > 100000 "
    "AND E.sal > V.avgcomp";
// High-cardinality GROUP BY: every Emp row is its own group, so the
// aggregate's retained state scales with the input — the shape a memory
// governor exists for.
const char* kWideAggQuery =
    "SELECT E.eid, AVG(E.sal + B.amount) AS comp FROM Emp E, Bonus B "
    "WHERE E.eid = B.eid GROUP BY E.eid";

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

// ----- Memory governance through the service -----

TEST(MemoryGovernorTest, OverLimitQueryFailsResourceExhausted) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  for (int dop : {1, 4}) {
    ExecOptions exec;
    exec.dop = dop;
    exec.memory_limit_bytes = 1024;  // far below the build/aggregate state
    auto r = session->Query(kWideAggQuery, exec);
    ASSERT_FALSE(r.ok()) << "dop=" << dop;
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "dop=" << dop << ": " << r.status().ToString();
  }
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.queries_resource_exhausted, 2);
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
  EXPECT_EQ(stats.open_cursors, 0);

  // The same query without a limit still succeeds on the same service.
  auto ok = session->Query(kWideAggQuery);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_FALSE(ok->rows.empty());
}

TEST(MemoryGovernorTest, ServiceDefaultLimitAppliesAndCanBeOverridden) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.query_memory_limit_bytes = 1024;  // default governs every query
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  auto r = session->Query(kWideAggQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);

  // Negative per-query limit = explicitly ungoverned despite the default.
  ExecOptions exec;
  exec.memory_limit_bytes = -1;
  auto ok = session->Query(kWideAggQuery, exec);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();

  // A generous per-query override also beats the tiny default.
  exec.memory_limit_bytes = 64 * 1024 * 1024;
  auto ok2 = session->Query(kWideAggQuery, exec);
  ASSERT_TRUE(ok2.ok()) << ok2.status().ToString();
  ExpectRowsIdentical(ok2->rows, ok->rows);
}

TEST(MemoryGovernorTest, ConcurrentUnderLimitQueriesCompleteWhileOneBreaches) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);

  constexpr int kThreads = 4;
  std::vector<Status> breach_status(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::unique_ptr<Session> session = service.CreateSession();
      for (int round = 0; round < 5; ++round) {
        if (i == 0) {
          // One session keeps breaching its tiny limit...
          ExecOptions exec;
          exec.memory_limit_bytes = 512;
          auto r = session->Query(kWideAggQuery, exec);
          breach_status[i] =
              r.ok() ? Status::Internal("breach unexpectedly succeeded")
                     : r.status();
        } else {
          // ...while everyone else runs governed-but-roomy queries.
          ExecOptions exec;
          exec.memory_limit_bytes = 64 * 1024 * 1024;
          auto r = session->Query(kJoinQuery, exec);
          if (!r.ok()) {
            breach_status[i] = r.status();
            return;
          }
          if (r->rows.size() != baseline->rows.size()) {
            breach_status[i] = Status::Internal("row count diverged");
            return;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(breach_status[0].code(), StatusCode::kResourceExhausted)
      << breach_status[0].ToString();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_TRUE(breach_status[i].ok()) << "thread " << i << ": "
                                       << breach_status[i].ToString();
  }
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
  EXPECT_EQ(stats.open_cursors, 0);
}

TEST(MemoryGovernorTest, UngovernedResultsByteIdenticalToDatabaseQuery) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kMagicQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  auto ungoverned = session->Query(kMagicQuery);
  ASSERT_TRUE(ungoverned.ok());
  ExpectRowsIdentical(ungoverned->rows, baseline->rows);

  // Governance with headroom must not perturb results either.
  ExecOptions exec;
  exec.memory_limit_bytes = 256 * 1024 * 1024;
  auto governed = session->Query(kMagicQuery, exec);
  ASSERT_TRUE(governed.ok());
  ExpectRowsIdentical(governed->rows, baseline->rows);
}

#ifdef MAGICDB_FAILPOINTS

// ----- Failpoint-driven chaos sweep -----

// Every fault-capable site threaded through the stack. The park/resume
// sites are hit-only (they cannot fail) and are exercised by the delay
// test below instead.
const char* kFaultSites[] = {
    "storage.page_read",       "exec.hash_join.build",
    "exec.filter_join.build",  "exec.aggregate.build",
    "parallel.aggregate.merge", "parallel.gang.start",
    "server.sink.push",        "server.plan_cache.insert",
    "server.cursor.fetch",
};

// Runs the mixed workload once. With an empty `injected_msg` every result
// must succeed; otherwise each individual result must either succeed or
// fail with exactly the injected chaos status.
void RunMixedWorkload(Session* session, const std::string& injected_msg) {
  auto check = [&](const Status& s, const char* what) {
    if (s.ok()) return;
    if (injected_msg.empty()) {
      ADD_FAILURE() << what << " failed in a fault-free run: " << s.ToString();
      return;
    }
    EXPECT_NE(s.ToString().find(injected_msg), std::string::npos)
        << what << " failed with a status other than the injected one: "
        << s.ToString();
  };
  {
    auto r = session->Query(kJoinQuery);
    check(r.status(), "sequential join");
  }
  {
    ExecOptions exec;
    exec.dop = 4;
    auto r = session->Query(kMagicQuery, exec);
    check(r.status(), "parallel magic query");
  }
  {
    ExecOptions exec;
    exec.dop = 4;
    auto r = session->Query(kWideAggQuery, exec);
    check(r.status(), "parallel wide aggregate");
  }
  {
    auto cursor = session->Open(kJoinQuery);
    if (!cursor.ok()) {
      check(cursor.status(), "cursor open");
      return;
    }
    bool fetch_failed = false;
    while (true) {
      auto batch = cursor->Fetch(64);
      if (!batch.ok()) {
        check(batch.status(), "cursor fetch");
        fetch_failed = true;
        break;
      }
      if (batch->empty()) break;
    }
    // After a mid-stream fault, Close classifies the cursor as closed
    // before end-of-stream — any terminal status is acceptable there; a
    // fully drained stream must close cleanly or with the injected fault.
    Status close_status = cursor->Close();
    if (!fetch_failed) check(close_status, "cursor close");
  }
}

TEST(ChaosTest, AnyInjectedFaultLeavesServiceConsistent) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kMagicQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  // Warm up every query shape once, fault-free, so each site's static
  // registration has run and the plan cache is populated (the sweep then
  // also covers cached-plan paths).
  RunMixedWorkload(session.get(), /*injected_msg=*/"");

  for (const char* site : kFaultSites) {
    SCOPED_TRACE(site);
    const std::string msg = std::string("chaos: ") + site;
    FailpointConfig config;
    config.inject = Status::Internal(msg);
    {
      ScopedFailpoint armed(site, config);
      RunMixedWorkload(session.get(), msg);
    }

    // The chaos invariant: whatever the fault tore down mid-flight, every
    // ticket, gang slot, and cursor must be back.
    ServiceStats stats = service.StatsSnapshot();
    EXPECT_EQ(stats.active_queries, 0);
    EXPECT_EQ(stats.used_gang_slots, 0);
    EXPECT_EQ(stats.open_cursors, 0);

    // And the service still answers correctly once disarmed.
    auto after = session->Query(kMagicQuery);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    ExpectRowsIdentical(after->rows, baseline->rows);
  }

  // The sweep must have actually injected faults, not tiptoed around the
  // sites: every site in the list was executed at least once.
  EXPECT_GT(FailpointRegistry::Instance().TotalFires(), 0);
  for (const char* site : kFaultSites) {
    EXPECT_GT(FailpointRegistry::Instance().Site(site)->hits(), 0)
        << site << " was never executed by the mixed workload";
  }
}

TEST(ChaosTest, ProbabilisticFaultsUnderConcurrencyRecover) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 4;
  QueryService service(&db, so);

  FailpointConfig config;
  config.inject = Status::Internal("chaos: coinflip");
  config.probability = 0.3;
  config.seed = 7;
  {
    ScopedFailpoint page(std::string("storage.page_read"), config);
    ScopedFailpoint push(std::string("server.sink.push"), config);
    std::vector<std::thread> threads;
    for (int i = 0; i < 4; ++i) {
      threads.emplace_back([&service, i] {
        std::unique_ptr<Session> session = service.CreateSession();
        for (int round = 0; round < 8; ++round) {
          ExecOptions exec;
          exec.dop = (i % 2 == 0) ? 1 : 4;
          auto r = session->Query(kJoinQuery, exec);
          if (!r.ok()) {
            // Only the injected fault may surface.
            EXPECT_NE(r.status().ToString().find("chaos: coinflip"),
                      std::string::npos)
                << r.status().ToString();
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
  EXPECT_EQ(stats.open_cursors, 0);
  std::unique_ptr<Session> session = service.CreateSession();
  EXPECT_TRUE(session->Query(kJoinQuery).ok());
}

TEST(ChaosTest, ParkResumeDelayInjectionKeepsStreamExact) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  // Tiny quanta so the producer re-checks queue capacity every few rows —
  // with a 4-row high-water mark below, it parks over and over.
  so.scheduler_quantum_rows = 2;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  // Stretch the park -> resume handoff with injected latency on both sides
  // while a tiny queue forces the producer to park constantly. The stream
  // must still deliver every row exactly once, in order.
  FailpointConfig delay;
  delay.delay_micros = 500;
  delay.max_fires = 25;  // bound injected latency, parks keep counting
  ScopedFailpoint park(std::string("server.sink.park"), delay);
  ScopedFailpoint resume(std::string("server.sink.resume"), delay);

  ExecOptions exec;
  exec.stream_queue_rows = 4;
  auto cursor = session->Open(kJoinQuery, exec);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<Tuple> streamed;
  while (true) {
    auto batch = cursor->Fetch(3);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty()) break;
    for (Tuple& t : *batch) streamed.push_back(std::move(t));
  }
  EXPECT_GT(cursor->producer_parks(), 0);
  ASSERT_TRUE(cursor->Close().ok());
  ExpectRowsIdentical(streamed, baseline->rows);
  EXPECT_EQ(service.StatsSnapshot().open_cursors, 0);
}

TEST(ChaosTest, DeterministicTriggersFireOnSchedule) {
  // Trigger semantics on a bare site: fire from the 3rd eligible hit, every
  // 2nd hit after that, capped at 2 fires.
  Failpoint* site =
      FailpointRegistry::Instance().Site("test.chaos.trigger_schedule");
  FailpointConfig config;
  config.fire_from_hit = 3;
  config.every_k = 2;
  config.max_fires = 2;
  config.inject = Status::Internal("scheduled");
  ScopedFailpoint armed(std::string("test.chaos.trigger_schedule"), config);

  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(!site->Evaluate().ok());
  // Hits:   1      2      3     4      5     6      7      8
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, true, false,
                                      false, false}));
}

TEST(ChaosTest, MetricsTextExportsFailpointFires) {
  Database db;
  MakeWorkload(&db);
  QueryService service(&db, {});
  std::unique_ptr<Session> session = service.CreateSession();
  FailpointConfig config;
  config.inject = Status::Internal("chaos: metrics");
  {
    ScopedFailpoint armed(std::string("storage.page_read"), config);
    auto r = session->Query(kJoinQuery);
    ASSERT_FALSE(r.ok());
  }
  std::string dump = service.MetricsText();
  EXPECT_NE(
      dump.find("magicdb_failpoint_fires_total{site=\"storage.page_read\"}"),
      std::string::npos)
      << dump;
}

#endif  // MAGICDB_FAILPOINTS

}  // namespace
}  // namespace magicdb
