// Estimate-quality checks: the optimizer's cardinality and cost estimates
// must stay within sane factors of reality across workload shapes. The
// paper's argument only needs *ordering* fidelity, but estimates that
// drift orders of magnitude would undermine it; these tests pin the drift.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"

namespace magicdb {
namespace {

struct EstimateParams {
  int num_depts;
  int emps_per_dept;
  double young_frac;
  double big_frac;
};

class EstimateQualityTest : public ::testing::TestWithParam<EstimateParams> {
};

TEST_P(EstimateQualityTest, RowAndCostEstimatesWithinBounds) {
  const EstimateParams& p = GetParam();
  Database db;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(60 + p.num_depts);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < p.num_depts; ++d) {
    depts.push_back(
        {Value::Int64(d),
         Value::Double(rng.Bernoulli(p.big_frac) ? 200000.0 : 50000.0)});
    for (int e = 0; e < p.emps_per_dept; ++e) {
      emps.push_back(
          {Value::Int64(d), Value::Double(50000 + rng.NextDouble() * 100000),
           Value::Int64(rng.Bernoulli(p.young_frac) ? 25 : 45)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal FROM Emp "
      "GROUP BY did"));

  auto result = db.Query(
      "SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Cost: predicted within 5x of measured in either direction (same
  // units; most runs are within ~20%, the bound is a regression tripwire).
  const double measured = result->counters.TotalCost();
  EXPECT_LT(result->est_cost, measured * 5 + 50) << "overestimate";
  EXPECT_GT(result->est_cost * 5 + 50, measured) << "underestimate";

  // Rows: System-R-style estimation drifts through a three-way join with
  // a non-equi residual (the 1/3 range heuristic); the tripwire is set an
  // order of magnitude wide to catch regressions, not to certify accuracy.
  const double actual_rows = static_cast<double>(result->rows.size());
  EXPECT_LT(result->est_rows, actual_rows * 30 + 30);
  EXPECT_GT(result->est_rows * 30 + 30, actual_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimateQualityTest,
    ::testing::Values(EstimateParams{100, 5, 0.05, 0.05},
                      EstimateParams{100, 5, 0.5, 0.5},
                      EstimateParams{400, 3, 0.02, 0.5},
                      EstimateParams{50, 20, 0.9, 0.9},
                      EstimateParams{200, 10, 0.3, 0.1}));

TEST(EstimateQualityTest, FilterSetSizePredictionTracksActual) {
  // The Yao-based |F| prediction must track the true distinct count of the
  // production set's keys across selectivities.
  for (double frac : {0.05, 0.2, 0.6}) {
    Database db;
    MAGICDB_CHECK_OK(
        db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
    MAGICDB_CHECK_OK(
        db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
    Random rng(70);
    std::vector<Tuple> emps, depts;
    int actual_qualifying = 0;
    for (int d = 0; d < 300; ++d) {
      const bool big = rng.Bernoulli(frac);
      if (big) ++actual_qualifying;
      depts.push_back(
          {Value::Int64(d), Value::Double(big ? 200000.0 : 50000.0)});
      for (int e = 0; e < 4; ++e) {
        emps.push_back({Value::Int64(d),
                        Value::Double(50000 + rng.NextDouble() * 100000),
                        Value::Int64(25)});
      }
    }
    MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
    MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
    (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
    MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
    MAGICDB_CHECK_OK(db.Execute(
        "CREATE VIEW V AS SELECT did, AVG(sal) AS a FROM Emp GROUP BY did"));

    db.mutable_optimizer_options()->magic_mode =
        OptimizerOptions::MagicMode::kAlwaysOnVirtual;
    auto result = db.Query(
        "SELECT D.did, V.a FROM Dept D, V "
        "WHERE D.did = V.did AND D.budget > 100000");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->filter_joins.empty()) continue;  // heuristic kept plain plan
    const double predicted = result->filter_joins[0].filter_set_size;
    // |F| should be the number of qualifying departments, within 2x + 5.
    EXPECT_LT(predicted, 2.0 * actual_qualifying + 5) << "frac=" << frac;
    EXPECT_GT(2.0 * predicted + 5, actual_qualifying) << "frac=" << frac;
  }
}

TEST(EstimateQualityTest, MeasuredFilterJoinPhasesTrackPredictions) {
  Database db;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(80);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < 500; ++d) {
    depts.push_back(
        {Value::Int64(d),
         Value::Double(rng.Bernoulli(0.03) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 5; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(50000 + rng.NextDouble() * 100000),
                      Value::Int64(rng.Bernoulli(0.03) ? 25 : 45)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal FROM Emp "
      "GROUP BY did"));

  auto result = db.Query(
      "SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->filter_joins.empty()) {
    GTEST_SKIP() << "optimizer chose a non-FilterJoin plan";
  }
  ASSERT_FALSE(result->filter_join_measured.empty());
  const FilterJoinCostBreakdown& bd = result->filter_joins[0];
  const FilterJoinMeasured& ms = result->filter_join_measured[0];
  // The operator's measured phases must track the Table-1 predictions:
  // totals within 2x, and the dominant component (FilterCost_Rk) within 2x.
  const double predicted_total = bd.join_cost_p + bd.StepTotal();
  EXPECT_GT(ms.Total(), predicted_total / 2);
  EXPECT_LT(ms.Total(), predicted_total * 2);
  const double predicted_filter = bd.filter_cost_rk + bd.avail_cost_rk;
  EXPECT_GT(ms.filter_inner, predicted_filter / 2);
  EXPECT_LT(ms.filter_inner, predicted_filter * 2);
  // Every measured phase is non-negative and the sum is consistent.
  EXPECT_GE(ms.production, 0);
  EXPECT_GE(ms.projection, 0);
  EXPECT_GE(ms.avail_filter, 0);
  EXPECT_GE(ms.final_join, 0);
}

// ---------------------------------------------------------------------------
// Adaptive re-optimization: runtime cardinality feedback.
// ---------------------------------------------------------------------------

// Workload whose estimates are wrong by construction: Fact.a == Fact.b on
// every row, so under the independence assumption the conjunction
// "a < 1 AND b < 1" is estimated at ~1% of Fact while ~10% actually
// qualifies — a ~10x underestimate on the filtered scan. Dim is kept
// smaller than the (under)estimated filtered Fact so the hash-join cost
// model (which minimizes probe rows) puts the misestimated stream on the
// build side, where the breaker observes it.
void MakeCorrelatedWorkload(Database* db, int fact_rows = 4000,
                            int dim_rows = 30) {
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Fact (k INT, a INT, b INT)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE Dim (k INT, tag INT)"));
  std::vector<Tuple> facts, dims;
  for (int i = 0; i < fact_rows; ++i) {
    const int64_t v = i % 10;
    facts.push_back({Value::Int64(i % dim_rows), Value::Int64(v),
                     Value::Int64(v)});
  }
  for (int k = 0; k < dim_rows; ++k) {
    dims.push_back({Value::Int64(k), Value::Int64(k * 7)});
  }
  MAGICDB_CHECK_OK(db->LoadRows("Fact", std::move(facts)));
  MAGICDB_CHECK_OK(db->LoadRows("Dim", std::move(dims)));
  MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
}

const char* kCorrelatedQuery =
    "SELECT F.k, D.tag FROM Dim D, Fact F "
    "WHERE F.k = D.k AND F.a < 1 AND F.b < 1";

std::vector<Tuple> Sorted(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end(), [](const Tuple& x, const Tuple& y) {
    return CompareTuples(x, y) < 0;
  });
  return rows;
}

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

void ExpectCountersEqual(const CostCounters& a, const CostCounters& b) {
  EXPECT_EQ(a.pages_read, b.pages_read);
  EXPECT_EQ(a.pages_written, b.pages_written);
  EXPECT_EQ(a.tuples_processed, b.tuples_processed);
  EXPECT_EQ(a.exprs_evaluated, b.exprs_evaluated);
  EXPECT_EQ(a.hash_operations, b.hash_operations);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.bytes_shipped, b.bytes_shipped);
  EXPECT_EQ(a.function_invocations, b.function_invocations);
}

TEST(ReoptimizationTest, CorrelatedPredicateTriggersAndShrinksQError) {
  Database db;
  MakeCorrelatedWorkload(&db);

  // Baseline pins re-optimization explicitly off, immune to the
  // MAGICDB_TEST_REOPT_QERROR sweep.
  ExecOptions off;
  off.reoptimize_qerror_threshold = 0.0;
  auto baseline = db.Run(kCorrelatedQuery, off);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_FALSE(baseline->rows.empty());
  EXPECT_EQ(baseline->reoptimizations, 0);

  ExecOptions adaptive;
  adaptive.reoptimize_qerror_threshold = 2.0;
  adaptive.persist_feedback = true;

  // First adaptive run: the breaker above the misestimated scan observes
  // the ~10x error, aborts, and re-plans against the observed count.
  auto r1 = db.Run(kCorrelatedQuery, adaptive);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_GE(r1->reoptimizations, 1);
  ExpectRowsIdentical(Sorted(r1->rows), Sorted(baseline->rows));
  bool saw_bad_estimate = false;
  for (const CardinalityObservation& obs : r1->feedback) {
    if (IsOverlayKey(obs.key) && obs.QError() >= 2.0) saw_bad_estimate = true;
  }
  EXPECT_TRUE(saw_bad_estimate) << "no overlay-eligible q-error >= 2 recorded";

  // Second run plans from the persisted feedback: the corrected estimate
  // means no q-error crosses the threshold and no re-plan happens.
  EXPECT_GT(db.feedback_store()->size(), 0u);
  auto r2 = db.Run(kCorrelatedQuery, adaptive);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->reoptimizations, 0);
  ExpectRowsIdentical(Sorted(r2->rows), Sorted(baseline->rows));
  for (const CardinalityObservation& obs : r2->feedback) {
    if (!IsOverlayKey(obs.key) || !obs.exact) continue;
    EXPECT_LT(obs.QError(), 2.0) << obs.key << ": est " << obs.estimated
                                 << " actual " << obs.actual;
  }
}

TEST(ReoptimizationTest, ResultsByteIdenticalAcrossDopWithAndWithoutReopt) {
  for (double threshold : {0.0, 1.5}) {
    Database db;
    MakeCorrelatedWorkload(&db);
    ExecOptions base;
    base.reoptimize_qerror_threshold = threshold;

    ExecOptions seq = base;
    seq.dop = 1;
    auto r1 = db.Run(kCorrelatedQuery, seq);
    ASSERT_TRUE(r1.ok()) << r1.status().ToString();
    ASSERT_FALSE(r1->rows.empty());
    if (threshold > 0) EXPECT_GE(r1->reoptimizations, 1);

    ExecOptions par = base;
    par.dop = 4;
    auto r4 = db.Run(kCorrelatedQuery, par);
    ASSERT_TRUE(r4.ok()) << r4.status().ToString();

    // The engine's DoP-invariance contract holds through restarts: same
    // rows in the same order, and the same merged cost counters.
    ExpectRowsIdentical(r4->rows, r1->rows);
    ExpectCountersEqual(r4->counters, r1->counters);
    EXPECT_EQ(r4->reoptimizations, r1->reoptimizations) << threshold;
  }
}

TEST(ReoptimizationTest, MaxReoptimizationsZeroDisablesRestarts) {
  Database db;
  MakeCorrelatedWorkload(&db);
  ExecOptions opts;
  opts.reoptimize_qerror_threshold = 1.1;
  opts.max_reoptimizations = 0;
  auto r = db.Run(kCorrelatedQuery, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->reoptimizations, 0);
  // Observations are still collected for diagnostics / persistence.
  EXPECT_FALSE(r->feedback.empty());
}

}  // namespace
}  // namespace magicdb
