// Estimate-quality checks: the optimizer's cardinality and cost estimates
// must stay within sane factors of reality across workload shapes. The
// paper's argument only needs *ordering* fidelity, but estimates that
// drift orders of magnitude would undermine it; these tests pin the drift.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"

namespace magicdb {
namespace {

struct EstimateParams {
  int num_depts;
  int emps_per_dept;
  double young_frac;
  double big_frac;
};

class EstimateQualityTest : public ::testing::TestWithParam<EstimateParams> {
};

TEST_P(EstimateQualityTest, RowAndCostEstimatesWithinBounds) {
  const EstimateParams& p = GetParam();
  Database db;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(60 + p.num_depts);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < p.num_depts; ++d) {
    depts.push_back(
        {Value::Int64(d),
         Value::Double(rng.Bernoulli(p.big_frac) ? 200000.0 : 50000.0)});
    for (int e = 0; e < p.emps_per_dept; ++e) {
      emps.push_back(
          {Value::Int64(d), Value::Double(50000 + rng.NextDouble() * 100000),
           Value::Int64(rng.Bernoulli(p.young_frac) ? 25 : 45)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal FROM Emp "
      "GROUP BY did"));

  auto result = db.Query(
      "SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Cost: predicted within 5x of measured in either direction (same
  // units; most runs are within ~20%, the bound is a regression tripwire).
  const double measured = result->counters.TotalCost();
  EXPECT_LT(result->est_cost, measured * 5 + 50) << "overestimate";
  EXPECT_GT(result->est_cost * 5 + 50, measured) << "underestimate";

  // Rows: System-R-style estimation drifts through a three-way join with
  // a non-equi residual (the 1/3 range heuristic); the tripwire is set an
  // order of magnitude wide to catch regressions, not to certify accuracy.
  const double actual_rows = static_cast<double>(result->rows.size());
  EXPECT_LT(result->est_rows, actual_rows * 30 + 30);
  EXPECT_GT(result->est_rows * 30 + 30, actual_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EstimateQualityTest,
    ::testing::Values(EstimateParams{100, 5, 0.05, 0.05},
                      EstimateParams{100, 5, 0.5, 0.5},
                      EstimateParams{400, 3, 0.02, 0.5},
                      EstimateParams{50, 20, 0.9, 0.9},
                      EstimateParams{200, 10, 0.3, 0.1}));

TEST(EstimateQualityTest, FilterSetSizePredictionTracksActual) {
  // The Yao-based |F| prediction must track the true distinct count of the
  // production set's keys across selectivities.
  for (double frac : {0.05, 0.2, 0.6}) {
    Database db;
    MAGICDB_CHECK_OK(
        db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
    MAGICDB_CHECK_OK(
        db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
    Random rng(70);
    std::vector<Tuple> emps, depts;
    int actual_qualifying = 0;
    for (int d = 0; d < 300; ++d) {
      const bool big = rng.Bernoulli(frac);
      if (big) ++actual_qualifying;
      depts.push_back(
          {Value::Int64(d), Value::Double(big ? 200000.0 : 50000.0)});
      for (int e = 0; e < 4; ++e) {
        emps.push_back({Value::Int64(d),
                        Value::Double(50000 + rng.NextDouble() * 100000),
                        Value::Int64(25)});
      }
    }
    MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
    MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
    (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
    MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
    MAGICDB_CHECK_OK(db.Execute(
        "CREATE VIEW V AS SELECT did, AVG(sal) AS a FROM Emp GROUP BY did"));

    db.mutable_optimizer_options()->magic_mode =
        OptimizerOptions::MagicMode::kAlwaysOnVirtual;
    auto result = db.Query(
        "SELECT D.did, V.a FROM Dept D, V "
        "WHERE D.did = V.did AND D.budget > 100000");
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (result->filter_joins.empty()) continue;  // heuristic kept plain plan
    const double predicted = result->filter_joins[0].filter_set_size;
    // |F| should be the number of qualifying departments, within 2x + 5.
    EXPECT_LT(predicted, 2.0 * actual_qualifying + 5) << "frac=" << frac;
    EXPECT_GT(2.0 * predicted + 5, actual_qualifying) << "frac=" << frac;
  }
}

TEST(EstimateQualityTest, MeasuredFilterJoinPhasesTrackPredictions) {
  Database db;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(80);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < 500; ++d) {
    depts.push_back(
        {Value::Int64(d),
         Value::Double(rng.Bernoulli(0.03) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 5; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(50000 + rng.NextDouble() * 100000),
                      Value::Int64(rng.Bernoulli(0.03) ? 25 : 45)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal FROM Emp "
      "GROUP BY did"));

  auto result = db.Query(
      "SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (result->filter_joins.empty()) {
    GTEST_SKIP() << "optimizer chose a non-FilterJoin plan";
  }
  ASSERT_FALSE(result->filter_join_measured.empty());
  const FilterJoinCostBreakdown& bd = result->filter_joins[0];
  const FilterJoinMeasured& ms = result->filter_join_measured[0];
  // The operator's measured phases must track the Table-1 predictions:
  // totals within 2x, and the dominant component (FilterCost_Rk) within 2x.
  const double predicted_total = bd.join_cost_p + bd.StepTotal();
  EXPECT_GT(ms.Total(), predicted_total / 2);
  EXPECT_LT(ms.Total(), predicted_total * 2);
  const double predicted_filter = bd.filter_cost_rk + bd.avail_cost_rk;
  EXPECT_GT(ms.filter_inner, predicted_filter / 2);
  EXPECT_LT(ms.filter_inner, predicted_filter * 2);
  // Every measured phase is non-negative and the sum is consistent.
  EXPECT_GE(ms.production, 0);
  EXPECT_GE(ms.projection, 0);
  EXPECT_GE(ms.avail_filter, 0);
  EXPECT_GE(ms.final_join, 0);
}

}  // namespace
}  // namespace magicdb
