// Tests for equi-join transitive closure and order-propagation through the
// plan (the completion of System R's "interesting orders").

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/optimizer/optimizer.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

class TransitivityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    // A.k = B.k and A.k = C.k, but no direct B-C predicate.
    for (const char* t : {"A", "B", "C"}) {
      MAGICDB_CHECK_OK(db_.Execute(std::string("CREATE TABLE ") + t +
                                   " (k INT, p INT)"));
    }
    Random rng(55);
    for (const char* t : {"A", "B", "C"}) {
      std::vector<Tuple> rows;
      for (int i = 0; i < 200; ++i) {
        rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(20))),
                        Value::Int64(i)});
      }
      MAGICDB_CHECK_OK(db_.LoadRows(t, std::move(rows)));
    }
    MAGICDB_CHECK_OK(db_.catalog()->AnalyzeAll());
  }

  static constexpr const char* kQuery =
      "SELECT A.p, B.p, C.p FROM A, B, C WHERE A.k = B.k AND A.k = C.k";

  Database db_;
};

TEST_F(TransitivityFixture, ImpliedEdgeAvoidsCrossProducts) {
  // Every one of the six join orders should be joinable with equi methods;
  // with the implied B.k = C.k edge, B-C-first orders are hash joins, not
  // cross products, so the spread between orders stays small.
  auto logical = db_.Bind(kQuery);
  ASSERT_TRUE(logical.ok());
  Optimizer opt(db_.catalog());
  auto orders = opt.EnumerateJoinOrders(*logical);
  ASSERT_TRUE(orders.ok()) << orders.status().ToString();
  ASSERT_EQ(orders->size(), 6u);
  double best = -1, worst = -1;
  for (const JoinOrderCost& joc : *orders) {
    EXPECT_EQ(joc.methods_without.find("NL"), std::string::npos)
        << joc.methods_without;
    if (best < 0 || joc.cost_without_filter_join < best) {
      best = joc.cost_without_filter_join;
    }
    worst = std::max(worst, joc.cost_without_filter_join);
  }
  EXPECT_LT(worst, best * 20);  // no cross-product blowups
}

TEST_F(TransitivityFixture, ResultsUnchangedByTransitivity) {
  auto result = db_.Query(kQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Reference via nested loops over everything (methods disabled one way).
  OptimizerOptions opts;
  opts.enable_hash_join = false;
  opts.enable_sort_merge = false;
  opts.enable_index_nested_loops = false;
  opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  opts.filter_join_on_stored = false;
  *db_.mutable_optimizer_options() = opts;
  auto reference = db_.Query(kQuery);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(SameMultiset(result->rows, reference->rows));
}

TEST_F(TransitivityFixture, NoDuplicateRowsFromImpliedEdges) {
  // Implied conjuncts must not be applied as extra filters that change
  // multiplicities. Compare against hand-computed counts.
  auto result = db_.Query(
      "SELECT A.k FROM A, B, C WHERE A.k = B.k AND A.k = C.k AND A.p = 0");
  ASSERT_TRUE(result.ok());
  // Row A.p=0 has some key k0; result multiplicity = |B.k=k0| * |C.k=k0|.
  const Table* a = (*db_.catalog()->Lookup("A"))->table;
  const Table* b = (*db_.catalog()->Lookup("B"))->table;
  const Table* c = (*db_.catalog()->Lookup("C"))->table;
  const int64_t k0 = a->row(0)[0].AsInt64();
  int64_t nb = 0, nc = 0;
  for (int64_t i = 0; i < b->NumRows(); ++i) {
    if (b->row(i)[0].AsInt64() == k0) ++nb;
  }
  for (int64_t i = 0; i < c->NumRows(); ++i) {
    if (c->row(i)[0].AsInt64() == k0) ++nc;
  }
  EXPECT_EQ(static_cast<int64_t>(result->rows.size()), nb * nc);
}

TEST(OrderPropagationTest, OrderByElidedWhenPlanDeliversOrder) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE A (k INT, p INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE B (k INT, q INT)"));
  Random rng(56);
  std::vector<Tuple> a, b;
  for (int i = 0; i < 400; ++i) {
    a.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                 Value::Int64(i)});
    b.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                 Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("A", std::move(a)));
  MAGICDB_CHECK_OK(db.LoadRows("B", std::move(b)));
  (*db.catalog()->Lookup("A"))->table->CreateOrderedIndex({0});
  (*db.catalog()->Lookup("B"))->table->CreateOrderedIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());

  // Force sort-merge so the join output is ordered by A.k; ORDER BY A.k
  // should then cost nothing extra (no Sort operator in the plan).
  OptimizerOptions opts;
  opts.enable_hash_join = false;
  opts.enable_index_nested_loops = false;
  opts.enable_nested_loops = false;
  opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  opts.filter_join_on_stored = false;
  *db.mutable_optimizer_options() = opts;
  auto sorted = db.Query(
      "SELECT A.k, B.q FROM A, B WHERE A.k = B.k ORDER BY k");
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(sorted->explain.find("Sort("), std::string::npos)
      << sorted->explain;
  // And the output really is sorted.
  for (size_t i = 1; i < sorted->rows.size(); ++i) {
    EXPECT_LE(sorted->rows[i - 1][0].AsInt64(), sorted->rows[i][0].AsInt64());
  }
}

TEST(OrderPropagationTest, DescendingOrderStillSorts) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE A (k INT)"));
  std::vector<Tuple> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({Value::Int64(i % 7)});
  MAGICDB_CHECK_OK(db.LoadRows("A", std::move(rows)));
  (*db.catalog()->Lookup("A"))->table->CreateOrderedIndex({0});
  auto result = db.Query("SELECT k FROM A ORDER BY k DESC");
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GE(result->rows[i - 1][0].AsInt64(), result->rows[i][0].AsInt64());
  }
}

}  // namespace
}  // namespace magicdb
