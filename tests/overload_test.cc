// Overload resilience of the query service: weighted-fair admission across
// priority classes, load shedding with machine-readable retry hints, the
// service-wide memory ceiling and spill disk budget, the stuck-query
// watchdog, and graceful drain.
//
// The invariants under test: under overload the service sheds (bounded
// queue) instead of queueing unboundedly, high-priority work is never shed
// and cannot be starved by background work, every rejection carries enough
// information for the client to retry sensibly, and no overload outcome —
// shed, budget exhaustion, watchdog kill, drain — leaks an admission
// ticket, gang slot, open cursor, memory-ceiling claim, or disk-budget
// byte. Surviving queries stay byte-identical to the sequential baseline.

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/backoff.h"
#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/server/query_service.h"
#include "src/server/session.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using std::chrono::milliseconds;

// ----- shared workload (the paper's Emp/Dept/Bonus running example) -----

void MakeWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(53);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 150; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.05) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 6; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.1) ? 25 : 45)});
      bonuses.push_back(
          {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

const char* kJoinQuery =
    "SELECT E.eid, E.sal, D.budget FROM Emp E, Dept D "
    "WHERE E.did = D.did AND E.age < 30 AND D.budget > 100000";
const char* kViewQuery =
    "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
    "WHERE E.did = D.did AND D.did = V.did AND D.budget > 100000 "
    "AND E.sal > V.avgcomp";
const char* kScanQuery = "SELECT E.eid, E.did, E.sal FROM Emp E "
                         "WHERE E.age >= 0";

void ExpectRowsIdentical(const std::vector<Tuple>& a,
                         const std::vector<Tuple>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(CompareTuples(a[i], b[i]), 0) << "row " << i << " differs";
  }
}

void ExpectNoLeaks(QueryService* service) {
  // Producer teardown (spill-file destructors releasing disk-budget
  // charges) completes with the pool task that finished the stream; wait
  // for the pool so the zero-leak invariant is checked against a quiesced
  // service, not a race.
  service->pool()->WaitIdle();
  ServiceStats stats = service->StatsSnapshot();
  EXPECT_EQ(stats.active_queries, 0);
  EXPECT_EQ(stats.used_gang_slots, 0);
  EXPECT_EQ(stats.open_cursors, 0);
  EXPECT_EQ(stats.queued_queries, 0);
  EXPECT_EQ(stats.memory_ceiling_claimed_bytes, 0);
  EXPECT_EQ(stats.spill_disk_used_bytes, 0);
}

/// Drains and closes a cursor, ignoring errors (helper for waiter threads
/// whose outcome is asserted elsewhere).
void DrainAndClose(Cursor* cursor) {
  while (true) {
    auto batch = cursor->Fetch(4096);
    if (!batch.ok() || batch->empty()) break;
  }
  cursor->Close();
}

/// Spins until the service reports `n` queued admission waiters (bounded).
void AwaitQueuedDepth(QueryService* service, int n) {
  for (int i = 0; i < 2000; ++i) {
    if (service->StatsSnapshot().queued_queries >= n) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FAIL() << "admission queue never reached depth " << n;
}

// ----- retry-after hint plumbing (src/common/backoff.h) -----

TEST(OverloadTest, RetryAfterHintRoundTrips) {
  const std::string msg =
      "server overloaded (queue_depth): admission queue is saturated; " +
      FormatRetryAfterHint(12345);
  EXPECT_EQ(ParseRetryAfterUs(msg), 12345);
  EXPECT_EQ(ParseRetryAfterUs("service is draining"), -1);
  EXPECT_EQ(ParseRetryAfterUs("retry_after_us=oops"), -1);
  EXPECT_EQ(ParseRetryAfterUs(""), -1);
}

// ----- load shedding -----

TEST(OverloadTest, ShedsNonHighUnderQueuePressureWithRetryHint) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.max_concurrent_queries = 1;
  so.shed_queue_depth = 1;  // pinned: independent of the env sweep
  QueryService service(&db, so);

  SessionOptions high;
  high.priority = SessionPriority::kHigh;
  SessionOptions background;
  background.priority = SessionPriority::kBackground;
  std::unique_ptr<Session> blocker = service.CreateSession(high);
  std::unique_ptr<Session> waiter = service.CreateSession();  // normal
  std::unique_ptr<Session> shed_me = service.CreateSession(background);
  std::unique_ptr<Session> vip = service.CreateSession(high);

  // Occupy the single admission ticket, then queue one normal waiter.
  auto held = blocker->Open(kJoinQuery);
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  std::thread waiter_thread([&] {
    auto cursor = waiter->Open(kJoinQuery);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    DrainAndClose(&*cursor);
  });
  AwaitQueuedDepth(&service, 1);

  // A background submission at the high-water mark is rejected immediately
  // with a usable retry hint — it never joins the queue.
  auto shed = shed_me->Open(kJoinQuery);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(ParseRetryAfterUs(shed.status().message()), 100);

  // A high-priority submission is never shed: it queues (and here runs into
  // its own deadline instead, proving it reached the admission wait).
  ExecOptions short_deadline;
  short_deadline.timeout = milliseconds(60);
  auto queued_vip = vip->Open(kJoinQuery, short_deadline);
  ASSERT_FALSE(queued_vip.ok());
  EXPECT_EQ(queued_vip.status().code(), StatusCode::kDeadlineExceeded);

  DrainAndClose(&*held);
  waiter_thread.join();

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.queries_shed, 1);
  EXPECT_GE(stats.shed_reasons.at("queue_depth"), 1);
  ExpectNoLeaks(&service);
}

TEST(OverloadTest, QueryRetriesAfterShedAndSucceeds) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  so.max_concurrent_queries = 1;
  so.shed_queue_depth = 1;
  QueryService service(&db, so);

  SessionOptions high;
  high.priority = SessionPriority::kHigh;
  SessionOptions background;
  background.priority = SessionPriority::kBackground;
  std::unique_ptr<Session> blocker = service.CreateSession(high);
  std::unique_ptr<Session> waiter = service.CreateSession();
  std::unique_ptr<Session> retrier = service.CreateSession(background);

  auto held = blocker->Open(kJoinQuery);
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  std::thread waiter_thread([&] {
    auto cursor = waiter->Open(kJoinQuery);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    DrainAndClose(&*cursor);
  });
  AwaitQueuedDepth(&service, 1);

  // Release the blocker shortly after the retrier starts shedding, so its
  // backoff loop observes the drained queue and succeeds transparently.
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(40));
    DrainAndClose(&*held);
  });
  auto result = retrier->Query(kJoinQuery);
  closer.join();
  waiter_thread.join();

  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ExpectRowsIdentical(result->rows, baseline->rows);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.queries_shed, 1);
  EXPECT_GE(stats.query_shed_retries, 1);
  ExpectNoLeaks(&service);
}

// ----- service-wide memory ceiling -----

TEST(OverloadTest, ServiceMemoryCeilingGatesAdmission) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.max_concurrent_queries = 4;
  so.shed_queue_depth = -1;  // explicitly off
  so.service_memory_ceiling_bytes = 1 << 20;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  // A single query whose limit alone exceeds the ceiling can never be
  // admitted: fail fast, not forever-queued.
  ExecOptions huge;
  huge.memory_limit_bytes = 2 << 20;
  auto rejected = session->Open(kJoinQuery, huge);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("ceiling"), std::string::npos);

  // Two 700 KB claims do not fit under a 1 MB ceiling: the second blocks at
  // admission (and here trips its deadline) while the first holds its claim.
  ExecOptions governed;
  governed.memory_limit_bytes = 700 * 1024;
  auto first = session->Open(kJoinQuery, governed);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(service.StatsSnapshot().memory_ceiling_claimed_bytes, 700 * 1024);

  ExecOptions governed_deadline = governed;
  governed_deadline.timeout = milliseconds(60);
  auto second = session->Open(kJoinQuery, governed_deadline);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kDeadlineExceeded);

  // Closing the first frees its claim; the same submission now admits.
  DrainAndClose(&*first);
  auto third = session->Open(kJoinQuery, governed);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  DrainAndClose(&*third);
  ExpectNoLeaks(&service);
}

// ----- spill disk budget -----

std::string MakeSpillDir() {
  char templ[] = "/tmp/magicdb-overload-test-XXXXXX";
  const char* dir = mkdtemp(templ);
  MAGICDB_CHECK(dir != nullptr);
  return dir;
}

/// A workload whose hash-join build (~64 KB of Fact rows) cannot fit a
/// 48 KB per-query limit — the query must spill to finish, which is what
/// makes the disk budget bite. MakeWorkload's 150-row tables never spill.
void MakeSpillHeavyWorkload(Database* db_out) {
  Database& db = *db_out;
  MAGICDB_CHECK_OK(
      db.Execute("CREATE TABLE Fact (k INT, v DOUBLE, pad INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dim (k INT, w DOUBLE)"));
  Random rng(17);
  std::vector<Tuple> fact, dim;
  for (int i = 0; i < 4000; ++i) {
    fact.push_back({Value::Int64(i % 1000),
                    Value::Double(rng.NextDouble() * 1e6),
                    Value::Int64(rng.UniformInt(0, 1 << 20))});
    dim.push_back({Value::Int64(i % 1000), Value::Double(i * 0.5)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("Fact", std::move(fact)));
  MAGICDB_CHECK_OK(db.LoadRows("Dim", std::move(dim)));
  OptimizerOptions* opts = db.mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

const char* kSpillJoinQuery =
    "SELECT F.k, F.v, D.w FROM Fact F, Dim D WHERE F.k = D.k";

TEST(OverloadTest, SpillDiskBudgetFailsRequesterNotBystanders) {
  Database db;
  MakeSpillHeavyWorkload(&db);
  auto baseline = db.Query(kSpillJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  so.shed_queue_depth = -1;
  so.spill_dir = MakeSpillDir();
  so.spill_batch_bytes = 1024;
  so.scheduler_quantum_rows = 128;
  so.stream_queue_rows = 256;
  so.spill_disk_budget_bytes = 2048;  // two frames, then exhausted
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  // The governed query spills past the tiny budget and fails with
  // kResourceExhausted — the victim is the requester, nobody else.
  ExecOptions tiny;
  tiny.memory_limit_bytes = 48 * 1024;
  auto victim = session->Query(kSpillJoinQuery, tiny);
  ASSERT_FALSE(victim.ok());
  EXPECT_EQ(victim.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(victim.status().message().find("disk budget"), std::string::npos);

  // An ungoverned bystander on the same service is unaffected, and the
  // failed query's charges were all released (zero-leak invariant).
  auto bystander = session->Query(kSpillJoinQuery);
  ASSERT_TRUE(bystander.ok()) << bystander.status().ToString();
  ExpectRowsIdentical(bystander->rows, baseline->rows);

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.spill_disk_budget_bytes, 2048);
  EXPECT_GE(stats.spill_disk_rejections, 1);
  ExpectNoLeaks(&service);

  // Under a generous budget the same governed query completes by spilling,
  // byte-identical, and its disk usage returns to zero at close.
  QueryServiceOptions generous = so;
  generous.spill_dir = MakeSpillDir();
  generous.spill_disk_budget_bytes = 1 << 30;
  QueryService service2(&db, generous);
  std::unique_ptr<Session> session2 = service2.CreateSession();
  auto spilled = session2->Query(kSpillJoinQuery, tiny);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  ExpectRowsIdentical(spilled->rows, baseline->rows);
  ServiceStats stats2 = service2.StatsSnapshot();
  EXPECT_GT(stats2.spill_bytes_written, 0);
  ExpectNoLeaks(&service2);
}

// ----- stuck-query watchdog -----

TEST(OverloadTest, WatchdogSparesParkedAndFinishedProducers) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kScanQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  so.shed_queue_depth = -1;
  so.scheduler_quantum_rows = 64;
  so.stream_queue_rows = 64;  // producer parks almost immediately
  so.watchdog_stall_timeout = milliseconds(80);
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  auto cursor = session->Open(kScanQuery);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  // Don't fetch: the producer fills the queue and parks on backpressure.
  // Several stall timeouts pass — a parked producer is a slow consumer, not
  // a stuck query, so the watchdog must not fire.
  std::this_thread::sleep_for(milliseconds(400));
  EXPECT_EQ(service.StatsSnapshot().watchdog_cancels, 0);

  std::vector<Tuple> rows;
  while (true) {
    auto batch = cursor->Fetch(4096);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch->empty()) break;
    rows.insert(rows.end(), std::make_move_iterator(batch->begin()),
                std::make_move_iterator(batch->end()));
  }
  EXPECT_TRUE(cursor->Close().ok());
  ExpectRowsIdentical(rows, baseline->rows);
  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.watchdog_cancels, 0);
  ExpectNoLeaks(&service);
}

// ----- graceful drain -----

TEST(OverloadTest, ShutdownDrainsRejectsAndCancelsStragglers) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.shed_queue_depth = -1;
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();
  std::unique_ptr<Session> late = service.CreateSession();

  // A straggler: open, never drained by its client until cancelled.
  auto cursor = session->Open(kViewQuery);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();

  std::atomic<bool> drained{false};
  std::thread shutdown_thread([&] {
    Status s = service.Shutdown(/*grace=*/milliseconds(250));
    EXPECT_TRUE(s.ok()) << s.ToString();
    drained.store(true);
  });

  // New submissions are rejected outright while draining — with NO retry
  // hint, so Query()'s shed-retry loop surfaces the error instead of
  // spinning against a service that will not come back.
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_TRUE(service.StatsSnapshot().draining);
  auto refused = late->Query(kJoinQuery);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ParseRetryAfterUs(refused.status().message()), -1);

  // Phase 2 cancels the straggler's token; its client observes the
  // cancellation at the next Fetch and closes, letting the drain complete.
  // Wait out the grace period first so the straggler is still open when
  // phase 2 fires (Fetch checks the token before delivering buffered rows).
  std::this_thread::sleep_for(milliseconds(300));
  Status fetch_status = Status::OK();
  while (fetch_status.ok()) {
    auto batch = cursor->Fetch(512);
    if (!batch.ok()) {
      fetch_status = batch.status();
    } else if (batch->empty()) {
      break;  // unexpectedly reached end-of-stream before cancellation
    }
  }
  EXPECT_EQ(fetch_status.code(), StatusCode::kCancelled)
      << fetch_status.ToString();
  cursor->Close();
  shutdown_thread.join();
  EXPECT_TRUE(drained.load());

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_TRUE(stats.draining);
  ExpectNoLeaks(&service);
  // Idempotent: a drained, idle service shuts down again immediately.
  EXPECT_TRUE(service.Shutdown(milliseconds(10)).ok());
}

// ----- observability -----

/// Parses `name value` out of a Prometheus-style text dump; -1 if absent.
int64_t MetricValue(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::strtoll(text.c_str() + pos + needle.size(), nullptr, 10);
    }
    pos += needle.size();
  }
  return -1;
}

TEST(OverloadTest, MetricsTextExposesOverloadSeries) {
  Database db;
  MakeWorkload(&db);
  QueryServiceOptions so;
  so.pool_threads = 2;
  so.max_concurrent_queries = 1;
  so.shed_queue_depth = 1;
  QueryService service(&db, so);

  SessionOptions high;
  high.priority = SessionPriority::kHigh;
  SessionOptions background;
  background.priority = SessionPriority::kBackground;
  std::unique_ptr<Session> blocker = service.CreateSession(high);
  std::unique_ptr<Session> waiter = service.CreateSession();
  std::unique_ptr<Session> shed_me = service.CreateSession(background);

  auto held = blocker->Open(kJoinQuery);
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  std::thread waiter_thread([&] {
    auto cursor = waiter->Open(kJoinQuery);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    DrainAndClose(&*cursor);
  });
  AwaitQueuedDepth(&service, 1);
  auto shed = shed_me->Open(kJoinQuery);
  ASSERT_FALSE(shed.ok());
  DrainAndClose(&*held);
  waiter_thread.join();

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.shed_reasons.at("queue_depth"), 1);
  EXPECT_GE(stats.admitted_by_priority.at("high"), 1);
  EXPECT_GE(stats.admitted_by_priority.at("normal"), 1);
  EXPECT_GE(stats.admission_wait_us_p95_by_priority.at("normal"), 0.0);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("shed[queue_depth]=1"), std::string::npos);
  EXPECT_NE(text.find("draining=0"), std::string::npos);

  // The same series, parsed back out of the Prometheus text dump.
  const std::string dump = service.MetricsText();
  EXPECT_EQ(MetricValue(dump, "magicdb_server_sheds_total"), 1);
  EXPECT_EQ(
      MetricValue(dump, "magicdb_server_sheds_total{reason=queue_depth}"), 1);
  EXPECT_GE(
      MetricValue(dump,
                  "magicdb_server_queries_admitted_total{priority=high}"),
      1);
  EXPECT_EQ(MetricValue(dump, "magicdb_server_watchdog_cancels_total"), 0);
  EXPECT_EQ(
      MetricValue(dump, "magicdb_server_memory_ceiling_claimed_bytes"), 0);
  EXPECT_NE(dump.find("magicdb_server_admission_wait_us{priority=normal}"),
            std::string::npos);
}

// ----- weighted-fair admission under saturation -----

void RunFairnessWorkload(int dop) {
  SCOPED_TRACE("dop=" + std::to_string(dop));
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kJoinQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 4;
  so.max_concurrent_queries = 2;  // forces a persistent admission queue
  so.shed_queue_depth = -1;       // fairness test must not shed
  QueryService service(&db, so);

  SessionOptions high;
  high.priority = SessionPriority::kHigh;
  SessionOptions background;
  background.priority = SessionPriority::kBackground;
  // One high closed-loop client against six background ones. The high
  // client is never backlogged (one query outstanding), so the observable
  // WFQ guarantee is latency: whenever it asks, it goes to the head of the
  // line and completes at close to a full slot's rate, while the background
  // sessions split what remains. Per-session throughput then separates
  // decisively; under FIFO all seven sessions would converge to parity.
  std::unique_ptr<Session> high_session = service.CreateSession(high);
  constexpr int kBackgroundSessions = 6;
  std::vector<std::unique_ptr<Session>> bg_sessions;
  for (int i = 0; i < kBackgroundSessions; ++i) {
    bg_sessions.push_back(service.CreateSession(background));
  }

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(500);
  std::atomic<int64_t> high_completed{0};
  std::atomic<int64_t> bg_completed{0};
  std::atomic<int> mismatches{0};
  auto run_loop = [&](Session* session, std::atomic<int64_t>* completed) {
    ExecOptions exec;
    exec.dop = dop;
    while (std::chrono::steady_clock::now() < deadline) {
      auto r = session->Query(kJoinQuery, exec);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (r->rows.size() != baseline->rows.size()) mismatches.fetch_add(1);
      completed->fetch_add(1);
    }
  };
  std::vector<std::thread> threads;
  threads.emplace_back(run_loop, high_session.get(), &high_completed);
  for (auto& s : bg_sessions) {
    threads.emplace_back(run_loop, s.get(), &bg_completed);
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  // Weighted fairness, one-sided: the high-priority session must complete
  // at least twice as much as the average background session (under FIFO
  // the seven closed-loop sessions converge to parity). Weight 1 still
  // guarantees service: background must progress too.
  const int64_t per_bg_best =
      (bg_completed.load() + kBackgroundSessions - 1) / kBackgroundSessions;
  EXPECT_GE(high_completed.load(), 2 * std::max<int64_t>(1, per_bg_best))
      << "high=" << high_completed.load() << " bg_total=" << bg_completed.load();
  EXPECT_GE(bg_completed.load(), 1) << "background starved outright";

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_GE(stats.admitted_by_priority.at("high"), high_completed.load());
  EXPECT_GE(stats.admitted_by_priority.at("background"), bg_completed.load());
  // Priority buys shorter admission waits, visible in the histograms.
  EXPECT_LE(stats.admission_wait_us_p95_by_priority.at("high"),
            stats.admission_wait_us_p95_by_priority.at("background"));
  ExpectNoLeaks(&service);
}

TEST(OverloadFairnessTest, HighOutrunsBackgroundUnderSaturationDop1) {
  RunFairnessWorkload(1);
}

TEST(OverloadFairnessTest, HighOutrunsBackgroundUnderSaturationDop4) {
  RunFairnessWorkload(4);
}

// ----- failpoint-driven overload chaos (MAGICDB_FAILPOINTS builds) -----

#ifdef MAGICDB_FAILPOINTS

TEST(OverloadChaosTest, WatchdogCancelsStalledQueryAndLeaksNothing) {
  Database db;
  MakeWorkload(&db);
  auto baseline = db.Query(kScanQuery);
  ASSERT_TRUE(baseline.ok());

  QueryServiceOptions so;
  so.pool_threads = 2;
  so.shed_queue_depth = -1;
  so.scheduler_quantum_rows = 64;
  so.watchdog_stall_timeout = milliseconds(150);
  QueryService service(&db, so);
  std::unique_ptr<Session> session = service.CreateSession();

  {
    // Freeze the producer inside its second push for far longer than the
    // stall timeout: rows stop, the heartbeat stops, the producer is
    // neither parked nor finished — exactly a stuck query.
    FailpointConfig stall_config;
    stall_config.fire_from_hit = 2;
    stall_config.max_fires = 1;
    stall_config.delay_micros = 1000000;
    ScopedFailpoint stall("server.sink.push", stall_config);
    auto result = session->Query(kScanQuery);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
    EXPECT_NE(result.status().message().find("watchdog"), std::string::npos);
  }

  ServiceStats stats = service.StatsSnapshot();
  EXPECT_EQ(stats.watchdog_cancels, 1);
  EXPECT_GE(stats.watchdog_cancel_reasons.at("mid_stream"), 1);
  ExpectNoLeaks(&service);

  // The killed query freed everything; the service keeps serving.
  auto next = session->Query(kScanQuery);
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ExpectRowsIdentical(next->rows, baseline->rows);
}

TEST(OverloadChaosTest, MixedPriorityOversubscriptionLeaksNothing) {
  Database db;
  MakeWorkload(&db);
  const char* queries[] = {kJoinQuery, kViewQuery, kScanQuery};
  std::vector<QueryResult> baselines;
  for (const char* q : queries) {
    auto r = db.Query(q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    baselines.push_back(std::move(*r));
  }

  for (int dop : {1, 4}) {
    SCOPED_TRACE("dop=" + std::to_string(dop));
    QueryServiceOptions so;
    so.pool_threads = 4;
    so.max_concurrent_queries = 3;
    so.shed_queue_depth = 2;  // small high-water: real sheds under the storm
    so.spill_dir = MakeSpillDir();
    so.spill_batch_bytes = 1024;
    so.spill_disk_budget_bytes = 1 << 20;
    so.scheduler_quantum_rows = 128;
    so.stream_queue_rows = 256;
    QueryService service(&db, so);

    ScopedFailpoint shed_fp(
        "admission.shed", [] {
          FailpointConfig c;
          c.probability = 0.25;
          c.seed = 97;
          c.inject = Status::Unavailable("injected overload shed");
          return c;
        }());
    ScopedFailpoint budget_fp(
        "spill.budget.charge", [] {
          FailpointConfig c;
          c.probability = 0.05;
          c.seed = 131;
          c.inject =
              Status::ResourceExhausted("injected spill disk budget refusal");
          return c;
        }());

    constexpr int kSessions = 6;
    constexpr int kRounds = 10;
    const SessionPriority priorities[kSessions] = {
        SessionPriority::kHigh,       SessionPriority::kHigh,
        SessionPriority::kNormal,     SessionPriority::kNormal,
        SessionPriority::kBackground, SessionPriority::kBackground};
    std::vector<std::unique_ptr<Session>> sessions;
    for (int s = 0; s < kSessions; ++s) {
      SessionOptions opt;
      opt.priority = priorities[s];
      sessions.push_back(service.CreateSession(opt));
    }

    std::atomic<int> survivors{0};
    std::atomic<int> rejected{0};
    std::atomic<int> unexpected{0};
    std::vector<std::thread> threads;
    for (int s = 0; s < kSessions; ++s) {
      threads.emplace_back([&, s] {
        Session* session = sessions[s].get();
        for (int round = 0; round < kRounds; ++round) {
          const int qi = (s + round) % 3;
          ExecOptions exec;
          exec.dop = dop;
          // Alternate governed (spilling, budget-exposed) and ungoverned.
          exec.memory_limit_bytes = round % 2 == 0 ? 96 * 1024 : -1;
          auto cursor = session->Open(queries[qi], exec);
          Status outcome = cursor.status();
          std::vector<Tuple> rows;
          if (cursor.ok()) {
            while (true) {
              auto batch = cursor->Fetch(4096);
              if (!batch.ok()) {
                outcome = batch.status();
                break;
              }
              if (batch->empty()) break;
              rows.insert(rows.end(), std::make_move_iterator(batch->begin()),
                          std::make_move_iterator(batch->end()));
            }
            cursor->Close();
          }
          if (outcome.ok()) {
            // Survivors must be byte-identical at any DoP.
            if (rows.size() != baselines[qi].rows.size()) {
              unexpected.fetch_add(1);
            } else {
              for (size_t i = 0; i < rows.size(); ++i) {
                if (CompareTuples(rows[i], baselines[qi].rows[i]) != 0) {
                  unexpected.fetch_add(1);
                  break;
                }
              }
            }
            survivors.fetch_add(1);
          } else if (outcome.code() == StatusCode::kUnavailable ||
                     outcome.code() == StatusCode::kResourceExhausted) {
            rejected.fetch_add(1);  // shed or budget refusal: expected storm
          } else {
            ADD_FAILURE() << "unexpected failure: " << outcome.ToString();
            unexpected.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : threads) t.join();

    EXPECT_EQ(unexpected.load(), 0);
    EXPECT_GT(survivors.load(), 0);
    ServiceStats stats = service.StatsSnapshot();
    ExpectNoLeaks(&service);

    // Chaos off: the drained service still answers correctly.
    FailpointRegistry::Instance().DisableAll();
    std::unique_ptr<Session> after = service.CreateSession();
    auto final_result = after->Query(kViewQuery);
    ASSERT_TRUE(final_result.ok()) << final_result.status().ToString();
    ExpectRowsIdentical(final_result->rows, baselines[1].rows);
  }
}

#endif  // MAGICDB_FAILPOINTS

}  // namespace
}  // namespace magicdb
