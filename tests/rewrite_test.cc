#include <gtest/gtest.h>

#include "src/rewrite/magic_rewrite.h"

namespace magicdb {
namespace {

Schema EmpSchema() {
  return Schema({{"E", "did", DataType::kInt64},
                 {"E", "sal", DataType::kDouble},
                 {"E", "age", DataType::kInt64}});
}

LogicalPtr EmpScan() {
  return std::make_shared<RelScanNode>("Emp", "E", EmpSchema());
}

/// DepAvgSal: SELECT did, AVG(sal) FROM Emp GROUP BY did.
LogicalPtr DepAvgSalPlan() {
  auto scan = EmpScan();
  std::vector<ExprPtr> groups = {MakeColumnRef(0, DataType::kInt64, "E.did")};
  std::vector<AggSpec> aggs = {
      {AggFunc::kAvg, MakeColumnRef(1, DataType::kDouble, "E.sal"), "avgsal"}};
  Schema out({{"", "did", DataType::kInt64}, {"", "avgsal", DataType::kDouble}});
  return std::make_shared<AggregateNode>(scan, groups, aggs, out);
}

TEST(MagicRewriteTest, PushesBelowAggregateOnGroupKey) {
  auto rewritten = MagicRewrite(DepAvgSalPlan(), {0}, "fs1");
  ASSERT_TRUE(rewritten.ok());
  // Probe lands below the aggregate, directly above the scan.
  EXPECT_EQ((*rewritten)->kind(), LogicalKind::kAggregate);
  ASSERT_EQ((*rewritten)->children().size(), 1u);
  const LogicalPtr& below = (*rewritten)->children()[0];
  EXPECT_EQ(below->kind(), LogicalKind::kFilterSetProbe);
  const auto* probe = static_cast<const FilterSetProbeNode*>(below.get());
  EXPECT_EQ(probe->binding_id(), "fs1");
  EXPECT_EQ(probe->key_columns(), (std::vector<int>{0}));
  EXPECT_EQ(ProbeDepth(*rewritten), 1);
}

TEST(MagicRewriteTest, StopsAtAggregateWhenKeyIsAggOutput) {
  // Key column 1 is AVG(sal) — not a group-by column; probe must stay above.
  auto rewritten = MagicRewrite(DepAvgSalPlan(), {1}, "fs2");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind(), LogicalKind::kFilterSetProbe);
  EXPECT_EQ(ProbeDepth(*rewritten), 0);
}

TEST(MagicRewriteTest, PushesThroughProjectColumnRefs) {
  auto scan = EmpScan();
  std::vector<ExprPtr> exprs = {MakeColumnRef(2, DataType::kInt64, "E.age"),
                                MakeColumnRef(0, DataType::kInt64, "E.did")};
  Schema out({{"", "age", DataType::kInt64}, {"", "did", DataType::kInt64}});
  auto proj = std::make_shared<ProjectNode>(scan, exprs, out);
  auto rewritten = MagicRewrite(LogicalPtr(proj), {1}, "fs3");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind(), LogicalKind::kProject);
  const auto* probe = static_cast<const FilterSetProbeNode*>(
      (*rewritten)->children()[0].get());
  ASSERT_EQ(probe->kind(), LogicalKind::kFilterSetProbe);
  // Output column 1 maps to scan column 0 (did).
  EXPECT_EQ(probe->key_columns(), (std::vector<int>{0}));
}

TEST(MagicRewriteTest, StopsAtProjectOnComputedColumn) {
  auto scan = EmpScan();
  std::vector<ExprPtr> exprs = {
      MakeArithmetic(ArithOp::kAdd, MakeColumnRef(0, DataType::kInt64),
                     MakeLiteral(Value::Int64(1)))};
  Schema out({{"", "did1", DataType::kInt64}});
  auto proj = std::make_shared<ProjectNode>(scan, exprs, out);
  auto rewritten = MagicRewrite(LogicalPtr(proj), {0}, "fs4");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind(), LogicalKind::kFilterSetProbe);
}

TEST(MagicRewriteTest, PushesThroughFilterAndDistinct) {
  auto scan = EmpScan();
  auto filter = std::make_shared<FilterNode>(
      scan, MakeComparison(CompareOp::kLt,
                           MakeColumnRef(2, DataType::kInt64, "E.age"),
                           MakeLiteral(Value::Int64(30))));
  auto distinct = std::make_shared<DistinctNode>(filter);
  auto rewritten = MagicRewrite(LogicalPtr(distinct), {0}, "fs5");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind(), LogicalKind::kDistinct);
  EXPECT_EQ(ProbeDepth(*rewritten), 2);  // below Distinct and Filter
}

TEST(MagicRewriteTest, PushesIntoJoinInputOwningKeys) {
  Schema dept({{"D", "did", DataType::kInt64},
               {"D", "budget", DataType::kDouble}});
  auto emp = EmpScan();
  auto dscan = std::make_shared<RelScanNode>("Dept", "D", dept);
  Schema block = emp->schema().Concat(dept);
  ExprPtr pred = MakeComparison(CompareOp::kEq,
                                MakeColumnRef(0, DataType::kInt64, "E.did"),
                                MakeColumnRef(3, DataType::kInt64, "D.did"));
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{emp, dscan}, pred, block);
  // Key = block column 4 (D.budget) — owned by input D.
  auto rewritten = MagicRewrite(LogicalPtr(join), {4}, "fs6");
  ASSERT_TRUE(rewritten.ok());
  ASSERT_EQ((*rewritten)->kind(), LogicalKind::kNaryJoin);
  const auto& inputs = (*rewritten)->children();
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_EQ(inputs[0]->kind(), LogicalKind::kRelScan);
  ASSERT_EQ(inputs[1]->kind(), LogicalKind::kFilterSetProbe);
  const auto* probe =
      static_cast<const FilterSetProbeNode*>(inputs[1].get());
  EXPECT_EQ(probe->key_columns(), (std::vector<int>{1}));  // budget in D
}

TEST(MagicRewriteTest, ProbesAtJoinWhenKeysSpanInputs) {
  Schema dept({{"D", "did", DataType::kInt64},
               {"D", "budget", DataType::kDouble}});
  auto emp = EmpScan();
  auto dscan = std::make_shared<RelScanNode>("Dept", "D", dept);
  Schema block = emp->schema().Concat(dept);
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{emp, dscan}, nullptr, block);
  auto rewritten = MagicRewrite(LogicalPtr(join), {0, 4}, "fs7");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->kind(), LogicalKind::kFilterSetProbe);
}

TEST(MagicRewriteTest, SchemaUnchanged) {
  auto plan = DepAvgSalPlan();
  auto rewritten = MagicRewrite(plan, {0}, "fs8");
  ASSERT_TRUE(rewritten.ok());
  EXPECT_EQ((*rewritten)->schema(), plan->schema());
}

TEST(MagicRewriteTest, RejectsBadInputs) {
  EXPECT_FALSE(MagicRewrite(nullptr, {0}, "x").ok());
  EXPECT_FALSE(MagicRewrite(DepAvgSalPlan(), {}, "x").ok());
  EXPECT_FALSE(MagicRewrite(DepAvgSalPlan(), {7}, "x").ok());
}

TEST(MagicRewriteTest, MultiKeyPushdown) {
  auto scan = EmpScan();
  auto rewritten = MagicRewrite(scan, {0, 2}, "fs9");
  ASSERT_TRUE(rewritten.ok());
  const auto* probe =
      static_cast<const FilterSetProbeNode*>((*rewritten).get());
  ASSERT_EQ(probe->kind(), LogicalKind::kFilterSetProbe);
  EXPECT_EQ(probe->key_columns(), (std::vector<int>{0, 2}));
}

}  // namespace
}  // namespace magicdb
