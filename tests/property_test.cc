// Property-based tests: parameterized sweeps over workload shapes checking
// the engine's core invariants — plan-independence of results, magic-
// rewrite equivalence, Bloom superset semantics, and cost-model ordering.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "src/optimizer/optimizer.h"
#include "src/rewrite/magic_rewrite.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

// ----- Figure-1 equivalence across optimizer modes -----

struct Fig1Params {
  int num_depts;
  int emps_per_dept;
  double young_frac;
  double big_frac;
  double null_frac;  // fraction of NULL Emp.did values
};

class MagicEquivalenceTest : public ::testing::TestWithParam<Fig1Params> {
 protected:
  void SetUp() override {
    const Fig1Params& p = GetParam();
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
    Random rng(1000 + p.num_depts);
    std::vector<Tuple> emps, depts;
    for (int d = 0; d < p.num_depts; ++d) {
      depts.push_back(
          {Value::Int64(d),
           Value::Double(rng.Bernoulli(p.big_frac) ? 200000.0 : 50000.0)});
      for (int e = 0; e < p.emps_per_dept; ++e) {
        Value did = rng.Bernoulli(p.null_frac) ? Value::Null()
                                               : Value::Int64(d);
        emps.push_back(
            {did, Value::Double(50000.0 + rng.NextDouble() * 100000.0),
             Value::Int64(rng.Bernoulli(p.young_frac) ? 25 : 45)});
      }
    }
    MAGICDB_CHECK_OK(db_.LoadRows("Dept", std::move(depts)));
    MAGICDB_CHECK_OK(db_.LoadRows("Emp", std::move(emps)));
    (*db_.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
    (*db_.catalog()->Lookup("Dept"))->table->CreateHashIndex({0});
    MAGICDB_CHECK_OK(db_.catalog()->AnalyzeAll());
    MAGICDB_CHECK_OK(
        db_.Execute("CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS "
                    "avgsal FROM Emp GROUP BY did"));
  }

  static constexpr const char* kQuery =
      "SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
      "AND E.age < 30 AND D.budget > 100000";

  Database db_;
};

TEST_P(MagicEquivalenceTest, AllOptimizerModesAgree) {
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto never = db_.Query(kQuery);
  ASSERT_TRUE(never.ok()) << never.status().ToString();

  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kCostBased;
  auto cost = db_.Query(kQuery);
  ASSERT_TRUE(cost.ok()) << cost.status().ToString();

  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  auto always = db_.Query(kQuery);
  ASSERT_TRUE(always.ok()) << always.status().ToString();

  EXPECT_TRUE(SameMultiset(never->rows, cost->rows));
  EXPECT_TRUE(SameMultiset(never->rows, always->rows));
}

TEST_P(MagicEquivalenceTest, ExactAndBloomFilterSetsAgree) {
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  db_.mutable_optimizer_options()->consider_bloom_filter_sets = false;
  auto exact = db_.Query(kQuery);
  ASSERT_TRUE(exact.ok());

  db_.mutable_optimizer_options()->consider_bloom_filter_sets = true;
  db_.mutable_optimizer_options()->consider_exact_filter_sets = false;
  auto bloom = db_.Query(kQuery);
  ASSERT_TRUE(bloom.ok());
  EXPECT_TRUE(SameMultiset(exact->rows, bloom->rows));
}

TEST_P(MagicEquivalenceTest, CostBasedNeverBeatenByBaselines) {
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kCostBased;
  auto cost = db_.Query(kQuery);
  ASSERT_TRUE(cost.ok());
  db_.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto never = db_.Query(kQuery);
  ASSERT_TRUE(never.ok());
  EXPECT_LE(cost->est_cost, never->est_cost * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadShapes, MagicEquivalenceTest,
    ::testing::Values(Fig1Params{10, 3, 0.5, 0.5, 0.0},
                      Fig1Params{50, 5, 0.05, 0.05, 0.0},
                      Fig1Params{100, 2, 1.0, 1.0, 0.0},
                      Fig1Params{40, 8, 0.3, 0.9, 0.1},
                      Fig1Params{1, 1, 1.0, 1.0, 0.0},
                      Fig1Params{60, 4, 0.0, 0.5, 0.0},
                      Fig1Params{25, 6, 0.2, 0.2, 0.5}));

// ----- Magic rewrite equivalence against a semantic reference -----

struct RewriteParams {
  int num_keys;     // key domain of the view's group-by column
  int rows;         // base-table rows
  double fs_frac;   // fraction of keys placed in the filter set
  RewriteStyle style;
};

class RewriteEquivalenceTest
    : public ::testing::TestWithParam<RewriteParams> {};

TEST_P(RewriteEquivalenceTest, RestrictedPlanEqualsFilteredOriginal) {
  const RewriteParams& p = GetParam();
  Catalog catalog;
  Schema base_schema(
      {{"", "k", DataType::kInt64}, {"", "v", DataType::kDouble}});
  Table* base = *catalog.CreateTable("Base", base_schema);
  Random rng(p.rows * 7 + p.num_keys);
  for (int i = 0; i < p.rows; ++i) {
    MAGICDB_CHECK_OK(base->Insert(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(p.num_keys))),
         Value::Double(rng.NextDouble() * 100)}));
  }
  base->CreateHashIndex({0});
  MAGICDB_CHECK_OK(catalog.AnalyzeAll());

  // View: SELECT k, SUM(v) FROM Base GROUP BY k.
  Schema scan_schema = base->schema().WithQualifier("B");
  auto scan = std::make_shared<RelScanNode>("Base", "B", scan_schema);
  std::vector<ExprPtr> groups = {MakeColumnRef(0, DataType::kInt64, "B.k")};
  std::vector<AggSpec> aggs = {
      {AggFunc::kSum, MakeColumnRef(1, DataType::kDouble, "B.v"), "s"}};
  Schema view_schema(
      {{"", "k", DataType::kInt64}, {"", "s", DataType::kDouble}});
  LogicalPtr view =
      std::make_shared<AggregateNode>(scan, groups, aggs, view_schema);

  // Filter set: every key divisible by the stride implied by fs_frac.
  std::vector<Tuple> fs_keys;
  const int stride =
      p.fs_frac > 0 ? std::max(1, static_cast<int>(1.0 / p.fs_frac)) : 0;
  for (int k = 0; stride > 0 && k < p.num_keys; k += stride) {
    fs_keys.push_back({Value::Int64(k)});
  }

  auto rewritten = MagicRewrite(view, {0}, "prop_fs", p.style);
  ASSERT_TRUE(rewritten.ok()) << rewritten.status().ToString();

  Optimizer optimizer(&catalog);
  auto plan = optimizer.OptimizeWithFilterSets(
      *rewritten,
      {{"prop_fs", static_cast<double>(std::max<size_t>(1, fs_keys.size()))}});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  ExecContext ctx;
  Schema key_schema({{"F", "k", DataType::kInt64}});
  ctx.BindFilterSet("prop_fs",
                    FilterSetBinding::Exact(key_schema, fs_keys));
  auto restricted = ExecuteToVector(plan->root.get(), &ctx);
  ASSERT_TRUE(restricted.ok()) << restricted.status().ToString();

  // Reference: evaluate the full view, then keep rows whose key is in the
  // filter set.
  auto full_plan = optimizer.Optimize(view);
  ASSERT_TRUE(full_plan.ok());
  ExecContext full_ctx;
  auto full = ExecuteToVector(full_plan->root.get(), &full_ctx);
  ASSERT_TRUE(full.ok());
  std::vector<Tuple> expected;
  for (const Tuple& row : *full) {
    for (const Tuple& key : fs_keys) {
      if (row[0].Compare(key[0]) == 0) {
        expected.push_back(row);
        break;
      }
    }
  }
  EXPECT_TRUE(SameMultiset(*restricted, expected))
      << "restricted=" << restricted->size()
      << " expected=" << expected.size();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RewriteEquivalenceTest,
    ::testing::Values(RewriteParams{20, 200, 0.1, RewriteStyle::kProbe},
                      RewriteParams{20, 200, 0.1, RewriteStyle::kJoin},
                      RewriteParams{50, 500, 0.5, RewriteStyle::kProbe},
                      RewriteParams{50, 500, 0.5, RewriteStyle::kJoin},
                      RewriteParams{5, 50, 1.0, RewriteStyle::kJoin},
                      RewriteParams{100, 100, 0.02, RewriteStyle::kJoin},
                      RewriteParams{10, 1000, 0.3, RewriteStyle::kProbe}));

// ----- Cost-model ordering: cheaper-predicted => cheaper-measured -----

struct OrderParams {
  int r_rows, s_rows, r_keys, s_keys;
};

class CostOrderTest : public ::testing::TestWithParam<OrderParams> {};

TEST_P(CostOrderTest, ConfidentPredictionsOrderCorrectly) {
  const OrderParams& p = GetParam();
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE R (k INT, x INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE S (k INT, y INT)"));
  Random rng(p.r_rows + p.s_rows);
  std::vector<Tuple> r_rows, s_rows;
  for (int i = 0; i < p.r_rows; ++i) {
    r_rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(p.r_keys))),
                      Value::Int64(i)});
  }
  for (int i = 0; i < p.s_rows; ++i) {
    s_rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(p.s_keys))),
                      Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("R", std::move(r_rows)));
  MAGICDB_CHECK_OK(db.LoadRows("S", std::move(s_rows)));
  (*db.catalog()->Lookup("S"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());

  const char* query = "SELECT R.x, S.y FROM R, S WHERE R.k = S.k";

  // Evaluate each single-method configuration: predicted and measured.
  struct Outcome {
    double est, measured;
  };
  std::vector<Outcome> outcomes;
  using Cfg = void (*)(OptimizerOptions*);
  const Cfg configs[] = {
      [](OptimizerOptions* o) {
        o->enable_sort_merge = false;
        o->enable_index_nested_loops = false;
        o->enable_nested_loops = false;
      },
      [](OptimizerOptions* o) {
        o->enable_hash_join = false;
        o->enable_index_nested_loops = false;
        o->enable_nested_loops = false;
      },
      [](OptimizerOptions* o) {
        o->enable_hash_join = false;
        o->enable_sort_merge = false;
        o->enable_nested_loops = false;
      },
  };
  for (const Cfg cfg : configs) {
    OptimizerOptions opts;
    opts.magic_mode = OptimizerOptions::MagicMode::kNever;
    opts.filter_join_on_stored = false;
    cfg(&opts);
    *db.mutable_optimizer_options() = opts;
    auto result = db.Query(query);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    outcomes.push_back({result->est_cost, result->counters.TotalCost()});
  }
  // Whenever the model is confident (2x margin), the measurement agrees.
  for (size_t a = 0; a < outcomes.size(); ++a) {
    for (size_t b = 0; b < outcomes.size(); ++b) {
      if (outcomes[a].est * 2 < outcomes[b].est) {
        EXPECT_LT(outcomes[a].measured, outcomes[b].measured * 1.25)
            << "config " << a << " vs " << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(JoinShapes, CostOrderTest,
                         ::testing::Values(OrderParams{100, 1000, 10, 100},
                                           OrderParams{50, 5000, 5, 1000},
                                           OrderParams{1000, 1000, 100, 100},
                                           OrderParams{10, 10000, 10, 5000},
                                           OrderParams{2000, 100, 500, 20}));

// ----- Filter join on stored tables equals hash join, under spills -----

class SpillParityTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SpillParityTest, ResultsUnaffectedByMemoryBudget) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE R (k INT, x INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE S (k INT, y INT)"));
  Random rng(99);
  std::vector<Tuple> r_rows, s_rows;
  for (int i = 0; i < 2000; ++i) {
    r_rows.push_back(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(200))), Value::Int64(i)});
    s_rows.push_back(
        {Value::Int64(static_cast<int64_t>(rng.Uniform(400))), Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("R", std::move(r_rows)));
  MAGICDB_CHECK_OK(db.LoadRows("S", std::move(s_rows)));
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());

  db.mutable_optimizer_options()->memory_budget_bytes = GetParam();
  auto result = db.Query("SELECT R.x, S.y FROM R, S WHERE R.k = S.k");
  ASSERT_TRUE(result.ok());

  db.mutable_optimizer_options()->memory_budget_bytes = 64 * 1024 * 1024;
  auto reference = db.Query("SELECT R.x, S.y FROM R, S WHERE R.k = S.k");
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(SameMultiset(result->rows, reference->rows));
}

INSTANTIATE_TEST_SUITE_P(Budgets, SpillParityTest,
                         ::testing::Values(1024, 16 * 1024, 1 << 20));

}  // namespace
}  // namespace magicdb
