#include <gtest/gtest.h>

#include <map>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/optimizer/optimizer.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

/// The paper's Figure-1 scenario: Emp, Dept, and the DepAvgSal view, with
/// knobs for how many departments are "big" and how many employees are
/// "young".
class Figure1Fixture {
 public:
  Figure1Fixture(int num_depts, int emps_per_dept, double young_frac,
                 double big_frac, uint64_t seed = 42) {
    Schema emp_schema({{"", "did", DataType::kInt64},
                       {"", "sal", DataType::kDouble},
                       {"", "age", DataType::kInt64}});
    Schema dept_schema({{"", "did", DataType::kInt64},
                        {"", "budget", DataType::kDouble}});
    emp_ = *catalog_.CreateTable("Emp", emp_schema);
    dept_ = *catalog_.CreateTable("Dept", dept_schema);

    Random rng(seed);
    for (int d = 0; d < num_depts; ++d) {
      const double budget = rng.Bernoulli(big_frac) ? 200000.0 : 50000.0;
      MAGICDB_CHECK_OK(
          dept_->Insert({Value::Int64(d), Value::Double(budget)}));
      for (int e = 0; e < emps_per_dept; ++e) {
        const int64_t age = rng.Bernoulli(young_frac) ? 25 : 45;
        const double sal = 50000.0 + rng.NextDouble() * 100000.0;
        MAGICDB_CHECK_OK(emp_->Insert(
            {Value::Int64(d), Value::Double(sal), Value::Int64(age)}));
      }
    }
    dept_->CreateHashIndex({0});
    emp_->CreateHashIndex({0});
    MAGICDB_CHECK_OK(catalog_.AnalyzeAll());

    // CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) FROM Emp GROUP BY did.
    Schema e2 = emp_->schema().WithQualifier("E2");
    auto scan = std::make_shared<RelScanNode>("Emp", "E2", e2);
    std::vector<ExprPtr> groups = {
        MakeColumnRef(0, DataType::kInt64, "E2.did")};
    std::vector<AggSpec> aggs = {
        {AggFunc::kAvg, MakeColumnRef(1, DataType::kDouble, "E2.sal"),
         "avgsal"}};
    Schema view_out(
        {{"", "did", DataType::kInt64}, {"", "avgsal", DataType::kDouble}});
    MAGICDB_CHECK_OK(catalog_.RegisterView(
        "DepAvgSal",
        std::make_shared<AggregateNode>(scan, groups, aggs, view_out)));
  }

  /// SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V
  /// WHERE E.did=D.did AND E.did=V.did AND E.sal>V.avgsal
  ///   AND E.age<30 AND D.budget>100000.
  LogicalPtr Figure1Query() const {
    Schema e = emp_->schema().WithQualifier("E");
    Schema d = dept_->schema().WithQualifier("D");
    const CatalogEntry* ventry = *catalog_.Lookup("DepAvgSal");
    Schema v = ventry->schema.WithQualifier("V");
    auto escan = std::make_shared<RelScanNode>("Emp", "E", e);
    auto dscan = std::make_shared<RelScanNode>("Dept", "D", d);
    auto vscan = std::make_shared<RelScanNode>("DepAvgSal", "V", v);
    Schema block = e.Concat(d).Concat(v);
    // Columns: 0 E.did, 1 E.sal, 2 E.age, 3 D.did, 4 D.budget,
    //          5 V.did, 6 V.avgsal.
    auto col = [&block](int i) {
      return MakeColumnRef(i, block.column(i).type,
                           block.column(i).QualifiedName());
    };
    ExprPtr pred = ConjoinAll(
        {MakeComparison(CompareOp::kEq, col(0), col(3)),
         MakeComparison(CompareOp::kEq, col(0), col(5)),
         MakeComparison(CompareOp::kGt, col(1), col(6)),
         MakeComparison(CompareOp::kLt, col(2), MakeLiteral(Value::Int64(30))),
         MakeComparison(CompareOp::kGt, col(4),
                        MakeLiteral(Value::Double(100000.0)))});
    auto join = std::make_shared<NaryJoinNode>(
        std::vector<LogicalPtr>{escan, dscan, vscan}, pred, block);
    std::vector<ExprPtr> out_exprs = {col(0), col(1), col(6)};
    Schema out({{"", "did", DataType::kInt64},
                {"", "sal", DataType::kDouble},
                {"", "avgsal", DataType::kDouble}});
    return std::make_shared<ProjectNode>(join, out_exprs, out);
  }

  /// Brute-force reference answer.
  std::vector<Tuple> Reference() const {
    std::map<int64_t, std::pair<double, int64_t>> sums;
    for (int64_t i = 0; i < emp_->NumRows(); ++i) {
      const Tuple& r = emp_->row(i);
      auto& [sum, count] = sums[r[0].AsInt64()];
      sum += r[1].AsDouble();
      count += 1;
    }
    std::map<int64_t, double> budgets;
    for (int64_t i = 0; i < dept_->NumRows(); ++i) {
      budgets[dept_->row(i)[0].AsInt64()] = dept_->row(i)[1].AsDouble();
    }
    std::vector<Tuple> out;
    for (int64_t i = 0; i < emp_->NumRows(); ++i) {
      const Tuple& r = emp_->row(i);
      const int64_t did = r[0].AsInt64();
      if (r[2].AsInt64() >= 30) continue;
      if (budgets[did] <= 100000.0) continue;
      const double avg = sums[did].first / sums[did].second;
      if (r[1].AsDouble() > avg) {
        out.push_back({Value::Int64(did), r[1], Value::Double(avg)});
      }
    }
    return out;
  }

  Catalog catalog_;
  Table* emp_;
  Table* dept_;
};

StatusOr<std::vector<Tuple>> RunPlan(const OptimizedPlan& plan,
                                     ExecContext* ctx) {
  return ExecuteToVector(plan.root.get(), ctx);
}

TEST(OptimizerFigure1Test, CostBasedPlanIsCorrect) {
  Figure1Fixture fx(20, 10, 0.3, 0.3);
  Optimizer opt(&fx.catalog_);
  auto plan = opt.Optimize(fx.Figure1Query());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExecContext ctx;
  auto rows = RunPlan(*plan, &ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(SameMultiset(*rows, fx.Reference()));
}

TEST(OptimizerFigure1Test, NeverMagicPlanIsCorrectAndAgrees) {
  Figure1Fixture fx(15, 8, 0.4, 0.5);
  OptimizerOptions opts;
  opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  Optimizer opt(&fx.catalog_, opts);
  auto plan = opt.Optimize(fx.Figure1Query());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->explain.find("FilterJoin"), std::string::npos);
  ExecContext ctx;
  auto rows = RunPlan(*plan, &ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(SameMultiset(*rows, fx.Reference()));
}

TEST(OptimizerFigure1Test, AlwaysMagicPlanIsCorrect) {
  Figure1Fixture fx(15, 8, 0.4, 0.5);
  OptimizerOptions opts;
  opts.magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
  Optimizer opt(&fx.catalog_, opts);
  auto plan = opt.Optimize(fx.Figure1Query());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExecContext ctx;
  auto rows = RunPlan(*plan, &ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE(SameMultiset(*rows, fx.Reference()));
}

TEST(OptimizerFigure1Test, FilterJoinChosenWhenFewDepartmentsQualify) {
  // 1000 departments, almost none big or young: magic should win clearly.
  Figure1Fixture fx(300, 5, 0.02, 0.02);
  Optimizer opt(&fx.catalog_);
  auto plan = opt.Optimize(fx.Figure1Query());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_NE(plan->explain.find("FilterJoin"), std::string::npos)
      << plan->explain;
  ASSERT_FALSE(plan->filter_joins.empty());
  // The filter set must be far smaller than the number of departments.
  EXPECT_LT(plan->filter_joins[0].filter_set_size, 300 * 0.3);
}

TEST(OptimizerFigure1Test, CostBasedNeverWorseThanBaselines) {
  for (double frac : {0.02, 0.5, 1.0}) {
    Figure1Fixture fx(100, 6, frac, frac);
    Optimizer cost_based(&fx.catalog_);
    OptimizerOptions never_opts;
    never_opts.magic_mode = OptimizerOptions::MagicMode::kNever;
    Optimizer never(&fx.catalog_, never_opts);
    OptimizerOptions always_opts;
    always_opts.magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
    Optimizer always(&fx.catalog_, always_opts);

    auto p_cost = cost_based.Optimize(fx.Figure1Query());
    auto p_never = never.Optimize(fx.Figure1Query());
    auto p_always = always.Optimize(fx.Figure1Query());
    ASSERT_TRUE(p_cost.ok());
    ASSERT_TRUE(p_never.ok());
    ASSERT_TRUE(p_always.ok());
    EXPECT_LE(p_cost->est_cost, p_never->est_cost * 1.0001) << "frac=" << frac;
    EXPECT_LE(p_cost->est_cost, p_always->est_cost * 1.0001)
        << "frac=" << frac;
  }
}

TEST(OptimizerFigure1Test, MeasuredCostTracksPrediction) {
  // When the optimizer predicts the magic plan is much cheaper, the
  // measured execution cost must agree on the direction.
  Figure1Fixture fx(200, 5, 0.05, 0.05);
  Optimizer cost_based(&fx.catalog_);
  OptimizerOptions never_opts;
  never_opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  Optimizer never(&fx.catalog_, never_opts);

  auto p_cost = cost_based.Optimize(fx.Figure1Query());
  auto p_never = never.Optimize(fx.Figure1Query());
  ASSERT_TRUE(p_cost.ok());
  ASSERT_TRUE(p_never.ok());

  ExecContext ctx_cost, ctx_never;
  auto r1 = RunPlan(*p_cost, &ctx_cost);
  auto r2 = RunPlan(*p_never, &ctx_never);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(SameMultiset(*r1, *r2));
  if (p_cost->est_cost < 0.5 * p_never->est_cost) {
    EXPECT_LT(ctx_cost.counters().TotalCost(),
              ctx_never.counters().TotalCost());
  }
}

TEST(OptimizerFigure1Test, EnumerateJoinOrdersCoversFigure3) {
  Figure1Fixture fx(30, 5, 0.3, 0.3);
  Optimizer opt(&fx.catalog_);
  auto orders = opt.EnumerateJoinOrders(fx.Figure1Query());
  ASSERT_TRUE(orders.ok()) << orders.status().ToString();
  EXPECT_EQ(orders->size(), 6u);  // 3! join orders, Figure 3
  for (const JoinOrderCost& joc : *orders) {
    EXPECT_LE(joc.cost_with_filter_join,
              joc.cost_without_filter_join * 1.0001)
        << joc.methods_with;
  }
}

TEST(OptimizerFigure1Test, DPMatchesOrBeatsExhaustiveEnumeration) {
  Figure1Fixture fx(40, 5, 0.2, 0.2);
  Optimizer opt(&fx.catalog_);
  auto orders = opt.EnumerateJoinOrders(fx.Figure1Query());
  ASSERT_TRUE(orders.ok());
  double best_enumerated = -1;
  for (const JoinOrderCost& joc : *orders) {
    if (best_enumerated < 0 || joc.cost_with_filter_join < best_enumerated) {
      best_enumerated = joc.cost_with_filter_join;
    }
  }
  // The enumerator costs the join block only; re-derive the DP's block cost
  // by optimizing the bare join (no projection node).
  auto query = fx.Figure1Query();
  auto join_only = query->children()[0];
  auto plan = opt.Optimize(join_only);
  ASSERT_TRUE(plan.ok());
  // Small tolerance: the parametric equivalence-class cache fills lazily,
  // so estimates drift slightly between the enumeration pass and the DP
  // pass (more samples -> a refit of the Figure-4 line).
  EXPECT_LE(plan->est_cost, best_enumerated * 1.05);
}

TEST(OptimizerFigure1Test, StatsCountersPopulated) {
  Figure1Fixture fx(30, 5, 0.3, 0.3);
  OptimizerOptions opts;
  opts.equivalence_classes = 4;
  Optimizer opt(&fx.catalog_, opts);
  ASSERT_TRUE(opt.Optimize(fx.Figure1Query()).ok());
  const OptimizerStats& st = opt.stats();
  EXPECT_GE(st.nested_optimizations, 1);
  EXPECT_GT(st.join_steps_costed, 0);
  EXPECT_GT(st.filter_joins_costed, 0);
  EXPECT_GT(st.dp_entries, 0);
  EXPECT_LE(st.eq_class_misses, 4 * 2);  // bounded by the knob (per impl)
}

TEST(OptimizerFigure1Test, ExplainMentionsEstimates) {
  Figure1Fixture fx(10, 5, 0.5, 0.5);
  Optimizer opt(&fx.catalog_);
  auto plan = opt.Optimize(fx.Figure1Query());
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->explain.find("estimated cost="), std::string::npos);
  EXPECT_GT(plan->est_cost, 0.0);
}

TEST(OptimizerTest, TwoTableJoinPicksHashOverNL) {
  Catalog cat;
  Schema rs({{"", "k", DataType::kInt64}, {"", "x", DataType::kInt64}});
  Table* r = *cat.CreateTable("R", rs);
  Table* s = *cat.CreateTable("S", rs);
  for (int i = 0; i < 500; ++i) {
    MAGICDB_CHECK_OK(r->Insert({Value::Int64(i % 50), Value::Int64(i)}));
    MAGICDB_CHECK_OK(s->Insert({Value::Int64(i % 50), Value::Int64(i)}));
  }
  MAGICDB_CHECK_OK(cat.AnalyzeAll());
  Schema ra = r->schema().WithQualifier("R1");
  Schema sa = s->schema().WithQualifier("S1");
  auto rscan = std::make_shared<RelScanNode>("R", "R1", ra);
  auto sscan = std::make_shared<RelScanNode>("S", "S1", sa);
  Schema block = ra.Concat(sa);
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef(0, DataType::kInt64),
                     MakeColumnRef(2, DataType::kInt64));
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{rscan, sscan}, pred, block);
  OptimizerOptions opts;
  opts.filter_join_on_stored = false;
  Optimizer opt(&cat, opts);
  auto plan = opt.Optimize(LogicalPtr(join));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->explain.find("NestedLoopsJoin"), std::string::npos)
      << plan->explain;
  ExecContext ctx;
  auto rows = ExecuteToVector(plan->root.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5000u);  // 50 keys x 10 x 10
}

TEST(OptimizerTest, CrossProductFallsBackToNL) {
  Catalog cat;
  Schema rs({{"", "x", DataType::kInt64}});
  Table* r = *cat.CreateTable("R", rs);
  Table* s = *cat.CreateTable("S", rs);
  for (int i = 0; i < 3; ++i) {
    MAGICDB_CHECK_OK(r->Insert({Value::Int64(i)}));
    MAGICDB_CHECK_OK(s->Insert({Value::Int64(i)}));
  }
  MAGICDB_CHECK_OK(cat.AnalyzeAll());
  auto rscan = std::make_shared<RelScanNode>(
      "R", "R1", r->schema().WithQualifier("R1"));
  auto sscan = std::make_shared<RelScanNode>(
      "S", "S1", s->schema().WithQualifier("S1"));
  Schema block = rscan->schema().Concat(sscan->schema());
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{rscan, sscan}, nullptr, block);
  Optimizer opt(&cat);
  auto plan = opt.Optimize(LogicalPtr(join));
  ASSERT_TRUE(plan.ok());
  ExecContext ctx;
  auto rows = ExecuteToVector(plan->root.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 9u);
}

TEST(OptimizerTest, RemoteJoinExecutesAndShips) {
  Catalog cat;
  Schema rs({{"", "k", DataType::kInt64}, {"", "x", DataType::kInt64}});
  Table* local = *cat.CreateTable("L", rs);
  Table* remote = *cat.CreateRemoteTable("R", rs, 2);
  for (int i = 0; i < 100; ++i) {
    MAGICDB_CHECK_OK(local->Insert({Value::Int64(i % 5), Value::Int64(i)}));
    MAGICDB_CHECK_OK(remote->Insert({Value::Int64(i % 20), Value::Int64(i)}));
  }
  MAGICDB_CHECK_OK(cat.AnalyzeAll());
  auto lscan = std::make_shared<RelScanNode>(
      "L", "L", local->schema().WithQualifier("L"));
  auto rscan = std::make_shared<RelScanNode>(
      "R", "R", remote->schema().WithQualifier("R"));
  Schema block = lscan->schema().Concat(rscan->schema());
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef(0, DataType::kInt64),
                     MakeColumnRef(2, DataType::kInt64));
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{lscan, rscan}, pred, block);
  Optimizer opt(&cat);
  auto plan = opt.Optimize(LogicalPtr(join));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExecContext ctx;
  auto rows = ExecuteToVector(plan->root.get(), &ctx);
  ASSERT_TRUE(rows.ok());
  // Reference: L.k in [0,5) matches R rows with k<5: 5 R-rows per key value.
  EXPECT_EQ(rows->size(), 100u * 5u);
  EXPECT_GT(ctx.counters().bytes_shipped, 0);
}

TEST(OptimizerTest, FunctionJoinBindsArguments) {
  Catalog cat;
  Schema ts({{"", "v", DataType::kInt64}});
  Table* t = *cat.CreateTable("T", ts);
  for (int i = 0; i < 30; ++i) {
    MAGICDB_CHECK_OK(t->Insert({Value::Int64(i % 4)}));
  }
  MAGICDB_CHECK_OK(cat.AnalyzeAll());
  Schema args({{"", "a", DataType::kInt64}});
  Schema results({{"", "sq", DataType::kInt64}});
  MAGICDB_CHECK_OK(cat.RegisterFunction(std::make_unique<LambdaTableFunction>(
      "square", args, results,
      [](const Tuple& in, std::vector<Tuple>* out) {
        out->push_back({Value::Int64(in[0].AsInt64() * in[0].AsInt64())});
        return Status::OK();
      })));
  auto tscan = std::make_shared<RelScanNode>(
      "T", "T", t->schema().WithQualifier("T"));
  const CatalogEntry* fentry = *cat.Lookup("square");
  auto fscan = std::make_shared<RelScanNode>(
      "square", "S", fentry->schema.WithQualifier("S"));
  Schema block = tscan->schema().Concat(fscan->schema());
  ExprPtr pred =
      MakeComparison(CompareOp::kEq, MakeColumnRef(0, DataType::kInt64),
                     MakeColumnRef(1, DataType::kInt64));
  auto join = std::make_shared<NaryJoinNode>(
      std::vector<LogicalPtr>{tscan, fscan}, pred, block);
  Optimizer opt(&cat);
  auto plan = opt.Optimize(LogicalPtr(join));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExecContext ctx;
  auto rows = ExecuteToVector(plan->root.get(), &ctx);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 30u);
  for (const Tuple& r : *rows) {
    EXPECT_EQ(r[2].AsInt64(), r[0].AsInt64() * r[0].AsInt64());
  }
  // The optimizer must not invoke once per row when dedup is cheaper.
  EXPECT_LE(ctx.counters().function_invocations, 4);
}

TEST(OptimizerTest, FunctionWithoutBindingFails) {
  Catalog cat;
  Schema args({{"", "a", DataType::kInt64}});
  Schema results({{"", "sq", DataType::kInt64}});
  MAGICDB_CHECK_OK(cat.RegisterFunction(std::make_unique<LambdaTableFunction>(
      "square", args, results,
      [](const Tuple&, std::vector<Tuple>*) { return Status::OK(); })));
  const CatalogEntry* fentry = *cat.Lookup("square");
  auto fscan = std::make_shared<RelScanNode>(
      "square", "S", fentry->schema.WithQualifier("S"));
  Optimizer opt(&cat);
  EXPECT_FALSE(opt.Optimize(LogicalPtr(fscan)).ok());
}

TEST(OptimizerTest, EquivalenceClassKnobBoundsNestedWork) {
  for (int k : {1, 2, 8}) {
    Figure1Fixture fx(50, 5, 0.3, 0.3);
    OptimizerOptions opts;
    opts.equivalence_classes = k;
    Optimizer opt(&fx.catalog_, opts);
    ASSERT_TRUE(opt.Optimize(fx.Figure1Query()).ok());
    EXPECT_LE(opt.stats().eq_class_misses, 2 * k) << "k=" << k;
  }
}

}  // namespace
}  // namespace magicdb
