#include <gtest/gtest.h>

#include "src/common/cost_counters.h"
#include "src/optimizer/cost_model.h"

namespace magicdb {
namespace {

TEST(EstimateTest, FractionalPages) {
  EXPECT_DOUBLE_EQ(Estimate::PagesForRowsD(0, 8), 0.0);
  EXPECT_DOUBLE_EQ(Estimate::PagesForRowsD(1, 8), 1.0);
  // 512 rows of 8 bytes fill exactly one 4096-byte page.
  EXPECT_DOUBLE_EQ(Estimate::PagesForRowsD(512, 8), 1.0);
  EXPECT_DOUBLE_EQ(Estimate::PagesForRowsD(513, 8), 2.0);
}

TEST(EstimateTest, MatchesIntegerPagesForRows) {
  for (int64_t rows : {0, 1, 100, 512, 513, 10000}) {
    for (int64_t width : {8, 24, 56, 100}) {
      EXPECT_DOUBLE_EQ(Estimate::PagesForRowsD(
                           static_cast<double>(rows), width),
                       static_cast<double>(PagesForRows(rows, width)))
          << rows << "x" << width;
    }
  }
}

TEST(CostsTest, SeqScanComposesPagesAndCpu) {
  const double c = costs::SeqScan(1000, 24);
  EXPECT_DOUBLE_EQ(c, 6.0 + 1000 * CostConstants::kCpuTupleCost);
}

TEST(CostsTest, MaterializeAndSpoolAreSymmetricOnPages) {
  EXPECT_DOUBLE_EQ(costs::MaterializeWrite(1000, 24), 6.0);
  EXPECT_DOUBLE_EQ(costs::SpoolRead(1000, 24),
                   6.0 + 1000 * CostConstants::kCpuTupleCost);
}

TEST(CostsTest, SortChargesExternalPassOnlyOverBudget) {
  const double in_memory = costs::Sort(1000, 24, 1 << 20);
  const double external = costs::Sort(1000, 24, 1 << 10);
  EXPECT_GT(external, in_memory);
  // Each merge pass rewrites and rereads the whole input; the number of
  // passes follows the shared SpillPasses model (here 24000 bytes against
  // a 1 KiB budget with fanout 8 needs two passes).
  const int passes = SpillPasses(1000 * 24.0, 1 << 10);
  EXPECT_EQ(passes, 2);
  EXPECT_DOUBLE_EQ(external - in_memory, 2.0 * 6.0 * passes);
  EXPECT_DOUBLE_EQ(costs::Sort(1, 24, 1), 0.0);
}

TEST(CostsTest, ShipScalesWithBytesAndMessages) {
  EXPECT_DOUBLE_EQ(costs::Ship(0, 8), 0.0);
  const double small = costs::Ship(10, 8);
  // 80 bytes: the open message plus one short trailing-page message, plus
  // byte cost (ShipOp flushes the final partial page at Close).
  EXPECT_DOUBLE_EQ(small, 2 * CostConstants::kMessageCost +
                              80 * CostConstants::kBytePerCost);
  // 1000x the data is much costlier, but sub-linearly: the fixed
  // per-message cost dominates the small transfer.
  const double big = costs::Ship(10000, 8);
  EXPECT_GT(big, small * 10);
  EXPECT_LT(big, small * 1000);
}

TEST(CostsTest, RemoteProbeChargesRoundTrip) {
  const double c = costs::RemoteProbe(8, 2, 16);
  EXPECT_DOUBLE_EQ(c, 2 * CostConstants::kMessageCost +
                          CostConstants::kBytePerCost * (8 + 32));
}

TEST(CostsTest, HashSpillZeroWhenFits) {
  EXPECT_DOUBLE_EQ(costs::HashSpill(100, 8, 1000, 8, 1 << 20), 0.0);
  const double spilled = costs::HashSpill(100000, 8, 1000, 8, 1 << 10);
  EXPECT_GT(spilled, 0.0);
  // One write+read pass over both inputs per recursive partitioning pass
  // of the build side (800 KB against a 1 KiB budget recurses 4 deep).
  const int passes = SpillPasses(100000 * 8.0, 1 << 10);
  EXPECT_EQ(passes, 4);
  EXPECT_DOUBLE_EQ(spilled,
                   2.0 * passes *
                       (Estimate::PagesForRowsD(100000, 8) +
                        Estimate::PagesForRowsD(1000, 8)));
}

TEST(CostsTest, IndexProbeGrowsWithMatches) {
  EXPECT_LT(costs::IndexProbe(0), costs::IndexProbe(5));
  EXPECT_DOUBLE_EQ(costs::IndexProbe(0), CostConstants::kCpuHashCost + 1.0);
}

TEST(ExpectedDistinctTest, Boundaries) {
  EXPECT_DOUBLE_EQ(ExpectedDistinct(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedDistinct(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedDistinct(1, 100), 1.0);
}

TEST(ExpectedDistinctTest, ApproachesDomainWithManyDraws) {
  EXPECT_NEAR(ExpectedDistinct(100, 100000), 100.0, 1e-6);
  EXPECT_LT(ExpectedDistinct(100, 10), 10.0 + 1e-9);
  EXPECT_GT(ExpectedDistinct(100, 10), 9.0);  // few collisions
}

TEST(ExpectedDistinctTest, MonotoneInDraws) {
  double prev = 0;
  for (int k = 1; k < 1000; k *= 2) {
    const double d = ExpectedDistinct(200, k);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ExpectedDistinctTest, NeverExceedsDrawsOrDomain) {
  for (double domain : {5.0, 50.0, 5000.0}) {
    for (double draws : {1.0, 10.0, 100.0, 100000.0}) {
      const double d = ExpectedDistinct(domain, draws);
      EXPECT_LE(d, domain + 1e-9);
      EXPECT_LE(d, draws + 1e-9);
      EXPECT_GT(d, 0.0);
    }
  }
}

TEST(CostsTest, VectorizedCpuFactorAmortizesWithBatchSize) {
  // Tuple-at-a-time pays full per-row overhead.
  EXPECT_DOUBLE_EQ(costs::VectorizedCpuFactor(0), 1.0);
  EXPECT_DOUBLE_EQ(costs::VectorizedCpuFactor(1), 1.0);
  // Monotonically non-increasing in batch size, bounded away from zero by
  // the non-amortizable per-row floor.
  double prev = 1.0;
  for (int64_t batch : {2, 7, 64, 1024, 1 << 20}) {
    const double f = costs::VectorizedCpuFactor(batch);
    EXPECT_LE(f, prev) << batch;
    EXPECT_GT(f, 0.0) << batch;
    EXPECT_LT(f, 1.0) << batch;
    prev = f;
  }
  // Large batches asymptote near the floor rather than collapsing to it.
  EXPECT_NEAR(costs::VectorizedCpuFactor(1 << 20), 0.25, 1e-4);
}

TEST(FilterJoinBreakdownTest, StepTotalSumsComponentsExceptOuter) {
  FilterJoinCostBreakdown bd;
  bd.join_cost_p = 100;  // excluded
  bd.production_cost = 1;
  bd.proj_cost = 2;
  bd.avail_cost_f = 3;
  bd.filter_cost_rk = 4;
  bd.avail_cost_rk = 5;
  bd.final_join_cost = 6;
  EXPECT_DOUBLE_EQ(bd.StepTotal(), 21.0);
  const std::string s = bd.ToString();
  EXPECT_NE(s.find("ProductionCost_P=1"), std::string::npos);
  EXPECT_NE(s.find("FilterCost_Rk=4"), std::string::npos);
}

}  // namespace
}  // namespace magicdb
