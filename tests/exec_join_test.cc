#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/exec/basic_ops.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

Schema RSchema() {
  return Schema({{"r", "k", DataType::kInt64}, {"r", "x", DataType::kInt64}});
}
Schema SSchema() {
  return Schema({{"s", "k", DataType::kInt64}, {"s", "y", DataType::kInt64}});
}

std::unique_ptr<Table> MakeR(int n, int key_mod) {
  auto t = std::make_unique<Table>("r", RSchema());
  for (int i = 0; i < n; ++i) {
    MAGICDB_CHECK_OK(t->Insert({Value::Int64(i % key_mod), Value::Int64(i)}));
  }
  return t;
}

std::unique_ptr<Table> MakeS(int n, int key_mod) {
  auto t = std::make_unique<Table>("s", SSchema());
  for (int i = 0; i < n; ++i) {
    MAGICDB_CHECK_OK(
        t->Insert({Value::Int64(i % key_mod), Value::Int64(i * 10)}));
  }
  return t;
}

/// Reference result via brute force.
std::vector<Tuple> ReferenceJoin(const Table& r, const Table& s) {
  std::vector<Tuple> out;
  for (int64_t i = 0; i < r.NumRows(); ++i) {
    for (int64_t j = 0; j < s.NumRows(); ++j) {
      if (r.row(i)[0].Compare(s.row(j)[0]) == 0) {
        out.push_back(ConcatTuples(r.row(i), s.row(j)));
      }
    }
  }
  return out;
}

ExprPtr EqPredicate() {
  // r.k = s.k over concatenated schema (r.k at 0, s.k at 2).
  return MakeComparison(CompareOp::kEq, MakeColumnRef(0, DataType::kInt64),
                        MakeColumnRef(2, DataType::kInt64));
}

TEST(NestedLoopsJoinTest, MatchesReference) {
  auto r = MakeR(12, 5);
  auto s = MakeS(8, 5);
  ExecContext ctx;
  NestedLoopsJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                         std::make_unique<SeqScanOp>(s.get()), EqPredicate());
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(SameMultiset(*rows, ReferenceJoin(*r, *s)));
}

TEST(NestedLoopsJoinTest, CrossProductWithNullPredicate) {
  auto r = MakeR(3, 3);
  auto s = MakeS(4, 4);
  ExecContext ctx;
  NestedLoopsJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                         std::make_unique<SeqScanOp>(s.get()), nullptr);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 12u);
}

TEST(NestedLoopsJoinTest, RescansInnerPerOuterTuple) {
  auto r = MakeR(4, 4);
  auto s = MakeS(4, 4);
  ExecContext ctx;
  NestedLoopsJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                         std::make_unique<SeqScanOp>(s.get()), EqPredicate());
  ASSERT_TRUE(ExecuteToVector(&join, &ctx).ok());
  // 1 outer page + 4 inner rescans of 1 page each.
  EXPECT_EQ(ctx.counters().pages_read, 5);
}

TEST(NestedLoopsJoinTest, NonEquiJoinSupported) {
  auto r = MakeR(5, 5);
  auto s = MakeS(5, 5);
  ExecContext ctx;
  auto pred = MakeComparison(CompareOp::kLt, MakeColumnRef(1, DataType::kInt64),
                             MakeColumnRef(3, DataType::kInt64));
  NestedLoopsJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                         std::make_unique<SeqScanOp>(s.get()), pred);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  int expected = 0;
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (i < j * 10) ++expected;
    }
  }
  EXPECT_EQ(static_cast<int>(rows->size()), expected);
}

TEST(HashJoinTest, MatchesReference) {
  auto r = MakeR(20, 7);
  auto s = MakeS(15, 7);
  ExecContext ctx;
  HashJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                  std::make_unique<SeqScanOp>(s.get()), {0}, {0}, nullptr);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(SameMultiset(*rows, ReferenceJoin(*r, *s)));
}

TEST(HashJoinTest, ResidualPredicateApplies) {
  auto r = MakeR(10, 5);
  auto s = MakeS(10, 5);
  ExecContext ctx;
  auto residual = MakeComparison(
      CompareOp::kGt, MakeColumnRef(3, DataType::kInt64),
      MakeLiteral(Value::Int64(40)));
  HashJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                  std::make_unique<SeqScanOp>(s.get()), {0}, {0}, residual);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  for (const Tuple& t : *rows) {
    EXPECT_GT(t[3].AsInt64(), 40);
  }
}

TEST(HashJoinTest, NoMatchesYieldsEmpty) {
  auto r = MakeR(5, 5);
  auto s = std::make_unique<Table>("s", SSchema());
  for (int i = 0; i < 5; ++i) {
    MAGICDB_CHECK_OK(
        s->Insert({Value::Int64(100 + i), Value::Int64(i)}));
  }
  ExecContext ctx;
  HashJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                  std::make_unique<SeqScanOp>(s.get()), {0}, {0}, nullptr);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(HashJoinTest, NullKeysNeverMatchViaPredicateSemantics) {
  // NULL keys: hash join on key equality uses Value::Compare which treats
  // NULL == NULL; SQL inner-join semantics exclude NULL matches, which the
  // planner enforces by a residual IS-NOT-NULL-style predicate. Here we
  // document the operator-level behaviour: NULLs do match structurally.
  Table r("r", RSchema());
  Table s("s", SSchema());
  MAGICDB_CHECK_OK(r.Insert({Value::Null(), Value::Int64(1)}));
  MAGICDB_CHECK_OK(s.Insert({Value::Null(), Value::Int64(2)}));
  ExecContext ctx;
  // With the SQL-level equality residual, NULL = NULL evaluates to NULL and
  // the pair is dropped.
  HashJoinOp join(std::make_unique<SeqScanOp>(&r),
                  std::make_unique<SeqScanOp>(&s), {0}, {0}, EqPredicate());
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(SortMergeJoinTest, MatchesReference) {
  auto r = MakeR(25, 6);
  auto s = MakeS(18, 6);
  ExecContext ctx;
  SortMergeJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                       std::make_unique<SeqScanOp>(s.get()), {0}, {0},
                       nullptr);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(SameMultiset(*rows, ReferenceJoin(*r, *s)));
}

TEST(SortMergeJoinTest, DuplicateGroupsCrossProduct) {
  Table r("r", RSchema());
  Table s("s", SSchema());
  for (int i = 0; i < 3; ++i) {
    MAGICDB_CHECK_OK(r.Insert({Value::Int64(1), Value::Int64(i)}));
  }
  for (int i = 0; i < 2; ++i) {
    MAGICDB_CHECK_OK(s.Insert({Value::Int64(1), Value::Int64(i)}));
  }
  ExecContext ctx;
  SortMergeJoinOp join(std::make_unique<SeqScanOp>(&r),
                       std::make_unique<SeqScanOp>(&s), {0}, {0}, nullptr);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);
}

TEST(IndexNestedLoopsJoinTest, MatchesReference) {
  auto r = MakeR(12, 4);
  auto s = MakeS(16, 4);
  s->CreateHashIndex({0});
  ExecContext ctx;
  IndexNestedLoopsJoinOp join(std::make_unique<SeqScanOp>(r.get()), s.get(),
                              s->FindHashIndex({0}), {0}, nullptr);
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(SameMultiset(*rows, ReferenceJoin(*r, *s)));
}

TEST(IndexNestedLoopsJoinTest, RemoteProbeChargesMessages) {
  auto r = MakeR(5, 5);
  auto s = MakeS(5, 5);
  s->CreateHashIndex({0});
  ExecContext ctx;
  IndexNestedLoopsJoinOp join(std::make_unique<SeqScanOp>(r.get()), s.get(),
                              s->FindHashIndex({0}), {0}, nullptr,
                              /*remote_probe=*/true);
  ASSERT_TRUE(ExecuteToVector(&join, &ctx).ok());
  EXPECT_EQ(ctx.counters().messages_sent, 10);  // 2 per probe
  EXPECT_GT(ctx.counters().bytes_shipped, 0);
}

TEST(JoinAgreementTest, AllJoinMethodsAgreeOnRandomInputs) {
  Random rng(1234);
  for (int trial = 0; trial < 8; ++trial) {
    const int rn = 1 + static_cast<int>(rng.Uniform(40));
    const int sn = 1 + static_cast<int>(rng.Uniform(40));
    const int mod = 1 + static_cast<int>(rng.Uniform(10));
    auto r = MakeR(rn, mod);
    auto s = MakeS(sn, mod);
    s->CreateHashIndex({0});
    std::vector<Tuple> ref = ReferenceJoin(*r, *s);

    ExecContext ctx;
    NestedLoopsJoinOp nl(std::make_unique<SeqScanOp>(r.get()),
                         std::make_unique<SeqScanOp>(s.get()), EqPredicate());
    auto nl_rows = ExecuteToVector(&nl, &ctx);
    ASSERT_TRUE(nl_rows.ok());
    EXPECT_TRUE(SameMultiset(*nl_rows, ref)) << "NL trial " << trial;

    HashJoinOp hj(std::make_unique<SeqScanOp>(r.get()),
                  std::make_unique<SeqScanOp>(s.get()), {0}, {0}, nullptr);
    auto hj_rows = ExecuteToVector(&hj, &ctx);
    ASSERT_TRUE(hj_rows.ok());
    EXPECT_TRUE(SameMultiset(*hj_rows, ref)) << "HJ trial " << trial;

    SortMergeJoinOp smj(std::make_unique<SeqScanOp>(r.get()),
                        std::make_unique<SeqScanOp>(s.get()), {0}, {0},
                        nullptr);
    auto smj_rows = ExecuteToVector(&smj, &ctx);
    ASSERT_TRUE(smj_rows.ok());
    EXPECT_TRUE(SameMultiset(*smj_rows, ref)) << "SMJ trial " << trial;

    IndexNestedLoopsJoinOp inl(std::make_unique<SeqScanOp>(r.get()), s.get(),
                               s->FindHashIndex({0}), {0}, nullptr);
    auto inl_rows = ExecuteToVector(&inl, &ctx);
    ASSERT_TRUE(inl_rows.ok());
    EXPECT_TRUE(SameMultiset(*inl_rows, ref)) << "INL trial " << trial;
  }
}

}  // namespace
}  // namespace magicdb
