// End-to-end integration tests exercising the full SQL -> bind ->
// cost-based optimize -> execute pipeline on the paper's scenarios:
// expensive views, distributed joins, user-defined relations, nested and
// multiple views, and interesting-order reuse.

#include <gtest/gtest.h>

#include <map>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;


TEST(IntegrationTest, ExpensiveViewAllModesAgreeAndMagicWins) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE TABLE Emp (eid INT, did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Bonus (eid INT, amount DOUBLE)"));
  Random rng(5);
  std::vector<Tuple> emps, depts, bonuses;
  int64_t eid = 0;
  for (int d = 0; d < 300; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.04) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 4; ++e, ++eid) {
      emps.push_back({Value::Int64(eid), Value::Int64(d),
                      Value::Double(50000.0 + rng.NextDouble() * 100000.0),
                      Value::Int64(rng.Bernoulli(0.04) ? 25 : 45)});
      for (int b = 0; b < 3; ++b) {
        bonuses.push_back(
            {Value::Int64(eid), Value::Double(rng.NextDouble() * 5000.0)});
      }
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.LoadRows("Bonus", std::move(bonuses)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({1});
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  (*db.catalog()->Lookup("Bonus"))->table->CreateHashIndex({0});
  (*db.catalog()->Lookup("Dept"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW DepComp AS SELECT E.did, AVG(E.sal + B.amount) AS "
      "avgcomp FROM Emp E, Bonus B WHERE E.eid = B.eid GROUP BY E.did"));

  const char* query =
      "SELECT E.did, E.sal, V.avgcomp FROM Emp E, Dept D, DepComp V "
      "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgcomp "
      "AND E.age < 30 AND D.budget > 100000";

  auto magic = db.Query(query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();

  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());

  EXPECT_TRUE(SameMultiset(magic->rows, plain->rows));
  // Selective workload: the cost-based plan must win clearly.
  EXPECT_LT(magic->counters.TotalCost(), plain->counters.TotalCost() * 0.7)
      << "magic=" << magic->counters.TotalCost()
      << " plain=" << plain->counters.TotalCost();
  EXPECT_FALSE(magic->filter_joins.empty());
}

TEST(IntegrationTest, RemoteViewSemiJoinThroughSQL) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Customers (cid INT, region INT)"));
  Schema orders({{"", "cid", DataType::kInt64},
                 {"", "amount", DataType::kDouble}});
  MAGICDB_CHECK_OK(
      db.catalog()->CreateRemoteTable("Orders", orders, 1).status());
  Random rng(6);
  std::vector<Tuple> customers, order_rows;
  for (int c = 0; c < 500; ++c) {
    customers.push_back(
        {Value::Int64(c), Value::Int64(static_cast<int64_t>(rng.Uniform(25)))});
    for (int o = 0; o < 4; ++o) {
      order_rows.push_back(
          {Value::Int64(c), Value::Double(rng.NextDouble() * 100)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Customers", std::move(customers)));
  MAGICDB_CHECK_OK(db.LoadRows("Orders", std::move(order_rows)));
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW CustRevenue AS SELECT cid, SUM(amount) AS revenue "
      "FROM Orders GROUP BY cid"));

  const char* query =
      "SELECT C.cid, V.revenue FROM Customers C, CustRevenue V "
      "WHERE C.cid = V.cid AND C.region = 3";

  auto magic = db.Query(query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(magic->rows, plain->rows));
  // The semi-join ships far fewer bytes than fetching the whole relation.
  EXPECT_LT(magic->counters.bytes_shipped, plain->counters.bytes_shipped);
}

TEST(IntegrationTest, FunctionJoinThroughSQL) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE T (v INT, tag INT)"));
  Random rng(8);
  std::vector<Tuple> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(7))),
                    Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("T", std::move(rows)));
  Schema args({{"", "a", DataType::kInt64}});
  Schema results({{"", "cube", DataType::kInt64}});
  MAGICDB_CHECK_OK(db.catalog()->RegisterFunction(
      std::make_unique<LambdaTableFunction>(
          "cube", args, results,
          [](const Tuple& in, std::vector<Tuple>* out) {
            const int64_t x = in[0].AsInt64();
            out->push_back({Value::Int64(x * x * x)});
            return Status::OK();
          })));

  auto result =
      db.Query("SELECT T.tag, F.cube FROM T, cube F WHERE T.v = F.a");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 200u);
  for (const Tuple& r : result->rows) {
    // tag encodes i; recompute v from nothing — just check the cube column
    // is a perfect cube of a small value.
    const int64_t cube = r[1].AsInt64();
    bool found = false;
    for (int64_t v = 0; v < 7; ++v) {
      if (v * v * v == cube) found = true;
    }
    EXPECT_TRUE(found) << cube;
  }
  // Deduplicated invocation (memo or filter join), never 200 calls.
  EXPECT_LE(result->counters.function_invocations, 7);
}

TEST(IntegrationTest, TwoViewsInOneQuery) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  Random rng(9);
  std::vector<Tuple> emps;
  for (int d = 0; d < 50; ++d) {
    for (int e = 0; e < 6; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(40000 + rng.NextDouble() * 80000),
                      Value::Int64(20 + static_cast<int64_t>(rng.Uniform(30)))});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW AvgSal AS SELECT did, AVG(sal) AS a FROM Emp GROUP BY "
      "did"));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW MaxSal AS SELECT did, MAX(sal) AS m FROM Emp GROUP BY "
      "did"));

  const char* query =
      "SELECT E.did, E.sal FROM Emp E, AvgSal A, MaxSal M "
      "WHERE E.did = A.did AND E.did = M.did AND E.sal > A.a "
      "AND E.sal = M.m AND E.age < 25";

  auto magic = db.Query(query);
  ASSERT_TRUE(magic.ok()) << magic.status().ToString();
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto plain = db.Query(query);
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(SameMultiset(magic->rows, plain->rows));
  // Sanity: every returned employee is the top earner of their department.
  for (const Tuple& r : magic->rows) {
    EXPECT_GT(r[1].AsDouble(), 0);
  }
}

TEST(IntegrationTest, ViewOverViewComposition) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE T (g INT, v INT)"));
  std::vector<Tuple> rows;
  for (int i = 0; i < 60; ++i) {
    rows.push_back({Value::Int64(i % 6), Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("T", std::move(rows)));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW Sums AS SELECT g, SUM(v) AS s FROM T GROUP BY g"));
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW BigSums AS SELECT g, s FROM Sums WHERE s > 250"));
  auto result = db.Query(
      "SELECT T.v, B.s FROM T, BigSums B WHERE T.g = B.g AND T.v < 10");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Sums per group g: sum of {g, g+6, ..., g+54} = 10g + 270... groups with
  // s > 250 are all of them except... compute: group g total = 10*g + (0+6+...+54)=270.
  // s = 270 + 10g > 250 for all g. So rows with v < 10: 10 rows.
  EXPECT_EQ(result->rows.size(), 10u);
}

TEST(IntegrationTest, InterestingOrderReusedBySecondSortMerge) {
  // Three-way equi-join on the same key: after the first sort-merge join
  // the stream is sorted on the key, so the second SMJ may skip its outer
  // sort. Verify plans agree on results and the presorted variant appears
  // when only SMJ is available.
  Database db;
  for (const char* t : {"A", "B", "C"}) {
    MAGICDB_CHECK_OK(db.Execute(std::string("CREATE TABLE ") + t +
                                " (k INT, p INT)"));
  }
  Random rng(12);
  for (const char* t : {"A", "B", "C"}) {
    std::vector<Tuple> rows;
    for (int i = 0; i < 400; ++i) {
      rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                      Value::Int64(i)});
    }
    MAGICDB_CHECK_OK(db.LoadRows(t, std::move(rows)));
  }
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());

  OptimizerOptions opts;
  opts.enable_hash_join = false;
  opts.enable_index_nested_loops = false;
  opts.enable_nested_loops = false;
  opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  opts.filter_join_on_stored = false;
  *db.mutable_optimizer_options() = opts;

  const char* query =
      "SELECT A.p, B.p, C.p FROM A, B, C WHERE A.k = B.k AND B.k = C.k";
  auto smj_only = db.Query(query);
  ASSERT_TRUE(smj_only.ok()) << smj_only.status().ToString();
  EXPECT_NE(smj_only->explain.find("outer presorted"), std::string::npos)
      << smj_only->explain;

  *db.mutable_optimizer_options() = OptimizerOptions();
  auto free_choice = db.Query(query);
  ASSERT_TRUE(free_choice.ok());
  EXPECT_TRUE(SameMultiset(smj_only->rows, free_choice->rows));
}

TEST(IntegrationTest, InterestingOrdersToggleDoesNotChangeResults) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE A (k INT, p INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE B (k INT, q INT)"));
  Random rng(13);
  std::vector<Tuple> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(30))),
                 Value::Int64(i)});
    b.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(30))),
                 Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("A", std::move(a)));
  MAGICDB_CHECK_OK(db.LoadRows("B", std::move(b)));
  const char* query = "SELECT A.p, B.q FROM A, B WHERE A.k = B.k";
  auto with_orders = db.Query(query);
  ASSERT_TRUE(with_orders.ok());
  db.mutable_optimizer_options()->interesting_orders = false;
  auto without = db.Query(query);
  ASSERT_TRUE(without.ok());
  EXPECT_TRUE(SameMultiset(with_orders->rows, without->rows));
}

TEST(IntegrationTest, PrefixProductionAblationKeepsResults) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(14);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < 80; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.2) ? 200000.0 : 50000.0)});
    for (int e = 0; e < 4; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(50000 + rng.NextDouble() * 100000),
                      Value::Int64(rng.Bernoulli(0.2) ? 25 : 45)});
    }
  }
  MAGICDB_CHECK_OK(db.LoadRows("Dept", std::move(depts)));
  MAGICDB_CHECK_OK(db.LoadRows("Emp", std::move(emps)));
  MAGICDB_CHECK_OK(db.catalog()->AnalyzeAll());
  MAGICDB_CHECK_OK(db.Execute(
      "CREATE VIEW V AS SELECT did, AVG(sal) AS a FROM Emp GROUP BY did"));
  const char* query =
      "SELECT E.did FROM Emp E, Dept D, V WHERE E.did = D.did AND "
      "E.did = V.did AND E.sal > V.a AND D.budget > 100000";
  auto default_plan = db.Query(query);
  ASSERT_TRUE(default_plan.ok());
  db.mutable_optimizer_options()->explore_prefix_production_sets = true;
  auto prefix_plan = db.Query(query);
  ASSERT_TRUE(prefix_plan.ok());
  EXPECT_TRUE(SameMultiset(default_plan->rows, prefix_plan->rows));
  // The ablation explores at least as much (usually more).
  EXPECT_GE(prefix_plan->optimizer_stats.filter_joins_costed,
            default_plan->optimizer_stats.filter_joins_costed);
}

TEST(IntegrationTest, HavingOverViewJoin) {
  Database db;
  MAGICDB_CHECK_OK(db.Execute("CREATE TABLE Sales (region INT, amt DOUBLE)"));
  std::vector<Tuple> rows;
  for (int i = 0; i < 100; ++i) {
    rows.push_back({Value::Int64(i % 10), Value::Double(i)});
  }
  MAGICDB_CHECK_OK(db.LoadRows("Sales", std::move(rows)));
  auto result = db.Query(
      "SELECT region, SUM(amt) AS total, COUNT(*) AS n FROM Sales "
      "GROUP BY region HAVING SUM(amt) > 500 ORDER BY total DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Region r sums 10r + (0+10+..+90) = 450 + 10r; > 500 for r >= 6.
  EXPECT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->rows[0][0], Value::Int64(9));  // largest total first
}

}  // namespace
}  // namespace magicdb
