#ifndef MAGICDB_TESTS_TEST_UTIL_H_
#define MAGICDB_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "src/types/tuple.h"

namespace magicdb::testutil {

/// Sorts a result multiset into canonical order for order-insensitive
/// comparison.
inline std::vector<Tuple> Canonicalize(std::vector<Tuple> rows) {
  std::sort(rows.begin(), rows.end(), [](const Tuple& a, const Tuple& b) {
    return CompareTuples(a, b) < 0;
  });
  return rows;
}

/// True iff `a` and `b` contain the same tuples with the same
/// multiplicities.
inline bool SameMultiset(std::vector<Tuple> a, std::vector<Tuple> b) {
  a = Canonicalize(std::move(a));
  b = Canonicalize(std::move(b));
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (CompareTuples(a[i], b[i]) != 0) return false;
  }
  return true;
}

}  // namespace magicdb::testutil

#endif  // MAGICDB_TESTS_TEST_UTIL_H_
