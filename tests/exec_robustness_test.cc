// Robustness tests for the executor: error propagation through operator
// trees, re-open semantics, empty inputs at every operator, and tree
// printing.

#include <gtest/gtest.h>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/db/database.h"
#include "src/exec/aggregate_op.h"
#include "src/exec/basic_ops.h"
#include "src/exec/exchange_op.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/function_ops.h"
#include "src/exec/join_ops.h"
#include "src/exec/scan_ops.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

Schema OneCol() { return Schema({{"t", "a", DataType::kInt64}}); }

std::unique_ptr<Table> SmallTable(int n) {
  auto t = std::make_unique<Table>("t", OneCol());
  for (int i = 0; i < n; ++i) {
    MAGICDB_CHECK_OK(t->Insert({Value::Int64(i)}));
  }
  return t;
}

TEST(ExecErrorTest, DivisionByZeroPropagatesFromProject) {
  auto t = SmallTable(3);
  ExecContext ctx;
  std::vector<ExprPtr> exprs = {
      MakeArithmetic(ArithOp::kDiv, MakeLiteral(Value::Int64(1)),
                     MakeColumnRef(0, DataType::kInt64))};
  Schema out({{"", "inv", DataType::kDouble}});
  ProjectOp op(std::make_unique<SeqScanOp>(t.get()), exprs, out);
  // Row 0 has a = 0: 1/0 must surface as an error, not a crash.
  auto rows = ExecuteToVector(&op, &ctx);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecErrorTest, TypeErrorPropagatesThroughJoin) {
  Schema s({{"t", "s", DataType::kString}});
  Table strings("t", s);
  MAGICDB_CHECK_OK(strings.Insert({Value::String("x")}));
  auto nums = SmallTable(2);
  ExecContext ctx;
  // Predicate adds a string to an int: evaluation error mid-join.
  auto bad = MakeComparison(
      CompareOp::kGt,
      MakeArithmetic(ArithOp::kAdd, MakeColumnRef(0, DataType::kString),
                     MakeColumnRef(1, DataType::kInt64)),
      MakeLiteral(Value::Int64(0)));
  NestedLoopsJoinOp join(std::make_unique<SeqScanOp>(&strings),
                         std::make_unique<SeqScanOp>(nums.get()), bad);
  // EvalPredicate treats errors as false at the predicate level, so the
  // join completes with zero matches rather than failing: predicates are
  // filters, not computations.
  auto rows = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(ExecErrorTest, FunctionErrorPropagates) {
  Schema args({{"", "a", DataType::kInt64}});
  Schema results({{"", "r", DataType::kInt64}});
  LambdaTableFunction fn(
      "failing", args, results,
      [](const Tuple& in, std::vector<Tuple>* out) -> Status {
        if (in[0].AsInt64() == 2) {
          return Status::Internal("backend unavailable");
        }
        out->push_back({Value::Int64(0)});
        return Status::OK();
      });
  auto t = SmallTable(5);
  ExecContext ctx;
  FunctionProbeJoinOp op(std::make_unique<SeqScanOp>(t.get()), &fn, {0},
                         nullptr, false);
  auto rows = ExecuteToVector(&op, &ctx);
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
}

TEST(ExecReopenTest, HashJoinReopenProducesSameResult) {
  auto r = SmallTable(6);
  auto s = SmallTable(6);
  ExecContext ctx;
  HashJoinOp join(std::make_unique<SeqScanOp>(r.get()),
                  std::make_unique<SeqScanOp>(s.get()), {0}, {0}, nullptr);
  auto first = ExecuteToVector(&join, &ctx);
  auto second = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(testutil::SameMultiset(*first, *second));
}

TEST(ExecReopenTest, AggregateReopenRecomputes) {
  auto t = SmallTable(4);
  ExecContext ctx;
  std::vector<AggSpec> aggs = {{AggFunc::kCountStar, nullptr, "c"}};
  Schema out({{"", "c", DataType::kInt64}});
  HashAggregateOp op(std::make_unique<SeqScanOp>(t.get()), {}, aggs, out);
  auto first = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(first.ok());
  // Mutating the table between opens is visible (no stale caching).
  MAGICDB_CHECK_OK(t->Insert({Value::Int64(99)}));
  auto second = ExecuteToVector(&op, &ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ((*first)[0][0], Value::Int64(4));
  EXPECT_EQ((*second)[0][0], Value::Int64(5));
}

TEST(ExecEmptyInputTest, EveryOperatorHandlesEmptyChild) {
  Table empty("t", OneCol());
  ExecContext ctx;
  {
    FilterOp op(std::make_unique<SeqScanOp>(&empty),
                MakeComparison(CompareOp::kEq,
                               MakeColumnRef(0, DataType::kInt64),
                               MakeLiteral(Value::Int64(1))));
    auto rows = ExecuteToVector(&op, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
  {
    DistinctOp op(std::make_unique<SeqScanOp>(&empty));
    auto rows = ExecuteToVector(&op, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
  {
    std::vector<SortOp::SortKey> keys = {
        {MakeColumnRef(0, DataType::kInt64), true}};
    SortOp op(std::make_unique<SeqScanOp>(&empty), keys);
    auto rows = ExecuteToVector(&op, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
  {
    MaterializeOp op(std::make_unique<SeqScanOp>(&empty));
    auto rows = ExecuteToVector(&op, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
  {
    auto s = SmallTable(3);
    SortMergeJoinOp op(std::make_unique<SeqScanOp>(&empty),
                       std::make_unique<SeqScanOp>(s.get()), {0}, {0},
                       nullptr);
    auto rows = ExecuteToVector(&op, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
  {
    auto r = SmallTable(3);
    HashJoinOp op(std::make_unique<SeqScanOp>(r.get()),
                  std::make_unique<SeqScanOp>(&empty), {0}, {0}, nullptr);
    auto rows = ExecuteToVector(&op, &ctx);
    ASSERT_TRUE(rows.ok());
    EXPECT_TRUE(rows->empty());
  }
}

TEST(ExecTreePrintTest, NestedTreeRendersAllOperators) {
  auto r = SmallTable(2);
  auto s = SmallTable(2);
  HashJoinOp join(
      std::make_unique<FilterOp>(
          std::make_unique<SeqScanOp>(r.get()),
          MakeComparison(CompareOp::kGe, MakeColumnRef(0, DataType::kInt64),
                         MakeLiteral(Value::Int64(0)))),
      std::make_unique<SeqScanOp>(s.get()), {0}, {0}, nullptr);
  const std::string tree = join.TreeString();
  EXPECT_NE(tree.find("HashJoin"), std::string::npos);
  EXPECT_NE(tree.find("Filter"), std::string::npos);
  EXPECT_NE(tree.find("SeqScan"), std::string::npos);
  // Indentation: children are nested two spaces deeper.
  EXPECT_NE(tree.find("\n  "), std::string::npos);
}

TEST(ExecShipTest, ReopenResetsByteAccounting) {
  auto t = SmallTable(600);
  ExecContext ctx;
  ShipOp op(std::make_unique<SeqScanOp>(t.get()), 1, 0);
  ASSERT_TRUE(ExecuteToVector(&op, &ctx).ok());
  const int64_t first_bytes = ctx.counters().bytes_shipped;
  ASSERT_TRUE(ExecuteToVector(&op, &ctx).ok());
  EXPECT_EQ(ctx.counters().bytes_shipped, 2 * first_bytes);
}

TEST(ExecFilterJoinTest, ReopenRebuildsFilterSet) {
  auto r = SmallTable(5);
  auto s = SmallTable(10);
  ExecContext ctx;
  const std::string id = "robust_fs";
  auto inner = std::make_unique<FilterProbeOp>(
      std::make_unique<SeqScanOp>(s.get()), id, std::vector<int>{0});
  FilterJoinOp join(std::make_unique<SeqScanOp>(r.get()), std::move(inner),
                    id, {0}, {0}, nullptr, FilterSetImpl::kExact);
  auto first = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->size(), 5u);
  auto second = ExecuteToVector(&join, &ctx);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(testutil::SameMultiset(*first, *second));
}

#ifdef MAGICDB_FAILPOINTS

// ----- Failpoint-driven error propagation -----
//
// Faults injected at operator internals (a storage page read, a hash-join
// build insert, the parallel aggregate merge) must surface through Query /
// ExecuteParallel verbatim — same code, same message — with no partial
// result rows attached.

void MakeFailpointWorkload(Database* db) {
  MAGICDB_CHECK_OK(
      db->Execute("CREATE TABLE R (a INT, b INT)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE S (a INT, c INT)"));
  std::vector<Tuple> r_rows, s_rows;
  for (int i = 0; i < 500; ++i) {
    r_rows.push_back({Value::Int64(i % 50), Value::Int64(i)});
    s_rows.push_back({Value::Int64(i % 50), Value::Int64(2 * i)});
  }
  MAGICDB_CHECK_OK(db->LoadRows("R", std::move(r_rows)));
  MAGICDB_CHECK_OK(db->LoadRows("S", std::move(s_rows)));
  OptimizerOptions* opts = db->mutable_optimizer_options();
  opts->enable_nested_loops = false;
  opts->enable_index_nested_loops = false;
  opts->enable_sort_merge = false;
}

TEST(ExecFailpointTest, ScanFaultSurfacesVerbatim) {
  Database db;
  MakeFailpointWorkload(&db);
  FailpointConfig config;
  config.inject = Status::Internal("injected: page torn");
  ScopedFailpoint armed(std::string("storage.page_read"), config);
  auto r = db.Query("SELECT a, b FROM R WHERE b < 100");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.status().message(), "injected: page torn");
}

TEST(ExecFailpointTest, HashJoinBuildFaultSurfacesVerbatim) {
  Database db;
  MakeFailpointWorkload(&db);
  FailpointConfig config;
  config.inject = Status::Internal("injected: build heap poisoned");
  ScopedFailpoint armed(std::string("exec.hash_join.build"), config);
  auto r = db.Query("SELECT R.b, S.c FROM R, S WHERE R.a = S.a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_EQ(r.status().message(), "injected: build heap poisoned");
}

TEST(ExecFailpointTest, AggregateBuildFaultSurfacesVerbatim) {
  Database db;
  MakeFailpointWorkload(&db);
  FailpointConfig config;
  // Fire a little way in so the aggregate has already absorbed rows: the
  // half-built group table must not leak partial rows into the result.
  config.fire_from_hit = 10;
  config.inject = Status::Unavailable("injected: agg state corrupt");
  ScopedFailpoint armed(std::string("exec.aggregate.build"), config);
  auto r = db.Query("SELECT a, COUNT(*) FROM R GROUP BY a");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(r.status().message(), "injected: agg state corrupt");
}

TEST(ExecFailpointTest, ParallelMergeFaultSurfacesVerbatimAtDop2) {
  Database db;
  MakeFailpointWorkload(&db);
  // Fault-free parallel run first: proves the plan actually exercises the
  // parallel path this test means to fault.
  auto clean = db.ExecuteParallel("SELECT a, COUNT(*) FROM R GROUP BY a", 2);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  FailpointConfig config;
  config.inject = Status::Internal("injected: merge partition lost");
  {
    ScopedFailpoint armed(std::string("parallel.aggregate.merge"), config);
    auto r = db.ExecuteParallel("SELECT a, COUNT(*) FROM R GROUP BY a", 2);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
    EXPECT_EQ(r.status().message(), "injected: merge partition lost");
  }

  // The merge fault tore down a gang mid-barrier; the database must still
  // answer the same query — sequentially and in parallel — afterwards.
  auto after = db.ExecuteParallel("SELECT a, COUNT(*) FROM R GROUP BY a", 2);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->rows.size(), clean->rows.size());
}

TEST(ExecFailpointTest, EveryKthTriggerFiresOnLaterQueryOnly) {
  Database db;
  MakeFailpointWorkload(&db);
  FailpointConfig config;
  // The scan site is hit once per page; arm it to fire far enough out that
  // the first query completes untouched and a later one trips.
  config.fire_from_hit = 1000000;
  config.inject = Status::Internal("injected: late fault");
  ScopedFailpoint armed(std::string("storage.page_read"), config);
  auto first = db.Query("SELECT a, b FROM R WHERE b < 100");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->rows.empty());
}

#endif  // MAGICDB_FAILPOINTS

}  // namespace
}  // namespace magicdb
