#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/backoff.h"
#include "src/common/cost_counters.h"
#include "src/common/hash.h"
#include "src/common/random.h"
#include "src/common/status.h"
#include "src/common/statusor.h"

namespace magicdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table Emp");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table Emp");
  EXPECT_EQ(s.ToString(), "NotFound: table Emp");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::BindError("x").code(), StatusCode::kBindError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, ResourceExhaustedPredicateAndToString) {
  Status s = Status::ResourceExhausted("query memory limit exceeded");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsResourceExhausted());
  EXPECT_FALSE(Status::Internal("x").IsResourceExhausted());
  EXPECT_FALSE(Status().IsResourceExhausted());
  EXPECT_EQ(s.ToString(), "ResourceExhausted: query memory limit exceeded");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  MAGICDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

StatusOr<int> DoubleOf(int x) {
  MAGICDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(StatusOrTest, ValuePath) {
  StatusOr<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
  EXPECT_EQ(*r, 21);
}

TEST(StatusOrTest, ErrorPath) {
  StatusOr<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  StatusOr<int> good = DoubleOf(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 10);
  StatusOr<int> bad = DoubleOf(-5);
  EXPECT_FALSE(bad.ok());
}

TEST(StatusOrTest, MoveOnlyFriendly) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(RandomTest, Deterministic) {
  Random a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformIntWithinRange) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformIntCoversRange) {
  Random r(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(3);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(HashTest, StableAndSeedSensitive) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString("abc", 1), HashString("abc", 2));
}

TEST(HashTest, CombineOrderSensitive) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
}

TEST(CostCountersTest, TotalCostWeightsComponents) {
  CostCounters c;
  c.pages_read = 10;
  c.pages_written = 5;
  EXPECT_DOUBLE_EQ(c.TotalCost(), 15.0);
  c.tuples_processed = 100;
  EXPECT_DOUBLE_EQ(c.TotalCost(), 15.0 + 100 * CostConstants::kCpuTupleCost);
}

TEST(CostCountersTest, AccumulateAndDelta) {
  CostCounters a, b;
  a.pages_read = 3;
  a.messages_sent = 2;
  b.pages_read = 1;
  b.tuples_processed = 10;
  a += b;
  EXPECT_EQ(a.pages_read, 4);
  EXPECT_EQ(a.tuples_processed, 10);
  EXPECT_EQ(a.messages_sent, 2);

  CostCounters before = a;
  a.pages_read += 7;
  a.bytes_shipped += 100;
  CostCounters d = a.Delta(before);
  EXPECT_EQ(d.pages_read, 7);
  EXPECT_EQ(d.bytes_shipped, 100);
  EXPECT_EQ(d.tuples_processed, 0);
}

TEST(CostCountersTest, ResetClearsAll) {
  CostCounters c;
  c.pages_read = 5;
  c.function_invocations = 3;
  c.Reset();
  EXPECT_EQ(c.pages_read, 0);
  EXPECT_EQ(c.function_invocations, 0);
  EXPECT_DOUBLE_EQ(c.TotalCost(), 0.0);
}

TEST(CostCountersTest, ToStringMentionsTotals) {
  CostCounters c;
  c.pages_read = 2;
  std::string s = c.ToString();
  EXPECT_NE(s.find("pages_read=2"), std::string::npos);
  EXPECT_NE(s.find("total_cost="), std::string::npos);
}

TEST(BackoffTest, DoublesUpToCapWithBoundedJitter) {
  Random rng(7);
  Backoff backoff(100, 800, &rng);
  int64_t expected_base = 100;
  for (int i = 0; i < 8; ++i) {
    const int64_t delay = backoff.NextDelayUs();
    // Jitter adds at most half the current base on top of it.
    EXPECT_GE(delay, expected_base);
    EXPECT_LE(delay, expected_base + expected_base / 2 + 1);
    expected_base = std::min<int64_t>(expected_base * 2, 800);
  }
  EXPECT_EQ(backoff.current_us(), 800);
}

TEST(BackoffTest, DeterministicForEqualSeeds) {
  Random rng_a(42), rng_b(42);
  Backoff a(50, 5000, &rng_a);
  Backoff b(50, 5000, &rng_b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.NextDelayUs(), b.NextDelayUs());
  }
}

TEST(BackoffTest, NullRngMeansNoJitter) {
  Backoff backoff(100, 400, nullptr);
  EXPECT_EQ(backoff.NextDelayUs(), 100);
  EXPECT_EQ(backoff.NextDelayUs(), 200);
  EXPECT_EQ(backoff.NextDelayUs(), 400);
  EXPECT_EQ(backoff.NextDelayUs(), 400);  // capped
}

TEST(RetryAfterHintTest, FormatsAndParses) {
  EXPECT_EQ(ParseRetryAfterUs("overloaded; " + FormatRetryAfterHint(250)),
            250);
  EXPECT_EQ(ParseRetryAfterUs(FormatRetryAfterHint(0)), 0);
  EXPECT_EQ(ParseRetryAfterUs("no hint here"), -1);
  EXPECT_EQ(ParseRetryAfterUs("retry_after_us="), -1);
  EXPECT_EQ(ParseRetryAfterUs("retry_after_us=x9"), -1);
}

}  // namespace
}  // namespace magicdb
