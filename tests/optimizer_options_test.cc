// Option-toggle tests: every join-method switch must be honored by the
// plans the optimizer emits, and combinations must stay executable.

#include <gtest/gtest.h>

#include "src/common/logging.h"
#include "src/common/random.h"
#include "src/db/database.h"
#include "tests/test_util.h"

namespace magicdb {
namespace {

using testutil::SameMultiset;

std::unique_ptr<Database> TwoTables() {
  auto db = std::make_unique<Database>();
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE R (k INT, x INT)"));
  MAGICDB_CHECK_OK(db->Execute("CREATE TABLE S (k INT, y INT)"));
  Random rng(91);
  std::vector<Tuple> r, s;
  for (int i = 0; i < 300; ++i) {
    r.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(30))),
                 Value::Int64(i)});
    s.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(30))),
                 Value::Int64(i)});
  }
  MAGICDB_CHECK_OK(db->LoadRows("R", std::move(r)));
  MAGICDB_CHECK_OK(db->LoadRows("S", std::move(s)));
  (*db->catalog()->Lookup("S"))->table->CreateHashIndex({0});
  MAGICDB_CHECK_OK(db->catalog()->AnalyzeAll());
  return db;
}

constexpr const char* kJoinQuery =
    "SELECT R.x, S.y FROM R, S WHERE R.k = S.k";

struct MethodToggle {
  const char* name;       // display
  const char* marker;     // Describe() substring that must disappear
  void (*disable)(OptimizerOptions*);
};

class MethodToggleTest : public ::testing::TestWithParam<MethodToggle> {};

TEST_P(MethodToggleTest, DisabledMethodNeverAppears) {
  const MethodToggle& toggle = GetParam();
  auto db = TwoTables();
  OptimizerOptions opts;
  opts.magic_mode = OptimizerOptions::MagicMode::kNever;
  opts.filter_join_on_stored = false;
  toggle.disable(&opts);
  *db->mutable_optimizer_options() = opts;
  auto result = db->Query(kJoinQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->explain.find(toggle.marker), std::string::npos)
      << toggle.name << "\n"
      << result->explain;

  // Results must match the unrestricted plan.
  *db->mutable_optimizer_options() = OptimizerOptions();
  auto reference = db->Query(kJoinQuery);
  ASSERT_TRUE(reference.ok());
  EXPECT_TRUE(SameMultiset(result->rows, reference->rows));
}

INSTANTIATE_TEST_SUITE_P(
    Methods, MethodToggleTest,
    ::testing::Values(
        MethodToggle{"hash", "HashJoin",
                     [](OptimizerOptions* o) { o->enable_hash_join = false; }},
        MethodToggle{"sort-merge", "SortMergeJoin",
                     [](OptimizerOptions* o) { o->enable_sort_merge = false; }},
        MethodToggle{"index-nl", "IndexNestedLoopsJoin",
                     [](OptimizerOptions* o) {
                       o->enable_index_nested_loops = false;
                     }},
        MethodToggle{"nested-loops", "NestedLoopsJoin(",
                     [](OptimizerOptions* o) {
                       o->enable_nested_loops = false;
                     }}));

TEST(OptimizerOptionsTest, MagicNeverSuppressesFilterJoins) {
  auto db = TwoTables();
  db->mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto result = db->Query(kJoinQuery);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->explain.find("FilterJoin"), std::string::npos);
  EXPECT_TRUE(result->filter_joins.empty());
}

TEST(OptimizerOptionsTest, FilterJoinOnStoredRespectsFlag) {
  auto db = TwoTables();
  OptimizerOptions opts;
  opts.enable_hash_join = false;
  opts.enable_sort_merge = false;
  opts.enable_index_nested_loops = false;
  opts.enable_nested_loops = false;
  opts.filter_join_on_stored = false;
  *db->mutable_optimizer_options() = opts;
  // With everything disabled, planning must fail rather than sneak a
  // method in.
  EXPECT_FALSE(db->Query(kJoinQuery).ok());

  opts.filter_join_on_stored = true;
  *db->mutable_optimizer_options() = opts;
  auto result = db->Query(kJoinQuery);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->explain.find("FilterJoin"), std::string::npos);
}

TEST(OptimizerOptionsTest, BloomBitsPerKeyAffectsExecution) {
  auto db = TwoTables();
  OptimizerOptions opts;
  opts.consider_exact_filter_sets = false;  // force Bloom
  opts.filter_join_on_stored = true;
  opts.enable_hash_join = false;
  opts.enable_sort_merge = false;
  opts.enable_index_nested_loops = false;
  opts.enable_nested_loops = false;
  opts.bloom_bits_per_key = 2.0;  // sloppy filter
  *db->mutable_optimizer_options() = opts;
  auto sloppy = db->Query(kJoinQuery);
  ASSERT_TRUE(sloppy.ok()) << sloppy.status().ToString();

  opts.bloom_bits_per_key = 16.0;  // tight filter
  *db->mutable_optimizer_options() = opts;
  auto tight = db->Query(kJoinQuery);
  ASSERT_TRUE(tight.ok());
  // Same results regardless of filter quality.
  EXPECT_TRUE(SameMultiset(sloppy->rows, tight->rows));
}

TEST(JoinOrderBackendTest, GreedyMatchesDpResultsAndExplainNamesBackend) {
  auto db = TwoTables();
  auto dp = db->Query(kJoinQuery);
  ASSERT_TRUE(dp.ok()) << dp.status().ToString();
  EXPECT_NE(dp->explain.find("backend=dp"), std::string::npos) << dp->explain;

  db->mutable_optimizer_options()->join_order_backend = "greedy";
  auto greedy = db->Query(kJoinQuery);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  EXPECT_NE(greedy->explain.find("backend=greedy"), std::string::npos)
      << greedy->explain;
  // Both backends search the same plan space under the same cost model;
  // whatever order each picks, the answer set is identical.
  EXPECT_TRUE(SameMultiset(dp->rows, greedy->rows));
}

TEST(JoinOrderBackendTest, UnknownBackendFailsWithInvalidArgument) {
  auto db = TwoTables();
  db->mutable_optimizer_options()->join_order_backend = "simulated-annealing";
  auto r = db->Query(kJoinQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("join_order_backend"),
            std::string::npos);
}

TEST(JoinOrderBackendTest, FingerprintSeparatesBackends) {
  OptimizerOptions a, b;
  b.join_order_backend = "greedy";
  EXPECT_NE(OptimizerOptionsFingerprint(a), OptimizerOptionsFingerprint(b));
}

TEST(OptimizerOptionsTest, MemoryBudgetChangesCostsNotResults) {
  auto db = TwoTables();
  db->mutable_optimizer_options()->memory_budget_bytes = 1 << 26;
  auto roomy = db->Query(kJoinQuery);
  ASSERT_TRUE(roomy.ok());
  db->mutable_optimizer_options()->memory_budget_bytes = 512;
  auto tight = db->Query(kJoinQuery);
  ASSERT_TRUE(tight.ok());
  EXPECT_TRUE(SameMultiset(roomy->rows, tight->rows));
  // A starved executor does at least as much I/O.
  EXPECT_GE(tight->counters.TotalCost(), roomy->counters.TotalCost() * 0.99);
}

}  // namespace
}  // namespace magicdb
