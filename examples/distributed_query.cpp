// Distributed scenario (§5.1): joining a local table with a *remote view*.
//
// Orders lives at site 1; the analyst's query joins local Customers with a
// per-customer revenue view over the remote table. The optimizer weighs
// fetch-inner (ship everything), fetch-matches (probe across the network),
// and the distributed Filter Join (semi-join: ship the filter set, compute
// the view restricted, ship only the needed rows back).

#include <iostream>

#include "src/common/random.h"
#include "src/db/database.h"

using magicdb::Database;
using magicdb::DataType;
using magicdb::OptimizerOptions;
using magicdb::Random;
using magicdb::Schema;
using magicdb::Tuple;
using magicdb::Value;

namespace {

constexpr const char* kQuery =
    "SELECT C.cid, C.region, V.revenue "
    "FROM Customers C, CustRevenue V "
    "WHERE C.cid = V.cid AND C.region = 7";

void Check(const magicdb::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

double RunAndReport(Database* db, const char* label) {
  auto result = db->Query(kQuery);
  Check(result.status());
  std::cout << "--- " << label << " ---\n"
            << result->explain
            << "measured: cost=" << result->counters.TotalCost()
            << ", messages=" << result->counters.messages_sent
            << ", bytes shipped=" << result->counters.bytes_shipped << "\n\n";
  return result->counters.TotalCost();
}

}  // namespace

int main() {
  Database db;

  // Customers is local; Orders is homed at remote site 1.
  Check(db.Execute("CREATE TABLE Customers (cid INT, region INT)"));
  Schema orders({{"", "cid", DataType::kInt64},
                 {"", "amount", DataType::kDouble},
                 {"", "item", DataType::kInt64}});
  Check(db.catalog()->CreateRemoteTable("Orders", orders, /*site=*/1)
            .status());

  Random rng(7);
  std::vector<Tuple> customers, order_rows;
  for (int c = 0; c < 2000; ++c) {
    customers.push_back(
        {Value::Int64(c), Value::Int64(static_cast<int64_t>(rng.Uniform(50)))});
    const int norders = 1 + static_cast<int>(rng.Uniform(5));
    for (int o = 0; o < norders; ++o) {
      order_rows.push_back({Value::Int64(c),
                            Value::Double(rng.NextDouble() * 500.0),
                            Value::Int64(static_cast<int64_t>(rng.Uniform(100)))});
    }
  }
  Check(db.LoadRows("Customers", std::move(customers)));
  Check(db.LoadRows("Orders", std::move(order_rows)));
  (*db.catalog()->Lookup("Orders"))->table->CreateHashIndex({0});
  Check(db.catalog()->AnalyzeAll());

  // A view over the REMOTE table — the heterogeneous-query case the paper
  // calls out as especially important.
  Check(db.Execute(
      "CREATE VIEW CustRevenue AS "
      "SELECT cid, SUM(amount) AS revenue FROM Orders GROUP BY cid"));

  // Baseline: classic optimizer (no Filter Join) must fetch the whole
  // remote relation to compute the view.
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  const double classic = RunAndReport(&db, "classic (fetch inner)");

  // Cost-based Filter Join: ship the ~40 qualifying customer ids to site 1,
  // aggregate only their orders, ship the small result back.
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kCostBased;
  const double magic = RunAndReport(&db, "cost-based (semi-join filter)");

  std::cout << "communication-aware speedup: " << classic / magic << "x\n";
  return 0;
}
