// Interactive EXPLAIN shell over a demo warehouse. Type SQL; see the
// chosen physical plan (with Filter Join decisions and Table-1 cost
// breakdowns), then the results. DDL (CREATE TABLE / CREATE VIEW) works
// too. Commands:
//
//   .magic cost|never|always   switch the optimizer's magic mode
//   .explain <select>          plan only, do not execute
//   .quit                      exit
//
// Run:  ./build/examples/explain_tool  (pipe a script in, or type)

#include <iostream>
#include <string>

#include "src/common/random.h"
#include "src/db/database.h"

using magicdb::Database;
using magicdb::OptimizerOptions;
using magicdb::Random;
using magicdb::Tuple;
using magicdb::Value;

namespace {

void Check(const magicdb::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

void SetupDemoWarehouse(Database* db) {
  Check(db->Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  Check(db->Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));
  Random rng(3);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < 200; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.1) ? 300000.0 : 90000.0)});
    for (int e = 0; e < 8; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(45000.0 + rng.NextDouble() * 90000.0),
                      Value::Int64(22 + static_cast<int64_t>(rng.Uniform(40)))});
    }
  }
  Check(db->LoadRows("Dept", std::move(depts)));
  Check(db->LoadRows("Emp", std::move(emps)));
  (*db->catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  (*db->catalog()->Lookup("Dept"))->table->CreateHashIndex({0});
  Check(db->catalog()->AnalyzeAll());
  Check(db->Execute(
      "CREATE VIEW DepAvgSal AS "
      "SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY did"));
}

}  // namespace

int main() {
  Database db;
  SetupDemoWarehouse(&db);
  std::cout
      << "magicdb explain shell — demo warehouse loaded:\n"
      << "  Emp(did, sal, age)  Dept(did, budget)  view DepAvgSal(did, "
         "avgsal)\n"
      << "try:\n"
      << "  SELECT E.did, E.sal, V.avgsal FROM Emp E, Dept D, DepAvgSal V\n"
      << "  WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal\n"
      << "  AND E.age < 30 AND D.budget > 100000\n\n";

  std::string line, statement;
  while (true) {
    std::cout << (statement.empty() ? "magicdb> " : "      -> ")
              << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (line == ".quit" || line == ".exit") break;
    if (line.rfind(".magic", 0) == 0) {
      OptimizerOptions::MagicMode mode = OptimizerOptions::MagicMode::kCostBased;
      if (line.find("never") != std::string::npos) {
        mode = OptimizerOptions::MagicMode::kNever;
      } else if (line.find("always") != std::string::npos) {
        mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
      }
      db.mutable_optimizer_options()->magic_mode = mode;
      std::cout << "ok\n";
      continue;
    }
    statement += line + "\n";
    // Statements end with ';' or a blank line.
    if (line.empty() || line.find(';') != std::string::npos) {
      std::string sql = statement;
      statement.clear();
      if (sql.find_first_not_of(" \t\n;") == std::string::npos) continue;

      bool explain_only = false;
      const size_t dot = sql.find(".explain");
      if (dot != std::string::npos) {
        explain_only = true;
        sql = sql.substr(dot + 8);
      }
      if (explain_only) {
        auto text = db.Explain(sql);
        std::cout << (text.ok() ? *text : text.status().ToString()) << "\n";
        continue;
      }
      // DDL?
      std::string upper = sql.substr(sql.find_first_not_of(" \t\n"),
                                     std::string::npos);
      if (upper.rfind("CREATE", 0) == 0 || upper.rfind("create", 0) == 0) {
        magicdb::Status st = db.Execute(sql);
        std::cout << (st.ok() ? "ok" : st.ToString()) << "\n";
        continue;
      }
      auto result = db.Query(sql);
      if (!result.ok()) {
        std::cout << result.status().ToString() << "\n";
        continue;
      }
      std::cout << result->explain << "\n"
                << result->ToString(20)
                << "measured cost: " << result->counters.TotalCost()
                << " (estimated " << result->est_cost << ")\n";
      for (const auto& fj : result->filter_joins) {
        std::cout << "filter join: " << fj.ToString() << "\n";
      }
      std::cout << "\n";
    }
  }
  return 0;
}
