// User-defined relations (§5.2): joining a table with a function-backed
// relation. A geocoding-style function is expensive per call; the optimizer
// chooses between invoking it per probe row, memoizing, or a Filter Join
// that deduplicates arguments first and invokes consecutively.

#include <iostream>

#include "src/common/random.h"
#include "src/db/database.h"

using magicdb::Database;
using magicdb::DataType;
using magicdb::LambdaTableFunction;
using magicdb::OptimizerOptions;
using magicdb::Random;
using magicdb::Schema;
using magicdb::Status;
using magicdb::Tuple;
using magicdb::Value;

namespace {

constexpr const char* kQuery =
    "SELECT S.city, S.total, G.zone "
    "FROM Shipments S, geocode G "
    "WHERE S.city = G.city";

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;
  Check(db.Execute("CREATE TABLE Shipments (city INT, total DOUBLE)"));

  // 5000 shipments across only 40 distinct cities: heavy argument
  // duplication, the regime where consecutive invocation shines.
  Random rng(11);
  std::vector<Tuple> rows;
  for (int i = 0; i < 5000; ++i) {
    rows.push_back({Value::Int64(static_cast<int64_t>(rng.Uniform(40))),
                    Value::Double(rng.NextDouble() * 1000.0)});
  }
  Check(db.LoadRows("Shipments", std::move(rows)));

  // The user-defined relation: geocode(city) -> zone. Each invocation is
  // charged kFunctionInvokeCost (think: an RPC to a geo service).
  Schema args({{"", "city", DataType::kInt64}});
  Schema results({{"", "zone", DataType::kInt64}});
  Check(db.catalog()->RegisterFunction(std::make_unique<LambdaTableFunction>(
      "geocode", args, results,
      [](const Tuple& in, std::vector<Tuple>* out) {
        out->push_back({Value::Int64(in[0].AsInt64() % 7)});
        return Status::OK();
      })));

  struct Mode {
    const char* label;
    void (*configure)(OptimizerOptions*);
  };
  const Mode modes[] = {
      {"naive: invoke per shipment row",
       [](OptimizerOptions* o) {
         o->enable_function_memo = false;
         o->magic_mode = OptimizerOptions::MagicMode::kNever;
       }},
      {"memoized invocation (function caching)",
       [](OptimizerOptions* o) {
         o->magic_mode = OptimizerOptions::MagicMode::kNever;
       }},
      {"filter join: distinct cities, consecutive calls",
       [](OptimizerOptions* o) {
         o->enable_function_memo = false;
         o->magic_mode = OptimizerOptions::MagicMode::kAlwaysOnVirtual;
       }},
      {"cost-based optimizer choice", [](OptimizerOptions*) {}},
  };
  for (const Mode& mode : modes) {
    OptimizerOptions opts;
    mode.configure(&opts);
    *db.mutable_optimizer_options() = opts;
    auto result = db.Query(kQuery);
    Check(result.status());
    std::cout << "--- " << mode.label << " ---\n"
              << "  function invocations: "
              << result->counters.function_invocations
              << ", measured cost: " << result->counters.TotalCost()
              << ", rows: " << result->rows.size() << "\n";
  }
  std::cout << "\n(5000 probe rows, 40 distinct cities: the filter join and "
               "the cache both invoke 40 times; per-row invocation pays "
               "5000)\n";
  return 0;
}
