// Quickstart: the paper's motivating example (Figure 1) end to end.
//
// Builds the Emp/Dept schema, defines the DepAvgSal view, and runs the
// query "every young employee in a big department whose salary exceeds the
// department average" — first with the classic System R optimizer, then
// with the Filter Join (magic sets) integrated cost-based, comparing plans
// and measured execution costs.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <iostream>

#include "src/common/random.h"
#include "src/db/database.h"

using magicdb::Database;
using magicdb::OptimizerOptions;
using magicdb::Random;
using magicdb::Tuple;
using magicdb::Value;

namespace {

constexpr const char* kQuery =
    "SELECT E.did, E.sal, V.avgsal "
    "FROM Emp E, Dept D, DepAvgSal V "
    "WHERE E.did = D.did AND E.did = V.did AND E.sal > V.avgsal "
    "AND E.age < 30 AND D.budget > 100000";

void Check(const magicdb::Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    std::exit(1);
  }
}

}  // namespace

int main() {
  Database db;

  // --- Schema (Figure 1) ---
  Check(db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)"));
  Check(db.Execute("CREATE TABLE Dept (did INT, budget DOUBLE)"));

  // 1500 departments, 5 employees each; 2% of departments are big, 2% of
  // employees are young — the selective regime where magic sets pay off.
  Random rng(2026);
  std::vector<Tuple> emps, depts;
  for (int d = 0; d < 1500; ++d) {
    depts.push_back({Value::Int64(d),
                     Value::Double(rng.Bernoulli(0.02) ? 250000.0 : 80000.0)});
    for (int e = 0; e < 5; ++e) {
      emps.push_back({Value::Int64(d),
                      Value::Double(40000.0 + rng.NextDouble() * 80000.0),
                      Value::Int64(rng.Bernoulli(0.02) ? 26 : 41)});
    }
  }
  Check(db.LoadRows("Dept", std::move(depts)));
  Check(db.LoadRows("Emp", std::move(emps)));

  // An index on Emp.did lets the magic filter set drive the view through
  // index lookups instead of full scans.
  (*db.catalog()->Lookup("Emp"))->table->CreateHashIndex({0});
  (*db.catalog()->Lookup("Dept"))->table->CreateHashIndex({0});
  Check(db.catalog()->AnalyzeAll());

  // --- The view (a "virtual relation") ---
  Check(db.Execute(
      "CREATE VIEW DepAvgSal AS "
      "SELECT did, AVG(sal) AS avgsal FROM Emp GROUP BY did"));

  // --- Classic System R: no Filter Join ---
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kNever;
  auto classic = db.Query(kQuery);
  Check(classic.status());
  std::cout << "=== classic plan (magic sets disabled) ===\n"
            << classic->explain << "measured cost: "
            << classic->counters.TotalCost() << " page-I/O units\n\n";

  // --- The paper's contribution: Filter Join costed inside the DP ---
  db.mutable_optimizer_options()->magic_mode =
      OptimizerOptions::MagicMode::kCostBased;
  auto magic = db.Query(kQuery);
  Check(magic.status());
  std::cout << "=== cost-based plan (Filter Join considered) ===\n"
            << magic->explain << "measured cost: "
            << magic->counters.TotalCost() << " page-I/O units\n\n";

  if (!magic->filter_joins.empty()) {
    std::cout << "Filter Join cost breakdown (Table 1 of the paper):\n  "
              << magic->filter_joins[0].ToString() << "\n\n";
  }

  std::cout << "results (" << magic->rows.size() << " qualifying employees, "
            << "identical under both plans):\n"
            << magic->ToString(10) << "\n";
  std::cout << "speedup from cost-based magic: "
            << classic->counters.TotalCost() / magic->counters.TotalCost()
            << "x\n\n"
            << "(this view costs one scan to compute in full, so the win is "
               "modest; run\n bench_fig12_magic_crossover for the "
               "expensive-view regime where the same\n mechanism wins ~5x, "
               "and bench_sec51_distributed for remote views)\n";
  return 0;
}
