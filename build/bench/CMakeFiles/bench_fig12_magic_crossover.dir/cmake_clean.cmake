file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_magic_crossover.dir/bench_fig12_magic_crossover.cc.o"
  "CMakeFiles/bench_fig12_magic_crossover.dir/bench_fig12_magic_crossover.cc.o.d"
  "bench_fig12_magic_crossover"
  "bench_fig12_magic_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_magic_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
