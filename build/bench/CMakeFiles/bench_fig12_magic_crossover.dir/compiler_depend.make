# Empty compiler generated dependencies file for bench_fig12_magic_crossover.
# This may be replaced when dependencies are built.
