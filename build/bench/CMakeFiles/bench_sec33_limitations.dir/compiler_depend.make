# Empty compiler generated dependencies file for bench_sec33_limitations.
# This may be replaced when dependencies are built.
