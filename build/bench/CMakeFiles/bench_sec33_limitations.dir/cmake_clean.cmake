file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_limitations.dir/bench_sec33_limitations.cc.o"
  "CMakeFiles/bench_sec33_limitations.dir/bench_sec33_limitations.cc.o.d"
  "bench_sec33_limitations"
  "bench_sec33_limitations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_limitations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
