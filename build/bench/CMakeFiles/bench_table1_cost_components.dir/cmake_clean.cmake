file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_cost_components.dir/bench_table1_cost_components.cc.o"
  "CMakeFiles/bench_table1_cost_components.dir/bench_table1_cost_components.cc.o.d"
  "bench_table1_cost_components"
  "bench_table1_cost_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_cost_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
