# Empty dependencies file for magicdb_bench_common.
# This may be replaced when dependencies are built.
