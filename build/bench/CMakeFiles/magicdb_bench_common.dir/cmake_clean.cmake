file(REMOVE_RECURSE
  "CMakeFiles/magicdb_bench_common.dir/workloads/workloads.cc.o"
  "CMakeFiles/magicdb_bench_common.dir/workloads/workloads.cc.o.d"
  "libmagicdb_bench_common.a"
  "libmagicdb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magicdb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
