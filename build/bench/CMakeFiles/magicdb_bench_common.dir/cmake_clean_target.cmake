file(REMOVE_RECURSE
  "libmagicdb_bench_common.a"
)
