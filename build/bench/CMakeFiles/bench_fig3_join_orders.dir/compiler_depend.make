# Empty compiler generated dependencies file for bench_fig3_join_orders.
# This may be replaced when dependencies are built.
