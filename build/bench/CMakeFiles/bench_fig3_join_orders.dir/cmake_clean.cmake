file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_join_orders.dir/bench_fig3_join_orders.cc.o"
  "CMakeFiles/bench_fig3_join_orders.dir/bench_fig3_join_orders.cc.o.d"
  "bench_fig3_join_orders"
  "bench_fig3_join_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_join_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
