file(REMOVE_RECURSE
  "CMakeFiles/bench_sec51_distributed.dir/bench_sec51_distributed.cc.o"
  "CMakeFiles/bench_sec51_distributed.dir/bench_sec51_distributed.cc.o.d"
  "bench_sec51_distributed"
  "bench_sec51_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec51_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
