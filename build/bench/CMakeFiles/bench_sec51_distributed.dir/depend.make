# Empty dependencies file for bench_sec51_distributed.
# This may be replaced when dependencies are built.
