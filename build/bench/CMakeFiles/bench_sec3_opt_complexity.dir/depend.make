# Empty dependencies file for bench_sec3_opt_complexity.
# This may be replaced when dependencies are built.
