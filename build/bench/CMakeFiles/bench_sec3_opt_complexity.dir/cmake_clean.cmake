file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_opt_complexity.dir/bench_sec3_opt_complexity.cc.o"
  "CMakeFiles/bench_sec3_opt_complexity.dir/bench_sec3_opt_complexity.cc.o.d"
  "bench_sec3_opt_complexity"
  "bench_sec3_opt_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_opt_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
