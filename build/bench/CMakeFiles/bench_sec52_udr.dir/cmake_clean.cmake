file(REMOVE_RECURSE
  "CMakeFiles/bench_sec52_udr.dir/bench_sec52_udr.cc.o"
  "CMakeFiles/bench_sec52_udr.dir/bench_sec52_udr.cc.o.d"
  "bench_sec52_udr"
  "bench_sec52_udr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec52_udr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
