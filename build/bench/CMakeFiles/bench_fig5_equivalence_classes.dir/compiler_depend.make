# Empty compiler generated dependencies file for bench_fig5_equivalence_classes.
# This may be replaced when dependencies are built.
