file(REMOVE_RECURSE
  "CMakeFiles/bench_sec21_sips_ablation.dir/bench_sec21_sips_ablation.cc.o"
  "CMakeFiles/bench_sec21_sips_ablation.dir/bench_sec21_sips_ablation.cc.o.d"
  "bench_sec21_sips_ablation"
  "bench_sec21_sips_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec21_sips_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
