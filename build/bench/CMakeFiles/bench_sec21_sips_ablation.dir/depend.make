# Empty dependencies file for bench_sec21_sips_ablation.
# This may be replaced when dependencies are built.
