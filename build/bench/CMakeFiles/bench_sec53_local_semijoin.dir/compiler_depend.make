# Empty compiler generated dependencies file for bench_sec53_local_semijoin.
# This may be replaced when dependencies are built.
