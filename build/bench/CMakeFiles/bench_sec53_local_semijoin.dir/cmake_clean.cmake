file(REMOVE_RECURSE
  "CMakeFiles/bench_sec53_local_semijoin.dir/bench_sec53_local_semijoin.cc.o"
  "CMakeFiles/bench_sec53_local_semijoin.dir/bench_sec53_local_semijoin.cc.o.d"
  "bench_sec53_local_semijoin"
  "bench_sec53_local_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec53_local_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
