
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/binder_test.cc" "tests/CMakeFiles/magicdb_tests.dir/binder_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/binder_test.cc.o.d"
  "/root/repo/tests/bloom_test.cc" "tests/CMakeFiles/magicdb_tests.dir/bloom_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/bloom_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/magicdb_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/magicdb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/magicdb_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/database_test.cc" "tests/CMakeFiles/magicdb_tests.dir/database_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/database_test.cc.o.d"
  "/root/repo/tests/estimate_quality_test.cc" "tests/CMakeFiles/magicdb_tests.dir/estimate_quality_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/estimate_quality_test.cc.o.d"
  "/root/repo/tests/exec_basic_test.cc" "tests/CMakeFiles/magicdb_tests.dir/exec_basic_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/exec_basic_test.cc.o.d"
  "/root/repo/tests/exec_filter_join_test.cc" "tests/CMakeFiles/magicdb_tests.dir/exec_filter_join_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/exec_filter_join_test.cc.o.d"
  "/root/repo/tests/exec_join_test.cc" "tests/CMakeFiles/magicdb_tests.dir/exec_join_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/exec_join_test.cc.o.d"
  "/root/repo/tests/exec_robustness_test.cc" "tests/CMakeFiles/magicdb_tests.dir/exec_robustness_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/exec_robustness_test.cc.o.d"
  "/root/repo/tests/expr_test.cc" "tests/CMakeFiles/magicdb_tests.dir/expr_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/expr_test.cc.o.d"
  "/root/repo/tests/fuzz_query_test.cc" "tests/CMakeFiles/magicdb_tests.dir/fuzz_query_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/fuzz_query_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/magicdb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/multikey_test.cc" "tests/CMakeFiles/magicdb_tests.dir/multikey_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/multikey_test.cc.o.d"
  "/root/repo/tests/optimizer_options_test.cc" "tests/CMakeFiles/magicdb_tests.dir/optimizer_options_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/optimizer_options_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/magicdb_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/ordered_access_test.cc" "tests/CMakeFiles/magicdb_tests.dir/ordered_access_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/ordered_access_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/magicdb_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rewrite_test.cc" "tests/CMakeFiles/magicdb_tests.dir/rewrite_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/rewrite_test.cc.o.d"
  "/root/repo/tests/sql_golden_test.cc" "tests/CMakeFiles/magicdb_tests.dir/sql_golden_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/sql_golden_test.cc.o.d"
  "/root/repo/tests/sql_parser_test.cc" "tests/CMakeFiles/magicdb_tests.dir/sql_parser_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/sql_parser_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/magicdb_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/magicdb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/transitivity_test.cc" "tests/CMakeFiles/magicdb_tests.dir/transitivity_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/transitivity_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/magicdb_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/magicdb_tests.dir/types_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/magicdb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
