# Empty dependencies file for magicdb_tests.
# This may be replaced when dependencies are built.
