# Empty dependencies file for magicdb.
# This may be replaced when dependencies are built.
