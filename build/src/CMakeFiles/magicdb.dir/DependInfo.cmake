
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/bloom_filter.cc" "src/CMakeFiles/magicdb.dir/bloom/bloom_filter.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/bloom/bloom_filter.cc.o.d"
  "/root/repo/src/catalog/catalog.cc" "src/CMakeFiles/magicdb.dir/catalog/catalog.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/catalog/catalog.cc.o.d"
  "/root/repo/src/common/cost_counters.cc" "src/CMakeFiles/magicdb.dir/common/cost_counters.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/common/cost_counters.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/magicdb.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/magicdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/common/status.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/magicdb.dir/db/database.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/db/database.cc.o.d"
  "/root/repo/src/exec/aggregate_op.cc" "src/CMakeFiles/magicdb.dir/exec/aggregate_op.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/aggregate_op.cc.o.d"
  "/root/repo/src/exec/basic_ops.cc" "src/CMakeFiles/magicdb.dir/exec/basic_ops.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/basic_ops.cc.o.d"
  "/root/repo/src/exec/exchange_op.cc" "src/CMakeFiles/magicdb.dir/exec/exchange_op.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/exchange_op.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/magicdb.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/filter_join_op.cc" "src/CMakeFiles/magicdb.dir/exec/filter_join_op.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/filter_join_op.cc.o.d"
  "/root/repo/src/exec/function_ops.cc" "src/CMakeFiles/magicdb.dir/exec/function_ops.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/function_ops.cc.o.d"
  "/root/repo/src/exec/join_ops.cc" "src/CMakeFiles/magicdb.dir/exec/join_ops.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/join_ops.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/magicdb.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/scan_ops.cc" "src/CMakeFiles/magicdb.dir/exec/scan_ops.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/exec/scan_ops.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/magicdb.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/expr/expr.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/magicdb.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/optimizer_dp.cc" "src/CMakeFiles/magicdb.dir/optimizer/optimizer_dp.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/optimizer/optimizer_dp.cc.o.d"
  "/root/repo/src/optimizer/optimizer_join.cc" "src/CMakeFiles/magicdb.dir/optimizer/optimizer_join.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/optimizer/optimizer_join.cc.o.d"
  "/root/repo/src/optimizer/optimizer_node.cc" "src/CMakeFiles/magicdb.dir/optimizer/optimizer_node.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/optimizer/optimizer_node.cc.o.d"
  "/root/repo/src/plan/logical_plan.cc" "src/CMakeFiles/magicdb.dir/plan/logical_plan.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/plan/logical_plan.cc.o.d"
  "/root/repo/src/rewrite/magic_rewrite.cc" "src/CMakeFiles/magicdb.dir/rewrite/magic_rewrite.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/rewrite/magic_rewrite.cc.o.d"
  "/root/repo/src/sql/binder.cc" "src/CMakeFiles/magicdb.dir/sql/binder.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/sql/binder.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/magicdb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/magicdb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/sql/parser.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/magicdb.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/table_stats.cc" "src/CMakeFiles/magicdb.dir/stats/table_stats.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/stats/table_stats.cc.o.d"
  "/root/repo/src/storage/index.cc" "src/CMakeFiles/magicdb.dir/storage/index.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/storage/index.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/magicdb.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/storage/table.cc.o.d"
  "/root/repo/src/types/schema.cc" "src/CMakeFiles/magicdb.dir/types/schema.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/types/schema.cc.o.d"
  "/root/repo/src/types/tuple.cc" "src/CMakeFiles/magicdb.dir/types/tuple.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/types/tuple.cc.o.d"
  "/root/repo/src/types/value.cc" "src/CMakeFiles/magicdb.dir/types/value.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/types/value.cc.o.d"
  "/root/repo/src/udr/table_function.cc" "src/CMakeFiles/magicdb.dir/udr/table_function.cc.o" "gcc" "src/CMakeFiles/magicdb.dir/udr/table_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
