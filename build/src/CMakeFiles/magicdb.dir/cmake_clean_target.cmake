file(REMOVE_RECURSE
  "libmagicdb.a"
)
