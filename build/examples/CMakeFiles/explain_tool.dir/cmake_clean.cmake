file(REMOVE_RECURSE
  "CMakeFiles/explain_tool.dir/explain_tool.cpp.o"
  "CMakeFiles/explain_tool.dir/explain_tool.cpp.o.d"
  "explain_tool"
  "explain_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explain_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
