file(REMOVE_RECURSE
  "CMakeFiles/udf_pipeline.dir/udf_pipeline.cpp.o"
  "CMakeFiles/udf_pipeline.dir/udf_pipeline.cpp.o.d"
  "udf_pipeline"
  "udf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
