# Empty compiler generated dependencies file for udf_pipeline.
# This may be replaced when dependencies are built.
