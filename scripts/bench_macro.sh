#!/usr/bin/env bash
# Macro-benchmark snapshot: runs the two `--json` benches from a Release
# build and merges their documents into one canonical BENCH_<pr>.json at
# the repo root, so perf (closed-loop QPS/p95, streaming TTFR/TTLR,
# parallel speedups, and spill vs. in-memory throughput under a small
# memory limit) can be tracked across PRs.
#
# Usage: scripts/bench_macro.sh <pr-number> [--smoke]
#   scripts/bench_macro.sh 7            # full run, writes BENCH_7.json
#   scripts/bench_macro.sh 7 --smoke    # quick CI-sized run
set -euo pipefail
cd "$(dirname "$0")/.."

PR="${1:?usage: scripts/bench_macro.sh <pr-number> [--smoke]}"
shift
MODE=full
if [[ "${1:-}" == "--smoke" ]]; then
  MODE=smoke
  EXTRA=(--smoke)
else
  EXTRA=()
fi

JOBS="$(nproc 2>/dev/null || echo 2)"
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}" \
      --target bench_server_throughput bench_parallel_scaling >/dev/null

TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

echo "=== bench_server_throughput (${MODE}) ==="
./build-release/bench/bench_server_throughput "${EXTRA[@]}" \
    --json "${TMP}/server_throughput.json"

echo "=== bench_parallel_scaling (${MODE}) ==="
./build-release/bench/bench_parallel_scaling "${EXTRA[@]}" \
    --json "${TMP}/parallel_scaling.json"

OUT="BENCH_${PR}.json"
python3 - "${PR}" "${MODE}" "${TMP}" "${OUT}" <<'PYEOF'
import json
import subprocess
import sys

pr, mode, tmp, out = sys.argv[1:5]
doc = {
    "pr": int(pr),
    "mode": mode,
    "date": subprocess.run(["date", "-u", "+%Y-%m-%dT%H:%M:%SZ"],
                           capture_output=True, text=True).stdout.strip(),
    "hardware": {
        "cpus": subprocess.run(["nproc"], capture_output=True,
                               text=True).stdout.strip(),
    },
}
for section in ("server_throughput", "parallel_scaling"):
    with open(f"{tmp}/{section}.json") as f:
        doc[section] = json.load(f)
with open(out, "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
PYEOF

echo "Wrote ${OUT}"
