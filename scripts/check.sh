#!/usr/bin/env bash
# Three-build gate for the concurrent subsystems (src/parallel, src/server):
#   1. Release build, full test suite (correctness + cost-identity tests);
#   2. ThreadSanitizer build, full test suite (barrier/steal/merge and
#      admission/plan-cache/cancellation races);
#   3. AddressSanitizer+UndefinedBehaviorSanitizer build, full test suite
#      (lifetime bugs in pooled plan instances, cancellation unwinds, and
#      UB anywhere; MAGICDB_SANITIZE=address enables both).
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== Release build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure --timeout 120 -j "${JOBS}" "$@"

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMAGICDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure --timeout 120 -j "${JOBS}" "$@"

echo "=== AddressSanitizer+UBSan build ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMAGICDB_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure --timeout 120 -j "${JOBS}" "$@"

echo "All checks passed."
