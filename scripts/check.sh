#!/usr/bin/env bash
# Build gate for the concurrent subsystems (src/parallel, src/server) and
# the vectorized execution path (MAGICDB_TEST_BATCH_SIZE sweeps rerun the
# full suite tuple-at-a-time and at an odd batch size; the default runs
# cover the 1024-row batch mode) and the adaptive re-optimization path
# (MAGICDB_TEST_REOPT_QERROR sweeps rerun the full suite with feedback-driven
# plan restarts forced maximally aggressive and explicitly disabled, under
# Release and TSAN — restarts must never change results and must be race-free
# when the parallel retry loop re-plans gangs of replicas):
#   1. Release build, full test suite (correctness + cost-identity tests),
#      plus a smoke run of bench_parallel_scaling (DoP {1,2}) whose
#      byte-identity and counter-identity assertions cover the parallel
#      aggregation merge on real query shapes;
#   2. ThreadSanitizer build, full test suite (barrier/steal/merge,
#      partitioned-aggregate staging, and admission/plan-cache/cancellation
#      races), plus the same bench smoke under TSAN;
#   3. AddressSanitizer+UndefinedBehaviorSanitizer build, full test suite
#      (lifetime bugs in pooled plan instances, cancellation unwinds, and
#      UB anywhere; MAGICDB_SANITIZE=address enables both).
# Every build also smoke-runs bench_server_throughput, whose closed-loop and
# streaming-cursor sections assert byte-identity against Database::Query and
# the cursor queue's bounded-memory contract while racing sessions on the
# shared pool.
#
# A second trio of builds repeats Release/TSAN/ASan+UBSan with
# -DMAGICDB_FAILPOINTS=ON and runs the chaos suite (fault injection at every
# threaded site, memory-governor breaches, park/resume delay perturbation,
# spill-file I/O faults, DDL catalog-mutation faults) plus the server stress
# tests: any injected fault must leave the service with zero leaked tickets,
# gang slots, or cursors — clean under both sanitizers. The default builds
# above stay byte-identical because the failpoint macros compile to nothing
# without the option.
#
# Finally, a low-memory chaos sweep reruns the FULL test suite inside the
# Release and ASan+UBSan failpoint builds with a small default per-query
# memory limit and a spill directory injected via environment, and with
# delay failpoints armed on every spill I/O site. Every governed query in
# the suite that crosses the small limit now takes the out-of-core paths
# with perturbed spill-I/O timing; results must stay byte-identical and
# ASan must see no lifetime bugs in the spill readers/writers. Tests that
# pin their own limit or spill dir are unaffected (explicit options win
# over the environment).
#
# An overload chaos sweep then reruns the overload suite (and the exact-count
# server stress test) inside the Release and TSAN failpoint builds with a
# tiny admission-queue high-water injected via environment and delay
# failpoints armed on the shed and disk-budget decision points: the service
# must shed instead of queueing unboundedly, Query()'s retry loop must
# absorb the rejections, and survivors must stay byte-identical with zero
# leaked tickets, gang slots, cursors, or disk-budget bytes.
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== Release build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure --timeout 120 -j "${JOBS}" "$@"

# Vectorized-execution sweep: the default run above executes every query
# in 1024-row batches; rerun the full suite with batching forced off
# (tuple-at-a-time) and at a deliberately awkward batch size. Results must
# be byte-identical in all three modes — the suite's identity assertions
# do the comparing.
echo "=== Release suite, batching forced off ==="
MAGICDB_TEST_BATCH_SIZE=0 \
  ctest --test-dir build-release --output-on-failure --timeout 120 \
        -j "${JOBS}" "$@"

echo "=== Release suite, batch size 7 ==="
MAGICDB_TEST_BATCH_SIZE=7 \
  ctest --test-dir build-release --output-on-failure --timeout 120 \
        -j "${JOBS}" "$@"

# Adaptive re-optimization sweep: rerun the full suite with runtime
# cardinality feedback forced maximally aggressive (any estimation error
# restarts planning at every pipeline breaker) and explicitly off. The
# suite's byte-identity assertions verify that restart-based re-planning
# never changes results; only tests that pin their own threshold opt out.
echo "=== Release suite, re-optimization forced aggressive ==="
MAGICDB_TEST_REOPT_QERROR=1.0 \
  ctest --test-dir build-release --output-on-failure --timeout 120 \
        -j "${JOBS}" "$@"

echo "=== Release suite, re-optimization forced off ==="
MAGICDB_TEST_REOPT_QERROR=0 \
  ctest --test-dir build-release --output-on-failure --timeout 120 \
        -j "${JOBS}" "$@"

echo "=== Parallel-scaling bench smoke (Release, DoP 2) ==="
./build-release/bench/bench_parallel_scaling --smoke

echo "=== Server-throughput bench smoke (Release) ==="
./build-release/bench/bench_server_throughput --smoke

echo "=== ThreadSanitizer build ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMAGICDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}"
ctest --test-dir build-tsan --output-on-failure --timeout 120 -j "${JOBS}" "$@"

echo "=== TSAN suite, re-optimization forced aggressive ==="
MAGICDB_TEST_REOPT_QERROR=1.0 \
  ctest --test-dir build-tsan --output-on-failure --timeout 120 \
        -j "${JOBS}" "$@"

echo "=== Parallel-scaling bench smoke (TSAN, DoP 2) ==="
./build-tsan/bench/bench_parallel_scaling --smoke

echo "=== Server-throughput bench smoke (TSAN) ==="
./build-tsan/bench/bench_server_throughput --smoke

echo "=== AddressSanitizer+UBSan build ==="
cmake -B build-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMAGICDB_SANITIZE=address >/dev/null
cmake --build build-asan -j "${JOBS}"
ctest --test-dir build-asan --output-on-failure --timeout 120 -j "${JOBS}" "$@"

echo "=== ASan+UBSan suite, batching forced off ==="
MAGICDB_TEST_BATCH_SIZE=0 \
  ctest --test-dir build-asan --output-on-failure --timeout 120 \
        -j "${JOBS}" "$@"

echo "=== Server-throughput bench smoke (ASan+UBSan) ==="
./build-asan/bench/bench_server_throughput --smoke

CHAOS_FILTER='ChaosTest.*:ExecFailpointTest.*:MemoryGovernorTest.*:MemoryTrackerTest.*:ServerStressTest.*:SpillChaosTest.*:DdlChaosTest.*:OverloadTest.*:OverloadFairnessTest.*:OverloadChaosTest.*'

# Overload chaos sweep: a tiny admission queue high-water injected via the
# environment (applied only where shed_queue_depth is unset) plus delay
# failpoints on the shed and disk-budget-charge decision points. Query()'s
# shed-retry loop must absorb the rejections — results stay byte-identical
# and nothing leaks. ServerStressTest's exact-count accounting rides along:
# sheds are refusals at the door, not submitted/failed queries.
OVERLOAD_FILTER='OverloadTest.*:OverloadChaosTest.*:ServerStressTest.ConcurrentSessionsMatchSequentialBaseline'
OVERLOAD_ENV=(
  MAGICDB_TEST_SHED_QUEUE_DEPTH=2
  MAGICDB_FAILPOINT_DELAYS='admission.shed:20,spill.budget.charge:20'
)

# Env for the low-memory chaos sweep: an 8 MiB default query memory limit
# (applied only where QueryServiceOptions leaves the limit unset), a shared
# spill directory (applied only where spill_dir is unset), and delay-only
# failpoints on the spill I/O sites.
LOWMEM_SPILL_DIR="$(mktemp -d)"
trap 'rm -rf "${LOWMEM_SPILL_DIR}"' EXIT
LOWMEM_ENV=(
  MAGICDB_TEST_QUERY_MEMORY_LIMIT=8388608
  "MAGICDB_TEST_SPILL_DIR=${LOWMEM_SPILL_DIR}"
  MAGICDB_FAILPOINT_DELAYS='spill.write:20,spill.read:20,spill.partition.open:20'
)

echo "=== Chaos build (Release + failpoints) ==="
cmake -B build-chaos -S . -DCMAKE_BUILD_TYPE=Release \
      -DMAGICDB_FAILPOINTS=ON >/dev/null
cmake --build build-chaos -j "${JOBS}"
./build-chaos/tests/magicdb_tests --gtest_filter="${CHAOS_FILTER}"

echo "=== Low-memory chaos sweep (Release + failpoints, full suite) ==="
env "${LOWMEM_ENV[@]}" ./build-chaos/tests/magicdb_tests

echo "=== Overload chaos sweep (Release + failpoints) ==="
env "${OVERLOAD_ENV[@]}" \
  ./build-chaos/tests/magicdb_tests --gtest_filter="${OVERLOAD_FILTER}"

echo "=== Chaos build (TSAN + failpoints) ==="
cmake -B build-chaos-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMAGICDB_SANITIZE=thread -DMAGICDB_FAILPOINTS=ON >/dev/null
cmake --build build-chaos-tsan -j "${JOBS}"
./build-chaos-tsan/tests/magicdb_tests --gtest_filter="${CHAOS_FILTER}"

echo "=== Overload chaos sweep (TSAN + failpoints) ==="
env "${OVERLOAD_ENV[@]}" \
  ./build-chaos-tsan/tests/magicdb_tests --gtest_filter="${OVERLOAD_FILTER}"

echo "=== Chaos build (ASan+UBSan + failpoints) ==="
cmake -B build-chaos-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DMAGICDB_SANITIZE=address -DMAGICDB_FAILPOINTS=ON >/dev/null
cmake --build build-chaos-asan -j "${JOBS}"
./build-chaos-asan/tests/magicdb_tests --gtest_filter="${CHAOS_FILTER}"

echo "=== Low-memory chaos sweep (ASan+UBSan + failpoints, full suite) ==="
env "${LOWMEM_ENV[@]}" ./build-chaos-asan/tests/magicdb_tests

echo "All checks passed."
