#include "src/udr/table_function.h"

#include "src/common/cost_counters.h"

namespace magicdb {

double TableFunction::PerInvocationCost() const {
  return CostConstants::kFunctionInvokeCost;
}

}  // namespace magicdb
