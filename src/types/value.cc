#include "src/types/value.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace magicdb {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

int64_t DataTypeWidth(DataType type) {
  switch (type) {
    case DataType::kNull:
      return 1;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 16;  // charged average string width
  }
  return 8;
}

DataType Value::type() const {
  if (std::holds_alternative<std::monostate>(data_)) return DataType::kNull;
  if (std::holds_alternative<bool>(data_)) return DataType::kBool;
  if (std::holds_alternative<int64_t>(data_)) return DataType::kInt64;
  if (std::holds_alternative<double>(data_)) return DataType::kDouble;
  return DataType::kString;
}

bool Value::AsBool() const {
  assert(std::holds_alternative<bool>(data_));
  const bool* p = std::get_if<bool>(&data_);
  return p != nullptr && *p;
}

int64_t Value::AsInt64() const {
  assert(std::holds_alternative<int64_t>(data_));
  const int64_t* p = std::get_if<int64_t>(&data_);
  return p != nullptr ? *p : 0;
}

double Value::AsDouble() const {
  assert(std::holds_alternative<double>(data_));
  const double* p = std::get_if<double>(&data_);
  return p != nullptr ? *p : 0.0;
}

const std::string& Value::AsString() const {
  assert(std::holds_alternative<std::string>(data_));
  static const std::string kEmpty;
  const std::string* p = std::get_if<std::string>(&data_);
  return p != nullptr ? *p : kEmpty;
}

StatusOr<double> Value::AsNumeric() const {
  if (const int64_t* i = std::get_if<int64_t>(&data_)) {
    return static_cast<double>(*i);
  }
  if (const double* d = std::get_if<double>(&data_)) {
    return *d;
  }
  return Status::TypeError("value is not numeric: " + ToString());
}

namespace {
// Rank used to order values of different (non-coercible) types.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt64:
    case DataType::kDouble:
      return 2;  // numerics share a rank and compare by value
    case DataType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  const DataType lt = type();
  const DataType rt = other.type();
  if (lt == DataType::kNull || rt == DataType::kNull) {
    if (lt == rt) return 0;
    return lt == DataType::kNull ? -1 : 1;
  }
  const int lrank = TypeRank(lt);
  const int rrank = TypeRank(rt);
  if (lrank != rrank) return lrank < rrank ? -1 : 1;
  switch (lt) {
    case DataType::kBool: {
      const bool a = AsBool();
      const bool b = other.AsBool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kInt64:
    case DataType::kDouble: {
      // Both numeric; compare exactly when both int64.
      if (lt == DataType::kInt64 && rt == DataType::kInt64) {
        const int64_t a = AsInt64();
        const int64_t b = other.AsInt64();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      const double a =
          lt == DataType::kInt64 ? static_cast<double>(AsInt64()) : AsDouble();
      const double b = rt == DataType::kInt64
                           ? static_cast<double>(other.AsInt64())
                           : other.AsDouble();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case DataType::kString:
      return AsString().compare(other.AsString());
    default:
      return 0;
  }
}

uint64_t Value::Hash(uint64_t seed) const {
  switch (type()) {
    case DataType::kNull:
      return HashUint64(0x6e756c6cULL, seed);  // "null"
    case DataType::kBool:
      return HashUint64(AsBool() ? 1 : 2, seed);
    case DataType::kInt64:
      return HashUint64(static_cast<uint64_t>(AsInt64()), seed);
    case DataType::kDouble: {
      const double d = AsDouble();
      // Integral doubles hash like the equal int64 so that 1 and 1.0 land
      // in the same hash bucket (they compare equal).
      if (std::floor(d) == d && std::abs(d) < 9.2e18) {
        return HashUint64(static_cast<uint64_t>(static_cast<int64_t>(d)),
                          seed);
      }
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(d));
      return HashUint64(bits, seed);
    }
    case DataType::kString:
      return HashString(AsString(), seed);
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return AsBool() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(AsInt64());
    case DataType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case DataType::kString:
      return "'" + AsString() + "'";
  }
  return "?";
}

int64_t Value::ByteWidth() const {
  if (type() == DataType::kString) {
    return static_cast<int64_t>(AsString().size()) + 4;
  }
  return DataTypeWidth(type());
}

}  // namespace magicdb
