#include "src/types/schema.h"

#include <sstream>

namespace magicdb {

StatusOr<int> Schema::FindColumn(const std::string& qualifier,
                                 const std::string& name) const {
  int found = -1;
  for (int i = 0; i < num_columns(); ++i) {
    const Column& c = columns_[i];
    if (c.name != name) continue;
    if (!qualifier.empty() && c.qualifier != qualifier) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference: " +
                                     (qualifier.empty()
                                          ? name
                                          : qualifier + "." + name));
    }
    found = i;
  }
  if (found < 0) {
    return Status::NotFound(
        "column not found: " +
        (qualifier.empty() ? name : qualifier + "." + name));
  }
  return found;
}

StatusOr<int> Schema::FindColumn(const std::string& dotted) const {
  const size_t dot = dotted.find('.');
  if (dot == std::string::npos) return FindColumn("", dotted);
  return FindColumn(dotted.substr(0, dot), dotted.substr(dot + 1));
}

Schema Schema::Concat(const Schema& right) const {
  std::vector<Column> cols = columns_;
  cols.insert(cols.end(), right.columns_.begin(), right.columns_.end());
  return Schema(std::move(cols));
}

Schema Schema::WithQualifier(const std::string& qualifier) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.qualifier = qualifier;
  return Schema(std::move(cols));
}

int64_t Schema::TupleWidthBytes() const {
  int64_t width = 0;
  for (const Column& c : columns_) width += DataTypeWidth(c.type);
  return width;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (int i = 0; i < num_columns(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].QualifiedName() << " " << DataTypeName(columns_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace magicdb
