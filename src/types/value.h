#ifndef MAGICDB_TYPES_VALUE_H_
#define MAGICDB_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "src/common/hash.h"
#include "src/common/statusor.h"

namespace magicdb {

/// Column data types supported by the engine.
enum class DataType {
  kNull = 0,  // type of an untyped NULL literal
  kBool,
  kInt64,
  kDouble,
  kString,
};

const char* DataTypeName(DataType type);

/// Width in bytes a value of `type` occupies in the page-cost model.
/// Strings are charged at a fixed average width.
int64_t DataTypeWidth(DataType type);

/// Runtime value: a tagged union over the supported data types plus NULL.
/// Values are small and copyable; strings use std::string storage.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Rep(v)); }
  static Value Int64(int64_t v) { return Value(Rep(v)); }
  static Value Double(double v) { return Value(Rep(v)); }
  static Value String(std::string v) { return Value(Rep(std::move(v))); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }

  DataType type() const;

  /// Typed accessors; calling with the wrong type is a programming error
  /// (asserted in debug builds, returns a default in release).
  bool AsBool() const;
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;

  /// Numeric view: int64 and double both coerce to double. Fails on other
  /// types.
  StatusOr<double> AsNumeric() const;

  /// SQL-style three-valued comparison is handled in the expression layer;
  /// here NULLs compare equal to NULLs and before all non-NULLs, giving a
  /// total order usable for sorting and grouping.
  /// Returns <0, 0, >0. Numeric types compare cross-type (1 == 1.0).
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Hash consistent with Compare()==0 across numeric types: integral-valued
  /// doubles hash like the corresponding int64.
  uint64_t Hash(uint64_t seed = 0xcbf29ce484222325ULL) const;

  /// SQL-ish rendering: NULL, true/false, numbers, 'strings'.
  std::string ToString() const;

  /// Width in bytes charged to this value by the page-cost model.
  int64_t ByteWidth() const;

 private:
  using Rep =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  explicit Value(Rep rep) : data_(std::move(rep)) {}

  Rep data_;
};

}  // namespace magicdb

#endif  // MAGICDB_TYPES_VALUE_H_
