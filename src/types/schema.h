#ifndef MAGICDB_TYPES_SCHEMA_H_
#define MAGICDB_TYPES_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/types/value.h"

namespace magicdb {

/// One column of a schema. `qualifier` is the table name or range-variable
/// alias the column is reachable under ("E" in "Emp E"); it may be empty for
/// derived columns.
struct Column {
  std::string qualifier;
  std::string name;
  DataType type = DataType::kNull;

  std::string QualifiedName() const {
    return qualifier.empty() ? name : qualifier + "." + name;
  }

  bool operator==(const Column& other) const {
    return qualifier == other.qualifier && name == other.name &&
           type == other.type;
  }
};

/// Ordered list of columns describing a tuple layout. Value-semantic.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns)
      : columns_(std::move(columns)) {}

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const Column& column(int i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Finds the index of a column by (optionally qualified) name.
  /// `qualifier` empty means "any qualifier, but the name must be
  /// unambiguous". Errors: NotFound, or InvalidArgument on ambiguity.
  StatusOr<int> FindColumn(const std::string& qualifier,
                           const std::string& name) const;

  /// Convenience overload: accepts "q.name" or "name".
  StatusOr<int> FindColumn(const std::string& dotted) const;

  /// Schema of `this` followed by `right` (join output layout).
  Schema Concat(const Schema& right) const;

  /// Schema with every column's qualifier replaced by `qualifier`
  /// (view/table aliasing).
  Schema WithQualifier(const std::string& qualifier) const;

  /// Sum of model widths of the column types: bytes one tuple occupies in
  /// the page-cost model.
  int64_t TupleWidthBytes() const;

  /// "(E.did INT64, E.sal DOUBLE, ...)".
  std::string ToString() const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace magicdb

#endif  // MAGICDB_TYPES_SCHEMA_H_
