#include "src/types/tuple.h"

#include <sstream>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace magicdb {

Tuple ConcatTuples(const Tuple& left, const Tuple& right) {
  Tuple out;
  out.reserve(left.size() + right.size());
  out.insert(out.end(), left.begin(), left.end());
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

Tuple ProjectTuple(const Tuple& tuple, const std::vector<int>& indexes) {
  Tuple out;
  out.reserve(indexes.size());
  for (int i : indexes) {
    MAGICDB_CHECK(i >= 0 && i < static_cast<int>(tuple.size()));
    out.push_back(tuple[i]);
  }
  return out;
}

uint64_t HashTupleColumns(const Tuple& tuple,
                          const std::vector<int>& indexes) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int i : indexes) {
    MAGICDB_CHECK(i >= 0 && i < static_cast<int>(tuple.size()));
    h = HashCombine(h, tuple[i].Hash());
  }
  return h;
}

int CompareTupleColumns(const Tuple& a, const Tuple& b,
                        const std::vector<int>& a_indexes,
                        const std::vector<int>& b_indexes) {
  MAGICDB_CHECK(a_indexes.size() == b_indexes.size());
  for (size_t k = 0; k < a_indexes.size(); ++k) {
    const int c = a[a_indexes[k]].Compare(b[b_indexes[k]]);
    if (c != 0) return c;
  }
  return 0;
}

int CompareTuples(const Tuple& a, const Tuple& b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

bool TupleHasNullAt(const Tuple& tuple, const std::vector<int>& indexes) {
  for (int i : indexes) {
    MAGICDB_CHECK(i >= 0 && i < static_cast<int>(tuple.size()));
    if (tuple[i].is_null()) return true;
  }
  return false;
}

int64_t TupleByteWidth(const Tuple& tuple) {
  int64_t w = 0;
  for (const Value& v : tuple) w += v.ByteWidth();
  return w;
}

std::string TupleToString(const Tuple& tuple) {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) os << ", ";
    os << tuple[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace magicdb
