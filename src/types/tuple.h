#ifndef MAGICDB_TYPES_TUPLE_H_
#define MAGICDB_TYPES_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace magicdb {

/// A row of values. Layout is positional; the matching Schema names the
/// positions.
using Tuple = std::vector<Value>;

/// Concatenates two tuples (join output).
Tuple ConcatTuples(const Tuple& left, const Tuple& right);

/// Projects `tuple` onto the given column indexes.
Tuple ProjectTuple(const Tuple& tuple, const std::vector<int>& indexes);

/// Hash of selected columns; consistent with column-wise Value equality.
uint64_t HashTupleColumns(const Tuple& tuple, const std::vector<int>& indexes);

/// Lexicographic comparison on selected columns. Returns <0, 0, >0.
int CompareTupleColumns(const Tuple& a, const Tuple& b,
                        const std::vector<int>& a_indexes,
                        const std::vector<int>& b_indexes);

/// Whole-tuple lexicographic comparison.
int CompareTuples(const Tuple& a, const Tuple& b);

/// True if any of the selected columns is NULL. Equi-join operators use
/// this to reject NULL keys (SQL: NULL = NULL is not true).
bool TupleHasNullAt(const Tuple& tuple, const std::vector<int>& indexes);

/// Bytes this tuple occupies in the page-cost model.
int64_t TupleByteWidth(const Tuple& tuple);

/// "(1, 'abc', NULL)".
std::string TupleToString(const Tuple& tuple);

}  // namespace magicdb

#endif  // MAGICDB_TYPES_TUPLE_H_
