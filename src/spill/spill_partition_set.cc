#include "src/spill/spill_partition_set.h"

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/exec/exec_context.h"

namespace magicdb {

SpillPartitionSet::SpillPartitionSet(SpillManager* mgr, std::string label,
                                     int depth, bool charge_cost)
    : mgr_(mgr),
      label_(std::move(label)),
      depth_(depth),
      charge_cost_(charge_cost),
      files_(mgr->config().fanout) {
  mgr_->NoteRecursionDepth(depth);
}

Status SpillPartitionSet::Reserve(ExecContext* ctx) {
  return reservation_.Acquire(
      ctx, static_cast<int64_t>(files_.size()) * mgr_->config().batch_bytes);
}

Status SpillPartitionSet::Add(uint64_t hash, std::string_view record,
                              ExecContext* ctx) {
  return AddTo(PartitionFor(hash), record, ctx);
}

Status SpillPartitionSet::AddTo(int partition, std::string_view record,
                                ExecContext* ctx) {
  MAGICDB_CHECK(!finished_);
  MAGICDB_CHECK(partition >= 0 && partition < fanout());
  std::unique_ptr<SpillFile>& file = files_[partition];
  if (file == nullptr) {
    MAGICDB_FAILPOINT("spill.partition.open");
    file = std::make_unique<SpillFile>(
        mgr_, label_ + "-d" + std::to_string(depth_) + "-p" +
                  std::to_string(partition),
        charge_cost_);
    mgr_->NotePartitionOpened();
  }
  return file->Append(record, ctx);
}

Status SpillPartitionSet::FinishWrites(ExecContext* ctx) {
  for (std::unique_ptr<SpillFile>& file : files_) {
    if (file != nullptr) {
      MAGICDB_RETURN_IF_ERROR(file->FinishWrite(ctx));
    }
  }
  finished_ = true;
  reservation_.Release();
  return Status::OK();
}

int64_t SpillPartitionSet::records(int partition) const {
  return files_[partition] == nullptr ? 0 : files_[partition]->records();
}

std::unique_ptr<SpillFile> SpillPartitionSet::TakeFile(int partition) {
  MAGICDB_CHECK(finished_);
  return std::move(files_[partition]);
}

}  // namespace magicdb
