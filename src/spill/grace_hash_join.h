#ifndef MAGICDB_SPILL_GRACE_HASH_JOIN_H_
#define MAGICDB_SPILL_GRACE_HASH_JOIN_H_

/// Out-of-core hash join: recursive Grace hash partitioning of build and
/// probe, engaged by HashJoinOp when the build side breaches the query's
/// memory limit and spilling is enabled.
///
/// Protocol (driven by HashJoinOp):
///   1. BeginBuildSpill() — the moment the in-memory build table breaches,
///      its rows are dumped bucket-by-bucket into a fanout-way partition
///      set and their memory is released; every later build row goes
///      straight to its partition (AddBuildRow).
///   2. FinishBuild() seals the build partitions.
///   3. The probe input is drained through AddProbeRow(): rows are tagged
///      with their probe sequence number and routed by the same hash to the
///      matching partition (rows whose build partition is empty are
///      dropped — they cannot join).
///   4. FinishProbe() joins the partition pairs one at a time: load one
///      build partition into a charged in-memory table, stream its probe
///      partition, write matches as (seq, joined row) to an output run. A
///      build partition that itself breaches the limit is recursively
///      re-partitioned at depth+1 (both files), up to the configured
///      recursion bound.
///   5. NextOutput() merges the output runs by probe sequence number.
///
/// Determinism: rows of one hash bucket are dumped and reloaded in their
/// original arrival order, so each rebuilt bucket matches the in-memory
/// bucket exactly; each probe row lives in exactly one leaf partition, so
/// its matches land contiguously in one run; merging runs by the strictly
/// increasing probe sequence reproduces the in-memory output order
/// byte-for-byte.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/statusor.h"
#include "src/spill/spill_file.h"
#include "src/spill/spill_manager.h"
#include "src/spill/spill_partition_set.h"
#include "src/types/tuple.h"

namespace magicdb {

class ExecContext;
class Expr;

class GraceHashJoin {
 public:
  GraceHashJoin(std::shared_ptr<SpillManager> mgr, std::vector<int> outer_keys,
                std::vector<int> inner_keys, const Expr* residual);

  /// Dumps the breached in-memory build table to partitions, releasing its
  /// `*charged_bytes` from the tracker and clearing the table.
  Status BeginBuildSpill(
      ExecContext* ctx,
      std::unordered_map<uint64_t, std::vector<Tuple>>* table,
      int64_t* charged_bytes);

  Status AddBuildRow(uint64_t hash, const Tuple& row, ExecContext* ctx);
  Status FinishBuild(ExecContext* ctx);

  Status AddProbeRow(uint64_t hash, const Tuple& row, ExecContext* ctx);

  /// Seals the probe partitions and joins every partition pair; afterwards
  /// NextOutput streams the merged result.
  Status FinishProbe(ExecContext* ctx);

  Status NextOutput(Tuple* out, bool* eof, ExecContext* ctx);

 private:
  struct Task {
    std::unique_ptr<SpillFile> build;
    std::unique_ptr<SpillFile> probe;
    int depth = 0;
  };
  /// One sealed output run plus its merge cursor.
  struct RunCursor {
    std::unique_ptr<SpillFile> file;
    bool has = false;
    int64_t seq = 0;
    Tuple row;
  };

  Status ProcessTask(Task task, std::vector<Task>* stack, ExecContext* ctx);
  Status Repartition(Task task, std::vector<Task>* stack, ExecContext* ctx);
  Status AdvanceRun(RunCursor* run, ExecContext* ctx);

  const std::shared_ptr<SpillManager> mgr_;
  const std::vector<int> outer_keys_;
  const std::vector<int> inner_keys_;
  const Expr* const residual_;

  std::unique_ptr<SpillPartitionSet> build_set_;
  std::unique_ptr<SpillPartitionSet> probe_set_;
  int64_t probe_seq_ = 0;
  std::vector<RunCursor> outputs_;
  SpillReservation merge_reservation_;
  bool merge_ready_ = false;
  std::string scratch_;
};

}  // namespace magicdb

#endif  // MAGICDB_SPILL_GRACE_HASH_JOIN_H_
