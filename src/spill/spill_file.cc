#include "src/spill/spill_file.h"

#include <cstdio>
#include <cstring>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/exec/exec_context.h"
#include "src/spill/spill_manager.h"

namespace magicdb {

namespace {
int64_t CeilPages(int64_t bytes) {
  return (bytes + CostConstants::kPageSizeBytes - 1) /
         CostConstants::kPageSizeBytes;
}
}  // namespace

SpillFile::SpillFile(SpillManager* mgr, const std::string& label,
                     bool charge_cost)
    : mgr_(mgr), charge_cost_(charge_cost), path_(mgr->NextFilePath(label)) {}

SpillFile::~SpillFile() {
  if (write_handle_ != nullptr) std::fclose(write_handle_);
  if (read_handle_ != nullptr) std::fclose(read_handle_);
  if (write_handle_ != nullptr || write_finished_) std::remove(path_.c_str());
  mgr_->ReleaseDisk(disk_charged_);
}

void SpillFile::ChargeWrite(int64_t bytes, ExecContext* ctx) {
  mgr_->AddBytesWritten(bytes);
  if (ctx == nullptr) return;
  // Spill I/O is forward progress for the stuck-query watchdog even on
  // paths (gather staging) that charge no query cost.
  ctx->NoteProgress(bytes);
  if (!charge_cost_) return;
  ctx->counters().spill_bytes_written += bytes;
  const int64_t pages = CeilPages(bytes_written_) - write_pages_charged_;
  ctx->counters().pages_written += pages;
  write_pages_charged_ += pages;
}

void SpillFile::ChargeRead(int64_t bytes, ExecContext* ctx) {
  mgr_->AddBytesRead(bytes);
  if (ctx == nullptr) return;
  ctx->NoteProgress(bytes);
  if (!charge_cost_) return;
  ctx->counters().spill_bytes_read += bytes;
  const int64_t pages = CeilPages(bytes_read_) - read_pages_charged_;
  ctx->counters().pages_read += pages;
  read_pages_charged_ += pages;
}

Status SpillFile::FlushFrame(ExecContext* ctx) {
  if (write_buffer_.empty()) return Status::OK();
  MAGICDB_FAILPOINT("spill.write");
  // Budget check precedes the filesystem write: a rejected frame fails this
  // query before it consumes the disk it was denied.
  const int64_t budgeted_bytes =
      static_cast<int64_t>(sizeof(uint32_t) + write_buffer_.size());
  MAGICDB_RETURN_IF_ERROR(mgr_->ChargeDisk(budgeted_bytes));
  disk_charged_ += budgeted_bytes;
  if (write_handle_ == nullptr) {
    write_handle_ = std::fopen(path_.c_str(), "wb");
    if (write_handle_ == nullptr) {
      return Status::Internal("cannot create spill file: " + path_);
    }
    mgr_->NoteFileCreated();
  }
  const uint32_t len = static_cast<uint32_t>(write_buffer_.size());
  if (std::fwrite(&len, sizeof(len), 1, write_handle_) != 1 ||
      std::fwrite(write_buffer_.data(), 1, write_buffer_.size(),
                  write_handle_) != write_buffer_.size()) {
    return Status::Internal("short write to spill file: " + path_);
  }
  const int64_t frame_bytes =
      static_cast<int64_t>(sizeof(len) + write_buffer_.size());
  bytes_written_ += frame_bytes;
  ChargeWrite(frame_bytes, ctx);
  write_buffer_.clear();
  return Status::OK();
}

Status SpillFile::Append(std::string_view record, ExecContext* ctx) {
  MAGICDB_CHECK(!write_finished_);
  const uint32_t len = static_cast<uint32_t>(record.size());
  write_buffer_.append(reinterpret_cast<const char*>(&len), sizeof(len));
  write_buffer_.append(record.data(), record.size());
  ++records_;
  if (static_cast<int64_t>(write_buffer_.size()) >=
      mgr_->config().batch_bytes) {
    return FlushFrame(ctx);
  }
  return Status::OK();
}

Status SpillFile::FinishWrite(ExecContext* ctx) {
  if (write_finished_) return Status::OK();
  MAGICDB_RETURN_IF_ERROR(FlushFrame(ctx));
  if (write_handle_ != nullptr) {
    if (std::fflush(write_handle_) != 0) {
      return Status::Internal("cannot flush spill file: " + path_);
    }
    std::fclose(write_handle_);
    write_handle_ = nullptr;
  }
  write_finished_ = true;
  write_buffer_.shrink_to_fit();
  return Status::OK();
}

Status SpillFile::Rewind() {
  MAGICDB_CHECK(write_finished_);
  if (read_handle_ != nullptr) {
    std::fclose(read_handle_);
    read_handle_ = nullptr;
  }
  frame_.clear();
  frame_offset_ = 0;
  if (records_ == 0) return Status::OK();  // never flushed: nothing on disk
  read_handle_ = std::fopen(path_.c_str(), "rb");
  if (read_handle_ == nullptr) {
    return Status::Internal("cannot reopen spill file: " + path_);
  }
  return Status::OK();
}

Status SpillFile::ReadFrame(ExecContext* ctx, bool* have_frame) {
  *have_frame = false;
  if (read_handle_ == nullptr) return Status::OK();
  uint32_t len = 0;
  const size_t got = std::fread(&len, 1, sizeof(len), read_handle_);
  if (got == 0) return Status::OK();  // clean EOF
  MAGICDB_FAILPOINT("spill.read");
  if (got != sizeof(len)) {
    return Status::Internal("torn frame header in spill file: " + path_);
  }
  frame_.resize(len);
  if (std::fread(frame_.data(), 1, len, read_handle_) != len) {
    return Status::Internal("torn frame in spill file: " + path_);
  }
  frame_offset_ = 0;
  const int64_t frame_bytes = static_cast<int64_t>(sizeof(len) + len);
  bytes_read_ += frame_bytes;
  ChargeRead(frame_bytes, ctx);
  *have_frame = true;
  return Status::OK();
}

Status SpillFile::NextRecord(std::string_view* record, bool* has_record,
                             ExecContext* ctx) {
  while (true) {
    if (frame_offset_ + sizeof(uint32_t) <= frame_.size()) {
      uint32_t len = 0;
      std::memcpy(&len, frame_.data() + frame_offset_, sizeof(len));
      frame_offset_ += sizeof(len);
      if (frame_offset_ + len > frame_.size()) {
        return Status::Internal("torn record in spill file: " + path_);
      }
      *record = std::string_view(frame_.data() + frame_offset_, len);
      frame_offset_ += len;
      *has_record = true;
      return Status::OK();
    }
    bool have_frame = false;
    MAGICDB_RETURN_IF_ERROR(ReadFrame(ctx, &have_frame));
    if (!have_frame) {
      *has_record = false;
      return Status::OK();
    }
  }
}

}  // namespace magicdb
