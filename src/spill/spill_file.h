#ifndef MAGICDB_SPILL_SPILL_FILE_H_
#define MAGICDB_SPILL_SPILL_FILE_H_

/// One spill temp file: an append-only sequence of length-prefixed records,
/// written in buffered frames and read back sequentially.
///
/// Lifecycle: append records, FinishWrite(), then any number of Rewind() +
/// NextRecord() passes. The destructor closes handles and unlinks the file,
/// so a query that fails mid-spill leaves nothing behind.
///
/// Accounting: every frame flushed or read charges page I/O (ceil of the
/// cumulative byte count over the shared page size — the same convention as
/// PagesForRows) and spill bytes to the ExecContext passed to the call, and
/// bytes to the owning SpillManager's global counters. Passing a null
/// context (or constructing with charge_cost=false, as the gather path
/// does) keeps the manager metrics but charges no CostCounters — GatherOp's
/// contract is that it performs no query work.
///
/// Failpoints: `spill.write` before every frame write, `spill.read` before
/// every frame read.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/statusor.h"

namespace magicdb {

class ExecContext;
class SpillManager;

class SpillFile {
 public:
  /// Creates a handle for a new temp file under `mgr`'s directory. The file
  /// itself is created lazily on the first flush.
  SpillFile(SpillManager* mgr, const std::string& label,
            bool charge_cost = true);
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  /// Appends one record (buffered; flushes a frame when the buffer reaches
  /// the manager's batch_bytes). `ctx` may be null.
  Status Append(std::string_view record, ExecContext* ctx);

  /// Flushes the tail frame and closes the write handle. Must be called
  /// before Rewind. Idempotent.
  Status FinishWrite(ExecContext* ctx);

  /// (Re)positions the reader at the first record. Only after FinishWrite.
  Status Rewind();

  /// Reads the next record into `*record` (valid until the next call or
  /// destruction). Returns false in `*has_record` at end of file. `ctx` may
  /// be null.
  Status NextRecord(std::string_view* record, bool* has_record,
                    ExecContext* ctx);

  int64_t records() const { return records_; }
  int64_t bytes() const { return bytes_written_; }
  const std::string& path() const { return path_; }

 private:
  Status FlushFrame(ExecContext* ctx);
  Status ReadFrame(ExecContext* ctx, bool* have_frame);
  void ChargeWrite(int64_t bytes, ExecContext* ctx);
  void ChargeRead(int64_t bytes, ExecContext* ctx);

  SpillManager* const mgr_;
  const bool charge_cost_;
  std::string path_;
  std::FILE* write_handle_ = nullptr;
  std::FILE* read_handle_ = nullptr;
  bool write_finished_ = false;

  std::string write_buffer_;
  std::string frame_;       // current read frame
  size_t frame_offset_ = 0; // parse position within frame_

  int64_t records_ = 0;
  int64_t bytes_written_ = 0;
  int64_t bytes_read_ = 0;
  // Bytes charged against the manager's service-wide disk budget; released
  // in the destructor together with the unlink, so a closed query leaves
  // zero residual budget consumption.
  int64_t disk_charged_ = 0;
  // Cumulative byte counts at the last page-charge, for exact ceil-diff
  // page accounting (total pages charged == ceil(total bytes / page)).
  int64_t write_pages_charged_ = 0;
  int64_t read_pages_charged_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_SPILL_SPILL_FILE_H_
