#include "src/spill/grace_hash_join.h"

#include "src/common/logging.h"
#include "src/exec/exec_context.h"
#include "src/expr/expr.h"
#include "src/spill/row_serde.h"

namespace magicdb {

GraceHashJoin::GraceHashJoin(std::shared_ptr<SpillManager> mgr,
                             std::vector<int> outer_keys,
                             std::vector<int> inner_keys, const Expr* residual)
    : mgr_(std::move(mgr)),
      outer_keys_(std::move(outer_keys)),
      inner_keys_(std::move(inner_keys)),
      residual_(residual) {}

Status GraceHashJoin::BeginBuildSpill(
    ExecContext* ctx, std::unordered_map<uint64_t, std::vector<Tuple>>* table,
    int64_t* charged_bytes) {
  // The tracker is full at the instant the build breaches, so hand the
  // table's charge back before reserving the partition write buffers: the
  // rows are leaving memory as the dump below proceeds, and the buffers
  // can only fit in the room they give back.
  ctx->ReleaseMemory(*charged_bytes);
  *charged_bytes = 0;
  build_set_ =
      std::make_unique<SpillPartitionSet>(mgr_.get(), "join-build", 0);
  MAGICDB_RETURN_IF_ERROR(build_set_->Reserve(ctx));
  // Bucket-by-bucket dump: rows of one hash stay in arrival order, which is
  // what makes each rebuilt bucket identical to its in-memory counterpart.
  for (const auto& [hash, bucket] : *table) {
    for (const Tuple& row : bucket) {
      scratch_.clear();
      spill::AppendU64(&scratch_, hash);
      spill::AppendTuple(&scratch_, row);
      MAGICDB_RETURN_IF_ERROR(build_set_->Add(hash, scratch_, ctx));
    }
  }
  table->clear();
  return Status::OK();
}

Status GraceHashJoin::AddBuildRow(uint64_t hash, const Tuple& row,
                                  ExecContext* ctx) {
  scratch_.clear();
  spill::AppendU64(&scratch_, hash);
  spill::AppendTuple(&scratch_, row);
  return build_set_->Add(hash, scratch_, ctx);
}

Status GraceHashJoin::FinishBuild(ExecContext* ctx) {
  return build_set_->FinishWrites(ctx);
}

Status GraceHashJoin::AddProbeRow(uint64_t hash, const Tuple& row,
                                  ExecContext* ctx) {
  if (probe_set_ == nullptr) {
    probe_set_ =
        std::make_unique<SpillPartitionSet>(mgr_.get(), "join-probe", 0);
    MAGICDB_RETURN_IF_ERROR(probe_set_->Reserve(ctx));
  }
  const int64_t seq = probe_seq_++;
  // A probe row whose build partition is empty cannot match anything.
  if (build_set_->records(probe_set_->PartitionFor(hash)) == 0) {
    return Status::OK();
  }
  scratch_.clear();
  spill::AppendU64(&scratch_, hash);
  spill::AppendI64(&scratch_, seq);
  spill::AppendTuple(&scratch_, row);
  return probe_set_->Add(hash, scratch_, ctx);
}

Status GraceHashJoin::FinishProbe(ExecContext* ctx) {
  std::vector<Task> stack;
  if (probe_set_ != nullptr) {
    MAGICDB_RETURN_IF_ERROR(probe_set_->FinishWrites(ctx));
    for (int p = 0; p < build_set_->fanout(); ++p) {
      if (build_set_->records(p) == 0 || probe_set_->records(p) == 0) continue;
      Task t;
      t.build = build_set_->TakeFile(p);
      t.probe = probe_set_->TakeFile(p);
      t.depth = 0;
      stack.push_back(std::move(t));
    }
  }
  while (!stack.empty()) {
    MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    Task task = std::move(stack.back());
    stack.pop_back();
    MAGICDB_RETURN_IF_ERROR(ProcessTask(std::move(task), &stack, ctx));
  }
  build_set_.reset();
  probe_set_.reset();
  // Merge setup: one read frame per output run stays resident.
  MAGICDB_RETURN_IF_ERROR(merge_reservation_.Acquire(
      ctx,
      static_cast<int64_t>(outputs_.size()) * mgr_->config().batch_bytes));
  for (RunCursor& run : outputs_) {
    MAGICDB_RETURN_IF_ERROR(run.file->Rewind());
    MAGICDB_RETURN_IF_ERROR(AdvanceRun(&run, ctx));
  }
  merge_ready_ = true;
  return Status::OK();
}

Status GraceHashJoin::ProcessTask(Task task, std::vector<Task>* stack,
                                  ExecContext* ctx) {
  // Transient buffers of this partition pair: build + probe read frames and
  // the output run's write buffer.
  SpillReservation task_reservation;
  MAGICDB_RETURN_IF_ERROR(
      task_reservation.Acquire(ctx, 3 * mgr_->config().batch_bytes));

  // Load the build partition into a charged in-memory table.
  std::unordered_map<uint64_t, std::vector<Tuple>> table;
  int64_t charged = 0;
  MAGICDB_RETURN_IF_ERROR(task.build->Rewind());
  int64_t loop = 0;
  while (true) {
    if ((++loop & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    std::string_view record;
    bool has = false;
    MAGICDB_RETURN_IF_ERROR(task.build->NextRecord(&record, &has, ctx));
    if (!has) break;
    spill::RecordReader reader(record.data(), record.size());
    uint64_t hash = 0;
    Tuple row;
    MAGICDB_RETURN_IF_ERROR(reader.ReadU64(&hash));
    MAGICDB_RETURN_IF_ERROR(reader.ReadTuple(&row));
    const int64_t row_bytes = TupleByteWidth(row);
    Status charge = ctx->ChargeMemory(row_bytes);
    if (!charge.ok()) {
      ctx->ReleaseMemory(charged);
      table.clear();
      if (charge.code() != StatusCode::kResourceExhausted) return charge;
      return Repartition(std::move(task), stack, ctx);
    }
    charged += row_bytes;
    table[hash].push_back(std::move(row));
  }

  // Stream the probe partition against the loaded table, emitting matches
  // tagged with the probe sequence so the final merge can restore order.
  std::unique_ptr<SpillFile> out;
  MAGICDB_RETURN_IF_ERROR(task.probe->Rewind());
  Status status;  // deferred so the table's charge is always released
  while (true) {
    if ((++loop & 1023) == 0) {
      status = ctx->CheckCancelled();
      if (!status.ok()) break;
    }
    std::string_view record;
    bool has = false;
    status = task.probe->NextRecord(&record, &has, ctx);
    if (!status.ok() || !has) break;
    spill::RecordReader reader(record.data(), record.size());
    uint64_t hash = 0;
    int64_t seq = 0;
    Tuple row;
    status = reader.ReadU64(&hash);
    if (status.ok()) status = reader.ReadI64(&seq);
    if (status.ok()) status = reader.ReadTuple(&row);
    if (!status.ok()) break;
    auto it = table.find(hash);
    if (it == table.end()) continue;
    for (const Tuple& build_row : it->second) {
      if (CompareTupleColumns(row, build_row, outer_keys_, inner_keys_) != 0) {
        continue;  // hash collision
      }
      ctx->counters().tuples_processed += 1;
      Tuple joined = ConcatTuples(row, build_row);
      if (residual_ != nullptr) {
        ctx->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      if (out == nullptr) {
        out = std::make_unique<SpillFile>(mgr_.get(), "join-out");
      }
      scratch_.clear();
      spill::AppendI64(&scratch_, seq);
      spill::AppendTuple(&scratch_, joined);
      status = out->Append(scratch_, ctx);
      if (!status.ok()) break;
    }
    if (!status.ok()) break;
  }
  ctx->ReleaseMemory(charged);
  MAGICDB_RETURN_IF_ERROR(status);
  if (out != nullptr && out->records() > 0) {
    MAGICDB_RETURN_IF_ERROR(out->FinishWrite(ctx));
    RunCursor run;
    run.file = std::move(out);
    outputs_.push_back(std::move(run));
  }
  return Status::OK();
}

Status GraceHashJoin::Repartition(Task task, std::vector<Task>* stack,
                                  ExecContext* ctx) {
  const int next_depth = task.depth + 1;
  if (next_depth >= mgr_->config().max_recursion_depth) {
    return Status::ResourceExhausted(
        "query memory limit exceeded: spill partition still over the limit "
        "at recursion depth " +
        std::to_string(next_depth) +
        " (likely one oversized duplicate-key bucket)");
  }
  auto child_build = std::make_unique<SpillPartitionSet>(
      mgr_.get(), "join-build", next_depth);
  auto child_probe = std::make_unique<SpillPartitionSet>(
      mgr_.get(), "join-probe", next_depth);
  MAGICDB_RETURN_IF_ERROR(child_build->Reserve(ctx));
  MAGICDB_RETURN_IF_ERROR(child_probe->Reserve(ctx));

  MAGICDB_RETURN_IF_ERROR(task.build->Rewind());
  int64_t loop = 0;
  while (true) {
    if ((++loop & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    std::string_view record;
    bool has = false;
    MAGICDB_RETURN_IF_ERROR(task.build->NextRecord(&record, &has, ctx));
    if (!has) break;
    spill::RecordReader reader(record.data(), record.size());
    uint64_t hash = 0;
    MAGICDB_RETURN_IF_ERROR(reader.ReadU64(&hash));
    MAGICDB_RETURN_IF_ERROR(child_build->Add(hash, record, ctx));
  }
  MAGICDB_RETURN_IF_ERROR(task.probe->Rewind());
  while (true) {
    if ((++loop & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    std::string_view record;
    bool has = false;
    MAGICDB_RETURN_IF_ERROR(task.probe->NextRecord(&record, &has, ctx));
    if (!has) break;
    spill::RecordReader reader(record.data(), record.size());
    uint64_t hash = 0;
    MAGICDB_RETURN_IF_ERROR(reader.ReadU64(&hash));
    if (child_build->records(child_build->PartitionFor(hash)) == 0) continue;
    MAGICDB_RETURN_IF_ERROR(child_probe->Add(hash, record, ctx));
  }
  MAGICDB_RETURN_IF_ERROR(child_build->FinishWrites(ctx));
  MAGICDB_RETURN_IF_ERROR(child_probe->FinishWrites(ctx));
  for (int p = 0; p < child_build->fanout(); ++p) {
    if (child_build->records(p) == 0 || child_probe->records(p) == 0) continue;
    Task t;
    t.build = child_build->TakeFile(p);
    t.probe = child_probe->TakeFile(p);
    t.depth = next_depth;
    stack->push_back(std::move(t));
  }
  return Status::OK();
}

Status GraceHashJoin::AdvanceRun(RunCursor* run, ExecContext* ctx) {
  std::string_view record;
  bool has = false;
  MAGICDB_RETURN_IF_ERROR(run->file->NextRecord(&record, &has, ctx));
  if (!has) {
    run->has = false;
    return Status::OK();
  }
  spill::RecordReader reader(record.data(), record.size());
  MAGICDB_RETURN_IF_ERROR(reader.ReadI64(&run->seq));
  MAGICDB_RETURN_IF_ERROR(reader.ReadTuple(&run->row));
  run->has = true;
  return Status::OK();
}

Status GraceHashJoin::NextOutput(Tuple* out, bool* eof, ExecContext* ctx) {
  MAGICDB_CHECK(merge_ready_);
  RunCursor* best = nullptr;
  for (RunCursor& run : outputs_) {
    if (run.has && (best == nullptr || run.seq < best->seq)) best = &run;
  }
  if (best == nullptr) {
    *eof = true;
    merge_reservation_.Release();
    return Status::OK();
  }
  *out = std::move(best->row);
  *eof = false;
  return AdvanceRun(best, ctx);
}

}  // namespace magicdb
