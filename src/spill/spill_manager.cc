#include "src/spill/spill_manager.h"

#include <unistd.h>

#include <string>

#include "src/common/failpoint.h"
#include "src/exec/exec_context.h"

namespace magicdb {

std::string SpillManager::NextFilePath(const std::string& label) {
  const uint64_t id = next_file_id_.fetch_add(1, std::memory_order_relaxed);
  std::string name = "magicdb-spill-" + std::to_string(getpid()) + "-" +
                     std::to_string(id);
  if (!label.empty()) name += "-" + label;
  name += ".bin";
  std::string path = config_.dir;
  if (!path.empty() && path.back() != '/') path += '/';
  return path + name;
}

Status SpillManager::ChargeDisk(int64_t bytes) {
  // Chaos site: lets tests inject a budget rejection (or a delay) on the
  // charge path without actually filling a disk.
  MAGICDB_FAILPOINT("spill.budget.charge");
  const int64_t budget = config_.disk_budget_bytes;
  if (budget <= 0) {
    disk_used_.fetch_add(bytes, std::memory_order_relaxed);
    return Status::OK();
  }
  int64_t used = disk_used_.load(std::memory_order_relaxed);
  while (true) {
    if (used + bytes > budget) {
      disk_budget_rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "spill disk budget exhausted: " + std::to_string(used) +
          " bytes in use + " + std::to_string(bytes) + " requested > budget " +
          std::to_string(budget));
    }
    if (disk_used_.compare_exchange_weak(used, used + bytes,
                                         std::memory_order_relaxed)) {
      return Status::OK();
    }
  }
}

void SpillManager::ReleaseDisk(int64_t bytes) {
  if (bytes > 0) disk_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

uint64_t SpillPartitionOf(uint64_t hash, int depth, int fanout) {
  // splitmix64 finalizer over the hash remixed with a per-depth constant:
  // partitions at depth d+1 are uncorrelated with the split at depth d.
  uint64_t x = hash ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(depth + 1));
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x % static_cast<uint64_t>(fanout);
}

Status SpillReservation::Acquire(ExecContext* ctx, int64_t bytes) {
  MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(bytes));
  // Stack on top of any prior acquisition instead of requiring release-first.
  if (ctx_ == nullptr) ctx_ = ctx;
  bytes_ += bytes;
  return Status::OK();
}

void SpillReservation::Release() {
  if (ctx_ != nullptr && bytes_ > 0) {
    ctx_->ReleaseMemory(bytes_);
  }
  bytes_ = 0;
  ctx_ = nullptr;
}

}  // namespace magicdb
