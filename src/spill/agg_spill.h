#ifndef MAGICDB_SPILL_AGG_SPILL_H_
#define MAGICDB_SPILL_AGG_SPILL_H_

/// Out-of-core hash aggregation: victim-partition eviction with partial
/// aggregate states, engaged by HashAggregateOp when a new group breaches
/// the query's memory limit and spilling is enabled.
///
/// Protocol (driven by HashAggregateOp, sequential mode):
///   - On breach, EvictNextPartition() picks the next unspilled hash
///     partition as the victim, writes its in-memory groups to the victim's
///     spill file as partial-state records, and releases their memory.
///     Rows that later route to a spilled partition (IsSpilled) bypass the
///     table: the operator folds them into a one-row partial state and
///     AddPartial()s it. Repeated breaches evict further partitions.
///   - Groups of never-spilled partitions stay in memory and are complete
///     at end of input — they form the resident run.
///   - BuildOutput() re-aggregates the spilled partitions one at a time:
///     partials of one partition are combined (AggState::CombineFrom, exact
///     for every supported aggregate) into a charged table, keeping the
///     minimum first-seen rank; a partition that still breaches recurses at
///     depth+1. Each re-aggregated partition is written out as one run
///     sorted by first-seen rank.
///   - NextGroup() merges the resident run and the output runs by
///     first-seen rank (pos, sub) — exactly the insertion order a fully
///     in-memory aggregation emits, so results are byte-identical.
///
/// Ranks are unique across groups (one input row creates at most one
/// group), so the merge has no ties and needs no further tiebreak.

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/statusor.h"
#include "src/parallel/partitioned_aggregate.h"
#include "src/spill/spill_file.h"
#include "src/spill/spill_manager.h"
#include "src/spill/spill_partition_set.h"

namespace magicdb {

class ExecContext;

class AggSpill {
 public:
  AggSpill(std::shared_ptr<SpillManager> mgr, size_t num_states);

  Status Start(ExecContext* ctx);

  bool IsSpilled(uint64_t hash) const {
    return spilled_[partitions_->PartitionFor(hash)];
  }
  bool AllSpilled() const { return next_victim_ >= partitions_->fanout(); }

  /// Bytes one group retains: its key tuple plus one AggState per
  /// aggregate. Shared with HashAggregateOp's charging so eviction releases
  /// exactly what insertion charged.
  int64_t GroupBytes(const StagedGroup& g) const {
    return TupleByteWidth(g.key) +
           static_cast<int64_t>(num_states_ * sizeof(AggState));
  }

  /// Evicts the next victim partition: moves its groups from
  /// `groups`/`index` to the partition file, releasing their bytes from the
  /// tracker and from `*charged_bytes`.
  Status EvictNextPartition(
      std::vector<StagedGroup>* groups,
      std::unordered_map<uint64_t, std::vector<int64_t>>* index,
      int64_t* charged_bytes, ExecContext* ctx);

  /// Appends one partial-state record for a row routed to a spilled
  /// partition.
  Status AddPartial(const StagedGroup& g, ExecContext* ctx);

  /// Seals the partition files after the last input row.
  Status FinishInput(ExecContext* ctx);

  /// Re-aggregates the spilled partitions and takes ownership of the
  /// resident (never-spilled, rank-ordered) groups; afterwards NextGroup
  /// streams the merged result. The resident groups' memory remains
  /// charged by the operator.
  Status BuildOutput(std::vector<StagedGroup> resident, ExecContext* ctx);

  Status NextGroup(StagedGroup* out, bool* has_group, ExecContext* ctx);

 private:
  struct Task {
    std::unique_ptr<SpillFile> file;
    int depth = 0;
  };
  struct RunCursor {
    std::unique_ptr<SpillFile> file;
    bool has = false;
    StagedGroup group;
  };

  Status ProcessTask(Task task, std::vector<Task>* stack, ExecContext* ctx);
  Status Repartition(Task task, std::vector<Task>* stack, ExecContext* ctx);
  Status AdvanceRun(RunCursor* run, ExecContext* ctx);

  const std::shared_ptr<SpillManager> mgr_;
  const size_t num_states_;
  std::unique_ptr<SpillPartitionSet> partitions_;
  std::vector<bool> spilled_;
  int next_victim_ = 0;
  /// Write-buffer reservation held, acquired on the first eviction (after
  /// the victims' charge is released — see EvictNextPartition).
  bool reserved_ = false;

  std::vector<StagedGroup> resident_;
  size_t resident_pos_ = 0;
  std::vector<RunCursor> outputs_;
  SpillReservation merge_reservation_;
  bool merge_ready_ = false;
  std::string scratch_;
};

}  // namespace magicdb

#endif  // MAGICDB_SPILL_AGG_SPILL_H_
