#ifndef MAGICDB_SPILL_ROW_SERDE_H_
#define MAGICDB_SPILL_ROW_SERDE_H_

/// Binary row serialization for the spill subsystem.
///
/// Spilled state crosses an operator's lifetime but never a process or
/// machine boundary, so the format optimizes for fidelity and simplicity
/// over portability: fixed-width little-endian scalars, a one-byte type tag
/// per value, length-prefixed strings. Deserializing a record reproduces
/// the exact Value variants that went in — including the NULL/bool/int64/
/// double distinctions the engine's comparison and hashing semantics depend
/// on — which is what makes spilled execution byte-identical to in-memory
/// execution.
///
/// Every Read* function validates lengths against the buffer end and
/// returns kInternal on truncation or a bad tag, so a corrupt or
/// fault-injected spill file surfaces as a Status instead of undefined
/// behavior.

#include <cstdint>
#include <string>

#include "src/common/statusor.h"
#include "src/exec/agg_state.h"
#include "src/parallel/partitioned_aggregate.h"
#include "src/types/tuple.h"
#include "src/types/value.h"

namespace magicdb {
namespace spill {

void AppendU8(std::string* out, uint8_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendI64(std::string* out, int64_t v);
void AppendF64(std::string* out, double v);
void AppendValue(std::string* out, const Value& v);
void AppendTuple(std::string* out, const Tuple& t);
void AppendAggState(std::string* out, const AggState& st);

/// Serializes a partial-aggregate group: first-seen rank, key hash, key
/// tuple, and one AggState per aggregate.
void AppendStagedGroup(std::string* out, const StagedGroup& g);

/// Sequential reader over one serialized record (a contiguous byte range).
/// The range must outlive the reader.
class RecordReader {
 public:
  RecordReader(const char* data, size_t size)
      : p_(data), end_(data + size) {}

  bool done() const { return p_ == end_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadI64(int64_t* v);
  Status ReadF64(double* v);
  Status ReadValue(Value* v);
  Status ReadTuple(Tuple* t);
  Status ReadAggState(AggState* st);
  Status ReadStagedGroup(StagedGroup* g);

 private:
  Status Need(size_t n);

  const char* p_;
  const char* end_;
};

}  // namespace spill
}  // namespace magicdb

#endif  // MAGICDB_SPILL_ROW_SERDE_H_
