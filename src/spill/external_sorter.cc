#include "src/spill/external_sorter.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/exec/exec_context.h"
#include "src/spill/row_serde.h"

namespace magicdb {

ExternalSorter::ExternalSorter(std::shared_ptr<SpillManager> mgr,
                               std::vector<bool> ascending)
    : mgr_(std::move(mgr)), ascending_(std::move(ascending)) {}

int ExternalSorter::CompareKeys(const Tuple& a, const Tuple& b) const {
  for (size_t k = 0; k < ascending_.size(); ++k) {
    const int c = a[k].Compare(b[k]);
    if (c != 0) return ascending_[k] ? c : -c;
  }
  return 0;
}

void ExternalSorter::SortIndexes(const std::vector<Tuple>& keys,
                                 std::vector<int64_t>* order) const {
  order->resize(keys.size());
  for (size_t i = 0; i < order->size(); ++i) {
    (*order)[i] = static_cast<int64_t>(i);
  }
  std::sort(order->begin(), order->end(), [&](int64_t a, int64_t b) {
    const int c = CompareKeys(keys[a], keys[b]);
    if (c != 0) return c < 0;
    return a < b;  // stable tiebreak: input order
  });
}

Status ExternalSorter::SpillRun(std::vector<Tuple>* rows,
                                std::vector<Tuple>* keys, int64_t base_seq,
                                int64_t* charged_bytes, ExecContext* ctx) {
  MAGICDB_CHECK(rows->size() == keys->size());
  // Release the buffered rows' charge before reserving the write buffer:
  // the breach that triggered this flush left the tracker full, and the
  // rows stream out of memory as the run is written.
  ctx->ReleaseMemory(*charged_bytes);
  *charged_bytes = 0;
  // One write buffer lives while the run streams out.
  SpillReservation run_reservation;
  MAGICDB_RETURN_IF_ERROR(
      run_reservation.Acquire(ctx, mgr_->config().batch_bytes));
  std::vector<int64_t> order;
  SortIndexes(*keys, &order);
  auto file = std::make_unique<SpillFile>(mgr_.get(), "sort-run");
  for (int64_t i : order) {
    scratch_.clear();
    spill::AppendI64(&scratch_, base_seq + i);
    spill::AppendTuple(&scratch_, (*keys)[i]);
    spill::AppendTuple(&scratch_, (*rows)[i]);
    MAGICDB_RETURN_IF_ERROR(file->Append(scratch_, ctx));
  }
  MAGICDB_RETURN_IF_ERROR(file->FinishWrite(ctx));
  RunCursor run;
  run.file = std::move(file);
  runs_.push_back(std::move(run));
  rows->clear();
  keys->clear();
  return Status::OK();
}

Status ExternalSorter::FinishInput(std::vector<Tuple> rows,
                                   std::vector<Tuple> keys, int64_t base_seq,
                                   ExecContext* ctx) {
  std::vector<int64_t> order;
  SortIndexes(keys, &order);
  mem_rows_.reserve(rows.size());
  mem_keys_.reserve(keys.size());
  mem_seqs_.reserve(order.size());
  for (int64_t i : order) {
    mem_rows_.push_back(std::move(rows[i]));
    mem_keys_.push_back(std::move(keys[i]));
    mem_seqs_.push_back(base_seq + i);
  }
  mem_pos_ = 0;
  MAGICDB_RETURN_IF_ERROR(merge_reservation_.Acquire(
      ctx, static_cast<int64_t>(runs_.size()) * mgr_->config().batch_bytes));
  for (RunCursor& run : runs_) {
    MAGICDB_RETURN_IF_ERROR(run.file->Rewind());
    MAGICDB_RETURN_IF_ERROR(AdvanceRun(&run, ctx));
  }
  merge_ready_ = true;
  return Status::OK();
}

Status ExternalSorter::AdvanceRun(RunCursor* run, ExecContext* ctx) {
  std::string_view record;
  bool has = false;
  MAGICDB_RETURN_IF_ERROR(run->file->NextRecord(&record, &has, ctx));
  if (!has) {
    run->has = false;
    return Status::OK();
  }
  spill::RecordReader reader(record.data(), record.size());
  MAGICDB_RETURN_IF_ERROR(reader.ReadI64(&run->seq));
  MAGICDB_RETURN_IF_ERROR(reader.ReadTuple(&run->key));
  MAGICDB_RETURN_IF_ERROR(reader.ReadTuple(&run->row));
  run->has = true;
  return Status::OK();
}

Status ExternalSorter::Next(Tuple* out, bool* eof, ExecContext* ctx) {
  MAGICDB_CHECK(merge_ready_);
  RunCursor* best = nullptr;
  for (RunCursor& run : runs_) {
    if (!run.has) continue;
    if (best == nullptr) {
      best = &run;
      continue;
    }
    const int c = CompareKeys(run.key, best->key);
    if (c < 0 || (c == 0 && run.seq < best->seq)) best = &run;
  }
  const bool mem_left = mem_pos_ < mem_rows_.size();
  if (mem_left) {
    bool take_mem = best == nullptr;
    if (!take_mem) {
      const int c = CompareKeys(mem_keys_[mem_pos_], best->key);
      take_mem = c < 0 || (c == 0 && mem_seqs_[mem_pos_] < best->seq);
    }
    if (take_mem) {
      *out = std::move(mem_rows_[mem_pos_++]);
      *eof = false;
      return Status::OK();
    }
  }
  if (best == nullptr) {
    *eof = true;
    merge_reservation_.Release();
    return Status::OK();
  }
  *out = std::move(best->row);
  *eof = false;
  return AdvanceRun(best, ctx);
}

}  // namespace magicdb
