#ifndef MAGICDB_SPILL_SPILL_MANAGER_H_
#define MAGICDB_SPILL_SPILL_MANAGER_H_

/// Out-of-core execution: temp-file lifecycle and global spill accounting.
///
/// A SpillManager owns the configuration of one spill area (directory,
/// write-batch size, partition fanout, recursion bound) and the
/// process-observable counters behind the `magicdb_spill_*` metrics. One
/// manager is shared by every query of a QueryService; SpillFile and
/// SpillPartitionSet objects are created through it and report their I/O
/// back to it. The manager itself performs no I/O.
///
/// Spilling is disabled when the directory is empty — every consumer
/// checks `ExecContext::spill_enabled()` before attempting to spill, so a
/// service without a `spill_dir` keeps the PR-5 behavior: a governed query
/// that outgrows its memory limit fails with kResourceExhausted.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/cost_counters.h"
#include "src/common/status.h"

namespace magicdb {

struct SpillConfig {
  /// Directory for spill temp files. Empty = spilling disabled.
  std::string dir;
  /// Bytes buffered per open spill file before a frame is written; also the
  /// unit of the read buffer, so it bounds per-file memory either way.
  int64_t batch_bytes = 16 * 1024;
  /// Partitions per recursive partitioning level.
  int fanout = CostConstants::kSpillFanout;
  /// Maximum recursive partitioning depth. A partition that still exceeds
  /// the memory limit after this many splits (e.g. one giant duplicate-key
  /// bucket) fails the query with kResourceExhausted.
  int max_recursion_depth = 6;
  /// Service-wide disk budget (bytes) across every live spill file. A frame
  /// flush that would exceed it fails *that* query with kResourceExhausted
  /// — the requester is the victim, never a bystander — and each file's
  /// charges are released when it is destroyed, so the budget frees as
  /// queries finish. 0 (the default) = unbounded.
  int64_t disk_budget_bytes = 0;
};

class SpillManager {
 public:
  explicit SpillManager(SpillConfig config) : config_(std::move(config)) {
    if (config_.batch_bytes < 256) config_.batch_bytes = 256;
    if (config_.fanout < 2) config_.fanout = 2;
    if (config_.max_recursion_depth < 1) config_.max_recursion_depth = 1;
  }

  bool enabled() const { return !config_.dir.empty(); }
  const SpillConfig& config() const { return config_; }

  /// Path for the next spill file: unique within the process, labeled for
  /// debuggability (`magicdb-spill-<pid>-<seq>-<label>.bin`).
  std::string NextFilePath(const std::string& label);

  // --- service-wide disk budget ---

  /// Charges `bytes` of spill-disk usage against the budget before a frame
  /// hits the filesystem. kResourceExhausted (nothing retained) when the
  /// budget would be exceeded; the caller must fail its own query. Always
  /// OK with an unbounded budget. Failpoint site: `spill.budget.charge`.
  Status ChargeDisk(int64_t bytes);

  /// Returns bytes previously charged with ChargeDisk (SpillFile releases
  /// its cumulative charge on destruction, alongside the unlink).
  void ReleaseDisk(int64_t bytes);

  int64_t disk_budget_bytes() const { return config_.disk_budget_bytes; }
  int64_t disk_used_bytes() const {
    return disk_used_.load(std::memory_order_relaxed);
  }
  int64_t disk_budget_rejections() const {
    return disk_budget_rejections_.load(std::memory_order_relaxed);
  }

  // --- global counters (the magicdb_spill_* metrics) ---

  void AddBytesWritten(int64_t n) {
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddBytesRead(int64_t n) {
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void NoteFileCreated() {
    files_created_.fetch_add(1, std::memory_order_relaxed);
  }
  void NotePartitionOpened() {
    partitions_opened_.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteRecursionDepth(int depth) {
    int64_t cur = max_recursion_depth_seen_.load(std::memory_order_relaxed);
    while (depth > cur && !max_recursion_depth_seen_.compare_exchange_weak(
                              cur, depth, std::memory_order_relaxed)) {
    }
  }
  void NoteQuerySpilled() {
    spilled_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  int64_t bytes_read() const {
    return bytes_read_.load(std::memory_order_relaxed);
  }
  int64_t files_created() const {
    return files_created_.load(std::memory_order_relaxed);
  }
  int64_t partitions_opened() const {
    return partitions_opened_.load(std::memory_order_relaxed);
  }
  int64_t max_recursion_depth_seen() const {
    return max_recursion_depth_seen_.load(std::memory_order_relaxed);
  }
  int64_t spilled_queries() const {
    return spilled_queries_.load(std::memory_order_relaxed);
  }

 private:
  SpillConfig config_;
  std::atomic<uint64_t> next_file_id_{0};
  std::atomic<int64_t> bytes_written_{0};
  std::atomic<int64_t> bytes_read_{0};
  std::atomic<int64_t> files_created_{0};
  std::atomic<int64_t> partitions_opened_{0};
  std::atomic<int64_t> max_recursion_depth_seen_{0};
  std::atomic<int64_t> spilled_queries_{0};
  std::atomic<int64_t> disk_used_{0};
  std::atomic<int64_t> disk_budget_rejections_{0};
};

/// Deterministic partition router: which of `fanout` partitions a key hash
/// belongs to at recursion `depth`. Each depth remixes the hash with a
/// different constant, so a partition that recurses redistributes its rows
/// instead of landing them all in one child again (identical hashes — one
/// giant duplicate key — are the one case recursion cannot split, which is
/// why the depth bound exists).
uint64_t SpillPartitionOf(uint64_t hash, int depth, int fanout);

/// RAII charge of a fixed byte amount against a query's memory tracker,
/// used for spill I/O buffers (write buffers of a partition set, read
/// buffers of a merge): spilling itself consumes governed memory and must
/// never evade the governor.
class SpillReservation {
 public:
  SpillReservation() = default;
  ~SpillReservation() { Release(); }

  SpillReservation(const SpillReservation&) = delete;
  SpillReservation& operator=(const SpillReservation&) = delete;

  /// Charges `bytes` to `ctx`'s tracker; on kResourceExhausted nothing is
  /// retained. `ctx` must outlive the reservation.
  Status Acquire(class ExecContext* ctx, int64_t bytes);
  void Release();

 private:
  class ExecContext* ctx_ = nullptr;
  int64_t bytes_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_SPILL_SPILL_MANAGER_H_
