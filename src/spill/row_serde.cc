#include "src/spill/row_serde.h"

#include <cstring>

namespace magicdb {
namespace spill {

namespace {

// Value type tags. Stable across the lifetime of one spill file only, so
// renumbering is safe as long as writer and reader agree within a build.
constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagBool = 1;
constexpr uint8_t kTagInt64 = 2;
constexpr uint8_t kTagDouble = 3;
constexpr uint8_t kTagString = 4;

template <typename T>
void AppendRaw(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

}  // namespace

void AppendU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }
void AppendU32(std::string* out, uint32_t v) { AppendRaw(out, v); }
void AppendU64(std::string* out, uint64_t v) { AppendRaw(out, v); }
void AppendI64(std::string* out, int64_t v) { AppendRaw(out, v); }
void AppendF64(std::string* out, double v) { AppendRaw(out, v); }

void AppendValue(std::string* out, const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      AppendU8(out, kTagNull);
      return;
    case DataType::kBool:
      AppendU8(out, kTagBool);
      AppendU8(out, v.AsBool() ? 1 : 0);
      return;
    case DataType::kInt64:
      AppendU8(out, kTagInt64);
      AppendI64(out, v.AsInt64());
      return;
    case DataType::kDouble:
      AppendU8(out, kTagDouble);
      AppendF64(out, v.AsDouble());
      return;
    case DataType::kString: {
      const std::string& s = v.AsString();
      AppendU8(out, kTagString);
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      return;
    }
  }
}

void AppendTuple(std::string* out, const Tuple& t) {
  AppendU32(out, static_cast<uint32_t>(t.size()));
  for (const Value& v : t) AppendValue(out, v);
}

void AppendAggState(std::string* out, const AggState& st) {
  AppendI64(out, st.count);
  AppendF64(out, st.sum);
  AppendI64(out, st.isum);
  AppendU8(out, st.int_sum ? 1 : 0);
  AppendValue(out, st.min);
  AppendValue(out, st.max);
}

void AppendStagedGroup(std::string* out, const StagedGroup& g) {
  AppendI64(out, g.pos);
  AppendI64(out, g.sub);
  AppendU64(out, g.hash);
  AppendTuple(out, g.key);
  AppendU32(out, static_cast<uint32_t>(g.states.size()));
  for (const AggState& st : g.states) AppendAggState(out, st);
}

Status RecordReader::Need(size_t n) {
  if (remaining() < n) {
    return Status::Internal("spill record truncated: need " +
                            std::to_string(n) + " bytes, have " +
                            std::to_string(remaining()));
  }
  return Status::OK();
}

Status RecordReader::ReadU8(uint8_t* v) {
  MAGICDB_RETURN_IF_ERROR(Need(1));
  *v = static_cast<uint8_t>(*p_++);
  return Status::OK();
}

Status RecordReader::ReadU32(uint32_t* v) {
  MAGICDB_RETURN_IF_ERROR(Need(sizeof(*v)));
  std::memcpy(v, p_, sizeof(*v));
  p_ += sizeof(*v);
  return Status::OK();
}

Status RecordReader::ReadU64(uint64_t* v) {
  MAGICDB_RETURN_IF_ERROR(Need(sizeof(*v)));
  std::memcpy(v, p_, sizeof(*v));
  p_ += sizeof(*v);
  return Status::OK();
}

Status RecordReader::ReadI64(int64_t* v) {
  MAGICDB_RETURN_IF_ERROR(Need(sizeof(*v)));
  std::memcpy(v, p_, sizeof(*v));
  p_ += sizeof(*v);
  return Status::OK();
}

Status RecordReader::ReadF64(double* v) {
  MAGICDB_RETURN_IF_ERROR(Need(sizeof(*v)));
  std::memcpy(v, p_, sizeof(*v));
  p_ += sizeof(*v);
  return Status::OK();
}

Status RecordReader::ReadValue(Value* v) {
  uint8_t tag = 0;
  MAGICDB_RETURN_IF_ERROR(ReadU8(&tag));
  switch (tag) {
    case kTagNull:
      *v = Value::Null();
      return Status::OK();
    case kTagBool: {
      uint8_t b = 0;
      MAGICDB_RETURN_IF_ERROR(ReadU8(&b));
      *v = Value::Bool(b != 0);
      return Status::OK();
    }
    case kTagInt64: {
      int64_t i = 0;
      MAGICDB_RETURN_IF_ERROR(ReadI64(&i));
      *v = Value::Int64(i);
      return Status::OK();
    }
    case kTagDouble: {
      double d = 0;
      MAGICDB_RETURN_IF_ERROR(ReadF64(&d));
      *v = Value::Double(d);
      return Status::OK();
    }
    case kTagString: {
      uint32_t len = 0;
      MAGICDB_RETURN_IF_ERROR(ReadU32(&len));
      MAGICDB_RETURN_IF_ERROR(Need(len));
      *v = Value::String(std::string(p_, len));
      p_ += len;
      return Status::OK();
    }
    default:
      return Status::Internal("spill record has bad value tag " +
                              std::to_string(tag));
  }
}

Status RecordReader::ReadTuple(Tuple* t) {
  uint32_t n = 0;
  MAGICDB_RETURN_IF_ERROR(ReadU32(&n));
  t->clear();
  t->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Value v;
    MAGICDB_RETURN_IF_ERROR(ReadValue(&v));
    t->push_back(std::move(v));
  }
  return Status::OK();
}

Status RecordReader::ReadAggState(AggState* st) {
  uint8_t int_sum = 0;
  MAGICDB_RETURN_IF_ERROR(ReadI64(&st->count));
  MAGICDB_RETURN_IF_ERROR(ReadF64(&st->sum));
  MAGICDB_RETURN_IF_ERROR(ReadI64(&st->isum));
  MAGICDB_RETURN_IF_ERROR(ReadU8(&int_sum));
  st->int_sum = int_sum != 0;
  MAGICDB_RETURN_IF_ERROR(ReadValue(&st->min));
  MAGICDB_RETURN_IF_ERROR(ReadValue(&st->max));
  return Status::OK();
}

Status RecordReader::ReadStagedGroup(StagedGroup* g) {
  MAGICDB_RETURN_IF_ERROR(ReadI64(&g->pos));
  MAGICDB_RETURN_IF_ERROR(ReadI64(&g->sub));
  MAGICDB_RETURN_IF_ERROR(ReadU64(&g->hash));
  MAGICDB_RETURN_IF_ERROR(ReadTuple(&g->key));
  uint32_t n = 0;
  MAGICDB_RETURN_IF_ERROR(ReadU32(&n));
  g->states.clear();
  g->states.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    MAGICDB_RETURN_IF_ERROR(ReadAggState(&g->states[i]));
  }
  return Status::OK();
}

}  // namespace spill
}  // namespace magicdb
