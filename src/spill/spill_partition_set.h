#ifndef MAGICDB_SPILL_SPILL_PARTITION_SET_H_
#define MAGICDB_SPILL_SPILL_PARTITION_SET_H_

/// One level of recursive hash partitioning: `fanout` lazily-created spill
/// files, rows routed by SpillPartitionOf(hash, depth, fanout). Consumers
/// (Grace join, hybrid aggregation) write records during the input pass,
/// FinishWrites(), then take the per-partition files for processing — and
/// recurse with a child set at depth+1 when a partition still exceeds the
/// memory limit.
///
/// Memory: Reserve() charges fanout × batch_bytes of write-buffer memory to
/// the query's tracker up front, so partitioning cannot silently consume
/// ungoverned memory; the reservation is released when the set is destroyed
/// or ReleaseReservation() is called (after FinishWrites, when write
/// buffers are gone).
///
/// Failpoint: `spill.partition.open` fires when a partition's file is first
/// created.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/statusor.h"
#include "src/spill/spill_file.h"
#include "src/spill/spill_manager.h"

namespace magicdb {

class ExecContext;

class SpillPartitionSet {
 public:
  SpillPartitionSet(SpillManager* mgr, std::string label, int depth,
                    bool charge_cost = true);

  int fanout() const { return static_cast<int>(files_.size()); }
  int depth() const { return depth_; }

  /// Charges the write-buffer budget for this set. Call once before Add.
  Status Reserve(ExecContext* ctx);

  int PartitionFor(uint64_t hash) const {
    return static_cast<int>(
        SpillPartitionOf(hash, depth_, static_cast<int>(files_.size())));
  }

  /// Routes one serialized record to the partition its hash selects.
  Status Add(uint64_t hash, std::string_view record, ExecContext* ctx);

  /// Appends one serialized record to a specific partition.
  Status AddTo(int partition, std::string_view record, ExecContext* ctx);

  /// Flushes and seals every partition file. Call once after the last Add.
  Status FinishWrites(ExecContext* ctx);

  void ReleaseReservation() { reservation_.Release(); }

  int64_t records(int partition) const;

  /// Transfers ownership of a sealed partition file; null when the
  /// partition never received a record. Only after FinishWrites.
  std::unique_ptr<SpillFile> TakeFile(int partition);

 private:
  SpillManager* const mgr_;
  const std::string label_;
  const int depth_;
  const bool charge_cost_;
  std::vector<std::unique_ptr<SpillFile>> files_;
  SpillReservation reservation_;
  bool finished_ = false;
};

}  // namespace magicdb

#endif  // MAGICDB_SPILL_SPILL_PARTITION_SET_H_
