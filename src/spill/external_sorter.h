#ifndef MAGICDB_SPILL_EXTERNAL_SORTER_H_
#define MAGICDB_SPILL_EXTERNAL_SORTER_H_

/// External merge sort for ORDER BY, engaged by SortOp when the buffered
/// input breaches the query's memory limit and spilling is enabled.
///
/// Run formation: each time the buffer breaches, SpillRun() sorts it by
/// (sort keys, input sequence) and writes one sorted run of
/// (seq, key tuple, row) records — the computed key tuples travel with the
/// rows so merging never re-evaluates sort expressions. The final buffer
/// stays in memory as the resident run (FinishInput). Next() k-way merges
/// all runs by (keys under their asc/desc flags, then input sequence) —
/// the same comparator, including the stable input-order tiebreak, the
/// in-memory sort uses, so spilled output is byte-identical to in-memory
/// output.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/spill/spill_file.h"
#include "src/spill/spill_manager.h"
#include "src/types/tuple.h"

namespace magicdb {

class ExecContext;

class ExternalSorter {
 public:
  ExternalSorter(std::shared_ptr<SpillManager> mgr,
                 std::vector<bool> ascending);

  /// Sorts the buffer (rows + their precomputed key tuples, whose global
  /// input sequence starts at `base_seq`), writes it as one run, clears the
  /// vectors and releases `*charged_bytes` from the tracker.
  Status SpillRun(std::vector<Tuple>* rows, std::vector<Tuple>* keys,
                  int64_t base_seq, int64_t* charged_bytes, ExecContext* ctx);

  /// Registers the final buffer as the resident run (sorted in place, its
  /// memory stays charged by the operator) and prepares the merge.
  Status FinishInput(std::vector<Tuple> rows, std::vector<Tuple> keys,
                     int64_t base_seq, ExecContext* ctx);

  Status Next(Tuple* out, bool* eof, ExecContext* ctx);

  int64_t file_runs() const { return static_cast<int64_t>(runs_.size()); }

 private:
  struct RunCursor {
    std::unique_ptr<SpillFile> file;
    bool has = false;
    int64_t seq = 0;
    Tuple key;
    Tuple row;
  };

  /// (keys under asc flags, seq) — the in-memory comparator with the
  /// stable tiebreak made explicit.
  int CompareKeys(const Tuple& a, const Tuple& b) const;
  void SortIndexes(const std::vector<Tuple>& keys,
                   std::vector<int64_t>* order) const;
  Status AdvanceRun(RunCursor* run, ExecContext* ctx);

  const std::shared_ptr<SpillManager> mgr_;
  const std::vector<bool> ascending_;

  std::vector<RunCursor> runs_;
  // Resident run, already sorted; seqs_ carries the input sequence for the
  // cross-run tiebreak.
  std::vector<Tuple> mem_rows_;
  std::vector<Tuple> mem_keys_;
  std::vector<int64_t> mem_seqs_;
  size_t mem_pos_ = 0;
  SpillReservation merge_reservation_;
  bool merge_ready_ = false;
  std::string scratch_;
};

}  // namespace magicdb

#endif  // MAGICDB_SPILL_EXTERNAL_SORTER_H_
