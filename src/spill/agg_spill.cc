#include "src/spill/agg_spill.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/exec/exec_context.h"
#include "src/spill/row_serde.h"

namespace magicdb {

namespace {
bool RankLess(const StagedGroup& a, const StagedGroup& b) {
  if (a.pos != b.pos) return a.pos < b.pos;
  return a.sub < b.sub;
}
}  // namespace

AggSpill::AggSpill(std::shared_ptr<SpillManager> mgr, size_t num_states)
    : mgr_(std::move(mgr)), num_states_(num_states) {}

Status AggSpill::Start(ExecContext* /*ctx*/) {
  partitions_ = std::make_unique<SpillPartitionSet>(mgr_.get(), "agg", 0);
  spilled_.assign(partitions_->fanout(), false);
  // The write-buffer reservation is deferred to the first eviction: at
  // breach time the tracker is full, and the buffers can only fit in the
  // room the evicted groups give back.
  return Status::OK();
}

Status AggSpill::EvictNextPartition(
    std::vector<StagedGroup>* groups,
    std::unordered_map<uint64_t, std::vector<int64_t>>* index,
    int64_t* charged_bytes, ExecContext* ctx) {
  MAGICDB_CHECK(!AllSpilled());
  // Pick victims and release their accounting first. The first eviction
  // keeps taking partitions until the freed bytes cover the partition
  // write buffers themselves; later evictions take exactly one.
  const int64_t need =
      reserved_ ? 0
                : static_cast<int64_t>(partitions_->fanout()) *
                      mgr_->config().batch_bytes;
  int64_t released = 0;
  do {
    const int victim = next_victim_++;
    spilled_[victim] = true;
    for (const StagedGroup& g : *groups) {
      if (partitions_->PartitionFor(g.hash) == victim) {
        released += GroupBytes(g);
      }
    }
  } while (released <= need && !AllSpilled());
  ctx->ReleaseMemory(released);
  *charged_bytes -= released;
  if (!reserved_) {
    MAGICDB_RETURN_IF_ERROR(partitions_->Reserve(ctx));
    reserved_ = true;
  }
  std::vector<StagedGroup> kept;
  kept.reserve(groups->size());
  for (StagedGroup& g : *groups) {
    const int p = partitions_->PartitionFor(g.hash);
    if (spilled_[p]) {
      scratch_.clear();
      spill::AppendStagedGroup(&scratch_, g);
      MAGICDB_RETURN_IF_ERROR(partitions_->AddTo(p, scratch_, ctx));
    } else {
      kept.push_back(std::move(g));
    }
  }
  groups->swap(kept);
  index->clear();
  for (size_t i = 0; i < groups->size(); ++i) {
    (*index)[(*groups)[i].hash].push_back(static_cast<int64_t>(i));
  }
  return Status::OK();
}

Status AggSpill::AddPartial(const StagedGroup& g, ExecContext* ctx) {
  scratch_.clear();
  spill::AppendStagedGroup(&scratch_, g);
  return partitions_->Add(g.hash, scratch_, ctx);
}

Status AggSpill::FinishInput(ExecContext* ctx) {
  return partitions_->FinishWrites(ctx);
}

Status AggSpill::BuildOutput(std::vector<StagedGroup> resident,
                             ExecContext* ctx) {
  resident_ = std::move(resident);
  resident_pos_ = 0;
  std::vector<Task> stack;
  for (int p = 0; p < partitions_->fanout(); ++p) {
    if (partitions_->records(p) == 0) continue;
    Task t;
    t.file = partitions_->TakeFile(p);
    t.depth = 0;
    stack.push_back(std::move(t));
  }
  partitions_.reset();
  while (!stack.empty()) {
    MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    Task task = std::move(stack.back());
    stack.pop_back();
    MAGICDB_RETURN_IF_ERROR(ProcessTask(std::move(task), &stack, ctx));
  }
  MAGICDB_RETURN_IF_ERROR(merge_reservation_.Acquire(
      ctx,
      static_cast<int64_t>(outputs_.size()) * mgr_->config().batch_bytes));
  for (RunCursor& run : outputs_) {
    MAGICDB_RETURN_IF_ERROR(run.file->Rewind());
    MAGICDB_RETURN_IF_ERROR(AdvanceRun(&run, ctx));
  }
  merge_ready_ = true;
  return Status::OK();
}

Status AggSpill::ProcessTask(Task task, std::vector<Task>* stack,
                             ExecContext* ctx) {
  // Transient buffers: the partition's read frame + the output run's write
  // buffer.
  SpillReservation task_reservation;
  MAGICDB_RETURN_IF_ERROR(
      task_reservation.Acquire(ctx, 2 * mgr_->config().batch_bytes));

  std::vector<StagedGroup> groups;
  std::unordered_map<uint64_t, std::vector<int64_t>> index;
  int64_t charged = 0;
  MAGICDB_RETURN_IF_ERROR(task.file->Rewind());
  int64_t loop = 0;
  Status status;
  while (true) {
    if ((++loop & 1023) == 0) {
      status = ctx->CheckCancelled();
      if (!status.ok()) break;
    }
    std::string_view record;
    bool has = false;
    status = task.file->NextRecord(&record, &has, ctx);
    if (!status.ok() || !has) break;
    spill::RecordReader reader(record.data(), record.size());
    StagedGroup partial;
    status = reader.ReadStagedGroup(&partial);
    if (status.ok() && partial.states.size() != num_states_) {
      status = Status::Internal("aggregate spill record has " +
                                std::to_string(partial.states.size()) +
                                " states, expected " +
                                std::to_string(num_states_));
    }
    if (!status.ok()) break;
    StagedGroup* group = nullptr;
    for (int64_t gi : index[partial.hash]) {
      if (CompareTuples(groups[gi].key, partial.key) == 0) {
        group = &groups[gi];
        break;
      }
    }
    if (group == nullptr) {
      const int64_t group_bytes = GroupBytes(partial);
      status = ctx->ChargeMemory(group_bytes);
      if (!status.ok()) {
        ctx->ReleaseMemory(charged);
        if (status.code() != StatusCode::kResourceExhausted) return status;
        return Repartition(std::move(task), stack, ctx);
      }
      charged += group_bytes;
      index[partial.hash].push_back(static_cast<int64_t>(groups.size()));
      groups.push_back(std::move(partial));
      continue;
    }
    // Combine the partial into the existing group, keeping the minimum
    // first-seen rank — re-creations after eviction carry later ranks.
    if (RankLess(partial, *group)) {
      group->pos = partial.pos;
      group->sub = partial.sub;
    }
    for (size_t a = 0; a < group->states.size(); ++a) {
      group->states[a].CombineFrom(partial.states[a]);
    }
  }
  if (!status.ok()) {
    ctx->ReleaseMemory(charged);
    return status;
  }
  std::sort(groups.begin(), groups.end(), RankLess);
  if (!groups.empty()) {
    auto out = std::make_unique<SpillFile>(mgr_.get(), "agg-out");
    for (const StagedGroup& g : groups) {
      scratch_.clear();
      spill::AppendStagedGroup(&scratch_, g);
      status = out->Append(scratch_, ctx);
      if (!status.ok()) break;
    }
    if (status.ok()) status = out->FinishWrite(ctx);
    if (status.ok()) {
      RunCursor run;
      run.file = std::move(out);
      outputs_.push_back(std::move(run));
    }
  }
  ctx->ReleaseMemory(charged);
  return status;
}

Status AggSpill::Repartition(Task task, std::vector<Task>* stack,
                             ExecContext* ctx) {
  const int next_depth = task.depth + 1;
  if (next_depth >= mgr_->config().max_recursion_depth) {
    return Status::ResourceExhausted(
        "query memory limit exceeded: aggregate spill partition still over "
        "the limit at recursion depth " +
        std::to_string(next_depth));
  }
  auto child =
      std::make_unique<SpillPartitionSet>(mgr_.get(), "agg", next_depth);
  MAGICDB_RETURN_IF_ERROR(child->Reserve(ctx));
  MAGICDB_RETURN_IF_ERROR(task.file->Rewind());
  int64_t loop = 0;
  while (true) {
    if ((++loop & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    std::string_view record;
    bool has = false;
    MAGICDB_RETURN_IF_ERROR(task.file->NextRecord(&record, &has, ctx));
    if (!has) break;
    spill::RecordReader reader(record.data(), record.size());
    StagedGroup partial;
    MAGICDB_RETURN_IF_ERROR(reader.ReadStagedGroup(&partial));
    MAGICDB_RETURN_IF_ERROR(child->Add(partial.hash, record, ctx));
  }
  MAGICDB_RETURN_IF_ERROR(child->FinishWrites(ctx));
  for (int p = 0; p < child->fanout(); ++p) {
    if (child->records(p) == 0) continue;
    Task t;
    t.file = child->TakeFile(p);
    t.depth = next_depth;
    stack->push_back(std::move(t));
  }
  return Status::OK();
}

Status AggSpill::AdvanceRun(RunCursor* run, ExecContext* ctx) {
  std::string_view record;
  bool has = false;
  MAGICDB_RETURN_IF_ERROR(run->file->NextRecord(&record, &has, ctx));
  if (!has) {
    run->has = false;
    return Status::OK();
  }
  spill::RecordReader reader(record.data(), record.size());
  MAGICDB_RETURN_IF_ERROR(reader.ReadStagedGroup(&run->group));
  run->has = true;
  return Status::OK();
}

Status AggSpill::NextGroup(StagedGroup* out, bool* has_group,
                           ExecContext* ctx) {
  MAGICDB_CHECK(merge_ready_);
  RunCursor* best = nullptr;
  for (RunCursor& run : outputs_) {
    if (run.has && (best == nullptr || RankLess(run.group, best->group))) {
      best = &run;
    }
  }
  const bool resident_left = resident_pos_ < resident_.size();
  if (resident_left &&
      (best == nullptr || RankLess(resident_[resident_pos_], best->group))) {
    *out = std::move(resident_[resident_pos_++]);
    *has_group = true;
    return Status::OK();
  }
  if (best == nullptr) {
    *has_group = false;
    merge_reservation_.Release();
    return Status::OK();
  }
  *out = std::move(best->group);
  *has_group = true;
  return AdvanceRun(best, ctx);
}

}  // namespace magicdb
