#include "src/catalog/catalog.h"

#include "src/common/failpoint.h"

namespace magicdb {

Status Catalog::CheckNameFree(const std::string& name) const {
  if (entries_.count(name) > 0) {
    return Status::AlreadyExists("relation already exists: " + name);
  }
  return Status::OK();
}

StatusOr<Table*> Catalog::CreateTable(const std::string& name, Schema schema) {
  MAGICDB_RETURN_IF_ERROR(CheckNameFree(name));
  // Fault injected at the entry of the mutate+epoch-bump critical section:
  // either nothing happens (this fault) or entry registration and the epoch
  // bump both happen — never an entry without a bump.
  MAGICDB_FAILPOINT("catalog.ddl.epoch_bump");
  Schema qualified = schema.WithQualifier(name);
  tables_.push_back(std::make_unique<Table>(name, qualified));
  Table* table = tables_.back().get();
  CatalogEntry entry;
  entry.kind = CatalogEntry::Kind::kBaseTable;
  entry.name = name;
  entry.schema = qualified;
  entry.table = table;
  entries_.emplace(name, std::move(entry));
  BumpEpoch();
  return table;
}

StatusOr<Table*> Catalog::CreateRemoteTable(const std::string& name,
                                            Schema schema, int site) {
  if (site <= kLocalSite) {
    return Status::InvalidArgument("remote site must be > 0, got " +
                                   std::to_string(site));
  }
  MAGICDB_RETURN_IF_ERROR(CheckNameFree(name));
  Schema qualified = schema.WithQualifier(name);
  tables_.push_back(std::make_unique<Table>(name, qualified));
  Table* table = tables_.back().get();
  CatalogEntry entry;
  entry.kind = CatalogEntry::Kind::kRemoteTable;
  entry.name = name;
  entry.schema = qualified;
  entry.table = table;
  entry.site = site;
  entries_.emplace(name, std::move(entry));
  BumpEpoch();
  return table;
}

Status Catalog::RegisterView(const std::string& name, LogicalPtr plan) {
  MAGICDB_RETURN_IF_ERROR(CheckNameFree(name));
  if (!plan) return Status::InvalidArgument("view plan is null");
  MAGICDB_FAILPOINT("catalog.ddl.epoch_bump");
  CatalogEntry entry;
  entry.kind = CatalogEntry::Kind::kView;
  entry.name = name;
  entry.schema = plan->schema().WithQualifier(name);
  entry.view_plan = std::move(plan);
  entries_.emplace(name, std::move(entry));
  BumpEpoch();
  return Status::OK();
}

Status Catalog::RegisterFunction(std::unique_ptr<TableFunction> function) {
  if (!function) return Status::InvalidArgument("function is null");
  const std::string name = function->name();
  MAGICDB_RETURN_IF_ERROR(CheckNameFree(name));
  functions_.push_back(std::move(function));
  TableFunction* fn = functions_.back().get();
  CatalogEntry entry;
  entry.kind = CatalogEntry::Kind::kTableFunction;
  entry.name = name;
  entry.schema = fn->RelationSchema().WithQualifier(name);
  entry.function = fn;
  entries_.emplace(name, std::move(entry));
  BumpEpoch();
  return Status::OK();
}

StatusOr<const CatalogEntry*> Catalog::Lookup(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  return &it->second;
}

Status Catalog::Analyze(const std::string& name, int histogram_buckets) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown relation: " + name);
  }
  CatalogEntry& entry = it->second;
  if (entry.table == nullptr) {
    return Status::InvalidArgument("relation has no stored data to analyze: " +
                                   name);
  }
  entry.stats = TableStats::Analyze(*entry.table, histogram_buckets);
  entry.stats_valid = true;
  BumpEpoch();
  return Status::OK();
}

Status Catalog::AnalyzeAll(int histogram_buckets) {
  for (auto& [name, entry] : entries_) {
    if (entry.table != nullptr) {
      entry.stats = TableStats::Analyze(*entry.table, histogram_buckets);
      entry.stats_valid = true;
    }
  }
  BumpEpoch();
  return Status::OK();
}

std::vector<std::string> Catalog::RelationNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

}  // namespace magicdb
