#ifndef MAGICDB_CATALOG_CATALOG_H_
#define MAGICDB_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/plan/logical_plan.h"
#include "src/stats/table_stats.h"
#include "src/storage/table.h"
#include "src/udr/table_function.h"

namespace magicdb {

/// Site 0 is the local site; higher numbers are remote sites in the
/// distributed cost model.
constexpr int kLocalSite = 0;

/// A named relation. The paper's central abstraction is the *virtual
/// relation*: anything that is not a locally materialized base table —
/// views, remote relations, user-defined relations (§1, §5).
struct CatalogEntry {
  enum class Kind { kBaseTable, kView, kRemoteTable, kTableFunction };

  Kind kind = Kind::kBaseTable;
  std::string name;
  /// Output schema qualified by `name`.
  Schema schema;

  /// Base and remote tables.
  Table* table = nullptr;
  int site = kLocalSite;

  /// Views: the bound logical plan of the definition.
  LogicalPtr view_plan;

  /// Table functions.
  TableFunction* function = nullptr;

  /// Stored-relation statistics (base and remote); filled by Analyze.
  TableStats stats;
  bool stats_valid = false;

  bool IsVirtual() const { return kind != Kind::kBaseTable; }
};

/// Name -> relation registry; owns all tables and functions. Case-sensitive
/// names.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates an empty local base table.
  StatusOr<Table*> CreateTable(const std::string& name, Schema schema);

  /// Creates an empty table homed at `site` (> 0). Joins against it pay
  /// communication costs.
  StatusOr<Table*> CreateRemoteTable(const std::string& name, Schema schema,
                                     int site);

  /// Registers a view over an already-bound logical plan. The view's schema
  /// is the plan's schema requalified by the view name.
  Status RegisterView(const std::string& name, LogicalPtr plan);

  /// Registers a user-defined relation.
  Status RegisterFunction(std::unique_ptr<TableFunction> function);

  StatusOr<const CatalogEntry*> Lookup(const std::string& name) const;

  /// Recomputes statistics for one stored relation.
  Status Analyze(const std::string& name, int histogram_buckets = 16);

  /// Recomputes statistics for every stored relation.
  Status AnalyzeAll(int histogram_buckets = 16);

  std::vector<std::string> RelationNames() const;

  /// Monotonic version of everything a cached plan depends on: bumped by
  /// every DDL (CreateTable / CreateRemoteTable / RegisterView /
  /// RegisterFunction) and by Analyze (statistics steer plan choice, so a
  /// plan cached under old stats must not be reused). Plan caches key their
  /// validity on this; readers may poll it concurrently with (externally
  /// serialized) DDL, hence the atomic.
  int64_t ddl_epoch() const { return ddl_epoch_.load(std::memory_order_acquire); }

 private:
  Status CheckNameFree(const std::string& name) const;

  void BumpEpoch() { ddl_epoch_.fetch_add(1, std::memory_order_acq_rel); }

  std::atomic<int64_t> ddl_epoch_{0};

  std::map<std::string, CatalogEntry> entries_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::vector<std::unique_ptr<TableFunction>> functions_;
};

}  // namespace magicdb

#endif  // MAGICDB_CATALOG_CATALOG_H_
