#include "src/expr/expr.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace magicdb {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

void Expr::CollectColumnRefs(std::vector<int>* out) const {
  CollectColumnRefsInternal(out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// ----- LiteralExpr -----

StatusOr<Value> LiteralExpr::Eval(const Tuple&) const { return value_; }

ExprPtr LiteralExpr::RemapColumns(const std::vector<int>&) const {
  return std::make_shared<LiteralExpr>(value_);
}

void LiteralExpr::CollectColumnRefsInternal(std::vector<int>*) const {}

// ----- ColumnRefExpr -----

StatusOr<Value> ColumnRefExpr::Eval(const Tuple& row) const {
  if (index_ < 0 || index_ >= static_cast<int>(row.size())) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of range for tuple of arity " +
                            std::to_string(row.size()));
  }
  return row[index_];
}

ExprPtr ColumnRefExpr::RemapColumns(const std::vector<int>& mapping) const {
  MAGICDB_CHECK(index_ >= 0 && index_ < static_cast<int>(mapping.size()));
  MAGICDB_CHECK(mapping[index_] >= 0);
  return std::make_shared<ColumnRefExpr>(mapping[index_], type_, name_);
}

void ColumnRefExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  out->push_back(index_);
}

std::string ColumnRefExpr::ToString() const {
  if (!name_.empty()) return name_;
  return "$" + std::to_string(index_);
}

// ----- ComparisonExpr -----

StatusOr<Value> ComparisonExpr::Eval(const Tuple& row) const {
  MAGICDB_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
  MAGICDB_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
  if (lv.is_null() || rv.is_null()) return Value::Null();
  const int c = lv.Compare(rv);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad compare op");
}

ExprPtr ComparisonExpr::RemapColumns(const std::vector<int>& mapping) const {
  return std::make_shared<ComparisonExpr>(op_, left_->RemapColumns(mapping),
                                          right_->RemapColumns(mapping));
}

void ComparisonExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  left_->CollectColumnRefs(out);
  std::vector<int> rhs;
  right_->CollectColumnRefs(&rhs);
  out->insert(out->end(), rhs.begin(), rhs.end());
}

std::string ComparisonExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString() + ")";
}

// ----- ArithmeticExpr -----

DataType ArithmeticExpr::result_type() const {
  if (left_->result_type() == DataType::kDouble ||
      right_->result_type() == DataType::kDouble ||
      op_ == ArithOp::kDiv) {
    return DataType::kDouble;
  }
  return DataType::kInt64;
}

StatusOr<Value> ArithmeticExpr::Eval(const Tuple& row) const {
  MAGICDB_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
  MAGICDB_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
  if (lv.is_null() || rv.is_null()) return Value::Null();
  // Exact integer arithmetic when both sides are int64 (except division).
  if (lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64 &&
      op_ != ArithOp::kDiv) {
    const int64_t a = lv.AsInt64();
    const int64_t b = rv.AsInt64();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      default:
        break;
    }
  }
  MAGICDB_ASSIGN_OR_RETURN(double a, lv.AsNumeric());
  MAGICDB_ASSIGN_OR_RETURN(double b, rv.AsNumeric());
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
  }
  return Status::Internal("bad arith op");
}

ExprPtr ArithmeticExpr::RemapColumns(const std::vector<int>& mapping) const {
  return std::make_shared<ArithmeticExpr>(op_, left_->RemapColumns(mapping),
                                          right_->RemapColumns(mapping));
}

void ArithmeticExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  left_->CollectColumnRefs(out);
  std::vector<int> rhs;
  right_->CollectColumnRefs(&rhs);
  out->insert(out->end(), rhs.begin(), rhs.end());
}

std::string ArithmeticExpr::ToString() const {
  return "(" + left_->ToString() + " " + ArithOpName(op_) + " " +
         right_->ToString() + ")";
}

// ----- LogicalExpr -----

StatusOr<Value> LogicalExpr::Eval(const Tuple& row) const {
  if (op_ == LogicalOp::kNot) {
    MAGICDB_ASSIGN_OR_RETURN(Value v, left_->Eval(row));
    if (v.is_null()) return Value::Null();
    if (v.type() != DataType::kBool) {
      return Status::TypeError("NOT over non-boolean: " + v.ToString());
    }
    return Value::Bool(!v.AsBool());
  }
  // Kleene three-valued AND/OR.
  MAGICDB_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
  MAGICDB_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
  auto as_tri = [](const Value& v) -> StatusOr<int> {
    if (v.is_null()) return 2;  // unknown
    if (v.type() != DataType::kBool) {
      return Status::TypeError("logical op over non-boolean: " + v.ToString());
    }
    return v.AsBool() ? 1 : 0;
  };
  MAGICDB_ASSIGN_OR_RETURN(int a, as_tri(lv));
  MAGICDB_ASSIGN_OR_RETURN(int b, as_tri(rv));
  if (op_ == LogicalOp::kAnd) {
    if (a == 0 || b == 0) return Value::Bool(false);
    if (a == 2 || b == 2) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (a == 1 || b == 1) return Value::Bool(true);
  if (a == 2 || b == 2) return Value::Null();
  return Value::Bool(false);
}

ExprPtr LogicalExpr::RemapColumns(const std::vector<int>& mapping) const {
  return std::make_shared<LogicalExpr>(
      op_, left_->RemapColumns(mapping),
      right_ ? right_->RemapColumns(mapping) : nullptr);
}

void LogicalExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  left_->CollectColumnRefs(out);
  if (right_) {
    std::vector<int> rhs;
    right_->CollectColumnRefs(&rhs);
    out->insert(out->end(), rhs.begin(), rhs.end());
  }
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) return "NOT " + left_->ToString();
  return "(" + left_->ToString() +
         (op_ == LogicalOp::kAnd ? " AND " : " OR ") + right_->ToString() +
         ")";
}

// ----- Factories -----

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeColumnRef(int index, DataType type, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, type, std::move(name));
}

StatusOr<ExprPtr> MakeColumnRef(const Schema& schema,
                                const std::string& dotted_name) {
  MAGICDB_ASSIGN_OR_RETURN(int idx, schema.FindColumn(dotted_name));
  return MakeColumnRef(idx, schema.column(idx).type,
                       schema.column(idx).QualifiedName());
}

ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left),
                                          std::move(right));
}

ExprPtr MakeArithmetic(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithmeticExpr>(op, std::move(left),
                                          std::move(right));
}

ExprPtr MakeAnd(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(left),
                                       std::move(right));
}

ExprPtr MakeOr(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(left),
                                       std::move(right));
}

ExprPtr MakeNot(ExprPtr operand) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(operand),
                                       nullptr);
}

ExprPtr ConjoinAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr result;
  for (const ExprPtr& c : conjuncts) {
    if (!c) continue;
    result = result ? MakeAnd(result, c) : c;
  }
  return result;
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind() == ExprKind::kLogical) {
    const auto* logical = static_cast<const LogicalExpr*>(expr.get());
    if (logical->op() == LogicalOp::kAnd) {
      SplitConjuncts(logical->left(), out);
      SplitConjuncts(logical->right(), out);
      return;
    }
  }
  out->push_back(expr);
}

bool EvalPredicate(const Expr& expr, const Tuple& row) {
  StatusOr<Value> v = expr.Eval(row);
  if (!v.ok() || v->is_null()) return false;
  return v->type() == DataType::kBool && v->AsBool();
}

}  // namespace magicdb
