#include "src/expr/expr.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/common/logging.h"
#include "src/exec/row_batch.h"

namespace magicdb {

namespace {

/// Resets the per-node result vectors: every slot NULL, no errors.
void InitBatchOut(const RowBatch& batch, std::vector<Value>* out,
                  std::vector<uint8_t>* errs) {
  out->assign(static_cast<size_t>(batch.num_rows()), Value());
  errs->assign(static_cast<size_t>(batch.num_rows()), 0);
}

/// Marks row `r` as errored; the first error in evaluation order wins.
void RowError(int32_t r, Status s, std::vector<uint8_t>* errs,
              Status* first_error) {
  (*errs)[static_cast<size_t>(r)] = 1;
  if (first_error->ok()) *first_error = std::move(s);
}

}  // namespace

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

void Expr::CollectColumnRefs(std::vector<int>* out) const {
  CollectColumnRefsInternal(out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void Expr::BatchEval(const RowBatch& batch, std::vector<Value>* out,
                     std::vector<uint8_t>* errs, Status* first_error) const {
  // Row-at-a-time fallback: materialize each live row and call Eval. Keeps
  // every Expr subclass batch-safe even without a native kernel.
  InitBatchOut(batch, out, errs);
  Tuple row(static_cast<size_t>(batch.num_cols()));
  batch.ForEachActive([&](int32_t r) {
    for (int c = 0; c < batch.num_cols(); ++c) {
      row[static_cast<size_t>(c)] = batch.column(c)[static_cast<size_t>(r)];
    }
    StatusOr<Value> v = Eval(row);
    if (v.ok()) {
      (*out)[static_cast<size_t>(r)] = std::move(*v);
    } else {
      RowError(r, v.status(), errs, first_error);
    }
  });
}

// ----- LiteralExpr -----

StatusOr<Value> LiteralExpr::Eval(const Tuple&) const { return value_; }

void LiteralExpr::BatchEval(const RowBatch& batch, std::vector<Value>* out,
                            std::vector<uint8_t>* errs, Status*) const {
  const size_t n = static_cast<size_t>(batch.num_rows());
  if (batch.ActiveRows() == batch.num_rows()) {
    // Fully active: bulk broadcast instead of the per-row loop.
    out->assign(n, value_);
    errs->assign(n, 0);
    return;
  }
  InitBatchOut(batch, out, errs);
  batch.ForEachActive(
      [&](int32_t r) { (*out)[static_cast<size_t>(r)] = value_; });
}

ExprPtr LiteralExpr::RemapColumns(const std::vector<int>&) const {
  return std::make_shared<LiteralExpr>(value_);
}

void LiteralExpr::CollectColumnRefsInternal(std::vector<int>*) const {}

// ----- ColumnRefExpr -----

StatusOr<Value> ColumnRefExpr::Eval(const Tuple& row) const {
  if (index_ < 0 || index_ >= static_cast<int>(row.size())) {
    return Status::Internal("column index " + std::to_string(index_) +
                            " out of range for tuple of arity " +
                            std::to_string(row.size()));
  }
  return row[index_];
}

void ColumnRefExpr::BatchEval(const RowBatch& batch, std::vector<Value>* out,
                              std::vector<uint8_t>* errs,
                              Status* first_error) const {
  if (index_ >= 0 && index_ < batch.num_cols() &&
      batch.ActiveRows() == batch.num_rows() && batch.num_rows() > 0) {
    // Fully active, in range: one bulk copy instead of the per-row loop.
    const std::vector<Value>& col = batch.column(index_);
    out->assign(col.begin(),
                col.begin() + static_cast<ptrdiff_t>(batch.num_rows()));
    errs->assign(static_cast<size_t>(batch.num_rows()), 0);
    return;
  }
  InitBatchOut(batch, out, errs);
  if (batch.ActiveRows() == 0) return;
  if (index_ < 0 || index_ >= batch.num_cols()) {
    // Same message Eval() produces (columns == tuple arity here).
    Status oob = Status::Internal("column index " + std::to_string(index_) +
                                  " out of range for tuple of arity " +
                                  std::to_string(batch.num_cols()));
    batch.ForEachActive(
        [&](int32_t r) { RowError(r, oob, errs, first_error); });
    return;
  }
  const std::vector<Value>& col = batch.column(index_);
  batch.ForEachActive([&](int32_t r) {
    (*out)[static_cast<size_t>(r)] = col[static_cast<size_t>(r)];
  });
}

ExprPtr ColumnRefExpr::RemapColumns(const std::vector<int>& mapping) const {
  MAGICDB_CHECK(index_ >= 0 && index_ < static_cast<int>(mapping.size()));
  MAGICDB_CHECK(mapping[index_] >= 0);
  return std::make_shared<ColumnRefExpr>(mapping[index_], type_, name_);
}

void ColumnRefExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  out->push_back(index_);
}

std::string ColumnRefExpr::ToString() const {
  if (!name_.empty()) return name_;
  return "$" + std::to_string(index_);
}

// ----- ComparisonExpr -----

StatusOr<Value> ComparisonExpr::Eval(const Tuple& row) const {
  MAGICDB_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
  MAGICDB_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
  if (lv.is_null() || rv.is_null()) return Value::Null();
  const int c = lv.Compare(rv);
  switch (op_) {
    case CompareOp::kEq:
      return Value::Bool(c == 0);
    case CompareOp::kNe:
      return Value::Bool(c != 0);
    case CompareOp::kLt:
      return Value::Bool(c < 0);
    case CompareOp::kLe:
      return Value::Bool(c <= 0);
    case CompareOp::kGt:
      return Value::Bool(c > 0);
    case CompareOp::kGe:
      return Value::Bool(c >= 0);
  }
  return Status::Internal("bad compare op");
}

void ComparisonExpr::BatchEval(const RowBatch& batch, std::vector<Value>* out,
                               std::vector<uint8_t>* errs,
                               Status* first_error) const {
  std::vector<Value> lvals, rvals;
  std::vector<uint8_t> lerrs, rerrs;
  BatchOperand lop, rop;
  ResolveBatchOperand(*left_, batch, &lvals, &lerrs, first_error, &lop);
  ResolveBatchOperand(*right_, batch, &rvals, &rerrs, first_error, &rop);
  InitBatchOut(batch, out, errs);
  batch.ForEachActive([&](int32_t r) {
    const size_t i = static_cast<size_t>(r);
    if (lop.err(i) || rop.err(i)) {
      (*errs)[i] = 1;  // child error poisons the row
      return;
    }
    const Value& lv = lop.at(i);
    const Value& rv = rop.at(i);
    if (lv.is_null() || rv.is_null()) return;  // result stays NULL
    const int c = lv.Compare(rv);
    bool b = false;
    switch (op_) {
      case CompareOp::kEq:
        b = c == 0;
        break;
      case CompareOp::kNe:
        b = c != 0;
        break;
      case CompareOp::kLt:
        b = c < 0;
        break;
      case CompareOp::kLe:
        b = c <= 0;
        break;
      case CompareOp::kGt:
        b = c > 0;
        break;
      case CompareOp::kGe:
        b = c >= 0;
        break;
    }
    (*out)[i] = Value::Bool(b);
  });
}

ExprPtr ComparisonExpr::RemapColumns(const std::vector<int>& mapping) const {
  return std::make_shared<ComparisonExpr>(op_, left_->RemapColumns(mapping),
                                          right_->RemapColumns(mapping));
}

void ComparisonExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  left_->CollectColumnRefs(out);
  std::vector<int> rhs;
  right_->CollectColumnRefs(&rhs);
  out->insert(out->end(), rhs.begin(), rhs.end());
}

std::string ComparisonExpr::ToString() const {
  return "(" + left_->ToString() + " " + CompareOpName(op_) + " " +
         right_->ToString() + ")";
}

// ----- ArithmeticExpr -----

DataType ArithmeticExpr::result_type() const {
  if (left_->result_type() == DataType::kDouble ||
      right_->result_type() == DataType::kDouble ||
      op_ == ArithOp::kDiv) {
    return DataType::kDouble;
  }
  return DataType::kInt64;
}

StatusOr<Value> ArithmeticExpr::Eval(const Tuple& row) const {
  MAGICDB_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
  MAGICDB_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
  if (lv.is_null() || rv.is_null()) return Value::Null();
  // Exact integer arithmetic when both sides are int64 (except division).
  if (lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64 &&
      op_ != ArithOp::kDiv) {
    const int64_t a = lv.AsInt64();
    const int64_t b = rv.AsInt64();
    switch (op_) {
      case ArithOp::kAdd:
        return Value::Int64(a + b);
      case ArithOp::kSub:
        return Value::Int64(a - b);
      case ArithOp::kMul:
        return Value::Int64(a * b);
      default:
        break;
    }
  }
  MAGICDB_ASSIGN_OR_RETURN(double a, lv.AsNumeric());
  MAGICDB_ASSIGN_OR_RETURN(double b, rv.AsNumeric());
  switch (op_) {
    case ArithOp::kAdd:
      return Value::Double(a + b);
    case ArithOp::kSub:
      return Value::Double(a - b);
    case ArithOp::kMul:
      return Value::Double(a * b);
    case ArithOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Double(a / b);
  }
  return Status::Internal("bad arith op");
}

void ArithmeticExpr::BatchEval(const RowBatch& batch, std::vector<Value>* out,
                               std::vector<uint8_t>* errs,
                               Status* first_error) const {
  std::vector<Value> lvals, rvals;
  std::vector<uint8_t> lerrs, rerrs;
  BatchOperand lop, rop;
  ResolveBatchOperand(*left_, batch, &lvals, &lerrs, first_error, &lop);
  ResolveBatchOperand(*right_, batch, &rvals, &rerrs, first_error, &rop);
  InitBatchOut(batch, out, errs);
  batch.ForEachActive([&](int32_t r) {
    const size_t i = static_cast<size_t>(r);
    if (lop.err(i) || rop.err(i)) {
      (*errs)[i] = 1;
      return;
    }
    const Value& lv = lop.at(i);
    const Value& rv = rop.at(i);
    if (lv.is_null() || rv.is_null()) return;
    // Exact integer arithmetic when both sides are int64 (except division) —
    // same fast path Eval() takes.
    if (lv.type() == DataType::kInt64 && rv.type() == DataType::kInt64 &&
        op_ != ArithOp::kDiv) {
      const int64_t a = lv.AsInt64();
      const int64_t b = rv.AsInt64();
      switch (op_) {
        case ArithOp::kAdd:
          (*out)[i] = Value::Int64(a + b);
          return;
        case ArithOp::kSub:
          (*out)[i] = Value::Int64(a - b);
          return;
        case ArithOp::kMul:
          (*out)[i] = Value::Int64(a * b);
          return;
        default:
          break;
      }
    }
    StatusOr<double> a = lv.AsNumeric();
    if (!a.ok()) {
      RowError(r, a.status(), errs, first_error);
      return;
    }
    StatusOr<double> b = rv.AsNumeric();
    if (!b.ok()) {
      RowError(r, b.status(), errs, first_error);
      return;
    }
    switch (op_) {
      case ArithOp::kAdd:
        (*out)[i] = Value::Double(*a + *b);
        return;
      case ArithOp::kSub:
        (*out)[i] = Value::Double(*a - *b);
        return;
      case ArithOp::kMul:
        (*out)[i] = Value::Double(*a * *b);
        return;
      case ArithOp::kDiv:
        if (*b == 0.0) {
          RowError(r, Status::InvalidArgument("division by zero"), errs,
                   first_error);
          return;
        }
        (*out)[i] = Value::Double(*a / *b);
        return;
    }
  });
}

ExprPtr ArithmeticExpr::RemapColumns(const std::vector<int>& mapping) const {
  return std::make_shared<ArithmeticExpr>(op_, left_->RemapColumns(mapping),
                                          right_->RemapColumns(mapping));
}

void ArithmeticExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  left_->CollectColumnRefs(out);
  std::vector<int> rhs;
  right_->CollectColumnRefs(&rhs);
  out->insert(out->end(), rhs.begin(), rhs.end());
}

std::string ArithmeticExpr::ToString() const {
  return "(" + left_->ToString() + " " + ArithOpName(op_) + " " +
         right_->ToString() + ")";
}

// ----- LogicalExpr -----

StatusOr<Value> LogicalExpr::Eval(const Tuple& row) const {
  if (op_ == LogicalOp::kNot) {
    MAGICDB_ASSIGN_OR_RETURN(Value v, left_->Eval(row));
    if (v.is_null()) return Value::Null();
    if (v.type() != DataType::kBool) {
      return Status::TypeError("NOT over non-boolean: " + v.ToString());
    }
    return Value::Bool(!v.AsBool());
  }
  // Kleene three-valued AND/OR.
  MAGICDB_ASSIGN_OR_RETURN(Value lv, left_->Eval(row));
  MAGICDB_ASSIGN_OR_RETURN(Value rv, right_->Eval(row));
  auto as_tri = [](const Value& v) -> StatusOr<int> {
    if (v.is_null()) return 2;  // unknown
    if (v.type() != DataType::kBool) {
      return Status::TypeError("logical op over non-boolean: " + v.ToString());
    }
    return v.AsBool() ? 1 : 0;
  };
  MAGICDB_ASSIGN_OR_RETURN(int a, as_tri(lv));
  MAGICDB_ASSIGN_OR_RETURN(int b, as_tri(rv));
  if (op_ == LogicalOp::kAnd) {
    if (a == 0 || b == 0) return Value::Bool(false);
    if (a == 2 || b == 2) return Value::Null();
    return Value::Bool(true);
  }
  // OR
  if (a == 1 || b == 1) return Value::Bool(true);
  if (a == 2 || b == 2) return Value::Null();
  return Value::Bool(false);
}

void LogicalExpr::BatchEval(const RowBatch& batch, std::vector<Value>* out,
                            std::vector<uint8_t>* errs,
                            Status* first_error) const {
  std::vector<Value> lvals;
  std::vector<uint8_t> lerrs;
  BatchOperand lop;
  ResolveBatchOperand(*left_, batch, &lvals, &lerrs, first_error, &lop);
  if (op_ == LogicalOp::kNot) {
    InitBatchOut(batch, out, errs);
    batch.ForEachActive([&](int32_t r) {
      const size_t i = static_cast<size_t>(r);
      if (lop.err(i)) {
        (*errs)[i] = 1;
        return;
      }
      const Value& v = lop.at(i);
      if (v.is_null()) return;
      if (v.type() != DataType::kBool) {
        RowError(r, Status::TypeError("NOT over non-boolean: " + v.ToString()),
                 errs, first_error);
        return;
      }
      (*out)[i] = Value::Bool(!v.AsBool());
    });
    return;
  }
  std::vector<Value> rvals;
  std::vector<uint8_t> rerrs;
  BatchOperand rop;
  ResolveBatchOperand(*right_, batch, &rvals, &rerrs, first_error, &rop);
  InitBatchOut(batch, out, errs);
  // Kleene three-valued AND/OR: 0 = false, 1 = true, 2 = unknown.
  auto as_tri = [&](const Value& v, int32_t r) -> int {
    if (v.is_null()) return 2;
    if (v.type() != DataType::kBool) {
      RowError(r,
               Status::TypeError("logical op over non-boolean: " +
                                 v.ToString()),
               errs, first_error);
      return -1;
    }
    return v.AsBool() ? 1 : 0;
  };
  batch.ForEachActive([&](int32_t r) {
    const size_t i = static_cast<size_t>(r);
    if (lop.err(i) || rop.err(i)) {
      (*errs)[i] = 1;
      return;
    }
    const int a = as_tri(lop.at(i), r);
    if (a < 0) return;
    const int b = as_tri(rop.at(i), r);
    if (b < 0) return;
    if (op_ == LogicalOp::kAnd) {
      if (a == 0 || b == 0) {
        (*out)[i] = Value::Bool(false);
      } else if (a != 2 && b != 2) {
        (*out)[i] = Value::Bool(true);
      }  // else: unknown stays NULL
      return;
    }
    // OR
    if (a == 1 || b == 1) {
      (*out)[i] = Value::Bool(true);
    } else if (a != 2 && b != 2) {
      (*out)[i] = Value::Bool(false);
    }  // else: unknown stays NULL
  });
}

ExprPtr LogicalExpr::RemapColumns(const std::vector<int>& mapping) const {
  return std::make_shared<LogicalExpr>(
      op_, left_->RemapColumns(mapping),
      right_ ? right_->RemapColumns(mapping) : nullptr);
}

void LogicalExpr::CollectColumnRefsInternal(std::vector<int>* out) const {
  left_->CollectColumnRefs(out);
  if (right_) {
    std::vector<int> rhs;
    right_->CollectColumnRefs(&rhs);
    out->insert(out->end(), rhs.begin(), rhs.end());
  }
}

std::string LogicalExpr::ToString() const {
  if (op_ == LogicalOp::kNot) return "NOT " + left_->ToString();
  return "(" + left_->ToString() +
         (op_ == LogicalOp::kAnd ? " AND " : " OR ") + right_->ToString() +
         ")";
}

// ----- Factories -----

ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}

ExprPtr MakeColumnRef(int index, DataType type, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, type, std::move(name));
}

StatusOr<ExprPtr> MakeColumnRef(const Schema& schema,
                                const std::string& dotted_name) {
  MAGICDB_ASSIGN_OR_RETURN(int idx, schema.FindColumn(dotted_name));
  return MakeColumnRef(idx, schema.column(idx).type,
                       schema.column(idx).QualifiedName());
}

ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ComparisonExpr>(op, std::move(left),
                                          std::move(right));
}

ExprPtr MakeArithmetic(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithmeticExpr>(op, std::move(left),
                                          std::move(right));
}

ExprPtr MakeAnd(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kAnd, std::move(left),
                                       std::move(right));
}

ExprPtr MakeOr(ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicalExpr>(LogicalOp::kOr, std::move(left),
                                       std::move(right));
}

ExprPtr MakeNot(ExprPtr operand) {
  return std::make_shared<LogicalExpr>(LogicalOp::kNot, std::move(operand),
                                       nullptr);
}

ExprPtr ConjoinAll(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr result;
  for (const ExprPtr& c : conjuncts) {
    if (!c) continue;
    result = result ? MakeAnd(result, c) : c;
  }
  return result;
}

void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (!expr) return;
  if (expr->kind() == ExprKind::kLogical) {
    const auto* logical = static_cast<const LogicalExpr*>(expr.get());
    if (logical->op() == LogicalOp::kAnd) {
      SplitConjuncts(logical->left(), out);
      SplitConjuncts(logical->right(), out);
      return;
    }
  }
  out->push_back(expr);
}

void ResolveBatchOperand(const Expr& expr, const RowBatch& batch,
                         std::vector<Value>* scratch_vals,
                         std::vector<uint8_t>* scratch_errs,
                         Status* first_error, BatchOperand* op) {
  *op = BatchOperand{};
  if (expr.kind() == ExprKind::kLiteral) {
    op->lit = &static_cast<const LiteralExpr&>(expr).value();
    return;
  }
  if (expr.kind() == ExprKind::kColumnRef) {
    const int index = static_cast<const ColumnRefExpr&>(expr).index();
    if (index >= 0 && index < batch.num_cols()) {
      op->col = &batch.column(index);
      return;
    }
    // Out-of-range refs take the materializing path below, whose error
    // handling matches Eval().
  }
  expr.BatchEval(batch, scratch_vals, scratch_errs, first_error);
  op->col = scratch_vals;
  op->errs = scratch_errs;
}

bool EvalPredicate(const Expr& expr, const Tuple& row) {
  StatusOr<Value> v = expr.Eval(row);
  if (!v.ok() || v->is_null()) return false;
  return v->type() == DataType::kBool && v->AsBool();
}

void BatchEvalPredicate(const Expr& expr, RowBatch* batch,
                        std::vector<Value>* vals, std::vector<uint8_t>* errs) {
  Status first_error;  // predicate errors count as false; status discarded
  expr.BatchEval(*batch, vals, errs, &first_error);
  std::vector<int32_t> sel;
  sel.reserve(static_cast<size_t>(batch->ActiveRows()));
  batch->ForEachActive([&](int32_t r) {
    const size_t i = static_cast<size_t>(r);
    if ((*errs)[i]) return;
    const Value& v = (*vals)[i];
    if (v.is_null()) return;
    if (v.type() == DataType::kBool && v.AsBool()) sel.push_back(r);
  });
  batch->SetSelection(std::move(sel));
}

}  // namespace magicdb
