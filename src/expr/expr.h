#ifndef MAGICDB_EXPR_EXPR_H_
#define MAGICDB_EXPR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"
#include "src/types/value.h"

namespace magicdb {

class RowBatch;

class Expr;
/// Expressions are immutable and shared between plan alternatives; the
/// optimizer copies plans freely without deep-copying expression trees.
using ExprPtr = std::shared_ptr<const Expr>;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kComparison,
  kArithmetic,
  kLogical,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class LogicalOp { kAnd, kOr, kNot };

const char* CompareOpName(CompareOp op);
const char* ArithOpName(ArithOp op);

/// Scalar expression over a positional tuple layout. Column references are
/// resolved indexes; the SQL binder produces resolved trees.
///
/// Evaluation follows SQL three-valued logic: comparisons and arithmetic
/// over NULL yield NULL; AND/OR use Kleene logic. Predicates treat a NULL
/// result as false.
class Expr {
 public:
  virtual ~Expr() = default;

  ExprKind kind() const { return kind_; }

  /// Result type given that column refs were resolved against a schema at
  /// construction time.
  virtual DataType result_type() const = 0;

  /// Evaluates against `row`. Errors on type mismatches the binder missed
  /// (e.g. '+' over strings) and on division by zero.
  virtual StatusOr<Value> Eval(const Tuple& row) const = 0;

  /// Vectorized evaluation over every live row of `batch` (its selection
  /// vector is honored). Writes out->at(r) for each live physical row r;
  /// a row whose evaluation errors gets errs->at(r) = 1 and a NULL value,
  /// and *first_error is set to the error Status if it is still OK. A row
  /// whose *child* erred is poisoned (errs propagates) without recomputing.
  /// Both vectors are assign()-ed to batch.num_rows() entries on entry.
  ///
  /// Per-row results on the success path are identical to Eval(); when
  /// several rows error, *first_error is the first in this tree's
  /// (child-major) evaluation order, which can differ from the row-major
  /// order Eval() surfaces — predicates never observe this (errors count
  /// as false either way).
  ///
  /// ComparisonExpr / ArithmeticExpr / LogicalExpr / ColumnRefExpr /
  /// LiteralExpr override this with tight column loops that skip the
  /// per-row virtual Eval dispatch; the base implementation falls back to
  /// materializing each live row and calling Eval (so any future Expr kind
  /// is batch-safe by construction).
  virtual void BatchEval(const RowBatch& batch, std::vector<Value>* out,
                         std::vector<uint8_t>* errs,
                         Status* first_error) const;

  /// Number of nodes in this tree (used to charge CPU per evaluation).
  virtual int NodeCount() const = 0;

  /// Collects the distinct column indexes referenced by this tree.
  void CollectColumnRefs(std::vector<int>* out) const;

  /// Returns an equivalent tree with every column index `i` replaced by
  /// `mapping[i]`. Every referenced index must be mapped (>= 0).
  virtual ExprPtr RemapColumns(const std::vector<int>& mapping) const = 0;

  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(ExprKind kind) : kind_(kind) {}

 private:
  virtual void CollectColumnRefsInternal(std::vector<int>* out) const = 0;

  ExprKind kind_;
};

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value value)
      : Expr(ExprKind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }
  DataType result_type() const override { return value_.type(); }
  StatusOr<Value> Eval(const Tuple& row) const override;
  void BatchEval(const RowBatch& batch, std::vector<Value>* out,
                 std::vector<uint8_t>* errs,
                 Status* first_error) const override;
  int NodeCount() const override { return 1; }
  ExprPtr RemapColumns(const std::vector<int>& mapping) const override;
  std::string ToString() const override { return value_.ToString(); }

 private:
  void CollectColumnRefsInternal(std::vector<int>* out) const override;

  Value value_;
};

class ColumnRefExpr final : public Expr {
 public:
  /// `index` is positional in the input tuple; `name` is for display only.
  ColumnRefExpr(int index, DataType type, std::string name)
      : Expr(ExprKind::kColumnRef),
        index_(index),
        type_(type),
        name_(std::move(name)) {}

  int index() const { return index_; }
  const std::string& name() const { return name_; }
  DataType result_type() const override { return type_; }
  StatusOr<Value> Eval(const Tuple& row) const override;
  void BatchEval(const RowBatch& batch, std::vector<Value>* out,
                 std::vector<uint8_t>* errs,
                 Status* first_error) const override;
  int NodeCount() const override { return 1; }
  ExprPtr RemapColumns(const std::vector<int>& mapping) const override;
  std::string ToString() const override;

 private:
  void CollectColumnRefsInternal(std::vector<int>* out) const override;

  int index_;
  DataType type_;
  std::string name_;
};

class ComparisonExpr final : public Expr {
 public:
  ComparisonExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kComparison),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  CompareOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  DataType result_type() const override { return DataType::kBool; }
  StatusOr<Value> Eval(const Tuple& row) const override;
  void BatchEval(const RowBatch& batch, std::vector<Value>* out,
                 std::vector<uint8_t>* errs,
                 Status* first_error) const override;
  int NodeCount() const override {
    return 1 + left_->NodeCount() + right_->NodeCount();
  }
  ExprPtr RemapColumns(const std::vector<int>& mapping) const override;
  std::string ToString() const override;

 private:
  void CollectColumnRefsInternal(std::vector<int>* out) const override;

  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kArithmetic),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  ArithOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  DataType result_type() const override;
  StatusOr<Value> Eval(const Tuple& row) const override;
  void BatchEval(const RowBatch& batch, std::vector<Value>* out,
                 std::vector<uint8_t>* errs,
                 Status* first_error) const override;
  int NodeCount() const override {
    return 1 + left_->NodeCount() + right_->NodeCount();
  }
  ExprPtr RemapColumns(const std::vector<int>& mapping) const override;
  std::string ToString() const override;

 private:
  void CollectColumnRefsInternal(std::vector<int>* out) const override;

  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class LogicalExpr final : public Expr {
 public:
  /// For kNot, `right` is null.
  LogicalExpr(LogicalOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kLogical),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  LogicalOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  DataType result_type() const override { return DataType::kBool; }
  StatusOr<Value> Eval(const Tuple& row) const override;
  void BatchEval(const RowBatch& batch, std::vector<Value>* out,
                 std::vector<uint8_t>* errs,
                 Status* first_error) const override;
  int NodeCount() const override {
    return 1 + left_->NodeCount() + (right_ ? right_->NodeCount() : 0);
  }
  ExprPtr RemapColumns(const std::vector<int>& mapping) const override;
  std::string ToString() const override;

 private:
  void CollectColumnRefsInternal(std::vector<int>* out) const override;

  LogicalOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

// ----- Factory helpers -----

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(int index, DataType type, std::string name = "");
/// Column ref resolved against `schema` by dotted name; errors if missing.
StatusOr<ExprPtr> MakeColumnRef(const Schema& schema,
                                const std::string& dotted_name);
ExprPtr MakeComparison(CompareOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeArithmetic(ArithOp op, ExprPtr left, ExprPtr right);
ExprPtr MakeAnd(ExprPtr left, ExprPtr right);
ExprPtr MakeOr(ExprPtr left, ExprPtr right);
ExprPtr MakeNot(ExprPtr operand);

/// AND-combines `conjuncts`; returns nullptr for an empty list.
ExprPtr ConjoinAll(const std::vector<ExprPtr>& conjuncts);

/// Splits an expression into top-level AND conjuncts.
void SplitConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out);

/// Resolved batch-mode input of a subexpression: either a zero-copy view of
/// a batch column (ColumnRefExpr with an in-range index), a single broadcast
/// value (LiteralExpr), or the caller's scratch vectors filled through
/// BatchEval. Lets batch kernels skip the per-row Value copies for the two
/// leaf kinds that dominate real predicates and projections.
struct BatchOperand {
  const std::vector<Value>* col = nullptr;  // column view or filled scratch
  const Value* lit = nullptr;               // broadcast literal
  const std::vector<uint8_t>* errs = nullptr;  // null => no row errored

  const Value& at(size_t i) const { return lit != nullptr ? *lit : (*col)[i]; }
  bool err(size_t i) const { return errs != nullptr && (*errs)[i] != 0; }
};

/// Resolves `expr` against `batch` into `*op`. Zero-copy for literals and
/// in-range column refs; otherwise materializes through expr.BatchEval into
/// the caller-owned scratch vectors (reused across batches) and points the
/// operand at them.
void ResolveBatchOperand(const Expr& expr, const RowBatch& batch,
                         std::vector<Value>* scratch_vals,
                         std::vector<uint8_t>* scratch_errs,
                         Status* first_error, BatchOperand* op);

/// Evaluates `expr` as a predicate: NULL and errors count as false.
bool EvalPredicate(const Expr& expr, const Tuple& row);

/// Vectorized EvalPredicate: evaluates `expr` over every live row of
/// `batch` and narrows the batch's selection vector to the rows where the
/// result is boolean true (NULL, non-bool, and erroring rows drop out —
/// exactly EvalPredicate's semantics). `vals`/`errs` are caller-owned
/// scratch vectors reused across batches.
void BatchEvalPredicate(const Expr& expr, RowBatch* batch,
                        std::vector<Value>* vals, std::vector<uint8_t>* errs);

}  // namespace magicdb

#endif  // MAGICDB_EXPR_EXPR_H_
