#include "src/db/database.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <thread>

#include "src/common/failpoint.h"
#include "src/exec/basic_ops.h"
#include "src/parallel/parallel_exec.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"

namespace magicdb {

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream os;
  std::vector<size_t> widths(schema.num_columns());
  std::vector<std::vector<std::string>> cells;
  for (int c = 0; c < schema.num_columns(); ++c) {
    widths[c] = schema.column(c).QualifiedName().size();
  }
  const size_t shown = std::min(max_rows, rows.size());
  for (size_t r = 0; r < shown; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < schema.num_columns(); ++c) {
      row.push_back(rows[r][c].ToString());
      widths[c] = std::max(widths[c], row.back().size());
    }
    cells.push_back(std::move(row));
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    os << (c > 0 ? " | " : "") << schema.column(c).QualifiedName();
    os << std::string(widths[c] - schema.column(c).QualifiedName().size(),
                      ' ');
  }
  os << "\n";
  size_t total = 0;
  for (size_t w : widths) total += w + 3;
  os << std::string(total > 3 ? total - 3 : 0, '-') << "\n";
  for (const auto& row : cells) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      os << (c > 0 ? " | " : "") << row[c]
         << std::string(widths[c] - row[c].size(), ' ');
    }
    os << "\n";
  }
  if (rows.size() > shown) {
    os << "... (" << rows.size() << " rows total)\n";
  } else {
    os << "(" << rows.size() << " rows)\n";
  }
  return os.str();
}

Status Database::Execute(const std::string& sql) {
  MAGICDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  switch (stmt.kind) {
    case Statement::Kind::kCreateTable: {
      // Injected fault models table creation failing (e.g. storage setup)
      // before the catalog is touched; the catalog must stay unchanged.
      MAGICDB_FAILPOINT("db.ddl.create_table");
      Schema schema;
      for (const ColumnDef& col : stmt.columns) {
        schema.AddColumn({"", col.name, col.type});
      }
      MAGICDB_ASSIGN_OR_RETURN(Table * table,
                               catalog_.CreateTable(stmt.name, schema));
      (void)table;
      return Status::OK();
    }
    case Statement::Kind::kCreateView: {
      Binder binder(&catalog_);
      MAGICDB_ASSIGN_OR_RETURN(LogicalPtr plan,
                               binder.BindSelect(*stmt.select));
      // Injected fault lands after the view body bound successfully but
      // before registration — the window where a half-created view would
      // be observable if registration were not atomic.
      MAGICDB_FAILPOINT("db.ddl.create_view");
      return catalog_.RegisterView(stmt.name, plan);
    }
    case Statement::Kind::kSelect:
      return Status::InvalidArgument(
          "Execute() is for DDL; use Query() for SELECT statements");
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::LoadRows(const std::string& table, std::vector<Tuple> rows) {
  MAGICDB_ASSIGN_OR_RETURN(const CatalogEntry* entry, catalog_.Lookup(table));
  if (entry->table == nullptr) {
    return Status::InvalidArgument("relation has no storage: " + table);
  }
  MAGICDB_RETURN_IF_ERROR(
      const_cast<Table*>(entry->table)->InsertAll(std::move(rows)));
  return catalog_.Analyze(table);
}

StatusOr<LogicalPtr> Database::Bind(const std::string& sql) {
  MAGICDB_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(sql));
  return bound.plan;
}

StatusOr<BoundSelect> Database::BindSelect(const std::string& sql) const {
  MAGICDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument("expected a SELECT statement");
  }
  Binder binder(&catalog_);
  BoundSelect bound;
  MAGICDB_ASSIGN_OR_RETURN(bound.plan, binder.BindSelect(*stmt.select));
  bound.limit = stmt.select->limit;
  return bound;
}

StatusOr<PlannedSelect> Database::PlanSelect(
    const std::string& sql, const OptimizerOptions& options) const {
  MAGICDB_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(sql));
  return PlanBound(bound, options);
}

StatusOr<PlannedSelect> Database::PlanBound(
    const BoundSelect& bound, const OptimizerOptions& options) const {
  return PlanBound(bound, options, nullptr);
}

StatusOr<PlannedSelect> Database::PlanBound(
    const BoundSelect& bound, const OptimizerOptions& options,
    const CardinalityOverlay* overlay) const {
  Optimizer optimizer(&catalog_, options);
  optimizer.set_cardinality_overlay(overlay);
  MAGICDB_ASSIGN_OR_RETURN(OptimizedPlan optimized,
                           optimizer.Optimize(bound.plan));
  PlannedSelect planned;
  planned.bound = bound;
  planned.schema = bound.plan->schema();
  planned.root = std::move(optimized.root);
  if (bound.limit >= 0) {
    planned.root =
        std::make_unique<LimitOp>(std::move(planned.root), bound.limit);
  }
  planned.explain = std::move(optimized.explain);
  planned.est_cost = optimized.est_cost;
  planned.est_rows = optimized.est_rows;
  planned.filter_joins = std::move(optimized.filter_joins);
  planned.optimizer_stats = optimizer.stats();
  return planned;
}

void CollectFilterJoinMeasured(const Operator& root,
                               std::vector<FilterJoinMeasured>* out) {
  if (const auto* fj = dynamic_cast<const FilterJoinOp*>(&root)) {
    out->push_back(fj->measured());
  }
  for (const Operator* child : root.Children()) {
    CollectFilterJoinMeasured(*child, out);
  }
}

StatusOr<QueryResult> Database::Query(const std::string& sql) {
  return Run(sql);
}

StatusOr<QueryResult> Database::ExecuteParallel(const std::string& sql,
                                                int dop) {
  ExecOptions options;
  options.dop = dop;
  return Run(sql, options);
}

StatusOr<QueryResult> Database::Run(const std::string& sql,
                                    const ExecOptions& options) {
  int dop = options.dop;
  if (dop <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    dop = hw > 0 ? static_cast<int>(hw) : 1;
  }
  MAGICDB_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(sql));

  const double threshold =
      ResolveReoptQErrorThreshold(options.reoptimize_qerror_threshold);
  // One ledger for the whole query: observations survive re-optimization
  // restarts (first record per key wins, so re-executions keep the original
  // wrong-estimate evidence) and end up in QueryResult::feedback.
  auto ledger = std::make_shared<CardinalityFeedback>();
  // Start from what earlier persisting queries learned; attempts add their
  // own observations on top.
  CardinalityOverlay overlay = feedback_store_.Snapshot();

  const int max_attempts = 1 + std::max(0, options.max_reoptimizations);
  for (int attempt = 0;; ++attempt) {
    // The final permitted attempt runs with triggering disabled, so the
    // loop always terminates with a completed execution.
    const bool last = attempt + 1 >= max_attempts;
    StatusOr<QueryResult> r = RunAttempt(bound, dop, options, overlay, ledger,
                                         last ? 0.0 : threshold);
    if (r.ok()) {
      r->reoptimizations = attempt;
      r->feedback = ledger->Snapshot();
      if (options.persist_feedback) {
        feedback_store_.Fold(r->feedback);
      }
      return r;
    }
    if (!r.status().IsReoptimizeRequested()) return r.status();
    // Fold every exact overlay-eligible observation into the overlay for
    // the re-plan, and suppress its key: the corrected estimate makes the
    // observation consistent, so re-triggering on it would be a planning
    // no-op (the suppression set is only ever mutated here, between
    // attempts — never while a gang is running).
    for (const CardinalityObservation& obs : ledger->Snapshot()) {
      if (!obs.exact || !IsOverlayKey(obs.key)) continue;
      overlay.rows[obs.key] = obs.actual;
      ledger->SuppressKey(obs.key);
    }
  }
}

StatusOr<QueryResult> Database::RunAttempt(
    const BoundSelect& bound, int dop, const ExecOptions& options,
    const CardinalityOverlay& overlay,
    const std::shared_ptr<CardinalityFeedback>& ledger, double threshold) {
  const CardinalityOverlay* ov = overlay.empty() ? nullptr : &overlay;
  MAGICDB_ASSIGN_OR_RETURN(PlannedSelect planned,
                           PlanBound(bound, optimizer_options_, ov));

  QueryResult result;
  result.schema = planned.schema;
  result.explain = std::move(planned.explain);
  result.est_cost = planned.est_cost;
  result.est_rows = planned.est_rows;
  result.filter_joins = std::move(planned.filter_joins);
  result.optimizer_stats = planned.optimizer_stats;

  // Prototype execution environment every attempt context inherits. The
  // memory tracker is per-attempt: an aborted attempt's charges must not
  // linger into the re-execution.
  ExecContext proto;
  proto.set_memory_budget_bytes(optimizer_options_.memory_budget_bytes);
  proto.set_batch_size(options.batch_size < 0 ? exec_batch_size_
                                              : options.batch_size);
  CancelTokenPtr token = options.cancel_token;
  if (options.timeout.count() > 0) {
    if (token == nullptr) token = std::make_shared<CancelToken>();
    if (!token->has_deadline()) token->SetTimeout(options.timeout);
  }
  proto.set_cancel_token(std::move(token));
  if (options.memory_limit_bytes > 0) {
    proto.set_memory_tracker(
        std::make_shared<MemoryTracker>(options.memory_limit_bytes));
  }
  proto.set_cardinality_feedback(ledger);
  proto.set_reoptimize_qerror_threshold(threshold);

  // LIMIT cuts the stream early; workers would race for the quota, so it
  // runs sequentially (the shape analyzer would reject LimitOp anyway —
  // this path just avoids planning dop replicas for nothing).
  const bool has_limit = bound.limit >= 0;
  if (dop <= 1 || has_limit) {
    ExecContext ctx;
    ctx.InheritConfig(proto);
    MAGICDB_ASSIGN_OR_RETURN(result.rows,
                             ExecuteToVector(planned.root.get(), &ctx));
    result.counters = ctx.counters();
    // Collect measured per-phase Filter Join costs from the executed tree.
    CollectFilterJoinMeasured(*planned.root, &result.filter_join_measured);
    if (has_limit && dop > 1) {
      result.parallel_fallback_reason = "LIMIT clause";
    }
    return result;
  }

  // One optimizer pass per worker replica: Optimize() is deterministic
  // (under the same overlay), so the trees are isomorphic and the executor
  // verifies that before wiring shared state into them. Planning always
  // uses the session options (the degree_of_parallelism costing knob
  // included), never the execution dop — every dop must run the identical
  // plan or the counter-identity guarantee would be comparing different
  // plans.
  std::vector<OpPtr> replicas;
  replicas.push_back(std::move(planned.root));
  if (ParallelExecutor::UnsafeReason(*replicas[0]).empty()) {
    for (int w = 1; w < dop; ++w) {
      MAGICDB_ASSIGN_OR_RETURN(PlannedSelect replica,
                               PlanBound(bound, optimizer_options_, ov));
      replicas.push_back(std::move(replica.root));
    }
  }

  ParallelExecutor executor(dop);
  MAGICDB_ASSIGN_OR_RETURN(ParallelRunResult run,
                           executor.Run(std::move(replicas), proto));
  result.rows = std::move(run.rows);
  result.counters = run.counters;
  result.used_dop = run.used_dop;
  result.parallel_fallback_reason = std::move(run.fallback_reason);
  if (run.has_filter_join) {
    result.filter_join_measured.push_back(run.filter_join_measured);
  }
  return result;
}

StatusOr<std::string> Database::Explain(const std::string& sql) {
  MAGICDB_ASSIGN_OR_RETURN(LogicalPtr plan, Bind(sql));
  Optimizer optimizer(&catalog_, optimizer_options_);
  MAGICDB_ASSIGN_OR_RETURN(OptimizedPlan optimized, optimizer.Optimize(plan));
  return optimized.explain;
}

}  // namespace magicdb
