#ifndef MAGICDB_DB_DATABASE_H_
#define MAGICDB_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/statusor.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/operator.h"
#include "src/optimizer/optimizer.h"

namespace magicdb {

/// Result of running one SQL query.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;
  /// Work the execution actually performed (page I/O, CPU, communication).
  CostCounters counters;
  /// The optimizer's physical plan rendering and estimates.
  std::string explain;
  double est_cost = 0.0;
  double est_rows = 0.0;
  /// Table-1 breakdowns of Filter Joins in the executed plan (predicted).
  std::vector<FilterJoinCostBreakdown> filter_joins;
  /// Measured per-phase costs of the executed Filter Joins, outermost
  /// first (same order as `filter_joins` when plans align).
  std::vector<FilterJoinMeasured> filter_join_measured;
  /// Optimization effort spent planning this query.
  OptimizerStats optimizer_stats;
  /// Degree of parallelism the execution actually used (1 for Query() and
  /// for ExecuteParallel fallbacks).
  int used_dop = 1;
  /// Why ExecuteParallel ran single-threaded; empty when it ran parallel.
  std::string parallel_fallback_reason;

  /// Pretty-prints rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;
};

/// Top-level embedded-database facade tying catalog, SQL front end,
/// optimizer and executor together. Typical use:
///
///   Database db;
///   db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)");
///   db.LoadRows("Emp", rows);
///   db.Execute("CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal "
///              "FROM Emp GROUP BY did");
///   auto result = db.Query("SELECT ... FROM Emp E, Dept D, DepAvgSal V "
///                          "WHERE ...");
class Database {
 public:
  Database() = default;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  OptimizerOptions* mutable_optimizer_options() { return &optimizer_options_; }

  /// Executes a DDL statement (CREATE TABLE / CREATE VIEW).
  Status Execute(const std::string& sql);

  /// Bulk-loads rows into a table and refreshes its statistics.
  Status LoadRows(const std::string& table, std::vector<Tuple> rows);

  /// Parses, binds, optimizes and runs a SELECT.
  StatusOr<QueryResult> Query(const std::string& sql);

  /// Like Query(), but runs the plan on `dop` morsel-driven workers when
  /// its shape is parallel-safe (falling back to sequential execution
  /// otherwise; see QueryResult::parallel_fallback_reason). `dop` <= 0 uses
  /// the hardware concurrency. Results are byte-identical to Query() and
  /// the merged cost counters equal a single-threaded execution's. The
  /// plan is chosen with the session's OptimizerOptions — including its
  /// degree_of_parallelism costing knob — NOT with `dop`, so every `dop`
  /// executes the identical plan (set the knob yourself to steer costing).
  StatusOr<QueryResult> ExecuteParallel(const std::string& sql, int dop = 0);

  /// Plans a SELECT without running it; returns the EXPLAIN text.
  StatusOr<std::string> Explain(const std::string& sql);

  /// Parses and binds a SELECT into a logical plan (no optimization).
  StatusOr<LogicalPtr> Bind(const std::string& sql);

 private:
  Catalog catalog_;
  OptimizerOptions optimizer_options_;
};

}  // namespace magicdb

#endif  // MAGICDB_DB_DATABASE_H_
