#ifndef MAGICDB_DB_DATABASE_H_
#define MAGICDB_DB_DATABASE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/statusor.h"
#include "src/exec/cardinality_feedback.h"
#include "src/exec/exec_options.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/operator.h"
#include "src/exec/row_batch.h"
#include "src/optimizer/optimizer.h"
#include "src/stats/feedback_store.h"

namespace magicdb {

/// Result of running one SQL query.
struct QueryResult {
  Schema schema;
  std::vector<Tuple> rows;
  /// Work the execution actually performed (page I/O, CPU, communication).
  CostCounters counters;
  /// The optimizer's physical plan rendering and estimates.
  std::string explain;
  double est_cost = 0.0;
  double est_rows = 0.0;
  /// Table-1 breakdowns of Filter Joins in the executed plan (predicted).
  std::vector<FilterJoinCostBreakdown> filter_joins;
  /// Measured per-phase costs of the executed Filter Joins, outermost
  /// first (same order as `filter_joins` when plans align).
  std::vector<FilterJoinMeasured> filter_join_measured;
  /// Optimization effort spent planning this query.
  OptimizerStats optimizer_stats;
  /// Degree of parallelism the execution actually used (1 for Query() and
  /// for ExecuteParallel fallbacks).
  int used_dop = 1;
  /// Why ExecuteParallel ran single-threaded; empty when it ran parallel.
  std::string parallel_fallback_reason;

  /// How many times runtime cardinality feedback re-planned this query
  /// before it ran to completion (0 = the first plan survived).
  int reoptimizations = 0;

  /// Every breaker cardinality observed while executing (final attempt plus
  /// any aborted ones; first observation per key wins).
  std::vector<CardinalityObservation> feedback;

  /// Pretty-prints rows as an aligned text table.
  std::string ToString(size_t max_rows = 20) const;
};

/// Appends the measured per-phase costs of every FilterJoin in the executed
/// tree, outermost first (the order QueryResult::filter_join_measured
/// documents).
void CollectFilterJoinMeasured(const Operator& root,
                               std::vector<FilterJoinMeasured>* out);

/// Parse+bind output of one SELECT. The logical plan is immutable and
/// shared (`LogicalPtr` is a shared_ptr-to-const), so a BoundSelect can be
/// cached and re-planned concurrently — the query service's plan cache
/// keeps one per statement to skip parse+bind on repeated executions.
struct BoundSelect {
  LogicalPtr plan;
  int64_t limit = -1;  ///< -1 = no LIMIT clause.
};

/// A fully planned SELECT, ready to execute: the physical root (with any
/// LIMIT already applied) plus the optimizer's estimates and diagnostics.
struct PlannedSelect {
  BoundSelect bound;
  OpPtr root;
  Schema schema;
  std::string explain;
  double est_cost = 0.0;
  double est_rows = 0.0;
  std::vector<FilterJoinCostBreakdown> filter_joins;
  OptimizerStats optimizer_stats;
};

/// Top-level embedded-database facade tying catalog, SQL front end,
/// optimizer and executor together. Typical use:
///
///   Database db;
///   db.Execute("CREATE TABLE Emp (did INT, sal DOUBLE, age INT)");
///   db.LoadRows("Emp", rows);
///   db.Execute("CREATE VIEW DepAvgSal AS SELECT did, AVG(sal) AS avgsal "
///              "FROM Emp GROUP BY did");
///   auto result = db.Query("SELECT ... FROM Emp E, Dept D, DepAvgSal V "
///                          "WHERE ...");
class Database {
 public:
  Database() = default;

  Catalog* catalog() { return &catalog_; }
  const Catalog* catalog() const { return &catalog_; }

  OptimizerOptions* mutable_optimizer_options() { return &optimizer_options_; }

  /// Rows per batch for the vectorized execution path used by Query() and
  /// ExecuteParallel(). 0 = classic tuple-at-a-time execution. Results and
  /// cost counters are byte-identical either way; this only changes how
  /// operators exchange rows internally.
  int64_t exec_batch_size() const { return exec_batch_size_; }
  void set_exec_batch_size(int64_t rows) {
    exec_batch_size_ = rows < 0 ? 0 : rows;
  }

  /// Executes a DDL statement (CREATE TABLE / CREATE VIEW).
  Status Execute(const std::string& sql);

  /// Bulk-loads rows into a table and refreshes its statistics.
  Status LoadRows(const std::string& table, std::vector<Tuple> rows);

  /// Parses, binds, optimizes and runs a SELECT — the one execution entry
  /// point. `options.dop` selects sequential (1, the default) or
  /// morsel-parallel execution (> 1 when the plan shape allows, falling
  /// back to sequential otherwise; <= 0 = hardware concurrency); results
  /// and merged cost counters are byte-identical at any dop. When
  /// `options.reoptimize_qerror_threshold` resolves to a positive value
  /// (see ExecOptions), pipeline-breaker cardinalities whose q-error
  /// exceeds it abort the attempt, fold the observed counts into a
  /// cardinality overlay, and re-plan — bounded by
  /// `options.max_reoptimizations`, with the final attempt always running
  /// to completion. The plan is chosen with the session's OptimizerOptions
  /// — including its degree_of_parallelism costing knob — NOT with
  /// `options.dop`, so every dop executes the identical plan.
  StatusOr<QueryResult> Run(const std::string& sql,
                            const ExecOptions& options = {});

  /// DEPRECATED: thin wrapper over Run(sql) (sequential). Prefer Run().
  StatusOr<QueryResult> Query(const std::string& sql);

  /// DEPRECATED: thin wrapper over Run() with `options.dop = dop`. Prefer
  /// Run().
  StatusOr<QueryResult> ExecuteParallel(const std::string& sql, int dop = 0);

  /// Cross-query cardinality feedback: queries run with
  /// ExecOptions::persist_feedback fold their exact scan/view observations
  /// here, and every subsequent Run plans against a snapshot of it.
  FeedbackStore* feedback_store() { return &feedback_store_; }
  const FeedbackStore* feedback_store() const { return &feedback_store_; }

  /// Plans a SELECT without running it; returns the EXPLAIN text.
  StatusOr<std::string> Explain(const std::string& sql);

  /// Parses and binds a SELECT into a logical plan (no optimization).
  StatusOr<LogicalPtr> Bind(const std::string& sql);

  /// Parses and binds a SELECT, keeping the LIMIT clause alongside the
  /// logical plan. Const and thread-compatible: concurrent callers are safe
  /// as long as no DDL runs concurrently (the query service serializes DDL
  /// against queries with a shared/exclusive lock).
  StatusOr<BoundSelect> BindSelect(const std::string& sql) const;

  /// Parse + bind + optimize under explicit options. The returned root is
  /// directly executable (LIMIT applied).
  StatusOr<PlannedSelect> PlanSelect(const std::string& sql,
                                     const OptimizerOptions& options) const;

  /// Re-plans an already-bound SELECT (skips parse+bind). The optimizer is
  /// deterministic, so planning the same BoundSelect under the same options
  /// and catalog epoch always yields an isomorphic physical tree — the
  /// property both the plan cache and parallel replica planning rely on.
  StatusOr<PlannedSelect> PlanBound(const BoundSelect& bound,
                                    const OptimizerOptions& options) const;

  /// As above, planning against an observed-cardinality overlay (nullptr =
  /// none). The overlay must outlive the call; plans produced under a
  /// non-empty overlay are attempt-specific and must not be cached.
  StatusOr<PlannedSelect> PlanBound(const BoundSelect& bound,
                                    const OptimizerOptions& options,
                                    const CardinalityOverlay* overlay) const;

 private:
  /// One planning+execution attempt of Run's adaptive loop.
  StatusOr<QueryResult> RunAttempt(
      const BoundSelect& bound, int dop, const ExecOptions& options,
      const CardinalityOverlay& overlay,
      const std::shared_ptr<CardinalityFeedback>& ledger, double threshold);

  Catalog catalog_;
  OptimizerOptions optimizer_options_;
  int64_t exec_batch_size_ = DefaultExecBatchSize();
  FeedbackStore feedback_store_;
};

}  // namespace magicdb

#endif  // MAGICDB_DB_DATABASE_H_
