#include "src/sql/parser.h"

#include "src/sql/lexer.h"

namespace magicdb {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<Statement> ParseTop() {
    Statement stmt;
    if (PeekKeyword("CREATE")) {
      Advance();
      if (PeekKeyword("VIEW")) {
        Advance();
        MAGICDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("view name"));
        MAGICDB_RETURN_IF_ERROR(ExpectKeyword("AS"));
        MAGICDB_ASSIGN_OR_RETURN(auto select, ParseSelect());
        stmt.kind = Statement::Kind::kCreateView;
        stmt.select = std::make_unique<SelectStmt>(std::move(select));
      } else if (PeekKeyword("TABLE")) {
        Advance();
        MAGICDB_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("table name"));
        MAGICDB_RETURN_IF_ERROR(ExpectSymbol("("));
        stmt.kind = Statement::Kind::kCreateTable;
        while (true) {
          ColumnDef col;
          MAGICDB_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
          MAGICDB_ASSIGN_OR_RETURN(col.type, ParseType());
          stmt.columns.push_back(std::move(col));
          if (PeekSymbol(",")) {
            Advance();
            continue;
          }
          break;
        }
        MAGICDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        return Err("expected VIEW or TABLE after CREATE");
      }
    } else {
      MAGICDB_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt.kind = Statement::Kind::kSelect;
      stmt.select = std::make_unique<SelectStmt>(std::move(select));
    }
    if (PeekSymbol(";")) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Err("unexpected trailing input: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++pos_; }

  bool PeekKeyword(const std::string& kw) const {
    return Peek().type == TokenType::kKeyword && Peek().text == kw;
  }
  bool PeekSymbol(const std::string& s) const {
    return Peek().type == TokenType::kSymbol && Peek().text == s;
  }
  bool ConsumeKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(msg + " (at offset " +
                              std::to_string(Peek().position) + ")");
  }

  Status ExpectKeyword(const std::string& kw) {
    if (!PeekKeyword(kw)) return Err("expected " + kw);
    Advance();
    return Status::OK();
  }
  Status ExpectSymbol(const std::string& s) {
    if (!PeekSymbol(s)) return Err("expected '" + s + "'");
    Advance();
    return Status::OK();
  }
  StatusOr<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Err("expected " + what);
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  StatusOr<DataType> ParseType() {
    if (Peek().type != TokenType::kKeyword) return Err("expected a type");
    const std::string t = Peek().text;
    Advance();
    if (t == "INT" || t == "INTEGER" || t == "BIGINT") return DataType::kInt64;
    if (t == "DOUBLE" || t == "FLOAT" || t == "REAL") return DataType::kDouble;
    if (t == "VARCHAR" || t == "TEXT" || t == "STRING") {
      // Optional length: VARCHAR(32).
      if (PeekSymbol("(")) {
        Advance();
        if (Peek().type != TokenType::kInteger) return Err("expected length");
        Advance();
        MAGICDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      }
      return DataType::kString;
    }
    if (t == "BOOL" || t == "BOOLEAN") return DataType::kBool;
    return Err("unknown type " + t);
  }

  StatusOr<SelectStmt> ParseSelect() {
    SelectStmt stmt;
    MAGICDB_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    if (ConsumeKeyword("DISTINCT")) stmt.distinct = true;
    // Select list.
    while (true) {
      SelectItem item;
      if (PeekSymbol("*")) {
        Advance();
        item.star = true;
      } else {
        MAGICDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("AS")) {
          MAGICDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Peek().text;
          Advance();
        }
      }
      stmt.items.push_back(std::move(item));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    // FROM.
    MAGICDB_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    while (true) {
      TableRef ref;
      MAGICDB_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("table name"));
      if (ConsumeKeyword("AS")) {
        MAGICDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Peek().text;
        Advance();
      } else {
        ref.alias = ref.name;
      }
      stmt.from.push_back(std::move(ref));
      if (PeekSymbol(",")) {
        Advance();
        continue;
      }
      break;
    }
    if (ConsumeKeyword("WHERE")) {
      MAGICDB_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      MAGICDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      MAGICDB_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      MAGICDB_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        MAGICDB_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("ASC")) {
          item.ascending = true;
        } else if (ConsumeKeyword("DESC")) {
          item.ascending = false;
        }
        stmt.order_by.push_back(std::move(item));
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) return Err("expected LIMIT count");
      stmt.limit = Peek().int_value;
      Advance();
    }
    return stmt;
  }

  // Precedence climbing: OR < AND < NOT < comparison < additive <
  // multiplicative < unary < primary.
  StatusOr<ParsedExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ParsedExprPtr> ParseOr() {
    MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAnd());
    while (PeekKeyword("OR")) {
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAnd());
      left = MakeBinary("OR", std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ParsedExprPtr> ParseAnd() {
    MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseNot());
    while (PeekKeyword("AND")) {
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseNot());
      left = MakeBinary("AND", std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ParsedExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr operand, ParseNot());
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kUnary;
      e->op = "NOT";
      e->left = std::move(operand);
      return ParsedExprPtr(e);
    }
    return ParseComparison();
  }

  StatusOr<ParsedExprPtr> ParseComparison() {
    MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseAdditive());
    if (Peek().type == TokenType::kSymbol) {
      const std::string& s = Peek().text;
      if (s == "=" || s == "<>" || s == "!=" || s == "<" || s == "<=" ||
          s == ">" || s == ">=") {
        std::string op = s == "!=" ? "<>" : s;
        Advance();
        MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseAdditive());
        return MakeBinary(op, std::move(left), std::move(right));
      }
    }
    if (PeekKeyword("BETWEEN")) {
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr lo, ParseAdditive());
      MAGICDB_RETURN_IF_ERROR(ExpectKeyword("AND"));
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr hi, ParseAdditive());
      // x BETWEEN a AND b  =>  x >= a AND x <= b.
      ParsedExprPtr ge = MakeBinary(">=", left, std::move(lo));
      ParsedExprPtr le = MakeBinary("<=", std::move(left), std::move(hi));
      return MakeBinary("AND", std::move(ge), std::move(le));
    }
    if (PeekKeyword("IN")) {
      // x IN (a, b, c)  =>  x = a OR x = b OR x = c.
      Advance();
      MAGICDB_RETURN_IF_ERROR(ExpectSymbol("("));
      ParsedExprPtr disjunction;
      while (true) {
        MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr item, ParseAdditive());
        ParsedExprPtr eq = MakeBinary("=", left, std::move(item));
        disjunction = disjunction
                          ? MakeBinary("OR", std::move(disjunction),
                                       std::move(eq))
                          : std::move(eq);
        if (PeekSymbol(",")) {
          Advance();
          continue;
        }
        break;
      }
      MAGICDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return disjunction;
    }
    return left;
  }

  StatusOr<ParsedExprPtr> ParseAdditive() {
    MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseMultiplicative());
    while (PeekSymbol("+") || PeekSymbol("-")) {
      const std::string op = Peek().text;
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ParsedExprPtr> ParseMultiplicative() {
    MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr left, ParseUnary());
    while (PeekSymbol("*") || PeekSymbol("/")) {
      const std::string op = Peek().text;
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr right, ParseUnary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
    return left;
  }

  StatusOr<ParsedExprPtr> ParseUnary() {
    if (PeekSymbol("-")) {
      Advance();
      MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr operand, ParseUnary());
      auto e = std::make_shared<ParsedExpr>();
      e->kind = ParsedExpr::Kind::kUnary;
      e->op = "-";
      e->left = std::move(operand);
      return ParsedExprPtr(e);
    }
    return ParsePrimary();
  }

  StatusOr<ParsedExprPtr> ParsePrimary() {
    const Token& t = Peek();
    auto e = std::make_shared<ParsedExpr>();
    switch (t.type) {
      case TokenType::kInteger:
        e->kind = ParsedExpr::Kind::kLiteral;
        e->literal = Value::Int64(t.int_value);
        Advance();
        return ParsedExprPtr(e);
      case TokenType::kFloat:
        e->kind = ParsedExpr::Kind::kLiteral;
        e->literal = Value::Double(t.float_value);
        Advance();
        return ParsedExprPtr(e);
      case TokenType::kString:
        e->kind = ParsedExpr::Kind::kLiteral;
        e->literal = Value::String(t.text);
        Advance();
        return ParsedExprPtr(e);
      case TokenType::kKeyword: {
        if (t.text == "TRUE" || t.text == "FALSE") {
          e->kind = ParsedExpr::Kind::kLiteral;
          e->literal = Value::Bool(t.text == "TRUE");
          Advance();
          return ParsedExprPtr(e);
        }
        if (t.text == "NULL") {
          e->kind = ParsedExpr::Kind::kLiteral;
          e->literal = Value::Null();
          Advance();
          return ParsedExprPtr(e);
        }
        if (t.text == "AVG" || t.text == "SUM" || t.text == "COUNT" ||
            t.text == "MIN" || t.text == "MAX") {
          e->kind = ParsedExpr::Kind::kFuncCall;
          e->func = t.text;
          Advance();
          MAGICDB_RETURN_IF_ERROR(ExpectSymbol("("));
          if (PeekSymbol("*")) {
            Advance();
            e->star = true;
          } else {
            MAGICDB_ASSIGN_OR_RETURN(e->arg, ParseExpr());
          }
          MAGICDB_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ParsedExprPtr(e);
        }
        return Err("unexpected keyword " + t.text);
      }
      case TokenType::kIdentifier: {
        e->kind = ParsedExpr::Kind::kIdentifier;
        e->parts.push_back(t.text);
        Advance();
        while (PeekSymbol(".")) {
          Advance();
          MAGICDB_ASSIGN_OR_RETURN(std::string part,
                                   ExpectIdentifier("column name"));
          e->parts.push_back(std::move(part));
        }
        return ParsedExprPtr(e);
      }
      case TokenType::kSymbol:
        if (t.text == "(") {
          Advance();
          MAGICDB_ASSIGN_OR_RETURN(ParsedExprPtr inner, ParseExpr());
          MAGICDB_RETURN_IF_ERROR(ExpectSymbol(")"));
          return inner;
        }
        return Err("unexpected symbol '" + t.text + "'");
      case TokenType::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

  static ParsedExprPtr MakeBinary(std::string op, ParsedExprPtr left,
                                  ParsedExprPtr right) {
    auto e = std::make_shared<ParsedExpr>();
    e->kind = ParsedExpr::Kind::kBinary;
    e->op = std::move(op);
    e->left = std::move(left);
    e->right = std::move(right);
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<Statement> ParseStatement(const std::string& sql) {
  MAGICDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseTop();
}

}  // namespace magicdb
