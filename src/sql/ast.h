#ifndef MAGICDB_SQL_AST_H_
#define MAGICDB_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace magicdb {

struct ParsedExpr;
using ParsedExprPtr = std::shared_ptr<ParsedExpr>;

/// Unresolved expression produced by the parser; the binder resolves
/// identifiers against schemas and produces executable Expr trees.
struct ParsedExpr {
  enum class Kind {
    kLiteral,
    kIdentifier,  // possibly qualified: parts = {"E", "did"} or {"did"}
    kUnary,       // NOT, unary minus
    kBinary,      // comparison / arithmetic / AND / OR
    kFuncCall,    // aggregate: AVG/SUM/COUNT/MIN/MAX
  };

  Kind kind;
  // kLiteral
  Value literal;
  // kIdentifier
  std::vector<std::string> parts;
  // kUnary / kBinary: op is the token text ("NOT", "-", "=", "AND", ...).
  std::string op;
  ParsedExprPtr left;
  ParsedExprPtr right;
  // kFuncCall
  std::string func;  // upper-case
  ParsedExprPtr arg;
  bool star = false;  // COUNT(*)
};

struct SelectItem {
  ParsedExprPtr expr;  // null when star
  std::string alias;   // may be empty
  bool star = false;   // SELECT *
};

struct TableRef {
  std::string name;
  std::string alias;  // defaults to name
};

struct OrderItem {
  ParsedExprPtr expr;
  bool ascending = true;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ParsedExprPtr where;             // may be null
  std::vector<ParsedExprPtr> group_by;
  ParsedExprPtr having;            // may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;              // -1 = none
};

struct ColumnDef {
  std::string name;
  DataType type;
};

/// A parsed SQL statement.
struct Statement {
  enum class Kind { kSelect, kCreateView, kCreateTable };

  Kind kind = Kind::kSelect;
  std::unique_ptr<SelectStmt> select;  // kSelect and kCreateView
  std::string name;                    // view/table name
  std::vector<ColumnDef> columns;      // kCreateTable
};

}  // namespace magicdb

#endif  // MAGICDB_SQL_AST_H_
