#include "src/sql/binder.h"

#include <set>

namespace magicdb {

namespace {

StatusOr<CompareOp> ToCompareOp(const std::string& op) {
  if (op == "=") return CompareOp::kEq;
  if (op == "<>") return CompareOp::kNe;
  if (op == "<") return CompareOp::kLt;
  if (op == "<=") return CompareOp::kLe;
  if (op == ">") return CompareOp::kGt;
  if (op == ">=") return CompareOp::kGe;
  return Status::Internal("not a comparison op: " + op);
}

StatusOr<AggFunc> ToAggFunc(const std::string& name, bool star) {
  if (name == "COUNT") return star ? AggFunc::kCountStar : AggFunc::kCount;
  if (star) return Status::BindError("* is only valid in COUNT(*)");
  if (name == "AVG") return AggFunc::kAvg;
  if (name == "SUM") return AggFunc::kSum;
  if (name == "MIN") return AggFunc::kMin;
  if (name == "MAX") return AggFunc::kMax;
  return Status::Internal("not an aggregate: " + name);
}

/// Display/derived name for a select item.
std::string ItemName(const SelectItem& item, int index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr && item.expr->kind == ParsedExpr::Kind::kIdentifier) {
    return item.expr->parts.back();
  }
  if (item.expr && item.expr->kind == ParsedExpr::Kind::kFuncCall) {
    std::string n = item.expr->func;
    std::transform(n.begin(), n.end(), n.begin(), ::tolower);
    return n;
  }
  return "col" + std::to_string(index);
}

}  // namespace

struct Binder::AggContext {
  const Binder* binder;
  const Schema* block_schema;
  /// Bound group-by expressions (over the block schema).
  std::vector<ExprPtr> group_exprs;
  /// Collected aggregate specs; outputs live at group_exprs.size() + i.
  std::vector<AggSpec> specs;
  /// Output schema of the aggregate (group cols then agg cols), built as
  /// specs are collected.
  Schema agg_schema;
};

bool Binder::ContainsAggregate(const ParsedExpr& expr) {
  switch (expr.kind) {
    case ParsedExpr::Kind::kFuncCall:
      return true;
    case ParsedExpr::Kind::kUnary:
      return expr.left && ContainsAggregate(*expr.left);
    case ParsedExpr::Kind::kBinary:
      return (expr.left && ContainsAggregate(*expr.left)) ||
             (expr.right && ContainsAggregate(*expr.right));
    default:
      return false;
  }
}

StatusOr<ExprPtr> Binder::BindScalar(const ParsedExpr& expr,
                                     const Schema& schema) const {
  switch (expr.kind) {
    case ParsedExpr::Kind::kLiteral:
      return MakeLiteral(expr.literal);
    case ParsedExpr::Kind::kIdentifier: {
      std::string qualifier, name;
      if (expr.parts.size() == 1) {
        name = expr.parts[0];
      } else if (expr.parts.size() == 2) {
        qualifier = expr.parts[0];
        name = expr.parts[1];
      } else {
        return Status::BindError("too many qualifiers in column reference");
      }
      MAGICDB_ASSIGN_OR_RETURN(int idx, schema.FindColumn(qualifier, name));
      return MakeColumnRef(idx, schema.column(idx).type,
                           schema.column(idx).QualifiedName());
    }
    case ParsedExpr::Kind::kUnary: {
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr operand,
                               BindScalar(*expr.left, schema));
      if (expr.op == "NOT") return MakeNot(std::move(operand));
      if (expr.op == "-") {
        return MakeArithmetic(ArithOp::kSub, MakeLiteral(Value::Int64(0)),
                              std::move(operand));
      }
      return Status::BindError("unknown unary operator " + expr.op);
    }
    case ParsedExpr::Kind::kBinary: {
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr left, BindScalar(*expr.left, schema));
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr right,
                               BindScalar(*expr.right, schema));
      if (expr.op == "AND") return MakeAnd(std::move(left), std::move(right));
      if (expr.op == "OR") return MakeOr(std::move(left), std::move(right));
      if (expr.op == "+") {
        return MakeArithmetic(ArithOp::kAdd, std::move(left),
                              std::move(right));
      }
      if (expr.op == "-") {
        return MakeArithmetic(ArithOp::kSub, std::move(left),
                              std::move(right));
      }
      if (expr.op == "*") {
        return MakeArithmetic(ArithOp::kMul, std::move(left),
                              std::move(right));
      }
      if (expr.op == "/") {
        return MakeArithmetic(ArithOp::kDiv, std::move(left),
                              std::move(right));
      }
      MAGICDB_ASSIGN_OR_RETURN(CompareOp op, ToCompareOp(expr.op));
      return MakeComparison(op, std::move(left), std::move(right));
    }
    case ParsedExpr::Kind::kFuncCall:
      return Status::BindError(
          "aggregate " + expr.func +
          " is not allowed here (only in SELECT list and HAVING)");
  }
  return Status::Internal("unhandled parsed expression kind");
}

StatusOr<ExprPtr> Binder::BindAggregate(const ParsedExpr& expr,
                                        AggContext* agg) const {
  switch (expr.kind) {
    case ParsedExpr::Kind::kLiteral:
      return MakeLiteral(expr.literal);
    case ParsedExpr::Kind::kFuncCall: {
      MAGICDB_ASSIGN_OR_RETURN(AggFunc func, ToAggFunc(expr.func, expr.star));
      ExprPtr arg;
      if (!expr.star) {
        MAGICDB_ASSIGN_OR_RETURN(arg,
                                 BindScalar(*expr.arg, *agg->block_schema));
      }
      // Reuse an identical spec if present.
      const std::string key = std::string(AggFuncName(func)) +
                              (arg ? arg->ToString() : "");
      for (size_t i = 0; i < agg->specs.size(); ++i) {
        const AggSpec& s = agg->specs[i];
        const std::string existing = std::string(AggFuncName(s.func)) +
                                     (s.arg ? s.arg->ToString() : "");
        if (existing == key) {
          const int pos = static_cast<int>(agg->group_exprs.size() + i);
          return MakeColumnRef(pos, s.ResultType(), s.output_name);
        }
      }
      AggSpec spec{func, arg,
                   "agg" + std::to_string(agg->specs.size())};
      const int pos =
          static_cast<int>(agg->group_exprs.size() + agg->specs.size());
      agg->agg_schema.AddColumn({"", spec.output_name, spec.ResultType()});
      ExprPtr ref = MakeColumnRef(pos, spec.ResultType(), spec.output_name);
      agg->specs.push_back(std::move(spec));
      return ref;
    }
    case ParsedExpr::Kind::kIdentifier: {
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr bound,
                               BindScalar(expr, *agg->block_schema));
      // Must correspond to a group-by expression.
      for (size_t i = 0; i < agg->group_exprs.size(); ++i) {
        if (agg->group_exprs[i]->ToString() == bound->ToString()) {
          return MakeColumnRef(static_cast<int>(i),
                               agg->agg_schema.column(static_cast<int>(i)).type,
                               agg->agg_schema.column(static_cast<int>(i))
                                   .QualifiedName());
        }
      }
      return Status::BindError("column " + bound->ToString() +
                               " must appear in GROUP BY or inside an "
                               "aggregate");
    }
    case ParsedExpr::Kind::kUnary:
    case ParsedExpr::Kind::kBinary: {
      // A compound expression that matches a GROUP BY expression verbatim
      // binds to that group column (SQL: "GROUP BY v / 6" makes "v / 6"
      // selectable).
      if (!ContainsAggregate(expr)) {
        auto bound = BindScalar(expr, *agg->block_schema);
        if (bound.ok()) {
          for (size_t i = 0; i < agg->group_exprs.size(); ++i) {
            if (agg->group_exprs[i]->ToString() == (*bound)->ToString()) {
              return MakeColumnRef(
                  static_cast<int>(i),
                  agg->agg_schema.column(static_cast<int>(i)).type,
                  agg->agg_schema.column(static_cast<int>(i))
                      .QualifiedName());
            }
          }
        }
      }
      if (expr.kind == ParsedExpr::Kind::kUnary) {
        MAGICDB_ASSIGN_OR_RETURN(ExprPtr operand,
                                 BindAggregate(*expr.left, agg));
        if (expr.op == "NOT") return MakeNot(std::move(operand));
        if (expr.op == "-") {
          return MakeArithmetic(ArithOp::kSub, MakeLiteral(Value::Int64(0)),
                                std::move(operand));
        }
        return Status::BindError("unknown unary operator " + expr.op);
      }
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr left, BindAggregate(*expr.left, agg));
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr right, BindAggregate(*expr.right, agg));
      if (expr.op == "AND") return MakeAnd(std::move(left), std::move(right));
      if (expr.op == "OR") return MakeOr(std::move(left), std::move(right));
      if (expr.op == "+") {
        return MakeArithmetic(ArithOp::kAdd, std::move(left),
                              std::move(right));
      }
      if (expr.op == "-") {
        return MakeArithmetic(ArithOp::kSub, std::move(left),
                              std::move(right));
      }
      if (expr.op == "*") {
        return MakeArithmetic(ArithOp::kMul, std::move(left),
                              std::move(right));
      }
      if (expr.op == "/") {
        return MakeArithmetic(ArithOp::kDiv, std::move(left),
                              std::move(right));
      }
      MAGICDB_ASSIGN_OR_RETURN(CompareOp op, ToCompareOp(expr.op));
      return MakeComparison(op, std::move(left), std::move(right));
    }
  }
  return Status::Internal("unhandled parsed expression kind");
}

StatusOr<LogicalPtr> Binder::BindSelect(const SelectStmt& stmt) const {
  if (stmt.from.empty()) {
    return Status::BindError("FROM clause is required");
  }
  // FROM inputs and block schema.
  std::vector<LogicalPtr> inputs;
  Schema block;
  std::set<std::string> aliases;
  for (const TableRef& ref : stmt.from) {
    if (!aliases.insert(ref.alias).second) {
      return Status::BindError("duplicate range variable: " + ref.alias);
    }
    MAGICDB_ASSIGN_OR_RETURN(const CatalogEntry* entry,
                             catalog_->Lookup(ref.name));
    Schema schema = entry->schema.WithQualifier(ref.alias);
    inputs.push_back(
        std::make_shared<RelScanNode>(ref.name, ref.alias, schema));
    block = block.Concat(schema);
  }

  // WHERE over the block schema.
  ExprPtr where;
  if (stmt.where) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    MAGICDB_ASSIGN_OR_RETURN(where, BindScalar(*stmt.where, block));
  }
  LogicalPtr plan =
      std::make_shared<NaryJoinNode>(std::move(inputs), where, block);

  // Aggregate query?
  bool has_agg = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const SelectItem& item : stmt.items) {
    if (item.expr && ContainsAggregate(*item.expr)) has_agg = true;
  }

  std::vector<ExprPtr> out_exprs;
  Schema out_schema;

  if (has_agg) {
    AggContext agg;
    agg.binder = this;
    agg.block_schema = &block;
    for (const ParsedExprPtr& g : stmt.group_by) {
      if (ContainsAggregate(*g)) {
        return Status::BindError("aggregates are not allowed in GROUP BY");
      }
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*g, block));
      // Group column name: the underlying column for plain references.
      Column col{"", "g" + std::to_string(agg.group_exprs.size()),
                 bound->result_type()};
      if (bound->kind() == ExprKind::kColumnRef) {
        const int idx = static_cast<const ColumnRefExpr*>(bound.get())->index();
        col.qualifier = block.column(idx).qualifier;
        col.name = block.column(idx).name;
      }
      agg.agg_schema.AddColumn(col);
      agg.group_exprs.push_back(std::move(bound));
    }
    // Bind select items (collects agg specs and extends agg_schema).
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        return Status::BindError("SELECT * is not valid with GROUP BY");
      }
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr bound, BindAggregate(*item.expr, &agg));
      out_exprs.push_back(bound);
      out_schema.AddColumn(
          {"", ItemName(item, static_cast<int>(i)), bound->result_type()});
    }
    ExprPtr having;
    if (stmt.having) {
      MAGICDB_ASSIGN_OR_RETURN(having, BindAggregate(*stmt.having, &agg));
    }
    plan = std::make_shared<AggregateNode>(plan, agg.group_exprs, agg.specs,
                                           agg.agg_schema);
    if (having) {
      plan = std::make_shared<FilterNode>(plan, having);
    }
    plan = std::make_shared<ProjectNode>(plan, out_exprs, out_schema);
  } else {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      const SelectItem& item = stmt.items[i];
      if (item.star) {
        for (int c = 0; c < block.num_columns(); ++c) {
          out_exprs.push_back(MakeColumnRef(c, block.column(c).type,
                                            block.column(c).QualifiedName()));
          out_schema.AddColumn(block.column(c));
        }
        continue;
      }
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr bound, BindScalar(*item.expr, block));
      out_exprs.push_back(bound);
      out_schema.AddColumn(
          {"", ItemName(item, static_cast<int>(i)), bound->result_type()});
    }
    plan = std::make_shared<ProjectNode>(plan, out_exprs, out_schema);
  }

  if (stmt.distinct) {
    plan = std::make_shared<DistinctNode>(plan);
  }

  if (!stmt.order_by.empty()) {
    std::vector<SortNode::SortKey> keys;
    for (const OrderItem& item : stmt.order_by) {
      // Resolve against the output schema (aliases), falling back to bare
      // column names.
      MAGICDB_ASSIGN_OR_RETURN(ExprPtr bound,
                               BindScalar(*item.expr, plan->schema()));
      keys.push_back({bound, item.ascending});
    }
    plan = std::make_shared<SortNode>(plan, keys);
  }
  return plan;
}

}  // namespace magicdb
