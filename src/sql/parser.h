#ifndef MAGICDB_SQL_PARSER_H_
#define MAGICDB_SQL_PARSER_H_

#include <string>

#include "src/common/statusor.h"
#include "src/sql/ast.h"

namespace magicdb {

/// Parses one SQL statement (SELECT, CREATE VIEW ... AS SELECT,
/// CREATE TABLE). Trailing semicolons are allowed.
StatusOr<Statement> ParseStatement(const std::string& sql);

}  // namespace magicdb

#endif  // MAGICDB_SQL_PARSER_H_
