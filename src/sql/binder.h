#ifndef MAGICDB_SQL_BINDER_H_
#define MAGICDB_SQL_BINDER_H_

#include <string>
#include <vector>

#include "src/catalog/catalog.h"
#include "src/common/statusor.h"
#include "src/plan/logical_plan.h"
#include "src/sql/ast.h"

namespace magicdb {

/// Resolves a parsed SELECT against the catalog into a bound logical plan:
///
///   Sort? ( Distinct? ( Project ( Filter?(HAVING) ( Aggregate? (
///       NaryJoin(inputs, WHERE) )))))
///
/// LIMIT is left to the caller (it is an executor concern).
class Binder {
 public:
  explicit Binder(const Catalog* catalog) : catalog_(catalog) {}

  StatusOr<LogicalPtr> BindSelect(const SelectStmt& stmt) const;

  /// Binds a scalar (non-aggregate) parsed expression against `schema`.
  StatusOr<ExprPtr> BindScalar(const ParsedExpr& expr,
                               const Schema& schema) const;

 private:
  struct AggContext;

  /// Binds an expression in aggregate-output space, collecting AggSpecs.
  StatusOr<ExprPtr> BindAggregate(const ParsedExpr& expr,
                                  AggContext* agg_ctx) const;

  static bool ContainsAggregate(const ParsedExpr& expr);

  const Catalog* catalog_;
};

}  // namespace magicdb

#endif  // MAGICDB_SQL_BINDER_H_
