#include "src/sql/lexer.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace magicdb {

namespace {
const std::set<std::string>& Keywords() {
  static const auto* kKeywords = new std::set<std::string>({
      "SELECT", "FROM",   "WHERE",  "GROUP",   "BY",      "HAVING",
      "ORDER",  "ASC",    "DESC",   "AND",     "OR",      "NOT",
      "AS",     "CREATE", "VIEW",   "TABLE",   "DISTINCT", "AVG",
      "SUM",    "COUNT",  "MIN",    "MAX",     "TRUE",    "FALSE",
      "NULL",   "INT",    "INTEGER", "BIGINT", "DOUBLE",  "FLOAT",
      "REAL",   "VARCHAR", "TEXT",  "STRING",  "BOOL",    "BOOLEAN",
      "LIMIT",  "BETWEEN", "IN",
  });
  return *kKeywords;
}
}  // namespace

bool IsKeyword(const std::string& upper) {
  return Keywords().count(upper) > 0;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token t;
    t.position = static_cast<int>(i);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      std::string word = sql.substr(i, j - i);
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), ::toupper);
      if (IsKeyword(upper)) {
        t.type = TokenType::kKeyword;
        t.text = upper;
      } else {
        t.type = TokenType::kIdentifier;
        t.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool is_float = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E' ||
                       ((sql[j] == '+' || sql[j] == '-') && j > i &&
                        (sql[j - 1] == 'e' || sql[j - 1] == 'E')))) {
        if (sql[j] == '.' || sql[j] == 'e' || sql[j] == 'E') is_float = true;
        ++j;
      }
      const std::string num = sql.substr(i, j - i);
      if (is_float) {
        t.type = TokenType::kFloat;
        try {
          t.float_value = std::stod(num);
        } catch (...) {
          return Status::ParseError("bad numeric literal: " + num);
        }
      } else {
        t.type = TokenType::kInteger;
        try {
          t.int_value = std::stoll(num);
        } catch (...) {
          return Status::ParseError("bad integer literal: " + num);
        }
      }
      t.text = num;
      i = j;
    } else if (c == '\'') {
      std::string value;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {
            value += '\'';
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        value += sql[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(i));
      }
      t.type = TokenType::kString;
      t.text = value;
      i = j;
    } else {
      // Multi-char symbols first.
      static const char* kTwoChar[] = {"<>", "!=", "<=", ">="};
      std::string sym(1, c);
      if (i + 1 < n) {
        const std::string two = sql.substr(i, 2);
        for (const char* s : kTwoChar) {
          if (two == s) {
            sym = two;
            break;
          }
        }
      }
      static const std::string kSingles = "(),.+-*/=<>;";
      if (sym.size() == 1 && kSingles.find(c) == std::string::npos) {
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(i));
      }
      t.type = TokenType::kSymbol;
      t.text = sym;
      i += sym.size();
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = static_cast<int>(n);
  tokens.push_back(end);
  return tokens;
}

}  // namespace magicdb
