#ifndef MAGICDB_SQL_LEXER_H_
#define MAGICDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/statusor.h"

namespace magicdb {

enum class TokenType {
  kIdentifier,
  kKeyword,
  kInteger,
  kFloat,
  kString,
  kSymbol,  // ( ) , . + - * / = <> != < <= > >= ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;  // keywords upper-cased; identifiers verbatim
  int64_t int_value = 0;
  double float_value = 0.0;
  int position = 0;  // byte offset for error messages
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively;
/// string literals use single quotes with '' escaping.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

/// True if `word` (upper-case) is a reserved keyword.
bool IsKeyword(const std::string& upper);

}  // namespace magicdb

#endif  // MAGICDB_SQL_LEXER_H_
