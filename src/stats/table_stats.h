#ifndef MAGICDB_STATS_TABLE_STATS_H_
#define MAGICDB_STATS_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/stats/histogram.h"
#include "src/storage/table.h"
#include "src/types/schema.h"

namespace magicdb {

/// Per-column statistics gathered by Analyze().
struct ColumnStats {
  int64_t num_distinct = 0;
  double null_fraction = 0.0;
  /// Numeric min/max; only meaningful when `numeric` is true.
  bool numeric = false;
  double min = 0.0;
  double max = 0.0;
  EquiDepthHistogram histogram;  // numeric columns only
};

/// Statistics for one relation: cardinality plus per-column detail. The
/// optimizer derives all selectivity and cardinality estimates from these.
struct TableStats {
  int64_t num_rows = 0;
  int64_t num_pages = 0;
  int64_t tuple_width_bytes = 0;
  std::vector<ColumnStats> columns;

  /// Scans `table` and computes exact statistics (this simulator analyzes
  /// exhaustively; a production system would sample).
  static TableStats Analyze(const Table& table, int histogram_buckets = 16);

  std::string ToString() const;
};

/// Yao's formula [Yao77]: expected number of distinct values observed when
/// drawing `k` rows (without replacement) from a relation of `n` rows that
/// contains `d` distinct values, each value appearing n/d times.
///
/// The optimizer uses this to estimate projection cardinality: the distinct
/// filter set produced by projecting a production set of k rows.
double YaoEstimate(int64_t n, int64_t d, int64_t k);

}  // namespace magicdb

#endif  // MAGICDB_STATS_TABLE_STATS_H_
