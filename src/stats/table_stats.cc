#include "src/stats/table_stats.h"

#include <cmath>
#include <set>
#include <sstream>

namespace magicdb {

TableStats TableStats::Analyze(const Table& table, int histogram_buckets) {
  TableStats stats;
  stats.num_rows = table.NumRows();
  stats.num_pages = table.NumPages();
  stats.tuple_width_bytes = table.schema().TupleWidthBytes();
  const int ncols = table.schema().num_columns();
  stats.columns.resize(ncols);

  for (int c = 0; c < ncols; ++c) {
    ColumnStats& cs = stats.columns[c];
    std::set<Value> distinct;
    std::vector<double> numeric_values;
    int64_t nulls = 0;
    bool all_numeric = true;
    for (int64_t r = 0; r < table.NumRows(); ++r) {
      const Value& v = table.row(r)[c];
      if (v.is_null()) {
        ++nulls;
        continue;
      }
      distinct.insert(v);
      auto num = v.AsNumeric();
      if (num.ok()) {
        numeric_values.push_back(*num);
      } else {
        all_numeric = false;
      }
    }
    cs.num_distinct = static_cast<int64_t>(distinct.size());
    cs.null_fraction =
        stats.num_rows > 0
            ? static_cast<double>(nulls) / static_cast<double>(stats.num_rows)
            : 0.0;
    cs.numeric = all_numeric && !numeric_values.empty();
    if (cs.numeric) {
      cs.histogram =
          EquiDepthHistogram::Build(numeric_values, histogram_buckets);
      cs.min = cs.histogram.min();
      cs.max = cs.histogram.max();
    }
  }
  return stats;
}

std::string TableStats::ToString() const {
  std::ostringstream os;
  os << "rows=" << num_rows << " pages=" << num_pages << " cols=[";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) os << ", ";
    os << "d=" << columns[i].num_distinct;
  }
  os << "]";
  return os.str();
}

double YaoEstimate(int64_t n, int64_t d, int64_t k) {
  if (n <= 0 || d <= 0 || k <= 0) return 0.0;
  if (k >= n) return static_cast<double>(d);
  // Each distinct value appears n/d times. The probability that a given
  // value is entirely absent from a sample of k rows is approximately
  // ((1 - k/n))^(n/d); Yao's exact hypergeometric form is well-approximated
  // by this for the sizes the optimizer sees.
  const double miss =
      std::pow(1.0 - static_cast<double>(k) / static_cast<double>(n),
               static_cast<double>(n) / static_cast<double>(d));
  return static_cast<double>(d) * (1.0 - miss);
}

}  // namespace magicdb
