#ifndef MAGICDB_STATS_FEEDBACK_STORE_H_
#define MAGICDB_STATS_FEEDBACK_STORE_H_

// Runtime cardinality feedback: observations taken at pipeline breakers,
// the overlay that feeds them back into planning, and the cross-query
// store that persists them. The per-query ledger living on ExecContext is
// in src/exec/cardinality_feedback.h; this header holds the planner-facing
// half so the optimizer need not depend on executor headers.

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/expr/expr.h"

namespace magicdb {

/// One runtime cardinality measurement from a pipeline breaker.
struct CardinalityObservation {
  /// Identity of the measured stream. Base join-block inputs use
  /// FeedbackScanKey ("scan:Emp|pred&pred", "view:DepAvgSal|..."); other
  /// breakers use site-local keys ("fj:<binding>", "agg:...", "gather:...").
  std::string key;
  /// Breaker kind: "hash_join_build", "filter_join_build",
  /// "aggregate_build", "staged_gather". Doubles as the re-optimization
  /// metric reason label.
  std::string site;
  double estimated = 0.0;
  double actual = 0.0;
  /// True when `actual` is an exact, DoP-invariant total for the stream
  /// named by `key` — the bar for feeding the number back into planning.
  bool exact = false;

  /// Multiplicative estimation error, >= 1 (1 = perfect).
  double QError() const {
    const double e = std::max(1.0, estimated);
    const double a = std::max(1.0, actual);
    return std::max(a / e, e / a);
  }
};

/// Observed row counts that override stats-derived base-input estimates
/// during planning (Optimizer::set_cardinality_overlay).
struct CardinalityOverlay {
  std::unordered_map<std::string, double> rows;

  const double* Find(const std::string& key) const {
    auto it = rows.find(key);
    return it == rows.end() ? nullptr : &it->second;
  }
  bool empty() const { return rows.empty(); }
};

/// Stable key for a base join-block input: `prefix` ("scan" or "view"),
/// relation name, and the sorted rendered local predicates — so the same
/// table under different filters keeps distinct feedback entries.
std::string FeedbackScanKey(const std::string& prefix, const std::string& name,
                            const std::vector<ExprPtr>& local_preds);

/// True for keys whose observations the planner can consume (scan:/view:).
bool IsOverlayKey(const std::string& key);

/// Cross-query persistence of exact base-input observations. Thread-safe;
/// one per Database (and per QueryService via its Database). `version`
/// increments on every effective fold so plan caches can invalidate.
class FeedbackStore {
 public:
  /// Folds the exact scan/view observations of one finished query into the
  /// store (last write wins). Returns the number of entries changed.
  int Fold(const std::vector<CardinalityObservation>& observations);

  CardinalityOverlay Snapshot() const;
  int64_t version() const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  CardinalityOverlay overlay_;
  int64_t version_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_STATS_FEEDBACK_STORE_H_
