#include "src/stats/histogram.h"

#include <algorithm>
#include <sstream>

namespace magicdb {

EquiDepthHistogram EquiDepthHistogram::Build(std::vector<double> values,
                                             int num_buckets) {
  EquiDepthHistogram h;
  if (values.empty() || num_buckets <= 0) return h;
  std::sort(values.begin(), values.end());
  h.total_count_ = static_cast<int64_t>(values.size());
  h.min_ = values.front();
  h.max_ = values.back();

  const int64_t n = h.total_count_;
  const int64_t target_depth =
      std::max<int64_t>(1, (n + num_buckets - 1) / num_buckets);
  int64_t i = 0;
  while (i < n) {
    Bucket b;
    b.lower = values[i];
    int64_t end = std::min<int64_t>(n, i + target_depth);
    // Extend the bucket so equal values never straddle a boundary.
    while (end < n && values[end] == values[end - 1]) ++end;
    b.upper = values[end - 1];
    b.count = end - i;
    b.distinct = 1;
    for (int64_t j = i + 1; j < end; ++j) {
      if (values[j] != values[j - 1]) ++b.distinct;
    }
    h.buckets_.push_back(b);
    i = end;
  }
  return h;
}

double EquiDepthHistogram::FractionBelow(double x) const {
  if (empty()) return 0.0;
  if (x <= min_) return 0.0;
  if (x > max_) return 1.0;
  int64_t below = 0;
  for (const Bucket& b : buckets_) {
    if (x > b.upper) {
      below += b.count;
      continue;
    }
    if (x > b.lower) {
      // Linear interpolation within the bucket.
      const double span = b.upper - b.lower;
      const double frac = span > 0 ? (x - b.lower) / span : 0.0;
      below += static_cast<int64_t>(frac * static_cast<double>(b.count));
    }
    break;
  }
  return static_cast<double>(below) / static_cast<double>(total_count_);
}

double EquiDepthHistogram::FractionBetween(double lo, double hi) const {
  if (empty() || hi < lo) return 0.0;
  // [lo, hi] inclusive: fraction below (hi + epsilon side) handled via
  // FractionBelow(hi) + FractionEqual(hi).
  double f = FractionBelow(hi) - FractionBelow(lo) + FractionEqual(hi);
  return std::clamp(f, 0.0, 1.0);
}

double EquiDepthHistogram::FractionEqual(double x) const {
  if (empty() || x < min_ || x > max_) return 0.0;
  for (const Bucket& b : buckets_) {
    if (x >= b.lower && x <= b.upper) {
      const double per_value =
          static_cast<double>(b.count) /
          static_cast<double>(std::max<int64_t>(1, b.distinct));
      return per_value / static_cast<double>(total_count_);
    }
  }
  return 0.0;
}

std::string EquiDepthHistogram::ToString() const {
  std::ostringstream os;
  os << "hist[" << buckets_.size() << " buckets, n=" << total_count_ << "]";
  return os.str();
}

}  // namespace magicdb
