#ifndef MAGICDB_STATS_HISTOGRAM_H_
#define MAGICDB_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/types/value.h"

namespace magicdb {

/// Equi-depth histogram over numeric values. Buckets hold (approximately)
/// equal row counts; boundaries are data values. Non-numeric columns do not
/// get histograms (the estimator falls back to distinct counts).
class EquiDepthHistogram {
 public:
  /// Builds a histogram with at most `num_buckets` buckets from `values`
  /// (non-NULL numeric values; order irrelevant). Empty input yields an
  /// empty histogram.
  static EquiDepthHistogram Build(std::vector<double> values,
                                  int num_buckets);

  bool empty() const { return buckets_.empty(); }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }

  /// Estimated fraction of rows with value < x (continuous interpolation
  /// within a bucket).
  double FractionBelow(double x) const;

  /// Estimated fraction of rows with lo <= value <= hi.
  double FractionBetween(double lo, double hi) const;

  /// Estimated fraction of rows equal to x (bucket depth spread over the
  /// bucket's distinct span).
  double FractionEqual(double x) const;

  double min() const { return min_; }
  double max() const { return max_; }

  std::string ToString() const;

 private:
  struct Bucket {
    double lower;   // inclusive
    double upper;   // inclusive
    int64_t count;  // rows in bucket
    int64_t distinct;  // approximate distinct values in bucket
  };

  std::vector<Bucket> buckets_;
  int64_t total_count_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_STATS_HISTOGRAM_H_
