#include "src/stats/feedback_store.h"

namespace magicdb {

std::string FeedbackScanKey(const std::string& prefix, const std::string& name,
                            const std::vector<ExprPtr>& local_preds) {
  std::vector<std::string> rendered;
  rendered.reserve(local_preds.size());
  for (const ExprPtr& p : local_preds) rendered.push_back(p->ToString());
  std::sort(rendered.begin(), rendered.end());
  std::string key = prefix;
  key += ':';
  key += name;
  key += '|';
  for (size_t i = 0; i < rendered.size(); ++i) {
    if (i > 0) key += '&';
    key += rendered[i];
  }
  return key;
}

bool IsOverlayKey(const std::string& key) {
  return key.rfind("scan:", 0) == 0 || key.rfind("view:", 0) == 0;
}

int FeedbackStore::Fold(
    const std::vector<CardinalityObservation>& observations) {
  std::lock_guard<std::mutex> lock(mu_);
  int changed = 0;
  for (const CardinalityObservation& obs : observations) {
    if (!obs.exact || !IsOverlayKey(obs.key)) continue;
    double& slot = overlay_.rows[obs.key];
    if (slot != obs.actual) {
      slot = obs.actual;
      ++changed;
    }
  }
  if (changed > 0) ++version_;
  return changed;
}

CardinalityOverlay FeedbackStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_;
}

int64_t FeedbackStore::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

size_t FeedbackStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overlay_.rows.size();
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  overlay_.rows.clear();
  ++version_;
}

}  // namespace magicdb
