#ifndef MAGICDB_PLAN_LOGICAL_PLAN_H_
#define MAGICDB_PLAN_LOGICAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/expr/expr.h"
#include "src/types/schema.h"

namespace magicdb {

class LogicalNode;
/// Logical plans are immutable trees shared between the optimizer's
/// alternatives.
using LogicalPtr = std::shared_ptr<const LogicalNode>;

enum class LogicalKind {
  kRelScan,       // named relation: base table, view, remote table, function
  kFilterSetRef,  // magic filter set scanned as a relation (exact impl only)
  kFilterSetProbe,  // semi-join restriction by a magic filter set
  kNaryJoin,      // join block: N inputs + conjunctive predicate
  kFilter,
  kProject,
  kAggregate,
  kDistinct,
  kSort,
};

/// Aggregate functions supported by the engine.
enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

const char* AggFuncName(AggFunc f);

/// One aggregate output: FUNC(arg) AS name. `arg` is null for COUNT(*).
struct AggSpec {
  AggFunc func;
  ExprPtr arg;
  std::string output_name;

  /// Result type of this aggregate given the arg type.
  DataType ResultType() const;
};

/// Base class for logical operators. Every node knows its output schema.
class LogicalNode {
 public:
  virtual ~LogicalNode() = default;

  LogicalKind kind() const { return kind_; }
  const Schema& schema() const { return schema_; }
  const std::vector<LogicalPtr>& children() const { return children_; }

  /// Single-line description of this node (without children).
  virtual std::string Describe() const = 0;

  /// Multi-line indented tree rendering.
  std::string ToString() const;

 protected:
  LogicalNode(LogicalKind kind, Schema schema, std::vector<LogicalPtr> children)
      : kind_(kind), schema_(std::move(schema)), children_(std::move(children)) {}

 private:
  LogicalKind kind_;
  Schema schema_;
  std::vector<LogicalPtr> children_;
};

/// Scan of a named catalog relation under an alias. The catalog decides at
/// optimization time whether this is a base table, a view (virtual
/// relation), a remote table, or a table function.
class RelScanNode final : public LogicalNode {
 public:
  RelScanNode(std::string relation_name, std::string alias, Schema schema)
      : LogicalNode(LogicalKind::kRelScan, std::move(schema), {}),
        relation_name_(std::move(relation_name)),
        alias_(std::move(alias)) {}

  const std::string& relation_name() const { return relation_name_; }
  const std::string& alias() const { return alias_; }

  std::string Describe() const override;

 private:
  std::string relation_name_;
  std::string alias_;
};

/// Placeholder for a magic filter set materialized at runtime. Appears only
/// inside magic-rewritten view plans; the executor resolves `binding_id`
/// through the execution context.
class FilterSetRefNode final : public LogicalNode {
 public:
  FilterSetRefNode(std::string binding_id, Schema schema)
      : LogicalNode(LogicalKind::kFilterSetRef, std::move(schema), {}),
        binding_id_(std::move(binding_id)) {}

  const std::string& binding_id() const { return binding_id_; }

  std::string Describe() const override;

 private:
  std::string binding_id_;
};

/// Join block: the N FROM-clause inputs plus the conjunctive predicate over
/// the concatenation of their schemas (child order). The System-R optimizer
/// consumes this node directly; join order is its output, not this node's.
class NaryJoinNode final : public LogicalNode {
 public:
  NaryJoinNode(std::vector<LogicalPtr> inputs, ExprPtr predicate, Schema schema)
      : LogicalNode(LogicalKind::kNaryJoin, std::move(schema),
                    std::move(inputs)),
        predicate_(std::move(predicate)) {}

  /// May be null (pure cross product).
  const ExprPtr& predicate() const { return predicate_; }

  std::string Describe() const override;

 private:
  ExprPtr predicate_;
};

/// Restricts the child to tuples whose `key_columns` appear in the filter
/// set bound under `binding_id` at execution time — the algebraic form of
/// the magic restriction ("join with Filter F" in Figure 2, as a
/// semi-join). Schema is unchanged. The magic rewrite (src/rewrite) pushes
/// this node as deep into a virtual relation's plan as correctness allows.
class FilterSetProbeNode final : public LogicalNode {
 public:
  FilterSetProbeNode(LogicalPtr child, std::string binding_id,
                     std::vector<int> key_columns)
      : LogicalNode(LogicalKind::kFilterSetProbe, child->schema(), {child}),
        binding_id_(std::move(binding_id)),
        key_columns_(std::move(key_columns)) {}

  const std::string& binding_id() const { return binding_id_; }
  const std::vector<int>& key_columns() const { return key_columns_; }

  std::string Describe() const override;

 private:
  std::string binding_id_;
  std::vector<int> key_columns_;
};

class FilterNode final : public LogicalNode {
 public:
  FilterNode(LogicalPtr child, ExprPtr predicate)
      : LogicalNode(LogicalKind::kFilter, child->schema(), {child}),
        predicate_(std::move(predicate)) {}

  const ExprPtr& predicate() const { return predicate_; }

  std::string Describe() const override;

 private:
  ExprPtr predicate_;
};

class ProjectNode final : public LogicalNode {
 public:
  /// `exprs[i]` computes output column i; `schema` names them.
  ProjectNode(LogicalPtr child, std::vector<ExprPtr> exprs, Schema schema)
      : LogicalNode(LogicalKind::kProject, std::move(schema), {child}),
        exprs_(std::move(exprs)) {}

  const std::vector<ExprPtr>& exprs() const { return exprs_; }

  std::string Describe() const override;

 private:
  std::vector<ExprPtr> exprs_;
};

class AggregateNode final : public LogicalNode {
 public:
  /// Output schema: one column per group-by expr, then one per agg spec.
  AggregateNode(LogicalPtr child, std::vector<ExprPtr> group_by,
                std::vector<AggSpec> aggs, Schema schema)
      : LogicalNode(LogicalKind::kAggregate, std::move(schema), {child}),
        group_by_(std::move(group_by)),
        aggs_(std::move(aggs)) {}

  const std::vector<ExprPtr>& group_by() const { return group_by_; }
  const std::vector<AggSpec>& aggs() const { return aggs_; }

  std::string Describe() const override;

 private:
  std::vector<ExprPtr> group_by_;
  std::vector<AggSpec> aggs_;
};

class DistinctNode final : public LogicalNode {
 public:
  explicit DistinctNode(LogicalPtr child)
      : LogicalNode(LogicalKind::kDistinct, child->schema(), {child}) {}

  std::string Describe() const override;
};

class SortNode final : public LogicalNode {
 public:
  struct SortKey {
    ExprPtr expr;
    bool ascending = true;
  };

  SortNode(LogicalPtr child, std::vector<SortKey> keys)
      : LogicalNode(LogicalKind::kSort, child->schema(), {child}),
        keys_(std::move(keys)) {}

  const std::vector<SortKey>& keys() const { return keys_; }

  std::string Describe() const override;

 private:
  std::vector<SortKey> keys_;
};

/// True if `plan` contains a FilterSetRef or FilterSetProbe node, i.e. it
/// is (part of) a magic-rewritten plan. The optimizer never offers a Filter
/// Join on such fragments — rewriting a rewrite never terminates.
bool PlanContainsFilterSet(const LogicalNode& plan);

}  // namespace magicdb

#endif  // MAGICDB_PLAN_LOGICAL_PLAN_H_
