#include "src/plan/logical_plan.h"

#include <sstream>

namespace magicdb {

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "COUNT(*)";
    case AggFunc::kCount:
      return "COUNT";
    case AggFunc::kSum:
      return "SUM";
    case AggFunc::kAvg:
      return "AVG";
    case AggFunc::kMin:
      return "MIN";
    case AggFunc::kMax:
      return "MAX";
  }
  return "?";
}

DataType AggSpec::ResultType() const {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return DataType::kInt64;
    case AggFunc::kAvg:
      return DataType::kDouble;
    case AggFunc::kSum:
      return arg && arg->result_type() == DataType::kInt64 ? DataType::kInt64
                                                           : DataType::kDouble;
    case AggFunc::kMin:
    case AggFunc::kMax:
      return arg ? arg->result_type() : DataType::kNull;
  }
  return DataType::kNull;
}

namespace {
void AppendTree(const LogicalNode& node, int depth, std::ostringstream* os) {
  for (int i = 0; i < depth; ++i) *os << "  ";
  *os << node.Describe() << "\n";
  for (const LogicalPtr& c : node.children()) {
    AppendTree(*c, depth + 1, os);
  }
}
}  // namespace

std::string LogicalNode::ToString() const {
  std::ostringstream os;
  AppendTree(*this, 0, &os);
  return os.str();
}

std::string RelScanNode::Describe() const {
  std::string s = "Scan " + relation_name_;
  if (alias_ != relation_name_) s += " AS " + alias_;
  return s;
}

std::string FilterSetRefNode::Describe() const {
  return "FilterSetRef " + binding_id_ + " " + schema().ToString();
}

std::string NaryJoinNode::Describe() const {
  std::string s = "NaryJoin[" + std::to_string(children().size()) + "]";
  if (predicate_) s += " on " + predicate_->ToString();
  return s;
}

std::string FilterSetProbeNode::Describe() const {
  std::string s = "FilterSetProbe " + binding_id_ + " keys(";
  for (size_t i = 0; i < key_columns_.size(); ++i) {
    if (i > 0) s += ", ";
    s += schema().column(key_columns_[i]).QualifiedName();
  }
  return s + ")";
}

std::string FilterNode::Describe() const {
  return "Filter " + predicate_->ToString();
}

std::string ProjectNode::Describe() const {
  std::string s = "Project ";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) s += ", ";
    s += exprs_[i]->ToString() + " AS " + schema().column(i).QualifiedName();
  }
  return s;
}

std::string AggregateNode::Describe() const {
  std::string s = "Aggregate group-by(";
  for (size_t i = 0; i < group_by_.size(); ++i) {
    if (i > 0) s += ", ";
    s += group_by_[i]->ToString();
  }
  s += ") aggs(";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) s += ", ";
    s += AggFuncName(aggs_[i].func);
    if (aggs_[i].arg) s += "(" + aggs_[i].arg->ToString() + ")";
  }
  s += ")";
  return s;
}

std::string DistinctNode::Describe() const { return "Distinct"; }

bool PlanContainsFilterSet(const LogicalNode& plan) {
  if (plan.kind() == LogicalKind::kFilterSetRef ||
      plan.kind() == LogicalKind::kFilterSetProbe) {
    return true;
  }
  for (const LogicalPtr& c : plan.children()) {
    if (PlanContainsFilterSet(*c)) return true;
  }
  return false;
}

std::string SortNode::Describe() const {
  std::string s = "Sort ";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) s += ", ";
    s += keys_[i].expr->ToString();
    s += keys_[i].ascending ? " ASC" : " DESC";
  }
  return s;
}

}  // namespace magicdb
