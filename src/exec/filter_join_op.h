#ifndef MAGICDB_EXEC_FILTER_JOIN_OP_H_
#define MAGICDB_EXEC_FILTER_JOIN_OP_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/operator.h"
#include "src/exec/scan_ops.h"
#include "src/expr/expr.h"
#include "src/parallel/partitioned_build.h"

namespace magicdb {

/// Measured per-phase costs of one Filter Join execution, in the same
/// units and decomposition as the paper's Table 1. The operator snapshots
/// the context counters between its phases, so these are true measured
/// components (JoinCost_P is folded into `production` here because the
/// outer is drained and spooled in one pass).
struct FilterJoinMeasured {
  double production = 0.0;   // drain outer + spool (JoinCost_P + ProductionCost_P)
  double projection = 0.0;   // distinct projection of the keys (ProjCost_F)
  double avail_filter = 0.0; // build/ship the filter set (AvailCost_F)
  double filter_inner = 0.0; // restricted inner evaluation (FilterCost_Rk + AvailCost_Rk')
  double final_join = 0.0;   // probe phase (FinalJoinCost)

  double Total() const {
    return production + projection + avail_filter + filter_inner + final_join;
  }
};

/// How a magic filter set is implemented (§3.3 Limitation 3): an exact
/// distinct relation, or a lossy fixed-size Bloom filter.
enum class FilterSetImpl { kExact, kBloom };

const char* FilterSetImplName(FilterSetImpl impl);

/// Restricts its child to tuples whose key columns appear in a bound filter
/// set. This is the restriction the magic rewrite pushes into a view (the
/// "join with Filter F" of Figure 2) when membership testing suffices; an
/// exact binding yields semi-join semantics, a Bloom binding a superset.
class FilterProbeOp final : public Operator {
 public:
  FilterProbeOp(OpPtr child, std::string binding_id,
                std::vector<int> key_indexes);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::string binding_id_;
  std::vector<int> key_indexes_;
  ExecContext* ctx_ = nullptr;
  std::shared_ptr<FilterSetBinding> binding_;
};

/// The Filter Join of Definition 2.1, executed as in the magic-sets
/// rewriting (Figure 2):
///
///   1. materialize the production set P (the outer input);
///   2. distinct-project P's join columns into the filter set F
///      (exact relation or Bloom filter);
///   3. bind F and evaluate the inner plan, which references F through
///      FilterSetScanOp / FilterProbeOp and therefore computes only the
///      restricted inner R_k';
///   4. hash-join P with R_k' (plus any residual predicate).
///
/// The inner plan is built by the optimizer's magic rewrite of the virtual
/// inner relation. `ship_filter_to_site` > 0 charges shipping F to a remote
/// inner site (distributed semi-join, §5.1).
class FilterJoinOp final : public Operator {
 public:
  /// `filter_key_positions` selects which of the join keys contribute to
  /// the filter set (§2.1/§3.3: with multiple join attributes any subset
  /// may be used — a lossy filter by omission). Empty = all keys. The
  /// final join always uses every key.
  FilterJoinOp(OpPtr outer, OpPtr inner, std::string binding_id,
               std::vector<int> outer_key_indexes,
               std::vector<int> inner_key_indexes, ExprPtr residual,
               FilterSetImpl impl, int ship_filter_to_site = 0,
               double bloom_bits_per_key = 10.0,
               std::vector<int> filter_key_positions = {});

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {outer_.get(), inner_.get()};
  }

  /// Number of distinct keys in the filter set of the last Open (observed
  /// SIPS statistics; used by experiments).
  int64_t last_filter_set_size() const { return last_filter_set_size_; }

  /// Measured Table-1 phase costs of the current/most recent execution.
  const FilterJoinMeasured& measured() const { return measured_; }

  /// Cardinality-feedback annotation: the optimizer's estimate of the
  /// restricted inner R_k'. Open() records the observed restricted-inner
  /// rows into the context ledger as an observation-only entry (the
  /// restricted count depends on this query's filter set, so it is never
  /// fed back into base-table planning and never triggers a restart).
  void AnnotateInnerCardinality(std::string key, double estimated_rows) {
    feedback_key_ = std::move(key);
    feedback_est_rows_ = estimated_rows;
  }

  /// Parallel execution: this replica contributes its morsel-driven slice
  /// of the production set, the filter set is built partitioned across
  /// workers, the restricted inner runs once on worker 0, and the final
  /// join probes in parallel. `driving_scan` is the morsel-driven scan at
  /// the bottom of this replica's outer chain (source of global row
  /// positions). Call before Open.
  void EnableParallel(std::shared_ptr<SharedFilterJoin> shared, int worker,
                      SeqScanOp* driving_scan) {
    shared_fj_ = std::move(shared);
    worker_ = worker;
    driving_scan_ = driving_scan;
  }

  /// Global driving-row position of the production tuple currently being
  /// probed (parallel mode; gather-merge sort key).
  int64_t last_probe_global_pos() const {
    return outer_pos_ == 0 ? -1
                           : production_pos_[outer_pos_ - 1];
  }

 private:
  Status OpenParallel(ExecContext* ctx);

  OpPtr outer_;
  OpPtr inner_;
  std::string binding_id_;
  std::vector<int> outer_keys_;
  std::vector<int> inner_keys_;
  ExprPtr residual_;
  FilterSetImpl impl_;
  int ship_filter_to_site_;
  double bloom_bits_per_key_;
  std::vector<int> filter_outer_keys_;  // subset used to build F

  ExecContext* ctx_ = nullptr;
  std::vector<Tuple> production_;  // materialized P
  std::unordered_map<uint64_t, std::vector<Tuple>> build_;  // on R_k'
  size_t outer_pos_ = 0;
  const std::vector<Tuple>* current_bucket_ = nullptr;
  size_t bucket_pos_ = 0;
  bool have_outer_ = false;
  Tuple current_outer_;
  int64_t last_filter_set_size_ = 0;
  int64_t production_rows_per_page_ = 1;
  FilterJoinMeasured measured_;
  // Bytes charged to the query memory tracker for the spooled production
  // set and the restricted-inner hash table; released on Close.
  int64_t charged_bytes_ = 0;
  // Cardinality-feedback annotation (AnnotateInnerCardinality); key empty =
  // not annotated.
  std::string feedback_key_;
  double feedback_est_rows_ = 0.0;
  // Parallel-mode wiring; null / unused in sequential mode.
  std::shared_ptr<SharedFilterJoin> shared_fj_;
  int worker_ = 0;
  SeqScanOp* driving_scan_ = nullptr;
  std::vector<int64_t> production_pos_;  // global pos per production_ row
};

/// Finds the topmost FilterJoinOp in an operator tree (nullptr if none) —
/// benches use this to read measured Table-1 components.
const FilterJoinOp* FindFilterJoin(const Operator& root);

}  // namespace magicdb

#endif  // MAGICDB_EXEC_FILTER_JOIN_OP_H_
