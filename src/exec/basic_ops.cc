#include "src/exec/basic_ops.h"

#include <algorithm>
#include <cmath>

namespace magicdb {

// ----- FilterOp -----

FilterOp::FilterOp(OpPtr child, ExprPtr predicate)
    : Operator(child->schema()),
      child_(std::move(child)),
      predicate_(std::move(predicate)) {}

Status FilterOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Status FilterOp::Next(Tuple* out, bool* eof) {
  while (true) {
    MAGICDB_RETURN_IF_ERROR(child_->Next(out, eof));
    if (*eof) return Status::OK();
    ctx_->counters().exprs_evaluated += 1;
    if (EvalPredicate(*predicate_, *out)) return Status::OK();
  }
}

Status FilterOp::NextBatch(RowBatch* out, bool* eof) {
  while (true) {
    MAGICDB_RETURN_IF_ERROR(child_->NextBatch(out, eof));
    const int64_t n = out->ActiveRows();
    if (n > 0) {
      // One predicate evaluation per live input row, as in Next().
      ctx_->counters().exprs_evaluated += n;
      BatchEvalPredicate(*predicate_, out, &pred_vals_, &pred_errs_);
      // Gather the survivors dense: one move-gather here buys every
      // downstream operator full-active bulk loops instead of
      // selection-indexed ones.
      out->CompactActive();
    }
    // Never hand an empty non-final batch upward; keep pulling instead.
    if (out->ActiveRows() > 0 || *eof) return Status::OK();
  }
}

Status FilterOp::Close() { return child_->Close(); }

std::string FilterOp::Describe() const {
  return "Filter(" + predicate_->ToString() + ")";
}

// ----- ProjectOp -----

ProjectOp::ProjectOp(OpPtr child, std::vector<ExprPtr> exprs, Schema schema)
    : Operator(std::move(schema)),
      child_(std::move(child)),
      exprs_(std::move(exprs)) {}

Status ProjectOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  return child_->Open(ctx);
}

Status ProjectOp::Next(Tuple* out, bool* eof) {
  Tuple in;
  MAGICDB_RETURN_IF_ERROR(child_->Next(&in, eof));
  if (*eof) return Status::OK();
  Tuple result;
  result.reserve(exprs_.size());
  for (const ExprPtr& e : exprs_) {
    ctx_->counters().exprs_evaluated += 1;
    MAGICDB_ASSIGN_OR_RETURN(Value v, e->Eval(in));
    result.push_back(std::move(v));
  }
  *out = std::move(result);
  return Status::OK();
}

Status ProjectOp::NextBatch(RowBatch* out, bool* eof) {
  if (in_batch_ == nullptr || in_batch_->capacity() != out->capacity()) {
    in_batch_ = std::make_unique<RowBatch>(out->capacity());
  }
  MAGICDB_RETURN_IF_ERROR(child_->NextBatch(in_batch_.get(), eof));
  out->ResetForWrite(static_cast<int>(exprs_.size()));
  const int64_t n = in_batch_->ActiveRows();
  if (n > 0) {
    const size_t rows = static_cast<size_t>(in_batch_->num_rows());
    for (size_t j = 0; j < exprs_.size(); ++j) {
      ctx_->counters().exprs_evaluated += n;
      std::vector<Value>& dst = out->column(static_cast<int>(j));
      Status first_error;
      BatchOperand op;
      ResolveBatchOperand(*exprs_[j], *in_batch_, &col_vals_, &col_errs_,
                          &first_error, &op);
      // Projection is strict: a row error fails the query, as in Next().
      // Only the materializing path can produce one (literals never error,
      // and an out-of-range column ref materializes).
      MAGICDB_RETURN_IF_ERROR(first_error);
      if (op.lit != nullptr) {
        // Broadcast literal. Inactive slots get the value too instead of
        // NULL, which is unobservable: they are outside the selection.
        dst.assign(rows, *op.lit);
      } else if (op.col == &col_vals_) {
        dst.swap(col_vals_);  // materialized scratch: steal, don't copy
      } else {
        // Column view: one bulk copy replaces the per-row kernel.
        dst.assign(op.col->begin(),
                   op.col->begin() + static_cast<ptrdiff_t>(rows));
      }
    }
  } else {
    // BatchEval never ran; shape the (empty or fully-filtered) columns.
    for (size_t j = 0; j < exprs_.size(); ++j) {
      out->column(static_cast<int>(j))
          .assign(static_cast<size_t>(in_batch_->num_rows()), Value());
    }
  }
  out->set_num_rows(in_batch_->num_rows());
  if (in_batch_->sel_active()) {
    out->SetSelection(std::vector<int32_t>(in_batch_->selection()));
  }
  if (in_batch_->has_ranks()) {
    out->EnableRanks();
    out->pos() = in_batch_->pos();
    out->sub() = in_batch_->sub();
  }
  return Status::OK();
}

Status ProjectOp::Close() { return child_->Close(); }

std::string ProjectOp::Describe() const {
  std::string s = "Project(";
  for (size_t i = 0; i < exprs_.size(); ++i) {
    if (i > 0) s += ", ";
    s += exprs_[i]->ToString();
  }
  return s + ")";
}

// ----- DistinctOp -----

DistinctOp::DistinctOp(OpPtr child)
    : Operator(child->schema()), child_(std::move(child)) {}

Status DistinctOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  seen_.clear();
  return child_->Open(ctx);
}

Status DistinctOp::Next(Tuple* out, bool* eof) {
  std::vector<int> all(schema_.num_columns());
  for (int i = 0; i < schema_.num_columns(); ++i) all[i] = i;
  while (true) {
    MAGICDB_RETURN_IF_ERROR(child_->Next(out, eof));
    if (*eof) return Status::OK();
    ctx_->counters().hash_operations += 1;
    const uint64_t h = HashTupleColumns(*out, all);
    std::vector<Tuple>& chain = seen_[h];
    bool duplicate = false;
    for (const Tuple& t : chain) {
      if (CompareTuples(t, *out) == 0) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      chain.push_back(*out);
      return Status::OK();
    }
  }
}

Status DistinctOp::Close() {
  seen_.clear();
  return child_->Close();
}

std::string DistinctOp::Describe() const { return "Distinct"; }

// ----- SortOp -----

SortOp::SortOp(OpPtr child, std::vector<SortKey> keys)
    : Operator(child->schema()),
      child_(std::move(child)),
      keys_(std::move(keys)) {}

Status SortOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  sorted_.clear();
  next_ = 0;
  sorter_.reset();
  charged_bytes_ = 0;
  base_seq_ = 0;
  MAGICDB_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<Tuple> rows;
  std::vector<Tuple> row_keys;
  int64_t bytes = 0;
  int64_t total_rows = 0;
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(child_->Next(&t, &eof));
    if (eof) break;
    Tuple k;
    k.reserve(keys_.size());
    for (const SortKey& sk : keys_) {
      ctx->counters().exprs_evaluated += 1;
      MAGICDB_ASSIGN_OR_RETURN(Value v, sk.expr->Eval(t));
      k.push_back(std::move(v));
    }
    // Buffered row + its computed key tuple: governed memory.
    const int64_t row_bytes = TupleByteWidth(t) + TupleByteWidth(k);
    Status charge = ctx->ChargeMemory(row_bytes);
    if (!charge.ok()) {
      // A governed breach turns into external merge sort when a spill area
      // is attached: flush the buffer as one sorted run and retry.
      if (charge.code() != StatusCode::kResourceExhausted ||
          !ctx->spill_enabled()) {
        return charge;
      }
      if (sorter_ == nullptr) {
        std::vector<bool> ascending;
        ascending.reserve(keys_.size());
        for (const SortKey& sk : keys_) ascending.push_back(sk.ascending);
        sorter_ = std::make_unique<ExternalSorter>(ctx->spill_manager(),
                                                   std::move(ascending));
      }
      const int64_t flushed = static_cast<int64_t>(rows.size());
      MAGICDB_RETURN_IF_ERROR(
          sorter_->SpillRun(&rows, &row_keys, base_seq_, &charged_bytes_, ctx));
      base_seq_ += flushed;
      // Second failure is final: even one row does not fit.
      MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(row_bytes));
    }
    charged_bytes_ += row_bytes;
    bytes += TupleByteWidth(t);
    ++total_rows;
    rows.push_back(std::move(t));
    row_keys.push_back(std::move(k));
  }
  MAGICDB_RETURN_IF_ERROR(child_->Close());

  // Charge n log2 n comparisons as CPU work over the full input.
  if (total_rows > 1) {
    ctx->counters().exprs_evaluated += static_cast<int64_t>(
        static_cast<double>(total_rows) *
        std::ceil(std::log2(static_cast<double>(total_rows))));
  }
  if (sorter_ != nullptr) {
    // Out of core: the final buffer becomes the resident run and Next()
    // k-way merges. Real page I/O was charged by the spill files, so the
    // heuristic below is skipped.
    return sorter_->FinishInput(std::move(rows), std::move(row_keys),
                                base_seq_, ctx);
  }

  const int64_t n = static_cast<int64_t>(rows.size());
  std::vector<int64_t> order(rows.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    for (size_t k = 0; k < keys_.size(); ++k) {
      const int c = row_keys[a][k].Compare(row_keys[b][k]);
      if (c != 0) return keys_[k].ascending ? c < 0 : c > 0;
    }
    return a < b;  // stable tiebreak
  });
  sorted_.reserve(rows.size());
  for (int64_t i : order) sorted_.push_back(std::move(rows[i]));

  // External passes when the input exceeds the memory budget: one full
  // write + read of the data per predicted pass.
  if (bytes > ctx->memory_budget_bytes()) {
    const int64_t passes =
        SpillPasses(static_cast<double>(bytes),
                    static_cast<double>(ctx->memory_budget_bytes()));
    const int64_t pages =
        PagesForRows(n, std::max<int64_t>(1, bytes / std::max<int64_t>(1, n)));
    ctx->counters().pages_written += pages * passes;
    ctx->counters().pages_read += pages * passes;
  }
  return Status::OK();
}

Status SortOp::Next(Tuple* out, bool* eof) {
  if (sorter_ != nullptr) return sorter_->Next(out, eof, ctx_);
  if (next_ >= sorted_.size()) {
    *eof = true;
    return Status::OK();
  }
  *out = sorted_[next_++];
  *eof = false;
  return Status::OK();
}

Status SortOp::Close() {
  sorted_.clear();
  sorter_.reset();
  if (ctx_ != nullptr) {
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  return Status::OK();
}

std::string SortOp::Describe() const {
  std::string s = "Sort(";
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (i > 0) s += ", ";
    s += keys_[i].expr->ToString();
    if (!keys_[i].ascending) s += " DESC";
  }
  return s + ")";
}

// ----- MaterializeOp -----

MaterializeOp::MaterializeOp(OpPtr child)
    : Operator(child->schema()), child_(std::move(child)) {}

Status MaterializeOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  next_row_ = 0;
  rows_per_page_ = RowsPerPage(schema_.TupleWidthBytes());
  if (!spooled_) {
    MAGICDB_RETURN_IF_ERROR(child_->Open(ctx));
    while (true) {
      Tuple t;
      bool eof = false;
      MAGICDB_RETURN_IF_ERROR(child_->Next(&t, &eof));
      if (eof) break;
      rows_.push_back(std::move(t));
    }
    MAGICDB_RETURN_IF_ERROR(child_->Close());
    ctx->counters().pages_written +=
        PagesForRows(static_cast<int64_t>(rows_.size()),
                     schema_.TupleWidthBytes());
    spooled_ = true;
  }
  return Status::OK();
}

Status MaterializeOp::Next(Tuple* out, bool* eof) {
  if (next_row_ >= static_cast<int64_t>(rows_.size())) {
    *eof = true;
    return Status::OK();
  }
  if (next_row_ % rows_per_page_ == 0) {
    ctx_->counters().pages_read += 1;
  }
  ctx_->counters().tuples_processed += 1;
  *out = rows_[next_row_++];
  *eof = false;
  return Status::OK();
}

Status MaterializeOp::Close() { return Status::OK(); }

std::string MaterializeOp::Describe() const {
  return "Materialize(spooled=" + std::string(spooled_ ? "yes" : "no") + ")";
}

// ----- LimitOp -----

LimitOp::LimitOp(OpPtr child, int64_t limit)
    : Operator(child->schema()), child_(std::move(child)), limit_(limit) {}

Status LimitOp::Open(ExecContext* ctx) {
  produced_ = 0;
  return child_->Open(ctx);
}

Status LimitOp::Next(Tuple* out, bool* eof) {
  if (produced_ >= limit_) {
    *eof = true;
    return Status::OK();
  }
  MAGICDB_RETURN_IF_ERROR(child_->Next(out, eof));
  if (!*eof) ++produced_;
  return Status::OK();
}

Status LimitOp::Close() { return child_->Close(); }

std::string LimitOp::Describe() const {
  return "Limit(" + std::to_string(limit_) + ")";
}

}  // namespace magicdb
