#ifndef MAGICDB_EXEC_GATHER_OP_H_
#define MAGICDB_EXEC_GATHER_OP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/operator.h"
#include "src/spill/spill_file.h"

namespace magicdb {

/// One output row of a parallel pipeline, tagged with its rank in the
/// sequential emission order: `pos` is the global position of the
/// driving-scan row that produced it, and `sub` is the emission index
/// among rows sharing that driving position (parallel aggregation emits
/// groups ranked by the (pos, sub) of their first input row; plain
/// pipelines leave sub at 0). Workers claim morsels in monotonically
/// increasing order, so each worker's run is already sorted by (pos, sub);
/// ranks are unique across workers wherever inter-worker ordering matters
/// (every driving row — and every aggregation group — belongs to exactly
/// one worker).
struct GatherRow {
  int64_t pos = 0;
  int64_t sub = 0;
  Tuple row;
};

/// One worker's output run, possibly disk-backed: under memory pressure the
/// worker flushes its accumulated rows to `spilled` (already rank-ordered —
/// flushes preserve arrival order) and keeps only the unflushed tail in
/// `rows`. Every rank in the file precedes every rank in the tail.
struct GatherRun {
  std::unique_ptr<SpillFile> spilled;  // may be null: fully in memory
  std::vector<GatherRow> rows;
  /// Total rows staged into this run (spilled prefix included); the
  /// parallel executor sums these into its staged-gather cardinality
  /// observation.
  int64_t staged_rows = 0;
};

/// Deterministic merge of the per-worker output runs of a parallel
/// pipeline. A k-way merge on the (pos, sub) rank reproduces exactly
/// the row order a single-threaded execution emits, so results are
/// byte-identical at any degree of parallelism — whether a run lives in
/// memory or starts with a spilled prefix. GatherOp performs no query work
/// of its own and charges nothing to the cost counters — the rows it
/// forwards were fully paid for by the workers that produced them (spilled
/// gather files are created with charging disabled for the same reason).
class GatherOp final : public Operator {
 public:
  /// Each run must be sorted ascending by (pos, sub); a spilled prefix must
  /// precede its in-memory tail in rank order. Takes ownership.
  GatherOp(Schema schema, std::vector<GatherRun> runs);

  /// All-in-memory convenience form.
  GatherOp(Schema schema, std::vector<std::vector<GatherRow>> runs);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  /// Merge cursor over one run: while `file_has`, (pos, sub, row) hold the
  /// decoded head record of the spilled prefix; afterwards `mem` indexes
  /// the in-memory tail.
  struct Cursor {
    bool file_has = false;
    int64_t pos = 0;
    int64_t sub = 0;
    Tuple row;
    size_t mem = 0;
  };

  Status AdvanceFile(size_t r);
  /// Fills pos/sub of run `r`'s current head; false when exhausted.
  bool Head(size_t r, int64_t* pos, int64_t* sub) const;

  std::vector<GatherRun> runs_;
  std::vector<Cursor> cursor_;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_GATHER_OP_H_
