#ifndef MAGICDB_EXEC_GATHER_OP_H_
#define MAGICDB_EXEC_GATHER_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/operator.h"

namespace magicdb {

/// One output row of a parallel pipeline, tagged with its rank in the
/// sequential emission order: `pos` is the global position of the
/// driving-scan row that produced it, and `sub` is the emission index
/// among rows sharing that driving position (parallel aggregation emits
/// groups ranked by the (pos, sub) of their first input row; plain
/// pipelines leave sub at 0). Workers claim morsels in monotonically
/// increasing order, so each worker's run is already sorted by (pos, sub);
/// ranks are unique across workers wherever inter-worker ordering matters
/// (every driving row — and every aggregation group — belongs to exactly
/// one worker).
struct GatherRow {
  int64_t pos = 0;
  int64_t sub = 0;
  Tuple row;
};

/// Deterministic merge of the per-worker output runs of a parallel
/// pipeline. A k-way merge on the (pos, sub) rank reproduces exactly
/// the row order a single-threaded execution emits, so results are
/// byte-identical at any degree of parallelism. GatherOp performs no query
/// work of its own and charges nothing to the cost counters — the rows it
/// forwards were fully paid for by the workers that produced them.
class GatherOp final : public Operator {
 public:
  /// Each run must be sorted ascending by (pos, sub). Takes ownership.
  GatherOp(Schema schema, std::vector<std::vector<GatherRow>> runs);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  std::vector<std::vector<GatherRow>> runs_;
  std::vector<size_t> cursor_;  // next unconsumed index per run
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_GATHER_OP_H_
