#ifndef MAGICDB_EXEC_GATHER_OP_H_
#define MAGICDB_EXEC_GATHER_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/exec/operator.h"

namespace magicdb {

/// One output row of a parallel pipeline, tagged with the global position
/// of the driving-scan row that produced it. Workers claim morsels in
/// monotonically increasing order, so each worker's run is already sorted
/// by position; positions are unique across workers (every driving row is
/// claimed by exactly one morsel).
struct GatherRow {
  int64_t pos = 0;
  Tuple row;
};

/// Deterministic merge of the per-worker output runs of a parallel
/// pipeline. A k-way merge on the driving-scan position reproduces exactly
/// the row order a single-threaded execution emits, so results are
/// byte-identical at any degree of parallelism. GatherOp performs no query
/// work of its own and charges nothing to the cost counters — the rows it
/// forwards were fully paid for by the workers that produced them.
class GatherOp final : public Operator {
 public:
  /// Each run must be sorted ascending by `pos`. Takes ownership.
  GatherOp(Schema schema, std::vector<std::vector<GatherRow>> runs);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  std::vector<std::vector<GatherRow>> runs_;
  std::vector<size_t> cursor_;  // next unconsumed index per run
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_GATHER_OP_H_
