#ifndef MAGICDB_EXEC_RESULT_SINK_H_
#define MAGICDB_EXEC_RESULT_SINK_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/cancellation.h"
#include "src/common/memory_tracker.h"
#include "src/common/statusor.h"
#include "src/types/tuple.h"

namespace magicdb {

/// Bounded, backpressured row queue between one query's producing pipeline
/// and its (single) consuming cursor — the streaming replacement for
/// materializing a full result vector. The producer is a cooperative pump
/// task (the sequential quantum driver, or the gather drain of a parallel
/// execution) and must never block a pool thread; the consumer is the
/// client thread inside Cursor::Fetch.
///
/// Backpressure protocol (producer side):
///   1. Before producing a batch, call ReserveOrPark(resume). If the queue
///      is below the high-water mark it returns true — go produce. If it is
///      full it stores `resume` and returns false — the producer must
///      return without re-enqueueing itself (it is now *parked*: no pool
///      thread is occupied, no CPU spins).
///   2. Push(batch) appends the produced rows. A batch is pushed whole, so
///      the queue may overshoot the high-water mark by up to one producer
///      quantum — the effective bound is high_water_rows + quantum.
///   3. Finish(status) ends the stream (end of data, error, cancellation).
///
/// The consumer's Fetch pops rows and, once the queue has drained below the
/// high-water mark, re-submits a parked producer by invoking its stored
/// resume closure (outside the lock). Parking under the same mutex as the
/// pop makes lost wakeups impossible.
///
/// Thread-safe between one logical producer and one consumer; all cross-
/// thread handoff (including the terminal-state publication the cursor
/// relies on to read final counters) is ordered through the internal mutex.
class ResultSink {
 public:
  /// `high_water_rows` is clamped up to 1.
  explicit ResultSink(int64_t high_water_rows);

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  /// Attaches the query's memory governor: queued rows are charged on Push
  /// and released as the consumer pops (or Drain discards) them. Must be
  /// called before the producer starts; null = ungoverned.
  void set_memory_tracker(std::shared_ptr<MemoryTracker> tracker) {
    tracker_ = std::move(tracker);
  }

  // ----- producer side -----

  /// True: capacity available (or the stream is being drained) — produce
  /// now. False: queue at the high-water mark; `resume` is stored for the
  /// consumer to invoke and the producer must return without rescheduling.
  bool ReserveOrPark(std::function<void()> resume);

  /// Appends a batch and wakes the consumer. Empty batches are dropped.
  /// With a memory tracker attached the batch is charged first; on breach
  /// the batch is dropped and kResourceExhausted returned — the producer
  /// must Finish the stream with it.
  Status Push(std::vector<Tuple> batch);

  /// Terminates the stream. The first call wins; `status` is what Fetch
  /// reports after the queued rows are drained (OK = clean end of stream).
  void Finish(Status status);

  // ----- consumer side -----

  /// Pops up to `max_rows` rows, blocking until at least one row is
  /// queued, the producer finished, or `token` fires (checked every few
  /// milliseconds; pass nullptr for an uncancellable wait). Queued rows are
  /// delivered before a stream error is reported; a fired token is reported
  /// immediately. An empty batch with OK status means clean end of stream.
  StatusOr<std::vector<Tuple>> Fetch(int64_t max_rows,
                                     const CancelToken* token);

  /// Discards everything queued and keeps resuming a parked producer until
  /// it calls Finish. Close calls this *after* cancelling the query token,
  /// so the producer unwinds within one quantum. Blocks until finished.
  void Drain();

  /// True once Finish was called (rows may still be queued).
  bool finished() const;

  /// True while the producer is parked on the high-water mark waiting for
  /// the consumer. The stuck-query watchdog skips parked producers: a
  /// consumer that isn't fetching is backpressure, not a stall.
  bool producer_parked() const;

  /// Terminal status; OK until Finish is called with an error.
  Status final_status() const;

  // ----- observability -----

  /// Most rows ever resident in the queue at once — the number the bounded-
  /// memory guarantee is stated against (≤ high_water_rows + one quantum).
  int64_t peak_queued_rows() const;
  int64_t total_rows_pushed() const;
  /// Times the producer parked on a full queue (backpressure engagements).
  int64_t producer_parks() const;
  int64_t high_water_rows() const { return high_water_rows_; }

 private:
  const int64_t high_water_rows_;
  std::shared_ptr<MemoryTracker> tracker_;  // set before producers start

  mutable std::mutex mu_;
  std::condition_variable consumer_cv_;
  std::deque<Tuple> rows_;
  std::function<void()> parked_resume_;  // non-null while producer is parked
  bool finished_ = false;
  bool draining_ = false;
  Status final_status_;
  int64_t peak_queued_rows_ = 0;
  int64_t total_rows_pushed_ = 0;
  int64_t producer_parks_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_RESULT_SINK_H_
