#ifndef MAGICDB_EXEC_SCAN_OPS_H_
#define MAGICDB_EXEC_SCAN_OPS_H_

#include <string>
#include <vector>

#include "src/exec/operator.h"
#include "src/storage/table.h"

namespace magicdb {

/// Full scan of a stored table. Charges one page read per page boundary
/// crossed plus CPU per tuple. The table's schema may be re-qualified with
/// an alias ("Emp E").
class SeqScanOp final : public Operator {
 public:
  /// `alias` empty keeps the table's own qualifier.
  SeqScanOp(const Table* table, const std::string& alias = "");

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  const Table* table_;
  ExecContext* ctx_ = nullptr;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
};

/// Scans a stored table in the key order of one of its ordered indexes —
/// an access path that *provides* an interesting order (a downstream
/// sort-merge join can skip its sort). Charged like a clustered index
/// traversal: the tree height at open plus the table's pages.
class OrderedIndexScanOp final : public Operator {
 public:
  OrderedIndexScanOp(const Table* table, const OrderedIndex* index,
                     const std::string& alias = "");

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  const Table* table_;
  const OrderedIndex* index_;
  ExecContext* ctx_ = nullptr;
  std::vector<int64_t> row_order_;
  int64_t next_ = 0;
  int64_t rows_per_page_ = 1;
};

/// Scans the distinct key tuples of a bound (exact) filter set — the
/// "Filter" relation in the magic rewrite of Figure 2. Bloom bindings
/// cannot be scanned; Open fails for them.
class FilterSetScanOp final : public Operator {
 public:
  FilterSetScanOp(std::string binding_id, Schema schema);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  std::string binding_id_;
  ExecContext* ctx_ = nullptr;
  std::shared_ptr<FilterSetBinding> binding_;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
};

/// Scans an in-memory vector of tuples (used for pre-materialized inputs in
/// tests and as the production-set scan inside FilterJoinOp). Charges page
/// reads like a spooled temporary.
class VectorScanOp final : public Operator {
 public:
  /// Does not own `rows`; caller keeps them alive across the scan.
  VectorScanOp(const std::vector<Tuple>* rows, Schema schema,
               bool charge_pages = true);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  const std::vector<Tuple>* rows_;
  bool charge_pages_;
  ExecContext* ctx_ = nullptr;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_SCAN_OPS_H_
