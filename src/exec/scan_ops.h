#ifndef MAGICDB_EXEC_SCAN_OPS_H_
#define MAGICDB_EXEC_SCAN_OPS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/exec/operator.h"
#include "src/parallel/morsel.h"
#include "src/storage/table.h"

namespace magicdb {

/// Full scan of a stored table. Charges one page read per page boundary
/// crossed plus CPU per tuple. The table's schema may be re-qualified with
/// an alias ("Emp E").
///
/// With a MorselSource attached (parallel execution), the scan claims
/// page-aligned morsels from the shared source instead of walking the table
/// front to back: the plan replicas of all workers collectively produce
/// every row exactly once, and the per-row page-boundary charge sums to
/// exactly the sequential scan's page count.
class SeqScanOp final : public Operator {
 public:
  /// `alias` empty keeps the table's own qualifier.
  SeqScanOp(const Table* table, const std::string& alias = "");

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  /// Native batch scan: column-wise page copies with one cancellation
  /// check per batch (morsel claims keep their own checkpoint). In morsel
  /// mode the batch carries (pos, sub) = (global row, 0) rank tags.
  Status NextBatch(RowBatch* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

  const Table* table() const { return table_; }

  /// Switches the scan to morsel-driven mode. The source must be shared by
  /// every plan replica scanning this site and be page-aligned for this
  /// table's row width. Call before Open; Open does not reset the source
  /// (the morsel cursor is query-global, not per-replica).
  void AttachMorselSource(std::shared_ptr<MorselSource> source) {
    morsels_ = std::move(source);
  }

  /// Global position (row index in the table) of the most recently
  /// returned row. The gather merge uses this to restore sequential output
  /// order across workers; only meaningful in morsel mode.
  int64_t last_global_row() const { return last_global_row_; }

 private:
  const Table* table_;
  ExecContext* ctx_ = nullptr;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
  std::shared_ptr<MorselSource> morsels_;
  Morsel morsel_;
  bool have_morsel_ = false;
  int64_t last_global_row_ = -1;
};

/// Scans a stored table in the key order of one of its ordered indexes —
/// an access path that *provides* an interesting order (a downstream
/// sort-merge join can skip its sort). Charged like a clustered index
/// traversal: the tree height at open plus the table's pages.
class OrderedIndexScanOp final : public Operator {
 public:
  OrderedIndexScanOp(const Table* table, const OrderedIndex* index,
                     const std::string& alias = "");

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  const Table* table_;
  const OrderedIndex* index_;
  ExecContext* ctx_ = nullptr;
  std::vector<int64_t> row_order_;
  int64_t next_ = 0;
  int64_t rows_per_page_ = 1;
};

/// Scans the distinct key tuples of a bound (exact) filter set — the
/// "Filter" relation in the magic rewrite of Figure 2. Bloom bindings
/// cannot be scanned; Open fails for them.
class FilterSetScanOp final : public Operator {
 public:
  FilterSetScanOp(std::string binding_id, Schema schema);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  std::string binding_id_;
  ExecContext* ctx_ = nullptr;
  std::shared_ptr<FilterSetBinding> binding_;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
};

/// Scans an in-memory vector of tuples (used for pre-materialized inputs in
/// tests and as the production-set scan inside FilterJoinOp). Charges page
/// reads like a spooled temporary.
class VectorScanOp final : public Operator {
 public:
  /// Does not own `rows`; caller keeps them alive across the scan.
  VectorScanOp(const std::vector<Tuple>* rows, Schema schema,
               bool charge_pages = true);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  /// Native batch scan over the vector (per-batch cancellation check).
  Status NextBatch(RowBatch* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;

 private:
  const std::vector<Tuple>* rows_;
  bool charge_pages_;
  ExecContext* ctx_ = nullptr;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_SCAN_OPS_H_
