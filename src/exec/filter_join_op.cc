#include "src/exec/filter_join_op.h"

#include "src/common/failpoint.h"
#include "src/common/logging.h"

namespace magicdb {

const char* FilterSetImplName(FilterSetImpl impl) {
  switch (impl) {
    case FilterSetImpl::kExact:
      return "exact";
    case FilterSetImpl::kBloom:
      return "bloom";
  }
  return "?";
}

// ----- FilterProbeOp -----

FilterProbeOp::FilterProbeOp(OpPtr child, std::string binding_id,
                             std::vector<int> key_indexes)
    : Operator(child->schema()),
      child_(std::move(child)),
      binding_id_(std::move(binding_id)),
      key_indexes_(std::move(key_indexes)) {}

Status FilterProbeOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  MAGICDB_ASSIGN_OR_RETURN(binding_, ctx->GetFilterSet(binding_id_));
  return child_->Open(ctx);
}

Status FilterProbeOp::Next(Tuple* out, bool* eof) {
  while (true) {
    MAGICDB_RETURN_IF_ERROR(child_->Next(out, eof));
    if (*eof) return Status::OK();
    ctx_->counters().hash_operations += 1;
    if (binding_->MayContain(*out, key_indexes_)) return Status::OK();
  }
}

Status FilterProbeOp::Close() { return child_->Close(); }

std::string FilterProbeOp::Describe() const {
  return "FilterProbe(" + binding_id_ + ")";
}

// ----- FilterJoinOp -----

FilterJoinOp::FilterJoinOp(OpPtr outer, OpPtr inner, std::string binding_id,
                           std::vector<int> outer_key_indexes,
                           std::vector<int> inner_key_indexes,
                           ExprPtr residual, FilterSetImpl impl,
                           int ship_filter_to_site, double bloom_bits_per_key,
                           std::vector<int> filter_key_positions)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      binding_id_(std::move(binding_id)),
      outer_keys_(std::move(outer_key_indexes)),
      inner_keys_(std::move(inner_key_indexes)),
      residual_(std::move(residual)),
      impl_(impl),
      ship_filter_to_site_(ship_filter_to_site),
      bloom_bits_per_key_(bloom_bits_per_key) {
  MAGICDB_CHECK(outer_keys_.size() == inner_keys_.size());
  MAGICDB_CHECK(!outer_keys_.empty());
  if (filter_key_positions.empty()) {
    filter_outer_keys_ = outer_keys_;
  } else {
    for (int pos : filter_key_positions) {
      MAGICDB_CHECK(pos >= 0 && pos < static_cast<int>(outer_keys_.size()));
      filter_outer_keys_.push_back(outer_keys_[pos]);
    }
  }
}

Status FilterJoinOp::Open(ExecContext* ctx) {
  if (shared_fj_ != nullptr) return OpenParallel(ctx);
  ctx_ = ctx;
  production_.clear();
  build_.clear();
  outer_pos_ = 0;
  have_outer_ = false;
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  measured_ = FilterJoinMeasured();
  charged_bytes_ = 0;
  double phase_start = ctx->counters().TotalCost();

  // Phase 1: materialize the production set P (= the outer, Limitation 2).
  MAGICDB_RETURN_IF_ERROR(outer_->Open(ctx));
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(outer_->Next(&t, &eof));
    if (eof) break;
    const int64_t row_bytes = TupleByteWidth(t);
    MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(row_bytes));
    charged_bytes_ += row_bytes;
    production_.push_back(std::move(t));
  }
  MAGICDB_RETURN_IF_ERROR(outer_->Close());
  const int64_t prod_width = outer_->schema().TupleWidthBytes();
  production_rows_per_page_ = RowsPerPage(prod_width);
  // ProductionCost_P: write the spool.
  ctx->counters().pages_written +=
      PagesForRows(static_cast<int64_t>(production_.size()), prod_width);

  measured_.production = ctx->counters().TotalCost() - phase_start;
  phase_start = ctx->counters().TotalCost();

  // Phase 2: ProjCost_F — distinct-project the filter key columns into F
  // (a subset of the join keys when a partial SIPS was chosen).
  std::unordered_map<uint64_t, std::vector<Tuple>> distinct;
  std::vector<Tuple> keys;
  std::vector<int> identity(filter_outer_keys_.size());
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<int>(i);
  }
  for (const Tuple& row : production_) {
    if (TupleHasNullAt(row, filter_outer_keys_)) continue;
    ctx->counters().hash_operations += 1;
    Tuple key = ProjectTuple(row, filter_outer_keys_);
    std::vector<Tuple>& chain = distinct[HashTupleColumns(key, identity)];
    bool dup = false;
    for (const Tuple& k : chain) {
      if (CompareTuples(k, key) == 0) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      chain.push_back(key);
      keys.push_back(std::move(key));
    }
  }
  last_filter_set_size_ = static_cast<int64_t>(keys.size());
  measured_.projection = ctx->counters().TotalCost() - phase_start;
  phase_start = ctx->counters().TotalCost();

  Schema key_schema;
  for (int i : filter_outer_keys_) {
    key_schema.AddColumn(outer_->schema().column(i));
  }

  std::shared_ptr<FilterSetBinding> binding;
  if (impl_ == FilterSetImpl::kBloom) {
    binding = FilterSetBinding::Bloom(key_schema, keys, bloom_bits_per_key_);
  } else {
    binding = FilterSetBinding::Exact(key_schema, std::move(keys));
  }

  // AvailCost_F: materialize F; ship it if the inner computes remotely.
  ctx->counters().pages_written +=
      PagesForRows(binding->NumKeys() > 0
                       ? (impl_ == FilterSetImpl::kBloom ? 1 : binding->NumKeys())
                       : 0,
                   impl_ == FilterSetImpl::kBloom
                       ? CostConstants::kPageSizeBytes
                       : key_schema.TupleWidthBytes());
  if (ship_filter_to_site_ > 0) {
    ctx->counters().messages_sent += 1;
    ctx->counters().bytes_shipped += binding->SizeBytes();
  }
  ctx->BindFilterSet(binding_id_, std::move(binding));
  measured_.avail_filter = ctx->counters().TotalCost() - phase_start;
  phase_start = ctx->counters().TotalCost();

  // Phase 3: FilterCost_{R_k} — evaluate the restricted inner and build the
  // final-join hash table on it (AvailCost_{R_k'} is pipelined => only hash
  // work here).
  MAGICDB_RETURN_IF_ERROR(inner_->Open(ctx));
  int64_t build_bytes = 0;
  int64_t inner_rows = 0;
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(inner_->Next(&t, &eof));
    if (eof) break;
    ++inner_rows;
    if (TupleHasNullAt(t, inner_keys_)) continue;
    MAGICDB_FAILPOINT("exec.filter_join.build");
    const int64_t row_bytes = TupleByteWidth(t);
    MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(row_bytes));
    charged_bytes_ += row_bytes;
    ctx->counters().hash_operations += 1;
    build_bytes += row_bytes;
    build_[HashTupleColumns(t, inner_keys_)].push_back(std::move(t));
  }
  MAGICDB_RETURN_IF_ERROR(inner_->Close());
  if (!feedback_key_.empty()) {
    MAGICDB_RETURN_IF_ERROR(ctx->RecordCardinality(
        feedback_key_, "filter_join_build", feedback_est_rows_,
        static_cast<double>(inner_rows), /*exact=*/false,
        /*can_trigger=*/false));
  }
  // R_k' over budget: Grace partitioning pass over R_k' and (via the spool
  // that already exists) the production set.
  if (build_bytes > ctx->memory_budget_bytes()) {
    const int64_t build_pages =
        (build_bytes + CostConstants::kPageSizeBytes - 1) /
        CostConstants::kPageSizeBytes;
    ctx->counters().pages_written += build_pages;
    ctx->counters().pages_read += build_pages;
  }
  measured_.filter_inner = ctx->counters().TotalCost() - phase_start;
  return Status::OK();
}

// Parallel Filter Join, one call per plan replica. Counter discipline: the
// morsel-driven production drain and the final-join probe charge per row on
// whichever worker handled the row (every row handled exactly once);
// whole-relation charges (spool pages, AvailCost_F, the restricted inner)
// are the coordinator's, charged once. Merged worker counters therefore
// equal a single-threaded execution's counters exactly.
Status FilterJoinOp::OpenParallel(ExecContext* ctx) {
  ctx_ = ctx;
  production_.clear();
  production_pos_.clear();
  build_.clear();
  outer_pos_ = 0;
  have_outer_ = false;
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  measured_ = FilterJoinMeasured();
  last_filter_set_size_ = 0;
  charged_bytes_ = 0;
  double phase_start = ctx->counters().TotalCost();

  std::vector<int> identity(filter_outer_keys_.size());
  for (size_t i = 0; i < identity.size(); ++i) {
    identity[i] = static_cast<int>(i);
  }

  // Phase 1: drain this worker's slice of the outer into P_w, staging the
  // filter keys into the hash-routed partitions as they stream by (the
  // ProjCost_F hash op is charged here, once per non-null row globally).
  MAGICDB_RETURN_IF_ERROR(outer_->Open(ctx));
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(outer_->Next(&t, &eof));
    if (eof) break;
    const int64_t row_bytes = TupleByteWidth(t);
    MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(row_bytes));
    charged_bytes_ += row_bytes;
    const int64_t pos = driving_scan_->last_global_row();
    if (!TupleHasNullAt(t, filter_outer_keys_)) {
      ctx->counters().hash_operations += 1;
      Tuple key = ProjectTuple(t, filter_outer_keys_);
      // Hash before the call: argument evaluation order is unspecified, and
      // the by-value parameter would otherwise race the move against the hash.
      const uint64_t key_hash = HashTupleColumns(key, identity);
      shared_fj_->StageKey(worker_, pos, key_hash, std::move(key));
    }
    production_pos_.push_back(pos);
    production_.push_back(std::move(t));
  }
  MAGICDB_RETURN_IF_ERROR(outer_->Close());
  const int64_t prod_width = outer_->schema().TupleWidthBytes();
  production_rows_per_page_ = RowsPerPage(prod_width);
  shared_fj_->AddProductionRows(static_cast<int64_t>(production_.size()),
                                static_cast<int64_t>(production_.size()) *
                                    prod_width);
  MAGICDB_RETURN_IF_ERROR(shared_fj_->StagingDone());
  measured_.production = ctx->counters().TotalCost() - phase_start;
  phase_start = ctx->counters().TotalCost();

  // Phase 2: each worker dedups the one key partition it owns.
  MAGICDB_RETURN_IF_ERROR(shared_fj_->DedupPartition(worker_));
  measured_.projection = ctx->counters().TotalCost() - phase_start;
  phase_start = ctx->counters().TotalCost();

  if (worker_ == 0) {
    // Coordinator: whole-relation charges and the restricted inner.
    const int64_t total_rows = shared_fj_->total_production_rows();
    // ProductionCost_P: spool write of the full production set.
    ctx->counters().pages_written += PagesForRows(total_rows, prod_width);
    measured_.production += ctx->counters().TotalCost() - phase_start;
    phase_start = ctx->counters().TotalCost();

    std::vector<Tuple> keys = shared_fj_->TakeOrderedKeys();
    last_filter_set_size_ = static_cast<int64_t>(keys.size());

    Schema key_schema;
    for (int i : filter_outer_keys_) {
      key_schema.AddColumn(outer_->schema().column(i));
    }
    std::shared_ptr<FilterSetBinding> binding;
    if (impl_ == FilterSetImpl::kBloom) {
      binding = FilterSetBinding::Bloom(key_schema, keys, bloom_bits_per_key_);
    } else {
      binding = FilterSetBinding::Exact(key_schema, std::move(keys));
    }
    // AvailCost_F: materialize F; ship it if the inner computes remotely.
    ctx->counters().pages_written += PagesForRows(
        binding->NumKeys() > 0
            ? (impl_ == FilterSetImpl::kBloom ? 1 : binding->NumKeys())
            : 0,
        impl_ == FilterSetImpl::kBloom ? CostConstants::kPageSizeBytes
                                       : key_schema.TupleWidthBytes());
    if (ship_filter_to_site_ > 0) {
      ctx->counters().messages_sent += 1;
      ctx->counters().bytes_shipped += binding->SizeBytes();
    }
    ctx->BindFilterSet(binding_id_, std::move(binding));
    measured_.avail_filter = ctx->counters().TotalCost() - phase_start;
    phase_start = ctx->counters().TotalCost();

    // Phase 3: restricted inner, built into the shared final-join table.
    auto* shared_build = shared_fj_->mutable_inner_build();
    Status inner_status = inner_->Open(ctx);
    int64_t build_bytes = 0;
    int64_t inner_rows = 0;
    while (inner_status.ok()) {
      Tuple t;
      bool eof = false;
      inner_status = inner_->Next(&t, &eof);
      if (!inner_status.ok() || eof) break;
      ++inner_rows;
      if (TupleHasNullAt(t, inner_keys_)) continue;
      inner_status = MAGICDB_FAILPOINT_EVAL("exec.filter_join.build");
      if (!inner_status.ok()) break;
      const int64_t row_bytes = TupleByteWidth(t);
      inner_status = ctx->ChargeMemory(row_bytes);
      if (!inner_status.ok()) break;
      charged_bytes_ += row_bytes;
      ctx->counters().hash_operations += 1;
      build_bytes += row_bytes;
      (*shared_build)[HashTupleColumns(t, inner_keys_)].push_back(
          std::move(t));
    }
    if (inner_status.ok()) inner_status = inner_->Close();
    if (!inner_status.ok()) {
      shared_fj_->Abort(inner_status);
      return inner_status;
    }
    // Coordinator-only observation (the inner runs exactly once, here), so
    // the ledger entry matches sequential execution at any DoP.
    if (!feedback_key_.empty()) {
      MAGICDB_RETURN_IF_ERROR(ctx->RecordCardinality(
          feedback_key_, "filter_join_build", feedback_est_rows_,
          static_cast<double>(inner_rows), /*exact=*/false,
          /*can_trigger=*/false));
    }
    if (build_bytes > ctx->memory_budget_bytes()) {
      const int64_t build_pages =
          (build_bytes + CostConstants::kPageSizeBytes - 1) /
          CostConstants::kPageSizeBytes;
      ctx->counters().pages_written += build_pages;
      ctx->counters().pages_read += build_pages;
    }
    measured_.filter_inner = ctx->counters().TotalCost() - phase_start;
    phase_start = ctx->counters().TotalCost();
    // Spool rescan of P for the final join, charged centrally (the probes
    // below walk worker-local slices whose per-worker page rounding would
    // otherwise overcharge).
    ctx->counters().pages_read += PagesForRows(total_rows, prod_width);
    measured_.final_join += ctx->counters().TotalCost() - phase_start;
    return shared_fj_->InnerBarrier();
  }
  return shared_fj_->InnerBarrier();
}

Status FilterJoinOp::Next(Tuple* out, bool* eof) {
  // Phase 4: FinalJoinCost — probe the R_k' hash table with P. Each Next
  // call's charges are attributed to the final-join phase.
  const double next_start = ctx_->counters().TotalCost();
  struct PhaseGuard {
    FilterJoinMeasured* measured;
    ExecContext* ctx;
    double start;
    ~PhaseGuard() {
      measured->final_join += ctx->counters().TotalCost() - start;
    }
  } guard{&measured_, ctx_, next_start};
  while (true) {
    if (!have_outer_) {
      if (outer_pos_ >= production_.size()) {
        *eof = true;
        return Status::OK();
      }
      if (shared_fj_ == nullptr &&
          static_cast<int64_t>(outer_pos_) % production_rows_per_page_ == 0) {
        // Rescan of the spooled P. In parallel mode the coordinator charges
        // these pages centrally from the global row count (per-worker slice
        // rounding would overcharge), so workers skip the per-row charge.
        ctx_->counters().pages_read += 1;
      }
      current_outer_ = production_[outer_pos_++];
      ctx_->counters().tuples_processed += 1;
      have_outer_ = true;
      if (TupleHasNullAt(current_outer_, outer_keys_)) {
        current_bucket_ = nullptr;
        bucket_pos_ = 0;
        continue;
      }
      ctx_->counters().hash_operations += 1;
      const auto& table =
          shared_fj_ != nullptr ? shared_fj_->inner_build() : build_;
      auto it = table.find(HashTupleColumns(current_outer_, outer_keys_));
      current_bucket_ = it == table.end() ? nullptr : &it->second;
      bucket_pos_ = 0;
    }
    while (current_bucket_ != nullptr &&
           bucket_pos_ < current_bucket_->size()) {
      const Tuple& inner_row = (*current_bucket_)[bucket_pos_++];
      if (CompareTupleColumns(current_outer_, inner_row, outer_keys_,
                              inner_keys_) != 0) {
        continue;
      }
      Tuple joined = ConcatTuples(current_outer_, inner_row);
      if (residual_) {
        ctx_->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      *out = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    have_outer_ = false;
  }
}

Status FilterJoinOp::Close() {
  if (ctx_ != nullptr) {
    ctx_->UnbindFilterSet(binding_id_);
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  production_.clear();
  production_pos_.clear();
  build_.clear();
  return Status::OK();
}

const FilterJoinOp* FindFilterJoin(const Operator& root) {
  if (const auto* fj = dynamic_cast<const FilterJoinOp*>(&root)) return fj;
  for (const Operator* child : root.Children()) {
    const FilterJoinOp* found = FindFilterJoin(*child);
    if (found != nullptr) return found;
  }
  return nullptr;
}

std::string FilterJoinOp::Describe() const {
  std::string s = "FilterJoin(impl=" + std::string(FilterSetImplName(impl_));
  if (ship_filter_to_site_ > 0) {
    s += ", ship_to_site=" + std::to_string(ship_filter_to_site_);
  }
  return s + ")";
}

}  // namespace magicdb
