#ifndef MAGICDB_EXEC_EXEC_OPTIONS_H_
#define MAGICDB_EXEC_EXEC_OPTIONS_H_

#include <chrono>
#include <cstdint>

#include "src/common/cancellation.h"

namespace magicdb {

/// Per-query execution controls. One struct serves both entry surfaces:
/// `Database::Run(stmt, ExecOptions)` for embedded use and
/// `Session::Query/Open` through a QueryService (which additionally applies
/// its service defaults for the zero/negative sentinel fields).
struct ExecOptions {
  /// Requested degree of parallelism. 1 (default) runs sequentially (on the
  /// service's fair cooperative scheduler when serving); > 1 runs the
  /// morsel-parallel executor when the plan shape allows, otherwise falls
  /// back to the sequential path with QueryResult::parallel_fallback_reason
  /// set; <= 0 means hardware concurrency (Database::Run only).
  int dop = 1;

  /// Relative deadline for the whole query, admission wait included.
  /// Zero = no deadline. A query that exceeds it unwinds cooperatively
  /// with StatusCode::kDeadlineExceeded.
  std::chrono::microseconds timeout{0};

  /// Optional externally owned token; lets the submitter cancel the query
  /// from another thread. When null and a timeout is set, the service
  /// creates an internal token.
  CancelTokenPtr cancel_token;

  /// High-water mark (rows) of this query's streaming result queue; the
  /// producer parks once this many rows are buffered unfetched. 0 = the
  /// service default (QueryServiceOptions::stream_queue_rows). Serving
  /// path only.
  int64_t stream_queue_rows = 0;

  /// Memory limit (bytes) for this query's retained execution state: hash
  /// and filter-join build tables, spooled production sets, aggregate
  /// groups, staged parallel rows, and the unfetched result queue. A query
  /// that would exceed it fails with StatusCode::kResourceExhausted instead
  /// of growing unbounded. 0 = the service default
  /// (QueryServiceOptions::query_memory_limit_bytes); negative = explicitly
  /// ungoverned regardless of the service default.
  int64_t memory_limit_bytes = 0;

  /// Whether this query may degrade to out-of-core execution (Grace hash
  /// join, hybrid hash aggregation, external merge sort) when it breaches
  /// its memory limit. Effective only when the service has a spill area
  /// (QueryServiceOptions::spill_dir); false keeps the hard
  /// kResourceExhausted failure even then.
  bool allow_spill = true;

  /// Rows per batch for the vectorized execution path (Operator::NextBatch):
  /// operators exchange column-oriented batches instead of single tuples,
  /// with memory charges and cancellation checks coalesced per batch.
  /// Results, result order, and cost counters are byte-identical to the
  /// tuple-at-a-time path at any dop. 0 = classic tuple-at-a-time
  /// execution; negative (the default) = the service default
  /// (QueryServiceOptions::default_batch_size, normally 1024). The
  /// effective value participates in the plan-cache key.
  int64_t batch_size = -1;

  /// Adaptive re-optimization: q-error (max(actual/est, est/actual)) above
  /// which a cardinality observation at a pipeline breaker aborts the
  /// attempt, folds the observed counts into a stats overlay, and re-plans
  /// the remaining query. 0 disables; negative (the default) resolves via
  /// MAGICDB_TEST_REOPT_QERROR (unset = disabled) so scripts/check.sh can
  /// sweep the whole suite with re-planning forced on. Rows and merged
  /// cost counters stay byte-identical at any dop, on or off.
  double reoptimize_qerror_threshold = -1.0;

  /// Upper bound on re-planning rounds per query; the final attempt runs
  /// with triggering disabled, guaranteeing termination.
  int max_reoptimizations = 3;

  /// Persist this query's exact scan/view cardinality observations into
  /// the database's FeedbackStore so *subsequent* queries plan with them.
  /// Off by default: persistence changes later plans, which breaks
  /// run-to-run byte-identity sweeps; opt in where learning across queries
  /// is wanted.
  bool persist_feedback = false;
};

/// Resolves the effective re-optimization threshold: a non-negative
/// configured value wins; negative falls back to the
/// MAGICDB_TEST_REOPT_QERROR environment variable (absent/invalid = 0,
/// i.e. disabled).
double ResolveReoptQErrorThreshold(double configured);

}  // namespace magicdb

#endif  // MAGICDB_EXEC_EXEC_OPTIONS_H_
