#ifndef MAGICDB_EXEC_BASIC_OPS_H_
#define MAGICDB_EXEC_BASIC_OPS_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/exec/operator.h"
#include "src/expr/expr.h"
#include "src/spill/external_sorter.h"

namespace magicdb {

/// Drops tuples failing `predicate` (NULL counts as failing).
class FilterOp final : public Operator {
 public:
  FilterOp(OpPtr child, ExprPtr predicate);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  /// Native batch filter: pulls the child's batch into `out` and narrows
  /// its selection vector with a vectorized predicate pass — no copying,
  /// no per-row virtual dispatch. Rank tags ride along untouched.
  Status NextBatch(RowBatch* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  ExprPtr predicate_;
  ExecContext* ctx_ = nullptr;
  // Scratch for the vectorized predicate pass, reused across batches.
  std::vector<Value> pred_vals_;
  std::vector<uint8_t> pred_errs_;
};

/// Computes output columns from expressions over the child tuple.
class ProjectOp final : public Operator {
 public:
  ProjectOp(OpPtr child, std::vector<ExprPtr> exprs, Schema schema);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  /// Native batch projection: each output column is one BatchEval over the
  /// child batch; the input's selection vector and rank tags copy through.
  Status NextBatch(RowBatch* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::vector<ExprPtr> exprs_;
  ExecContext* ctx_ = nullptr;
  // Child batch + per-column value/error scratch for the vectorized path.
  std::unique_ptr<RowBatch> in_batch_;
  std::vector<Value> col_vals_;
  std::vector<uint8_t> col_errs_;
};

/// Hash-based duplicate elimination over whole tuples.
class DistinctOp final : public Operator {
 public:
  explicit DistinctOp(OpPtr child);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  ExecContext* ctx_ = nullptr;
  std::unordered_map<uint64_t, std::vector<Tuple>> seen_;
};

/// Full sort on key expressions. Keys are computed once per tuple; if the
/// input exceeds the context memory budget, the predicted external merge
/// passes are charged (write + read of all pages per pass). The buffered
/// input is governed memory; when it breaches the query's hard limit and
/// spilling is enabled, the sort degrades to an external merge sort
/// (sorted runs on disk + k-way merge) with byte-identical output.
class SortOp final : public Operator {
 public:
  struct SortKey {
    ExprPtr expr;
    bool ascending = true;
  };

  SortOp(OpPtr child, std::vector<SortKey> keys);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  std::vector<SortKey> keys_;
  ExecContext* ctx_ = nullptr;
  std::vector<Tuple> sorted_;
  size_t next_ = 0;
  // Bytes charged for the buffered rows + key tuples; released on Close.
  int64_t charged_bytes_ = 0;
  // External merge sort, engaged on a governed memory breach.
  std::unique_ptr<ExternalSorter> sorter_;
  int64_t base_seq_ = 0;
};

/// Spools the child on first Open and replays the spool on every
/// (re-)open. Charges page writes when spooling and page reads when
/// replaying — the executor counterpart of ProductionCost_P in Table 1.
class MaterializeOp final : public Operator {
 public:
  explicit MaterializeOp(OpPtr child);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

  /// Spooled rows (valid after Open).
  const std::vector<Tuple>& rows() const { return rows_; }

 private:
  OpPtr child_;
  ExecContext* ctx_ = nullptr;
  bool spooled_ = false;
  std::vector<Tuple> rows_;
  int64_t next_row_ = 0;
  int64_t rows_per_page_ = 1;
};

/// Emits at most `limit` tuples.
class LimitOp final : public Operator {
 public:
  LimitOp(OpPtr child, int64_t limit);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {child_.get()};
  }

 private:
  OpPtr child_;
  int64_t limit_;
  int64_t produced_ = 0;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_BASIC_OPS_H_
