#ifndef MAGICDB_EXEC_ROW_BATCH_H_
#define MAGICDB_EXEC_ROW_BATCH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/types/tuple.h"
#include "src/types/value.h"

namespace magicdb {

/// Column-oriented batch of rows flowing through the vectorized execution
/// path (Operator::NextBatch). Layout:
///
///   - `num_cols` column vectors of Value, all `num_rows` long — the
///     physical rows of the batch;
///   - an optional *selection vector*: a sorted list of physical row
///     indexes that are logically alive. Filters narrow the selection
///     in place instead of compacting the columns, so upstream data is
///     copied once per pipeline, not once per filter;
///   - optional *rank* vectors (pos, sub), aligned with the physical rows,
///     carrying the deterministic (position, sub-rank) tags the parallel
///     gather merge orders by. Scans fill pos with the global row index;
///     rank-preserving operators copy them through.
///
/// A batch is an arena the producing operator overwrites every iteration:
/// consumers must finish with (or move out of) a batch before pulling the
/// next one. Capacity is fixed at construction (ExecOptions::batch_size)
/// and survives ResetForWrite.
class RowBatch {
 public:
  static constexpr int32_t kDefaultCapacity = 1024;

  explicit RowBatch(int32_t capacity = kDefaultCapacity)
      : capacity_(capacity > 0 ? capacity : kDefaultCapacity) {}

  int32_t capacity() const { return capacity_; }
  int32_t num_cols() const { return static_cast<int32_t>(columns_.size()); }
  /// Physical rows (including rows a selection vector has filtered out).
  int32_t num_rows() const { return num_rows_; }
  bool full() const { return num_rows_ >= capacity_; }

  /// Clears rows, selection, and ranks; (re)shapes to `num_cols` columns.
  /// Column storage is retained so steady-state iterations do not allocate.
  void ResetForWrite(int num_cols) {
    columns_.resize(static_cast<size_t>(num_cols));
    for (auto& col : columns_) col.clear();
    num_rows_ = 0;
    sel_active_ = false;
    selection_.clear();
    has_ranks_ = false;
    pos_.clear();
    sub_.clear();
  }

  std::vector<Value>& column(int c) { return columns_[static_cast<size_t>(c)]; }
  const std::vector<Value>& column(int c) const {
    return columns_[static_cast<size_t>(c)];
  }

  /// Appends one row by moving the tuple's values column-wise (the
  /// row->batch adapter path). The tuple must have num_cols() values.
  void AppendTuple(Tuple&& t) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].push_back(std::move(t[c]));
    }
    ++num_rows_;
  }

  /// Bulk-write protocol: an operator that fills column vectors directly
  /// (e.g. the scan's column-wise page copy) declares the new physical row
  /// count afterwards. Every column must be `n` long.
  void set_num_rows(int32_t n) { num_rows_ = n; }

  // -- Selection vector -----------------------------------------------------

  /// True when a selection vector restricts the live rows.
  bool sel_active() const { return sel_active_; }
  const std::vector<int32_t>& selection() const { return selection_; }

  /// Logically live rows: selection size when active, else num_rows().
  int32_t ActiveRows() const {
    return sel_active_ ? static_cast<int32_t>(selection_.size()) : num_rows_;
  }

  /// Installs `sel` (sorted, strictly increasing physical row indexes) as
  /// the selection vector. An empty vector means "no rows survive", which
  /// is distinct from clearing the selection via ResetForWrite.
  void SetSelection(std::vector<int32_t> sel) {
    selection_ = std::move(sel);
    sel_active_ = true;
  }

  /// Gathers the selected rows (and their rank tags) to the front of the
  /// column vectors, shrinks the batch to the survivor count, and drops the
  /// selection vector. Pays one move-gather of the survivors so every
  /// downstream per-batch loop runs dense (and the fully-active bulk fast
  /// paths apply); filters call it after narrowing the selection. No-op
  /// when no selection is active.
  void CompactActive();

  /// Calls f(physical_row_index) for every live row, in ascending order.
  template <typename F>
  void ForEachActive(F&& f) const {
    if (sel_active_) {
      for (int32_t r : selection_) f(r);
    } else {
      for (int32_t r = 0; r < num_rows_; ++r) f(r);
    }
  }

  // -- Rank tags (parallel gather ordering) ---------------------------------

  bool has_ranks() const { return has_ranks_; }
  /// Enables the (pos, sub) rank vectors; the producer appends one entry
  /// per physical row it emits.
  void EnableRanks() { has_ranks_ = true; }
  std::vector<int64_t>& pos() { return pos_; }
  const std::vector<int64_t>& pos() const { return pos_; }
  std::vector<int64_t>& sub() { return sub_; }
  const std::vector<int64_t>& sub() const { return sub_; }

  // -- Row-form conversion --------------------------------------------------

  /// Moves physical row `r` out of the batch into `*t` (resized to
  /// num_cols()). The row's slots are left NULL; callers do this only on a
  /// batch they will Reset (or discard) before reuse.
  void MoveRowToTuple(int32_t r, Tuple* t);

  /// Appends every live row to `*out` as tuples, moving the values out.
  void MoveActiveToTuples(std::vector<Tuple>* out);

 private:
  int32_t capacity_;
  int32_t num_rows_ = 0;
  std::vector<std::vector<Value>> columns_;
  bool sel_active_ = false;
  std::vector<int32_t> selection_;
  bool has_ranks_ = false;
  std::vector<int64_t> pos_;
  std::vector<int64_t> sub_;
};

/// Row-wise helpers over batch columns, mirroring their Tuple counterparts
/// (TupleByteWidth / TupleHasNullAt / HashTupleColumns) value-for-value so
/// batch operators charge and hash exactly like the row path.
int64_t BatchRowByteWidth(const RowBatch& batch, int32_t row);
bool BatchRowHasNullAt(const RowBatch& batch, int32_t row,
                       const std::vector<int>& indexes);
uint64_t HashBatchRowColumns(const RowBatch& batch, int32_t row,
                             const std::vector<int>& indexes);

/// Process-wide default batch size for the vectorized execution path:
/// RowBatch::kDefaultCapacity unless the MAGICDB_TEST_BATCH_SIZE environment
/// variable overrides it (clamped to >= 0; 0 forces tuple-at-a-time
/// execution). check.sh sets the variable to run the full test suite under
/// both execution modes.
int64_t DefaultExecBatchSize();

}  // namespace magicdb

#endif  // MAGICDB_EXEC_ROW_BATCH_H_
