#ifndef MAGICDB_EXEC_FUNCTION_OPS_H_
#define MAGICDB_EXEC_FUNCTION_OPS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/exec/operator.h"
#include "src/expr/expr.h"
#include "src/udr/table_function.h"

namespace magicdb {

/// Joins an outer stream with a user-defined relation (§5.2) by invoking
/// the function once per outer tuple ("repeated probe" in the taxonomy of
/// Figure 6). With `memoize`, repeated argument values hit a cache instead
/// of re-invoking ("function caching / memoing").
///
/// Output schema: outer ++ function relation (args ++ results).
class FunctionProbeJoinOp final : public Operator {
 public:
  FunctionProbeJoinOp(OpPtr outer, const TableFunction* function,
                      std::vector<int> outer_arg_indexes, ExprPtr residual,
                      bool memoize);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {outer_.get()};
  }

  int64_t cache_hits() const { return cache_hits_; }

 private:
  OpPtr outer_;
  const TableFunction* function_;
  std::vector<int> outer_arg_indexes_;
  ExprPtr residual_;
  bool memoize_;

  ExecContext* ctx_ = nullptr;
  std::unordered_map<uint64_t, std::vector<std::pair<Tuple, std::vector<Tuple>>>>
      memo_;
  Tuple current_outer_;
  std::vector<Tuple> current_results_;  // function rows (args ++ results)
  size_t result_pos_ = 0;
  bool have_outer_ = false;
  int64_t cache_hits_ = 0;
};

/// Invokes the function once per child tuple, where the child produces
/// *argument* tuples (typically the distinct filter set of a Filter Join on
/// a user-defined relation — "consecutive procedure calls" in Figure 6).
/// Emits args ++ results rows; the planner joins them back to the outer.
class FunctionCallOp final : public Operator {
 public:
  FunctionCallOp(OpPtr args_child, const TableFunction* function);

  Status Open(ExecContext* ctx) override;
  Status Next(Tuple* out, bool* eof) override;
  Status Close() override;
  std::string Describe() const override;
  std::vector<const Operator*> Children() const override {
    return {args_child_.get()};
  }

 private:
  OpPtr args_child_;
  const TableFunction* function_;
  ExecContext* ctx_ = nullptr;
  std::vector<Tuple> current_rows_;
  size_t pos_ = 0;
  bool child_eof_ = false;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_FUNCTION_OPS_H_
