#include "src/exec/row_batch.h"

#include <cstdlib>

#include "src/common/hash.h"

namespace magicdb {

void RowBatch::MoveRowToTuple(int32_t r, Tuple* t) {
  t->resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    (*t)[c] = std::move(columns_[c][static_cast<size_t>(r)]);
  }
}

void RowBatch::MoveActiveToTuples(std::vector<Tuple>* out) {
  ForEachActive([&](int32_t r) {
    Tuple t;
    MoveRowToTuple(r, &t);
    out->push_back(std::move(t));
  });
}

void RowBatch::CompactActive() {
  if (!sel_active_) return;
  const size_t n = selection_.size();
  for (size_t k = 0; k < n; ++k) {
    const size_t r = static_cast<size_t>(selection_[k]);
    if (r == k) continue;  // prefix already dense; avoid self-move
    for (auto& col : columns_) col[k] = std::move(col[r]);
    if (has_ranks_) {
      pos_[k] = pos_[r];
      sub_[k] = sub_[r];
    }
  }
  for (auto& col : columns_) col.resize(n);
  if (has_ranks_) {
    pos_.resize(n);
    sub_.resize(n);
  }
  num_rows_ = static_cast<int32_t>(n);
  sel_active_ = false;
  selection_.clear();
}

int64_t BatchRowByteWidth(const RowBatch& batch, int32_t row) {
  int64_t w = 0;
  for (int c = 0; c < batch.num_cols(); ++c) {
    w += batch.column(c)[static_cast<size_t>(row)].ByteWidth();
  }
  return w;
}

bool BatchRowHasNullAt(const RowBatch& batch, int32_t row,
                       const std::vector<int>& indexes) {
  for (int i : indexes) {
    if (batch.column(i)[static_cast<size_t>(row)].is_null()) return true;
  }
  return false;
}

uint64_t HashBatchRowColumns(const RowBatch& batch, int32_t row,
                             const std::vector<int>& indexes) {
  // Same fold as HashTupleColumns, walking batch columns instead of a
  // materialized tuple.
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (int i : indexes) {
    h = HashCombine(h, batch.column(i)[static_cast<size_t>(row)].Hash());
  }
  return h;
}

int64_t DefaultExecBatchSize() {
  static const int64_t size = [] {
    if (const char* env = std::getenv("MAGICDB_TEST_BATCH_SIZE")) {
      const int64_t v = std::strtoll(env, nullptr, 10);
      return v < 0 ? int64_t{0} : v;
    }
    return int64_t{RowBatch::kDefaultCapacity};
  }();
  return size;
}

}  // namespace magicdb
