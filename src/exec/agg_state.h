#ifndef MAGICDB_EXEC_AGG_STATE_H_
#define MAGICDB_EXEC_AGG_STATE_H_

#include <cstdint>

#include "src/types/value.h"

namespace magicdb {

/// Partial state of one aggregate function over one group, designed around
/// the three-phase protocol that makes parallel aggregation exact:
///
///   accumulate: fold one input row into a state (HashAggregateOp);
///   combine:    merge two partial states built over disjoint row sets
///               (CombineFrom, used by the partitioned parallel merge);
///   finalize:   turn the state into the SQL result value.
///
/// Combine is exact for every function the engine supports:
///   COUNT / COUNT(*)  — counts add;
///   SUM               — the int64 running sum adds while both sides kept
///                       int64 exactness (`int_sum`), and the flag itself
///                       merges with AND, so promotion to double happens
///                       for the merged state iff a sequential pass over
///                       the union would have promoted;
///   AVG               — derived at finalize from count + sum, both of
///                       which merge exactly;
///   MIN / MAX         — order statistics; NULL (empty) sides are skipped.
///
/// NULL semantics carry through combine unchanged: `count` only ever
/// counted non-NULL inputs (or rows, for COUNT(*)), so a merged group whose
/// inputs were all NULL still finalizes to NULL for SUM/AVG/MIN/MAX and 0
/// for COUNT.
///
/// The double running sum adds componentwise; for int64 inputs (and any
/// doubles whose additions round exactly) this is bit-identical to the
/// sequential left-to-right sum. See DESIGN.md "Parallel aggregation" for
/// the determinism argument.
struct AggState {
  int64_t count = 0;   // non-null inputs (or rows for COUNT(*))
  double sum = 0.0;    // numeric running sum
  int64_t isum = 0;    // exact int64 running sum
  bool int_sum = true; // all inputs so far were int64
  Value min, max;      // extremes (NULL until first input)

  /// Merges `other` (a partial state over a disjoint set of input rows)
  /// into this state. Associative and commutative up to double rounding;
  /// exact (bitwise order-independent) whenever every double addition
  /// involved is exact — in particular for int64 SUM/AVG inputs.
  void CombineFrom(const AggState& other) {
    count += other.count;
    sum += other.sum;
    if (int_sum && other.int_sum) {
      isum += other.isum;
    } else {
      // Either side saw a non-int64 input: the merged sum is no longer
      // exactly representable as int64 — same promotion a sequential pass
      // over the concatenated inputs performs.
      int_sum = false;
    }
    if (!other.min.is_null() &&
        (min.is_null() || other.min.Compare(min) < 0)) {
      min = other.min;
    }
    if (!other.max.is_null() &&
        (max.is_null() || other.max.Compare(max) > 0)) {
      max = other.max;
    }
  }
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_AGG_STATE_H_
