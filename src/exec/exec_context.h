#ifndef MAGICDB_EXEC_EXEC_CONTEXT_H_
#define MAGICDB_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/bloom/bloom_filter.h"
#include "src/common/cancellation.h"
#include "src/common/cost_counters.h"
#include "src/common/memory_tracker.h"
#include "src/common/statusor.h"
#include "src/types/schema.h"
#include "src/types/tuple.h"

namespace magicdb {

class CardinalityFeedback;
class SpillManager;
class ThreadPool;

/// A materialized magic filter set, produced by a FilterJoinOp and consumed
/// inside the rewritten inner plan (FilterSetScanOp / FilterProbeOp). The
/// exact implementation keeps the distinct key tuples plus a hash set; the
/// lossy implementation keeps a Bloom filter (§3.3 Limitation 3).
class FilterSetBinding {
 public:
  /// Exact filter set over `keys` (distinct key tuples, schema `schema`).
  static std::shared_ptr<FilterSetBinding> Exact(Schema schema,
                                                 std::vector<Tuple> keys);

  /// Bloom filter set: remembers key hashes only. `bits_per_key` controls
  /// the false-positive rate.
  static std::shared_ptr<FilterSetBinding> Bloom(Schema schema,
                                                 const std::vector<Tuple>& keys,
                                                 double bits_per_key = 10.0);

  bool is_bloom() const { return bloom_.has_value(); }
  const Schema& schema() const { return schema_; }

  /// Distinct key tuples; empty for Bloom bindings (lossy sets cannot be
  /// enumerated).
  const std::vector<Tuple>& keys() const { return keys_; }

  int64_t NumKeys() const { return num_keys_; }

  /// Membership probe over all key columns of `tuple` selected by
  /// `key_indexes`. Bloom bindings may return false positives.
  bool MayContain(const Tuple& tuple,
                  const std::vector<int>& key_indexes) const;

  /// Bytes this filter set occupies (shipping / AvailCost_F accounting).
  int64_t SizeBytes() const;

 private:
  Schema schema_;
  std::vector<Tuple> keys_;
  std::unordered_map<uint64_t, std::vector<Tuple>> exact_set_;
  std::optional<BloomFilter> bloom_;
  int64_t num_keys_ = 0;
};

/// Per-execution state: cost counters, memory budget for sort spilling, and
/// the named filter-set bindings magic-rewritten plans reference.
class ExecContext {
 public:
  ExecContext() = default;

  CostCounters& counters() { return counters_; }
  const CostCounters& counters() const { return counters_; }

  /// Memory available to sorts before they are charged external passes.
  int64_t memory_budget_bytes() const { return memory_budget_bytes_; }
  void set_memory_budget_bytes(int64_t b) { memory_budget_bytes_ = b; }

  /// Attaches a cooperative cancellation token. Operators and drivers call
  /// CheckCancelled() at coarse-grained checkpoints (page boundaries,
  /// morsel claims, pump quanta) and unwind with the returned Status.
  void set_cancel_token(CancelTokenPtr token) {
    cancel_token_ = std::move(token);
  }
  const CancelTokenPtr& cancel_token() const { return cancel_token_; }

  /// OK when no token is attached or the token is live; otherwise the
  /// Cancelled / DeadlineExceeded status the query must unwind with.
  Status CheckCancelled() const {
    return cancel_token_ == nullptr ? Status::OK() : cancel_token_->Check();
  }

  /// Attaches the per-query memory governor. One tracker is shared by every
  /// worker context of a query; a null tracker (the default) means no
  /// governance and zero accounting overhead.
  void set_memory_tracker(std::shared_ptr<MemoryTracker> tracker) {
    memory_tracker_ = std::move(tracker);
  }
  const std::shared_ptr<MemoryTracker>& memory_tracker() const {
    return memory_tracker_;
  }

  /// Charges retained bytes (hash-table rows, spooled tuples, partial
  /// aggregates) against the query's memory limit. OK when untracked; on
  /// breach returns kResourceExhausted and the caller must not retain the
  /// allocation.
  Status ChargeMemory(int64_t bytes) {
    return memory_tracker_ == nullptr ? Status::OK()
                                      : memory_tracker_->Charge(bytes);
  }

  /// Returns bytes previously charged with ChargeMemory.
  void ReleaseMemory(int64_t bytes) {
    if (memory_tracker_ != nullptr) memory_tracker_->Release(bytes);
  }

  /// Sets aside headroom against the limit without moving the peak; see
  /// MemoryTracker::Reserve. OK when untracked.
  Status ReserveMemory(int64_t bytes) {
    return memory_tracker_ == nullptr ? Status::OK()
                                      : memory_tracker_->Reserve(bytes);
  }

  /// Converts reserved headroom into consumption (peak-visible).
  void CommitReservedMemory(int64_t bytes) {
    if (memory_tracker_ != nullptr) memory_tracker_->CommitReserved(bytes);
  }

  /// Refunds reserved-but-uncommitted headroom.
  void ReleaseReservedMemory(int64_t bytes) {
    if (memory_tracker_ != nullptr) memory_tracker_->ReleaseReserved(bytes);
  }

  /// Attaches the spill area this query may degrade to under memory
  /// pressure. Null (the default) or a disabled manager means a breach
  /// stays a hard kResourceExhausted failure.
  void set_spill_manager(std::shared_ptr<SpillManager> mgr) {
    spill_manager_ = std::move(mgr);
  }
  const std::shared_ptr<SpillManager>& spill_manager() const {
    return spill_manager_;
  }

  /// True when operators may spill: a usable spill area is attached AND the
  /// query is actually governed (spilling exists to satisfy the memory
  /// governor; ungoverned queries never need it). Defined in
  /// exec_context.cc to keep SpillManager a forward declaration here.
  bool spill_enabled() const;

  void BindFilterSet(const std::string& id,
                     std::shared_ptr<FilterSetBinding> binding) {
    filter_sets_[id] = std::move(binding);
  }
  void UnbindFilterSet(const std::string& id) { filter_sets_.erase(id); }

  StatusOr<std::shared_ptr<FilterSetBinding>> GetFilterSet(
      const std::string& id) const {
    auto it = filter_sets_.find(id);
    if (it == filter_sets_.end()) {
      return Status::Internal("filter set not bound: " + id);
    }
    return it->second;
  }

  /// Returns a process-unique id for a new filter-set binding.
  std::string NextFilterSetId() {
    return "filter_set_" + std::to_string(next_filter_set_id_++);
  }

  /// Rows per execution batch on the vectorized path. > 0 makes drivers and
  /// batch-capable operators pull RowBatches through Operator::NextBatch
  /// (row-only operators participate via the built-in adapter); <= 0 keeps
  /// the classic row-at-a-time Volcano loop. Results and merged counters
  /// are byte-identical either way.
  int64_t batch_size() const { return batch_size_; }
  void set_batch_size(int64_t n) { batch_size_ = n; }

  /// Worker pool parallel execution should run on. Null (the default) makes
  /// ParallelExecutor spin up a dedicated pool per Run; the serving layer
  /// points every query at its one shared pool.
  ThreadPool* shared_pool() const { return shared_pool_; }
  void set_shared_pool(ThreadPool* pool) { shared_pool_ = pool; }

  /// Per-query runtime cardinality ledger, shared by every worker context
  /// and surviving re-optimization restarts. Null disables instrumentation.
  const std::shared_ptr<CardinalityFeedback>& cardinality_feedback() const {
    return cardinality_feedback_;
  }
  void set_cardinality_feedback(std::shared_ptr<CardinalityFeedback> f) {
    cardinality_feedback_ = std::move(f);
  }

  /// Shared liveness heartbeat for the stuck-query watchdog. Producers bump
  /// it at coarse checkpoints (pump quanta, staged rows, spill frames); the
  /// watchdog cancels a query whose heartbeat stops advancing. Null (the
  /// default) disables publication at zero cost.
  void set_progress_heartbeat(std::shared_ptr<std::atomic<int64_t>> hb) {
    progress_heartbeat_ = std::move(hb);
  }
  const std::shared_ptr<std::atomic<int64_t>>& progress_heartbeat() const {
    return progress_heartbeat_;
  }

  /// Publishes `amount` units of forward progress (rows, batches, or spill
  /// bytes — the watchdog only cares that the value moves).
  void NoteProgress(int64_t amount) {
    if (progress_heartbeat_ != nullptr) {
      progress_heartbeat_->fetch_add(amount, std::memory_order_relaxed);
    }
  }

  /// Q-error above which an annotated pipeline breaker aborts the attempt
  /// with kReoptimizeRequested; <= 0 disables triggering (observations are
  /// still recorded).
  double reoptimize_qerror_threshold() const {
    return reoptimize_qerror_threshold_;
  }
  void set_reoptimize_qerror_threshold(double t) {
    reoptimize_qerror_threshold_ = t;
  }

  /// Records one breaker observation into the ledger (no-op without one)
  /// and decides the re-optimization trigger. The decision is value-based —
  /// (threshold, exactness, q-error, suppression) only — so every worker of
  /// a shared build computes the same answer from the same totals and the
  /// whole gang unwinds consistently. Returns kReoptimizeRequested when the
  /// attempt should restart, OK otherwise. The status message starts with
  /// "<site>: ", which the server's reason-label sanitizer truncates to the
  /// metric label.
  Status RecordCardinality(const std::string& key, const std::string& site,
                           double estimated, double actual, bool exact,
                           bool can_trigger);

  /// Copies execution *configuration* (cancellation, tracker, spill, memory
  /// budget, batch size, pool, feedback ledger, re-opt threshold) from a
  /// prototype context — everything except counters and filter-set
  /// bindings, which stay per-context. Worker contexts and fallback paths
  /// are stamped from one prototype this way.
  void InheritConfig(const ExecContext& proto) {
    cancel_token_ = proto.cancel_token_;
    memory_tracker_ = proto.memory_tracker_;
    spill_manager_ = proto.spill_manager_;
    memory_budget_bytes_ = proto.memory_budget_bytes_;
    batch_size_ = proto.batch_size_;
    shared_pool_ = proto.shared_pool_;
    cardinality_feedback_ = proto.cardinality_feedback_;
    reoptimize_qerror_threshold_ = proto.reoptimize_qerror_threshold_;
    progress_heartbeat_ = proto.progress_heartbeat_;
  }

 private:
  CostCounters counters_;
  CancelTokenPtr cancel_token_;
  std::shared_ptr<MemoryTracker> memory_tracker_;
  std::shared_ptr<SpillManager> spill_manager_;
  int64_t memory_budget_bytes_ = 4 * 1024 * 1024;
  int64_t batch_size_ = 0;
  ThreadPool* shared_pool_ = nullptr;
  std::shared_ptr<CardinalityFeedback> cardinality_feedback_;
  double reoptimize_qerror_threshold_ = 0.0;
  std::shared_ptr<std::atomic<int64_t>> progress_heartbeat_;
  std::map<std::string, std::shared_ptr<FilterSetBinding>> filter_sets_;
  int64_t next_filter_set_id_ = 0;
};

/// Coalesces MemoryTracker charges for a tight batch loop: instead of one
/// atomic Charge per row, Take() serves small charges from a local
/// reservation refilled kChunkBytes at a time. Correctness contract with
/// the spill-engagement paths that key off an exact breach point:
///
///   - when a chunk refill fails, Take() retries the *exact* remainder, so
///     a genuine breach surfaces at precisely the cumulative byte count at
///     which un-coalesced charging would have breached;
///   - on breach the unused reservation is refunded and coalescing is
///     permanently disabled (the caller is about to hand accounting to a
///     spill path that releases/charges exact byte counts);
///   - tracked peak never exceeds the limit (Charge rolls back on breach),
///     so `peak <= limit` invariants keep holding.
///
/// The tracker holds caller-consumed bytes + headroom(); callers that keep
/// their own charged-byte ledgers must count only what they Take().
class BatchReserve {
 public:
  static constexpr int64_t kChunkBytes = 16 * 1024;

  /// Consumes `bytes` from the reservation, refilling from `ctx` as needed.
  /// Reservations count against the limit but not the peak, so the peak
  /// stays the same tight high-water mark tuple-at-a-time execution
  /// records. On a reservation breach the headroom is refunded and the
  /// charge retried exactly (and chunking stays off from then on), so a
  /// breach surfaces at precisely the cumulative byte count where the row
  /// path would fail.
  Status Take(ExecContext* ctx, int64_t bytes) {
    if (!chunked_) return ctx->ChargeMemory(bytes);
    if (reserve_left_ < bytes) {
      const int64_t need = bytes - reserve_left_;
      const int64_t want = need > kChunkBytes ? need : kChunkBytes;
      if (!ctx->ReserveMemory(want).ok()) {
        ReleaseHeadroom(ctx);
        chunked_ = false;
        return ctx->ChargeMemory(bytes);
      }
      reserve_left_ += want;
    }
    reserve_left_ -= bytes;
    ctx->CommitReservedMemory(bytes);
    return Status::OK();
  }

  /// Refunds the unused reservation (end of input, Close, or breach).
  void ReleaseHeadroom(ExecContext* ctx) {
    if (reserve_left_ > 0) {
      ctx->ReleaseReservedMemory(reserve_left_);
      reserve_left_ = 0;
    }
  }

  int64_t headroom() const { return reserve_left_; }

 private:
  int64_t reserve_left_ = 0;
  bool chunked_ = true;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_EXEC_CONTEXT_H_
