#include "src/exec/result_sink.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/failpoint.h"

namespace magicdb {

namespace {
// Poll period for consumer-side waits: long enough to be free, short
// enough that a deadline firing while blocked surfaces promptly (the same
// bound the admission controller uses).
constexpr std::chrono::milliseconds kWaitTick{2};
}  // namespace

ResultSink::ResultSink(int64_t high_water_rows)
    : high_water_rows_(high_water_rows < 1 ? 1 : high_water_rows) {}

bool ResultSink::ReserveOrPark(std::function<void()> resume) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // While draining, capacity is unbounded on purpose: the consumer is
    // discarding rows and only wants the producer to reach Finish.
    if (draining_ || static_cast<int64_t>(rows_.size()) < high_water_rows_) {
      return true;
    }
    parked_resume_ = std::move(resume);
    ++producer_parks_;
  }
  // Delay-injection site for the park/resume handoff: an injected sleep
  // here lands between publishing the resume closure and the producer's
  // return, the window a racing Fetch can re-submit the producer in.
  MAGICDB_FAILPOINT_HIT("server.sink.park");
  return false;
}

Status ResultSink::Push(std::vector<Tuple> batch) {
  if (batch.empty()) return Status::OK();
  if (tracker_ != nullptr) {
    int64_t batch_bytes = 0;
    for (const Tuple& t : batch) batch_bytes += TupleByteWidth(t);
    MAGICDB_RETURN_IF_ERROR(tracker_->Charge(batch_bytes));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    total_rows_pushed_ += static_cast<int64_t>(batch.size());
    for (Tuple& t : batch) rows_.push_back(std::move(t));
    if (static_cast<int64_t>(rows_.size()) > peak_queued_rows_) {
      peak_queued_rows_ = static_cast<int64_t>(rows_.size());
    }
  }
  consumer_cv_.notify_all();
  return Status::OK();
}

void ResultSink::Finish(Status status) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_) return;
    finished_ = true;
    final_status_ = std::move(status);
  }
  consumer_cv_.notify_all();
}

StatusOr<std::vector<Tuple>> ResultSink::Fetch(int64_t max_rows,
                                               const CancelToken* token) {
  std::function<void()> resume;
  StatusOr<std::vector<Tuple>> result = std::vector<Tuple>{};
  {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      // The consumer's own deadline/cancel outranks buffered rows: a fired
      // token must surface at this Fetch, not after the buffer drains.
      if (token != nullptr) {
        Status s = token->Check();
        if (!s.ok()) return s;
      }
      if (!rows_.empty()) {
        std::vector<Tuple>& batch = *result;
        const int64_t n =
            std::min<int64_t>(max_rows, static_cast<int64_t>(rows_.size()));
        batch.reserve(static_cast<size_t>(n));
        int64_t popped_bytes = 0;
        for (int64_t i = 0; i < n; ++i) {
          if (tracker_ != nullptr) popped_bytes += TupleByteWidth(rows_.front());
          batch.push_back(std::move(rows_.front()));
          rows_.pop_front();
        }
        if (tracker_ != nullptr) tracker_->Release(popped_bytes);
        if (parked_resume_ != nullptr &&
            static_cast<int64_t>(rows_.size()) < high_water_rows_) {
          resume = std::move(parked_resume_);
          parked_resume_ = nullptr;
        }
        break;
      }
      if (finished_) {
        // Buffer drained: report the terminal status (an empty OK batch is
        // the end-of-stream marker).
        if (!final_status_.ok()) return final_status_;
        break;
      }
      consumer_cv_.wait_for(lock, kWaitTick);
    }
  }
  if (resume != nullptr) resume();
  return result;
}

void ResultSink::Drain() {
  while (true) {
    std::function<void()> resume;
    {
      std::unique_lock<std::mutex> lock(mu_);
      draining_ = true;
      if (tracker_ != nullptr && !rows_.empty()) {
        int64_t discarded_bytes = 0;
        for (const Tuple& t : rows_) discarded_bytes += TupleByteWidth(t);
        tracker_->Release(discarded_bytes);
      }
      rows_.clear();
      if (finished_) return;
      if (parked_resume_ != nullptr) {
        resume = std::move(parked_resume_);
        parked_resume_ = nullptr;
      } else {
        consumer_cv_.wait_for(lock, kWaitTick);
        if (finished_) return;
      }
    }
    if (resume != nullptr) resume();
  }
}

bool ResultSink::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

bool ResultSink::producer_parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_resume_ != nullptr;
}

Status ResultSink::final_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return final_status_;
}

int64_t ResultSink::peak_queued_rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_queued_rows_;
}

int64_t ResultSink::total_rows_pushed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_rows_pushed_;
}

int64_t ResultSink::producer_parks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return producer_parks_;
}

}  // namespace magicdb
