#include "src/exec/function_ops.h"

#include "src/common/logging.h"

namespace magicdb {

namespace {
std::vector<int> Identity(size_t n) {
  std::vector<int> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<int>(i);
  return v;
}
}  // namespace

// ----- FunctionProbeJoinOp -----

FunctionProbeJoinOp::FunctionProbeJoinOp(OpPtr outer,
                                         const TableFunction* function,
                                         std::vector<int> outer_arg_indexes,
                                         ExprPtr residual, bool memoize)
    : Operator(outer->schema().Concat(
          function->RelationSchema().WithQualifier(function->name()))),
      outer_(std::move(outer)),
      function_(function),
      outer_arg_indexes_(std::move(outer_arg_indexes)),
      residual_(std::move(residual)),
      memoize_(memoize) {
  MAGICDB_CHECK(static_cast<int>(outer_arg_indexes_.size()) ==
                function_->arg_schema().num_columns());
}

Status FunctionProbeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  memo_.clear();
  have_outer_ = false;
  cache_hits_ = 0;
  result_pos_ = 0;
  return outer_->Open(ctx);
}

Status FunctionProbeJoinOp::Next(Tuple* out, bool* eof) {
  const std::vector<int> arg_identity = Identity(outer_arg_indexes_.size());
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      Tuple args = ProjectTuple(current_outer_, outer_arg_indexes_);
      current_results_.clear();
      result_pos_ = 0;

      const std::vector<Tuple>* cached = nullptr;
      uint64_t h = 0;
      if (memoize_) {
        ctx_->counters().hash_operations += 1;
        h = HashTupleColumns(args, arg_identity);
        auto it = memo_.find(h);
        if (it != memo_.end()) {
          for (const auto& [key, rows] : it->second) {
            if (CompareTuples(key, args) == 0) {
              cached = &rows;
              break;
            }
          }
        }
      }
      if (cached != nullptr) {
        ++cache_hits_;
        current_results_ = *cached;
      } else {
        ctx_->counters().function_invocations += 1;
        std::vector<Tuple> results;
        MAGICDB_RETURN_IF_ERROR(function_->Invoke(args, &results));
        current_results_.reserve(results.size());
        for (Tuple& r : results) {
          current_results_.push_back(ConcatTuples(args, r));
        }
        if (memoize_) {
          memo_[h].emplace_back(std::move(args), current_results_);
        }
      }
    }
    while (result_pos_ < current_results_.size()) {
      const Tuple& fn_row = current_results_[result_pos_++];
      ctx_->counters().tuples_processed += 1;
      Tuple joined = ConcatTuples(current_outer_, fn_row);
      if (residual_) {
        ctx_->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      *out = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    have_outer_ = false;
  }
}

Status FunctionProbeJoinOp::Close() {
  memo_.clear();
  return outer_->Close();
}

std::string FunctionProbeJoinOp::Describe() const {
  return "FunctionProbeJoin(" + function_->name() +
         (memoize_ ? ", memoized" : "") + ")";
}

// ----- FunctionCallOp -----

FunctionCallOp::FunctionCallOp(OpPtr args_child, const TableFunction* function)
    : Operator(function->RelationSchema().WithQualifier(function->name())),
      args_child_(std::move(args_child)),
      function_(function) {
  MAGICDB_CHECK(args_child_->schema().num_columns() ==
                function_->arg_schema().num_columns());
}

Status FunctionCallOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  current_rows_.clear();
  pos_ = 0;
  child_eof_ = false;
  return args_child_->Open(ctx);
}

Status FunctionCallOp::Next(Tuple* out, bool* eof) {
  while (true) {
    if (pos_ < current_rows_.size()) {
      ctx_->counters().tuples_processed += 1;
      *out = current_rows_[pos_++];
      *eof = false;
      return Status::OK();
    }
    if (child_eof_) {
      *eof = true;
      return Status::OK();
    }
    Tuple args;
    bool eof_child = false;
    MAGICDB_RETURN_IF_ERROR(args_child_->Next(&args, &eof_child));
    if (eof_child) {
      child_eof_ = true;
      continue;
    }
    ctx_->counters().function_invocations += 1;
    std::vector<Tuple> results;
    MAGICDB_RETURN_IF_ERROR(function_->Invoke(args, &results));
    current_rows_.clear();
    current_rows_.reserve(results.size());
    for (Tuple& r : results) {
      current_rows_.push_back(ConcatTuples(args, r));
    }
    pos_ = 0;
  }
}

Status FunctionCallOp::Close() { return args_child_->Close(); }

std::string FunctionCallOp::Describe() const {
  return "FunctionCall(" + function_->name() + ")";
}

}  // namespace magicdb
