#ifndef MAGICDB_EXEC_CARDINALITY_FEEDBACK_H_
#define MAGICDB_EXEC_CARDINALITY_FEEDBACK_H_

#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/stats/feedback_store.h"

namespace magicdb {

/// Per-query ledger of runtime cardinality observations. One instance is
/// shared by every ExecContext of a query (all workers, all execution
/// attempts) and survives re-optimization restarts, so the first — i.e.
/// original-estimate — observation per key is kept: re-executions after a
/// re-plan see corrected estimates and must not overwrite the measurement
/// that justified the restart. Thread-safe.
///
/// Suppression: once the driver re-plans because of a key, it suppresses
/// that key so the re-executed attempt cannot trigger on it again. The
/// driver only mutates the suppressed set *between* attempts — within one
/// attempt every worker sees the same stable set, which keeps the
/// value-based trigger decision identical across workers at any DoP.
class CardinalityFeedback {
 public:
  /// Records `obs`; first observation per key wins.
  void Record(const CardinalityObservation& obs);

  bool IsSuppressed(const std::string& key) const;
  void SuppressKey(const std::string& key);

  std::vector<CardinalityObservation> Snapshot() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<CardinalityObservation> observations_;
  std::unordered_map<std::string, size_t> by_key_;
  std::unordered_set<std::string> suppressed_;
};

}  // namespace magicdb

#endif  // MAGICDB_EXEC_CARDINALITY_FEEDBACK_H_
