#include "src/exec/join_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/failpoint.h"
#include "src/common/logging.h"

namespace magicdb {

// ----- NestedLoopsJoinOp -----

NestedLoopsJoinOp::NestedLoopsJoinOp(OpPtr outer, OpPtr inner,
                                     ExprPtr predicate)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)) {}

Status NestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_outer_ = false;
  inner_open_ = false;
  return outer_->Open(ctx);
}

Status NestedLoopsJoinOp::Next(Tuple* out, bool* eof) {
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (inner_open_) {
        MAGICDB_RETURN_IF_ERROR(inner_->Close());
      }
      MAGICDB_RETURN_IF_ERROR(inner_->Open(ctx_));
      inner_open_ = true;
    }
    Tuple inner_tuple;
    bool inner_eof = false;
    MAGICDB_RETURN_IF_ERROR(inner_->Next(&inner_tuple, &inner_eof));
    if (inner_eof) {
      have_outer_ = false;
      continue;
    }
    Tuple joined = ConcatTuples(current_outer_, inner_tuple);
    ctx_->counters().tuples_processed += 1;
    if (predicate_) {
      ctx_->counters().exprs_evaluated += 1;
      if (!EvalPredicate(*predicate_, joined)) continue;
    }
    *out = std::move(joined);
    *eof = false;
    return Status::OK();
  }
}

Status NestedLoopsJoinOp::Close() {
  if (inner_open_) {
    MAGICDB_RETURN_IF_ERROR(inner_->Close());
    inner_open_ = false;
  }
  return outer_->Close();
}

std::string NestedLoopsJoinOp::Describe() const {
  return "NestedLoopsJoin(" +
         (predicate_ ? predicate_->ToString() : std::string("true")) + ")";
}

// ----- IndexNestedLoopsJoinOp -----

IndexNestedLoopsJoinOp::IndexNestedLoopsJoinOp(
    OpPtr outer, const Table* inner_table, const HashIndex* index,
    std::vector<int> outer_key_indexes, ExprPtr residual, bool remote_probe,
    const std::string& inner_alias)
    : Operator(outer->schema().Concat(
          inner_alias.empty() ? inner_table->schema()
                              : inner_table->schema().WithQualifier(
                                    inner_alias))),
      outer_(std::move(outer)),
      inner_table_(inner_table),
      index_(index),
      outer_key_indexes_(std::move(outer_key_indexes)),
      residual_(std::move(residual)),
      remote_probe_(remote_probe) {
  MAGICDB_CHECK(index_ != nullptr);
  MAGICDB_CHECK(index_->columns().size() == outer_key_indexes_.size());
}

Status IndexNestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_outer_ = false;
  current_matches_.clear();
  match_pos_ = 0;
  return outer_->Open(ctx);
}

Status IndexNestedLoopsJoinOp::Next(Tuple* out, bool* eof) {
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (TupleHasNullAt(current_outer_, outer_key_indexes_)) {
        current_matches_.clear();  // NULL keys never join
        match_pos_ = 0;
        continue;
      }
      Tuple key = ProjectTuple(current_outer_, outer_key_indexes_);
      // One probe: a hash operation plus one page to reach the bucket.
      ctx_->counters().hash_operations += 1;
      ctx_->counters().pages_read += 1;
      if (remote_probe_) {
        // Fetch-matches round trip: request carries the key, response the
        // matching tuples (charged below per match).
        ctx_->counters().messages_sent += 2;
        ctx_->counters().bytes_shipped += TupleByteWidth(key);
      }
      current_matches_ = index_->Lookup(key);
      match_pos_ = 0;
    }
    while (match_pos_ < current_matches_.size()) {
      const Tuple& inner_row =
          inner_table_->row(current_matches_[match_pos_++]);
      // Unclustered index: each matching row costs one page fetch.
      ctx_->counters().pages_read += 1;
      ctx_->counters().tuples_processed += 1;
      if (remote_probe_) {
        ctx_->counters().bytes_shipped += TupleByteWidth(inner_row);
      }
      Tuple joined = ConcatTuples(current_outer_, inner_row);
      if (residual_) {
        ctx_->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      *out = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    have_outer_ = false;
  }
}

Status IndexNestedLoopsJoinOp::Close() { return outer_->Close(); }

std::string IndexNestedLoopsJoinOp::Describe() const {
  return std::string("IndexNestedLoopsJoin(") +
         (remote_probe_ ? "remote, " : "") + "inner=" + inner_table_->name() +
         ")";
}

// ----- HashJoinOp -----

HashJoinOp::HashJoinOp(OpPtr outer, OpPtr inner,
                       std::vector<int> outer_key_indexes,
                       std::vector<int> inner_key_indexes, ExprPtr residual)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_keys_(std::move(outer_key_indexes)),
      inner_keys_(std::move(inner_key_indexes)),
      residual_(std::move(residual)) {
  MAGICDB_CHECK(outer_keys_.size() == inner_keys_.size());
  MAGICDB_CHECK(!outer_keys_.empty());
}

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  build_.clear();
  have_outer_ = false;
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  spilled_ = false;
  spill_passes_ = 1;
  probe_bytes_pending_ = 0;
  charged_bytes_ = 0;
  grace_.reset();
  probe_spilled_ = false;
  probe_rows_seen_ = 0;
  // Build phase over the inner child. In shared (parallel) mode this
  // replica drains only its morsel-driven slice of the build input and
  // stages rows into the partitioned build; FinishStaging synchronizes
  // with the other replicas and assembles the partitions.
  MAGICDB_RETURN_IF_ERROR(inner_->Open(ctx));
  int64_t build_bytes = 0;
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(inner_->Next(&t, &eof));
    if (eof) break;
    if (TupleHasNullAt(t, inner_keys_)) continue;  // NULL keys never join
    MAGICDB_FAILPOINT("exec.hash_join.build");
    ctx->counters().hash_operations += 1;
    const uint64_t hash = HashTupleColumns(t, inner_keys_);
    if (grace_ != nullptr) {
      // Already out of core: every remaining build row goes straight to
      // its Grace partition, no memory charge.
      MAGICDB_RETURN_IF_ERROR(grace_->AddBuildRow(hash, t, ctx));
      continue;
    }
    // Retained build row: governed memory, whether staged into the shared
    // partitioned build or kept in this replica's private table.
    const int64_t row_bytes = TupleByteWidth(t);
    Status charge = ctx->ChargeMemory(row_bytes);
    if (!charge.ok()) {
      // A governed breach turns into out-of-core execution when a spill
      // area is attached (sequential mode only; parallel replicas fail the
      // gang and the service retries sequentially with spilling).
      if (charge.code() != StatusCode::kResourceExhausted ||
          !ctx->spill_enabled() || shared_build_ != nullptr) {
        return charge;
      }
      grace_ = std::make_unique<GraceHashJoin>(ctx->spill_manager(),
                                               outer_keys_, inner_keys_,
                                               residual_.get());
      MAGICDB_RETURN_IF_ERROR(
          grace_->BeginBuildSpill(ctx, &build_, &charged_bytes_));
      build_bytes = 0;
      MAGICDB_RETURN_IF_ERROR(grace_->AddBuildRow(hash, t, ctx));
      continue;
    }
    charged_bytes_ += row_bytes;
    if (shared_build_ != nullptr) {
      shared_build_->Stage(worker_, shared_inner_scan_->last_global_row(),
                           hash, std::move(t));
      continue;
    }
    build_bytes += row_bytes;
    build_[hash].push_back(std::move(t));
  }
  MAGICDB_RETURN_IF_ERROR(inner_->Close());
  if (grace_ != nullptr) {
    MAGICDB_RETURN_IF_ERROR(grace_->FinishBuild(ctx));
    return outer_->Open(ctx);
  }
  if (shared_build_ != nullptr) {
    // Barrier + partition assembly; global spill accounting happens inside
    // (charged once, not once per replica).
    MAGICDB_RETURN_IF_ERROR(shared_build_->FinishStaging(worker_, ctx));
    spilled_ = shared_build_->spilled();
    return outer_->Open(ctx);
  }
  // Build side over budget: charge the Grace partitioning passes the spill
  // subsystem would take to shrink each partition under budget. The build
  // input pays now; the probe input pays as it streams (see Next).
  if (build_bytes > ctx->memory_budget_bytes()) {
    spilled_ = true;
    spill_passes_ = SpillPasses(static_cast<double>(build_bytes),
                                static_cast<double>(ctx->memory_budget_bytes()));
    const int64_t build_pages =
        (build_bytes + CostConstants::kPageSizeBytes - 1) /
        CostConstants::kPageSizeBytes;
    ctx->counters().pages_written += build_pages * spill_passes_;
    ctx->counters().pages_read += build_pages * spill_passes_;
  }
  return outer_->Open(ctx);
}

Status HashJoinOp::DrainProbeToSpill() {
  while (true) {
    Tuple t;
    bool outer_eof = false;
    MAGICDB_RETURN_IF_ERROR(outer_->Next(&t, &outer_eof));
    if (outer_eof) break;
    if (++probe_rows_seen_ % 1024 == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
    }
    if (TupleHasNullAt(t, outer_keys_)) continue;  // NULL keys never join
    ctx_->counters().hash_operations += 1;
    const uint64_t hash = HashTupleColumns(t, outer_keys_);
    MAGICDB_RETURN_IF_ERROR(grace_->AddProbeRow(hash, t, ctx_));
  }
  return grace_->FinishProbe(ctx_);
}

Status HashJoinOp::Next(Tuple* out, bool* eof) {
  if (grace_ != nullptr) {
    if (!probe_spilled_) {
      MAGICDB_RETURN_IF_ERROR(DrainProbeToSpill());
      probe_spilled_ = true;
    }
    return grace_->NextOutput(out, eof, ctx_);
  }
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (spilled_) {
        if (shared_build_ != nullptr) {
          // Global byte stream: exact floor semantics at any DoP.
          shared_build_->ChargeProbeBytes(ctx_,
                                          TupleByteWidth(current_outer_));
        } else {
          probe_bytes_pending_ += TupleByteWidth(current_outer_);
          while (probe_bytes_pending_ >= CostConstants::kPageSizeBytes) {
            probe_bytes_pending_ -= CostConstants::kPageSizeBytes;
            ctx_->counters().pages_written += spill_passes_;
            ctx_->counters().pages_read += spill_passes_;
          }
        }
      }
      if (TupleHasNullAt(current_outer_, outer_keys_)) {
        current_bucket_ = nullptr;  // NULL keys never join
        bucket_pos_ = 0;
        continue;
      }
      ctx_->counters().hash_operations += 1;
      const uint64_t hash = HashTupleColumns(current_outer_, outer_keys_);
      if (shared_build_ != nullptr) {
        current_bucket_ = shared_build_->Probe(hash);
      } else {
        auto it = build_.find(hash);
        current_bucket_ = it == build_.end() ? nullptr : &it->second;
      }
      bucket_pos_ = 0;
    }
    while (current_bucket_ != nullptr &&
           bucket_pos_ < current_bucket_->size()) {
      const Tuple& inner_row = (*current_bucket_)[bucket_pos_++];
      // Verify key equality (hash collisions).
      if (CompareTupleColumns(current_outer_, inner_row, outer_keys_,
                              inner_keys_) != 0) {
        continue;
      }
      ctx_->counters().tuples_processed += 1;
      Tuple joined = ConcatTuples(current_outer_, inner_row);
      if (residual_) {
        ctx_->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      *out = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    have_outer_ = false;
  }
}

Status HashJoinOp::Close() {
  build_.clear();
  grace_.reset();
  if (ctx_ != nullptr) {
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  return outer_->Close();
}

std::string HashJoinOp::Describe() const {
  std::string s = "HashJoin(keys=[";
  for (size_t i = 0; i < outer_keys_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(outer_keys_[i]);
  }
  s += "]=[";
  for (size_t i = 0; i < inner_keys_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(inner_keys_[i]);
  }
  s += "]";
  if (residual_) s += ", residual=" + residual_->ToString();
  return s + ")";
}

// ----- SortMergeJoinOp -----

SortMergeJoinOp::SortMergeJoinOp(OpPtr outer, OpPtr inner,
                                 std::vector<int> outer_key_indexes,
                                 std::vector<int> inner_key_indexes,
                                 ExprPtr residual, bool outer_presorted)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_keys_(std::move(outer_key_indexes)),
      inner_keys_(std::move(inner_key_indexes)),
      residual_(std::move(residual)),
      outer_presorted_(outer_presorted) {
  MAGICDB_CHECK(outer_keys_.size() == inner_keys_.size());
  MAGICDB_CHECK(!outer_keys_.empty());
}

Status SortMergeJoinOp::DrainSorted(Operator* child,
                                    const std::vector<int>& keys,
                                    ExecContext* ctx, std::vector<Tuple>* out,
                                    bool presorted) {
  MAGICDB_RETURN_IF_ERROR(child->Open(ctx));
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(child->Next(&t, &eof));
    if (eof) break;
    if (TupleHasNullAt(t, keys)) continue;  // NULL keys never join
    out->push_back(std::move(t));
  }
  MAGICDB_RETURN_IF_ERROR(child->Close());
  if (presorted) {
    // Trust but verify: a misdeclared order is a planner bug.
    for (size_t i = 1; i < out->size(); ++i) {
      MAGICDB_CHECK(CompareTupleColumns((*out)[i - 1], (*out)[i], keys,
                                        keys) <= 0);
    }
    return Status::OK();
  }
  const int64_t n = static_cast<int64_t>(out->size());
  std::sort(out->begin(), out->end(), [&](const Tuple& a, const Tuple& b) {
    return CompareTupleColumns(a, b, keys, keys) < 0;
  });
  if (n > 1) {
    ctx->counters().exprs_evaluated +=
        static_cast<int64_t>(static_cast<double>(n) *
                             std::ceil(std::log2(static_cast<double>(n))));
  }
  return Status::OK();
}

void SortMergeJoinOp::AdvanceGroups() {
  // Advances li_/ri_ to the next pair of groups with equal keys and sets
  // group boundaries; sets in_group_ accordingly.
  while (li_ < left_.size() && ri_ < right_.size()) {
    const int c = CompareTupleColumns(left_[li_], right_[ri_], outer_keys_,
                                      inner_keys_);
    if (c < 0) {
      ++li_;
    } else if (c > 0) {
      ++ri_;
    } else {
      lg_end_ = li_ + 1;
      while (lg_end_ < left_.size() &&
             CompareTupleColumns(left_[lg_end_], left_[li_], outer_keys_,
                                 outer_keys_) == 0) {
        ++lg_end_;
      }
      rg_end_ = ri_ + 1;
      while (rg_end_ < right_.size() &&
             CompareTupleColumns(right_[rg_end_], right_[ri_], inner_keys_,
                                 inner_keys_) == 0) {
        ++rg_end_;
      }
      lpos_ = li_;
      rpos_ = ri_;
      in_group_ = true;
      return;
    }
  }
  in_group_ = false;
}

Status SortMergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_.clear();
  right_.clear();
  li_ = ri_ = lg_end_ = rg_end_ = lpos_ = rpos_ = 0;
  in_group_ = false;
  MAGICDB_RETURN_IF_ERROR(DrainSorted(outer_.get(), outer_keys_, ctx, &left_,
                                      outer_presorted_));
  MAGICDB_RETURN_IF_ERROR(
      DrainSorted(inner_.get(), inner_keys_, ctx, &right_, false));
  AdvanceGroups();
  return Status::OK();
}

Status SortMergeJoinOp::Next(Tuple* out, bool* eof) {
  while (in_group_) {
    if (rpos_ >= rg_end_) {
      rpos_ = ri_;
      ++lpos_;
    }
    if (lpos_ >= lg_end_) {
      li_ = lg_end_;
      ri_ = rg_end_;
      AdvanceGroups();
      continue;
    }
    const Tuple& l = left_[lpos_];
    const Tuple& r = right_[rpos_++];
    ctx_->counters().tuples_processed += 1;
    Tuple joined = ConcatTuples(l, r);
    if (residual_) {
      ctx_->counters().exprs_evaluated += 1;
      if (!EvalPredicate(*residual_, joined)) continue;
    }
    *out = std::move(joined);
    *eof = false;
    return Status::OK();
  }
  *eof = true;
  return Status::OK();
}

Status SortMergeJoinOp::Close() {
  left_.clear();
  right_.clear();
  return Status::OK();
}

std::string SortMergeJoinOp::Describe() const {
  return "SortMergeJoin(keys=" + std::to_string(outer_keys_.size()) +
         (outer_presorted_ ? ", outer presorted" : "") + ")";
}

}  // namespace magicdb
