#include "src/exec/join_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/failpoint.h"
#include "src/common/logging.h"

namespace magicdb {

// ----- NestedLoopsJoinOp -----

NestedLoopsJoinOp::NestedLoopsJoinOp(OpPtr outer, OpPtr inner,
                                     ExprPtr predicate)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      predicate_(std::move(predicate)) {}

Status NestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_outer_ = false;
  inner_open_ = false;
  return outer_->Open(ctx);
}

Status NestedLoopsJoinOp::Next(Tuple* out, bool* eof) {
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (inner_open_) {
        MAGICDB_RETURN_IF_ERROR(inner_->Close());
      }
      MAGICDB_RETURN_IF_ERROR(inner_->Open(ctx_));
      inner_open_ = true;
    }
    Tuple inner_tuple;
    bool inner_eof = false;
    MAGICDB_RETURN_IF_ERROR(inner_->Next(&inner_tuple, &inner_eof));
    if (inner_eof) {
      have_outer_ = false;
      continue;
    }
    Tuple joined = ConcatTuples(current_outer_, inner_tuple);
    ctx_->counters().tuples_processed += 1;
    if (predicate_) {
      ctx_->counters().exprs_evaluated += 1;
      if (!EvalPredicate(*predicate_, joined)) continue;
    }
    *out = std::move(joined);
    *eof = false;
    return Status::OK();
  }
}

Status NestedLoopsJoinOp::Close() {
  if (inner_open_) {
    MAGICDB_RETURN_IF_ERROR(inner_->Close());
    inner_open_ = false;
  }
  return outer_->Close();
}

std::string NestedLoopsJoinOp::Describe() const {
  return "NestedLoopsJoin(" +
         (predicate_ ? predicate_->ToString() : std::string("true")) + ")";
}

// ----- IndexNestedLoopsJoinOp -----

IndexNestedLoopsJoinOp::IndexNestedLoopsJoinOp(
    OpPtr outer, const Table* inner_table, const HashIndex* index,
    std::vector<int> outer_key_indexes, ExprPtr residual, bool remote_probe,
    const std::string& inner_alias)
    : Operator(outer->schema().Concat(
          inner_alias.empty() ? inner_table->schema()
                              : inner_table->schema().WithQualifier(
                                    inner_alias))),
      outer_(std::move(outer)),
      inner_table_(inner_table),
      index_(index),
      outer_key_indexes_(std::move(outer_key_indexes)),
      residual_(std::move(residual)),
      remote_probe_(remote_probe) {
  MAGICDB_CHECK(index_ != nullptr);
  MAGICDB_CHECK(index_->columns().size() == outer_key_indexes_.size());
}

Status IndexNestedLoopsJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  have_outer_ = false;
  current_matches_.clear();
  match_pos_ = 0;
  return outer_->Open(ctx);
}

Status IndexNestedLoopsJoinOp::Next(Tuple* out, bool* eof) {
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (TupleHasNullAt(current_outer_, outer_key_indexes_)) {
        current_matches_.clear();  // NULL keys never join
        match_pos_ = 0;
        continue;
      }
      Tuple key = ProjectTuple(current_outer_, outer_key_indexes_);
      // One probe: a hash operation plus one page to reach the bucket.
      ctx_->counters().hash_operations += 1;
      ctx_->counters().pages_read += 1;
      if (remote_probe_) {
        // Fetch-matches round trip: request carries the key, response the
        // matching tuples (charged below per match).
        ctx_->counters().messages_sent += 2;
        ctx_->counters().bytes_shipped += TupleByteWidth(key);
      }
      current_matches_ = index_->Lookup(key);
      match_pos_ = 0;
    }
    while (match_pos_ < current_matches_.size()) {
      const Tuple& inner_row =
          inner_table_->row(current_matches_[match_pos_++]);
      // Unclustered index: each matching row costs one page fetch.
      ctx_->counters().pages_read += 1;
      ctx_->counters().tuples_processed += 1;
      if (remote_probe_) {
        ctx_->counters().bytes_shipped += TupleByteWidth(inner_row);
      }
      Tuple joined = ConcatTuples(current_outer_, inner_row);
      if (residual_) {
        ctx_->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      *out = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    have_outer_ = false;
  }
}

Status IndexNestedLoopsJoinOp::Close() { return outer_->Close(); }

std::string IndexNestedLoopsJoinOp::Describe() const {
  return std::string("IndexNestedLoopsJoin(") +
         (remote_probe_ ? "remote, " : "") + "inner=" + inner_table_->name() +
         ")";
}

// ----- HashJoinOp -----

HashJoinOp::HashJoinOp(OpPtr outer, OpPtr inner,
                       std::vector<int> outer_key_indexes,
                       std::vector<int> inner_key_indexes, ExprPtr residual)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_keys_(std::move(outer_key_indexes)),
      inner_keys_(std::move(inner_key_indexes)),
      residual_(std::move(residual)) {
  MAGICDB_CHECK(outer_keys_.size() == inner_keys_.size());
  MAGICDB_CHECK(!outer_keys_.empty());
}

Status HashJoinOp::AddBuildTuple(Tuple t, int64_t stage_pos,
                                 int64_t* build_bytes, bool coalesce_charges) {
  if (TupleHasNullAt(t, inner_keys_)) return Status::OK();  // never joins
  MAGICDB_FAILPOINT("exec.hash_join.build");
  ctx_->counters().hash_operations += 1;
  const uint64_t hash = HashTupleColumns(t, inner_keys_);
  if (grace_ != nullptr) {
    // Already out of core: every remaining build row goes straight to
    // its Grace partition, no memory charge.
    return grace_->AddBuildRow(hash, t, ctx_);
  }
  // Retained build row: governed memory, whether staged into the shared
  // partitioned build or kept in this replica's private table.
  const int64_t row_bytes = TupleByteWidth(t);
  Status charge = coalesce_charges ? build_reserve_.Take(ctx_, row_bytes)
                                   : ctx_->ChargeMemory(row_bytes);
  if (!charge.ok()) {
    // A governed breach turns into out-of-core execution when a spill
    // area is attached (sequential mode only; parallel replicas fail the
    // gang and the service retries sequentially with spilling).
    if (charge.code() != StatusCode::kResourceExhausted ||
        !ctx_->spill_enabled() || shared_build_ != nullptr) {
      return charge;
    }
    grace_ = std::make_unique<GraceHashJoin>(ctx_->spill_manager(),
                                             outer_keys_, inner_keys_,
                                             residual_.get());
    MAGICDB_RETURN_IF_ERROR(
        grace_->BeginBuildSpill(ctx_, &build_, &charged_bytes_));
    *build_bytes = 0;
    return grace_->AddBuildRow(hash, t, ctx_);
  }
  charged_bytes_ += row_bytes;
  if (shared_build_ != nullptr) {
    shared_build_->Stage(worker_, stage_pos, hash, std::move(t));
    return Status::OK();
  }
  *build_bytes += row_bytes;
  build_[hash].push_back(std::move(t));
  return Status::OK();
}

Status HashJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  build_.clear();
  have_outer_ = false;
  current_bucket_ = nullptr;
  bucket_pos_ = 0;
  spilled_ = false;
  spill_passes_ = 1;
  probe_bytes_pending_ = 0;
  charged_bytes_ = 0;
  grace_.reset();
  probe_spilled_ = false;
  probe_rows_seen_ = 0;
  build_reserve_ = BatchReserve();
  probe_batch_exhausted_ = true;
  probe_eof_ = false;
  probe_sel_idx_ = 0;
  // Build phase over the inner child. In shared (parallel) mode this
  // replica drains only its morsel-driven slice of the build input and
  // stages rows into the partitioned build; FinishStaging synchronizes
  // with the other replicas and assembles the partitions.
  MAGICDB_RETURN_IF_ERROR(inner_->Open(ctx));
  int64_t build_bytes = 0;
  // Build-input rows drained by this replica (before the NULL-key skip, so
  // the total matches the scan-output cardinality the optimizer estimated).
  int64_t build_rows = 0;
  if (ctx->batch_size() > 0) {
    // Vectorized build drain: one memory reservation and one cancellation
    // check per batch instead of per row.
    RowBatch in(static_cast<int32_t>(ctx->batch_size()));
    bool ieof = false;
    while (!ieof) {
      MAGICDB_RETURN_IF_ERROR(inner_->NextBatch(&in, &ieof));
      if (shared_build_ != nullptr && in.ActiveRows() > 0 && !in.has_ranks()) {
        return Status::Internal(
            "shared hash-join build requires rank-tagged batches");
      }
      const std::vector<int32_t>* sel =
          in.sel_active() ? &in.selection() : nullptr;
      const int32_t n =
          sel ? static_cast<int32_t>(sel->size()) : in.num_rows();
      Tuple t;
      build_rows += n;
      for (int32_t k = 0; k < n; ++k) {
        const int32_t r = sel ? (*sel)[k] : k;
        in.MoveRowToTuple(r, &t);
        const int64_t stage_pos =
            shared_build_ != nullptr ? in.pos()[static_cast<size_t>(r)] : 0;
        MAGICDB_RETURN_IF_ERROR(AddBuildTuple(std::move(t), stage_pos,
                                              &build_bytes,
                                              /*coalesce_charges=*/true));
      }
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    build_reserve_.ReleaseHeadroom(ctx);
  } else {
    while (true) {
      Tuple t;
      bool eof = false;
      MAGICDB_RETURN_IF_ERROR(inner_->Next(&t, &eof));
      if (eof) break;
      ++build_rows;
      const int64_t stage_pos = shared_build_ != nullptr
                                    ? shared_inner_scan_->last_global_row()
                                    : 0;
      MAGICDB_RETURN_IF_ERROR(AddBuildTuple(std::move(t), stage_pos,
                                            &build_bytes,
                                            /*coalesce_charges=*/false));
    }
  }
  MAGICDB_RETURN_IF_ERROR(inner_->Close());
  // Cardinality feedback: record the observed build-input total and decide
  // the re-optimization trigger before any probe output is produced (every
  // pipeline breaker completes inside Open). The decision is value-based,
  // so in shared mode every replica computes it from the same gang-wide
  // total and unwinds consistently.
  const auto record_build = [&](int64_t actual) -> Status {
    if (feedback_key_.empty()) return Status::OK();
    return ctx->RecordCardinality(feedback_key_, "hash_join_build",
                                  feedback_est_rows_,
                                  static_cast<double>(actual),
                                  /*exact=*/true, feedback_can_trigger_);
  };
  if (grace_ != nullptr) {
    MAGICDB_RETURN_IF_ERROR(grace_->FinishBuild(ctx));
    MAGICDB_RETURN_IF_ERROR(record_build(build_rows));
    return outer_->Open(ctx);
  }
  if (shared_build_ != nullptr) {
    // Contribute this replica's slice before the FinishStaging barrier so
    // every replica reads the complete total afterwards.
    shared_build_->AddBuildRows(build_rows);
    // Barrier + partition assembly; global spill accounting happens inside
    // (charged once, not once per replica).
    MAGICDB_RETURN_IF_ERROR(shared_build_->FinishStaging(worker_, ctx));
    spilled_ = shared_build_->spilled();
    MAGICDB_RETURN_IF_ERROR(record_build(shared_build_->total_build_rows()));
    return outer_->Open(ctx);
  }
  // Build side over budget: charge the Grace partitioning passes the spill
  // subsystem would take to shrink each partition under budget. The build
  // input pays now; the probe input pays as it streams (see Next).
  if (build_bytes > ctx->memory_budget_bytes()) {
    spilled_ = true;
    spill_passes_ = SpillPasses(static_cast<double>(build_bytes),
                                static_cast<double>(ctx->memory_budget_bytes()));
    const int64_t build_pages =
        (build_bytes + CostConstants::kPageSizeBytes - 1) /
        CostConstants::kPageSizeBytes;
    ctx->counters().pages_written += build_pages * spill_passes_;
    ctx->counters().pages_read += build_pages * spill_passes_;
  }
  MAGICDB_RETURN_IF_ERROR(record_build(build_rows));
  return outer_->Open(ctx);
}

Status HashJoinOp::DrainProbeToSpill() {
  while (true) {
    Tuple t;
    bool outer_eof = false;
    MAGICDB_RETURN_IF_ERROR(outer_->Next(&t, &outer_eof));
    if (outer_eof) break;
    if (++probe_rows_seen_ % 1024 == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
    }
    if (TupleHasNullAt(t, outer_keys_)) continue;  // NULL keys never join
    ctx_->counters().hash_operations += 1;
    const uint64_t hash = HashTupleColumns(t, outer_keys_);
    MAGICDB_RETURN_IF_ERROR(grace_->AddProbeRow(hash, t, ctx_));
  }
  return grace_->FinishProbe(ctx_);
}

Status HashJoinOp::Next(Tuple* out, bool* eof) {
  if (grace_ != nullptr) {
    if (!probe_spilled_) {
      MAGICDB_RETURN_IF_ERROR(DrainProbeToSpill());
      probe_spilled_ = true;
    }
    return grace_->NextOutput(out, eof, ctx_);
  }
  while (true) {
    if (!have_outer_) {
      bool outer_eof = false;
      MAGICDB_RETURN_IF_ERROR(outer_->Next(&current_outer_, &outer_eof));
      if (outer_eof) {
        *eof = true;
        return Status::OK();
      }
      have_outer_ = true;
      if (spilled_) {
        if (shared_build_ != nullptr) {
          // Global byte stream: exact floor semantics at any DoP.
          shared_build_->ChargeProbeBytes(ctx_,
                                          TupleByteWidth(current_outer_));
        } else {
          probe_bytes_pending_ += TupleByteWidth(current_outer_);
          while (probe_bytes_pending_ >= CostConstants::kPageSizeBytes) {
            probe_bytes_pending_ -= CostConstants::kPageSizeBytes;
            ctx_->counters().pages_written += spill_passes_;
            ctx_->counters().pages_read += spill_passes_;
          }
        }
      }
      if (TupleHasNullAt(current_outer_, outer_keys_)) {
        current_bucket_ = nullptr;  // NULL keys never join
        bucket_pos_ = 0;
        continue;
      }
      ctx_->counters().hash_operations += 1;
      const uint64_t hash = HashTupleColumns(current_outer_, outer_keys_);
      if (shared_build_ != nullptr) {
        current_bucket_ = shared_build_->Probe(hash);
      } else {
        auto it = build_.find(hash);
        current_bucket_ = it == build_.end() ? nullptr : &it->second;
      }
      bucket_pos_ = 0;
    }
    while (current_bucket_ != nullptr &&
           bucket_pos_ < current_bucket_->size()) {
      const Tuple& inner_row = (*current_bucket_)[bucket_pos_++];
      // Verify key equality (hash collisions).
      if (CompareTupleColumns(current_outer_, inner_row, outer_keys_,
                              inner_keys_) != 0) {
        continue;
      }
      ctx_->counters().tuples_processed += 1;
      Tuple joined = ConcatTuples(current_outer_, inner_row);
      if (residual_) {
        ctx_->counters().exprs_evaluated += 1;
        if (!EvalPredicate(*residual_, joined)) continue;
      }
      *out = std::move(joined);
      *eof = false;
      return Status::OK();
    }
    have_outer_ = false;
  }
}

Status HashJoinOp::NextBatch(RowBatch* out, bool* eof) {
  // The Grace (out-of-core) path already materializes output rows one at a
  // time from spill partitions; the row adapter is the natural fit there.
  if (grace_ != nullptr) return Operator::NextBatch(out, eof);
  out->ResetForWrite(schema_.num_columns());
  *eof = false;
  if (probe_batch_ == nullptr || probe_batch_->capacity() != out->capacity()) {
    probe_batch_ = std::make_unique<RowBatch>(out->capacity());
  }
  while (true) {
    if (probe_batch_exhausted_) {
      if (probe_eof_) {
        *eof = true;
        return Status::OK();
      }
      MAGICDB_RETURN_IF_ERROR(
          outer_->NextBatch(probe_batch_.get(), &probe_eof_));
      probe_batch_exhausted_ = false;
      probe_sel_idx_ = 0;
      have_outer_ = false;
      // Up-front vectorized pass: spill byte charges (row order, identical
      // floor semantics to Next), NULL-key screening, and key hashing for
      // every active row of the batch.
      const int32_t nrows = probe_batch_->num_rows();
      probe_hashes_.assign(static_cast<size_t>(nrows), 0);
      probe_has_key_.assign(static_cast<size_t>(nrows), 0);
      probe_batch_->ForEachActive([&](int32_t r) {
        if (spilled_) {
          const int64_t row_bytes = BatchRowByteWidth(*probe_batch_, r);
          if (shared_build_ != nullptr) {
            shared_build_->ChargeProbeBytes(ctx_, row_bytes);
          } else {
            probe_bytes_pending_ += row_bytes;
            while (probe_bytes_pending_ >= CostConstants::kPageSizeBytes) {
              probe_bytes_pending_ -= CostConstants::kPageSizeBytes;
              ctx_->counters().pages_written += spill_passes_;
              ctx_->counters().pages_read += spill_passes_;
            }
          }
        }
        if (!BatchRowHasNullAt(*probe_batch_, r, outer_keys_)) {
          probe_has_key_[static_cast<size_t>(r)] = 1;
          ctx_->counters().hash_operations += 1;
          probe_hashes_[static_cast<size_t>(r)] =
              HashBatchRowColumns(*probe_batch_, r, outer_keys_);
        }
      });
    }
    // Rank-tag the output whenever the probe side carries ranks — checked on
    // every call because `out` arrives freshly reset even on mid-batch
    // resumes.
    if (probe_batch_->has_ranks()) out->EnableRanks();
    const std::vector<int32_t>* sel =
        probe_batch_->sel_active() ? &probe_batch_->selection() : nullptr;
    const int32_t active =
        sel ? static_cast<int32_t>(sel->size()) : probe_batch_->num_rows();
    while (probe_sel_idx_ < active) {
      const int32_t r = sel ? (*sel)[probe_sel_idx_] : probe_sel_idx_;
      if (!have_outer_) {
        if (!probe_has_key_[static_cast<size_t>(r)]) {
          ++probe_sel_idx_;
          continue;  // NULL keys never join
        }
        const uint64_t hash = probe_hashes_[static_cast<size_t>(r)];
        if (shared_build_ != nullptr) {
          current_bucket_ = shared_build_->Probe(hash);
        } else {
          auto it = build_.find(hash);
          current_bucket_ = it == build_.end() ? nullptr : &it->second;
        }
        if (current_bucket_ == nullptr || current_bucket_->empty()) {
          ++probe_sel_idx_;
          continue;
        }
        probe_batch_->MoveRowToTuple(r, &current_outer_);
        have_outer_ = true;
        bucket_pos_ = 0;
      }
      while (bucket_pos_ < current_bucket_->size()) {
        if (out->full()) return Status::OK();  // resume mid-bucket next call
        const Tuple& inner_row = (*current_bucket_)[bucket_pos_++];
        // Verify key equality (hash collisions).
        if (CompareTupleColumns(current_outer_, inner_row, outer_keys_,
                                inner_keys_) != 0) {
          continue;
        }
        ctx_->counters().tuples_processed += 1;
        Tuple joined = ConcatTuples(current_outer_, inner_row);
        if (residual_) {
          ctx_->counters().exprs_evaluated += 1;
          if (!EvalPredicate(*residual_, joined)) continue;
        }
        out->AppendTuple(std::move(joined));
        if (out->has_ranks()) {
          // Matches inherit the outer row's scan position; the gather stage
          // derives sub-ranks from runs of equal positions.
          out->pos().push_back(probe_batch_->pos()[static_cast<size_t>(r)]);
          out->sub().push_back(0);
        }
      }
      have_outer_ = false;
      ++probe_sel_idx_;
    }
    probe_batch_exhausted_ = true;
    if (probe_eof_) {
      *eof = true;
      return Status::OK();
    }
    if (out->full()) return Status::OK();
    // One cancellation check per consumed probe batch.
    MAGICDB_RETURN_IF_ERROR(ctx_->CheckCancelled());
  }
}

Status HashJoinOp::Close() {
  build_.clear();
  grace_.reset();
  if (ctx_ != nullptr) {
    build_reserve_.ReleaseHeadroom(ctx_);
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  return outer_->Close();
}

std::string HashJoinOp::Describe() const {
  std::string s = "HashJoin(keys=[";
  for (size_t i = 0; i < outer_keys_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(outer_keys_[i]);
  }
  s += "]=[";
  for (size_t i = 0; i < inner_keys_.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(inner_keys_[i]);
  }
  s += "]";
  if (residual_) s += ", residual=" + residual_->ToString();
  return s + ")";
}

// ----- SortMergeJoinOp -----

SortMergeJoinOp::SortMergeJoinOp(OpPtr outer, OpPtr inner,
                                 std::vector<int> outer_key_indexes,
                                 std::vector<int> inner_key_indexes,
                                 ExprPtr residual, bool outer_presorted)
    : Operator(outer->schema().Concat(inner->schema())),
      outer_(std::move(outer)),
      inner_(std::move(inner)),
      outer_keys_(std::move(outer_key_indexes)),
      inner_keys_(std::move(inner_key_indexes)),
      residual_(std::move(residual)),
      outer_presorted_(outer_presorted) {
  MAGICDB_CHECK(outer_keys_.size() == inner_keys_.size());
  MAGICDB_CHECK(!outer_keys_.empty());
}

Status SortMergeJoinOp::DrainSorted(Operator* child,
                                    const std::vector<int>& keys,
                                    ExecContext* ctx, std::vector<Tuple>* out,
                                    bool presorted) {
  MAGICDB_RETURN_IF_ERROR(child->Open(ctx));
  while (true) {
    Tuple t;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(child->Next(&t, &eof));
    if (eof) break;
    if (TupleHasNullAt(t, keys)) continue;  // NULL keys never join
    out->push_back(std::move(t));
  }
  MAGICDB_RETURN_IF_ERROR(child->Close());
  if (presorted) {
    // Trust but verify: a misdeclared order is a planner bug.
    for (size_t i = 1; i < out->size(); ++i) {
      MAGICDB_CHECK(CompareTupleColumns((*out)[i - 1], (*out)[i], keys,
                                        keys) <= 0);
    }
    return Status::OK();
  }
  const int64_t n = static_cast<int64_t>(out->size());
  std::sort(out->begin(), out->end(), [&](const Tuple& a, const Tuple& b) {
    return CompareTupleColumns(a, b, keys, keys) < 0;
  });
  if (n > 1) {
    ctx->counters().exprs_evaluated +=
        static_cast<int64_t>(static_cast<double>(n) *
                             std::ceil(std::log2(static_cast<double>(n))));
  }
  return Status::OK();
}

void SortMergeJoinOp::AdvanceGroups() {
  // Advances li_/ri_ to the next pair of groups with equal keys and sets
  // group boundaries; sets in_group_ accordingly.
  while (li_ < left_.size() && ri_ < right_.size()) {
    const int c = CompareTupleColumns(left_[li_], right_[ri_], outer_keys_,
                                      inner_keys_);
    if (c < 0) {
      ++li_;
    } else if (c > 0) {
      ++ri_;
    } else {
      lg_end_ = li_ + 1;
      while (lg_end_ < left_.size() &&
             CompareTupleColumns(left_[lg_end_], left_[li_], outer_keys_,
                                 outer_keys_) == 0) {
        ++lg_end_;
      }
      rg_end_ = ri_ + 1;
      while (rg_end_ < right_.size() &&
             CompareTupleColumns(right_[rg_end_], right_[ri_], inner_keys_,
                                 inner_keys_) == 0) {
        ++rg_end_;
      }
      lpos_ = li_;
      rpos_ = ri_;
      in_group_ = true;
      return;
    }
  }
  in_group_ = false;
}

Status SortMergeJoinOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  left_.clear();
  right_.clear();
  li_ = ri_ = lg_end_ = rg_end_ = lpos_ = rpos_ = 0;
  in_group_ = false;
  MAGICDB_RETURN_IF_ERROR(DrainSorted(outer_.get(), outer_keys_, ctx, &left_,
                                      outer_presorted_));
  MAGICDB_RETURN_IF_ERROR(
      DrainSorted(inner_.get(), inner_keys_, ctx, &right_, false));
  AdvanceGroups();
  return Status::OK();
}

Status SortMergeJoinOp::Next(Tuple* out, bool* eof) {
  while (in_group_) {
    if (rpos_ >= rg_end_) {
      rpos_ = ri_;
      ++lpos_;
    }
    if (lpos_ >= lg_end_) {
      li_ = lg_end_;
      ri_ = rg_end_;
      AdvanceGroups();
      continue;
    }
    const Tuple& l = left_[lpos_];
    const Tuple& r = right_[rpos_++];
    ctx_->counters().tuples_processed += 1;
    Tuple joined = ConcatTuples(l, r);
    if (residual_) {
      ctx_->counters().exprs_evaluated += 1;
      if (!EvalPredicate(*residual_, joined)) continue;
    }
    *out = std::move(joined);
    *eof = false;
    return Status::OK();
  }
  *eof = true;
  return Status::OK();
}

Status SortMergeJoinOp::Close() {
  left_.clear();
  right_.clear();
  return Status::OK();
}

std::string SortMergeJoinOp::Describe() const {
  return "SortMergeJoin(keys=" + std::to_string(outer_keys_.size()) +
         (outer_presorted_ ? ", outer presorted" : "") + ")";
}

}  // namespace magicdb
