#include "src/exec/cardinality_feedback.h"

namespace magicdb {

void CardinalityFeedback::Record(const CardinalityObservation& obs) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = by_key_.emplace(obs.key, observations_.size());
  if (!inserted) return;
  observations_.push_back(obs);
}

bool CardinalityFeedback::IsSuppressed(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_.count(key) > 0;
}

void CardinalityFeedback::SuppressKey(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  suppressed_.insert(key);
}

std::vector<CardinalityObservation> CardinalityFeedback::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

size_t CardinalityFeedback::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_.size();
}

}  // namespace magicdb
