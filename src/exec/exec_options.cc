#include "src/exec/exec_options.h"

#include <cstdlib>

namespace magicdb {

double ResolveReoptQErrorThreshold(double configured) {
  if (configured >= 0) return configured;
  const char* env = std::getenv("MAGICDB_TEST_REOPT_QERROR");
  if (env == nullptr || *env == '\0') return 0.0;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  if (end == env || v < 0) return 0.0;
  return v;
}

}  // namespace magicdb
