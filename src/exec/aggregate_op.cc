#include "src/exec/aggregate_op.h"

#include <limits>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/scan_ops.h"

namespace magicdb {

HashAggregateOp::HashAggregateOp(OpPtr child, std::vector<ExprPtr> group_by,
                                 std::vector<AggSpec> aggs, Schema schema)
    : Operator(std::move(schema)),
      child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {}

Status HashAggregateOp::Accumulate(const Tuple& row, StagedGroup* group) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggSpec& spec = aggs_[a];
    AggState& st = group->states[a];
    if (spec.func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    ctx_->counters().exprs_evaluated += 1;
    MAGICDB_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(row));
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    ++st.count;
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        MAGICDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
        st.sum += d;
        if (v.type() == DataType::kInt64 && st.int_sum) {
          st.isum += v.AsInt64();
        } else {
          st.int_sum = false;
        }
        break;
      }
      case AggFunc::kMin:
        if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
        break;
      case AggFunc::kMax:
        if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
        break;
      case AggFunc::kCountStar:
        break;
    }
  }
  return Status::OK();
}

StatusOr<Value> HashAggregateOp::Finalize(const AggSpec& spec,
                                          const AggState& st) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      if (st.int_sum) return Value::Int64(st.isum);
      return Value::Double(st.sum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum / static_cast<double>(st.count));
    case AggFunc::kMin:
      return st.min;
    case AggFunc::kMax:
      return st.max;
  }
  return Status::Internal("bad aggregate function");
}

Status HashAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  groups_.clear();
  group_index_.clear();
  next_group_ = 0;
  aggregated_ = false;
  charged_bytes_ = 0;
  const bool parallel = shared_ != nullptr;

  MAGICDB_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<int> key_identity(group_by_.size());
  for (size_t i = 0; i < group_by_.size(); ++i) {
    key_identity[i] = static_cast<int>(i);
  }
  int64_t input_bytes = 0;
  int64_t rows_seen = 0;
  int64_t input_pos = -1;
  int64_t input_sub = 0;
  while (true) {
    Tuple row;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(child_->Next(&row, &eof));
    if (eof) break;
    // Build-loop cancellation checkpoint, mirroring the scan's
    // page-boundary cadence: a child pipeline whose rows are expensive
    // (filter-join probes, wide expressions) must not push cancellation
    // latency past one block of input rows.
    if ((++rows_seen & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    MAGICDB_FAILPOINT("exec.aggregate.build");
    if (parallel) {
      const int64_t p = pos_filter_join_ != nullptr
                            ? pos_filter_join_->last_probe_global_pos()
                            : pos_scan_->last_global_row();
      if (p == input_pos) {
        ++input_sub;  // same driving position: next emission index
      } else {
        input_pos = p;
        input_sub = 0;
      }
    }
    input_bytes += TupleByteWidth(row);
    // Compute the group key.
    Tuple key;
    key.reserve(group_by_.size());
    for (const ExprPtr& g : group_by_) {
      ctx->counters().exprs_evaluated += 1;
      MAGICDB_ASSIGN_OR_RETURN(Value v, g->Eval(row));
      key.push_back(std::move(v));
    }
    ctx->counters().hash_operations += 1;
    const uint64_t h = HashTupleColumns(key, key_identity);
    std::vector<int64_t>& chain = group_index_[h];
    StagedGroup* group = nullptr;
    for (int64_t gi : chain) {
      if (CompareTuples(groups_[gi].key, key) == 0) {
        group = &groups_[gi];
        break;
      }
    }
    if (group == nullptr) {
      // New group: governed memory — the key tuple plus one AggState per
      // aggregate, retained until the groups are finalized.
      const int64_t group_bytes =
          TupleByteWidth(key) +
          static_cast<int64_t>(aggs_.size() * sizeof(AggState));
      MAGICDB_RETURN_IF_ERROR(ctx->ChargeMemory(group_bytes));
      charged_bytes_ += group_bytes;
      chain.push_back(static_cast<int64_t>(groups_.size()));
      StagedGroup fresh;
      fresh.pos = input_pos;
      fresh.sub = input_sub;
      fresh.hash = h;
      fresh.key = std::move(key);
      fresh.states.resize(aggs_.size());
      groups_.push_back(std::move(fresh));
      group = &groups_.back();
    }
    MAGICDB_RETURN_IF_ERROR(Accumulate(row, group));
  }
  MAGICDB_RETURN_IF_ERROR(child_->Close());

  if (!parallel) {
    // Input over the memory budget: charge one partitioning pass, mirroring
    // the hash-join Grace model.
    if (input_bytes > ctx->memory_budget_bytes()) {
      const int64_t pages = (input_bytes + CostConstants::kPageSizeBytes - 1) /
                            CostConstants::kPageSizeBytes;
      ctx->counters().pages_written += pages;
      ctx->counters().pages_read += pages;
    }
    // Scalar aggregate over empty input still yields one row.
    if (group_by_.empty() && groups_.empty()) {
      StagedGroup scalar;
      scalar.states.resize(aggs_.size());
      groups_.push_back(std::move(scalar));
    }
    aggregated_ = true;
    return Status::OK();
  }

  // Parallel: every worker contributes the scalar group even over an empty
  // input slice, so the merged result has exactly one row (zero states
  // combine as the identity). The INT64_MAX rank sorts it after any real
  // first-seen rank, so a worker that did see input decides the group's
  // position — and with no input anywhere, the single row still emerges.
  if (group_by_.empty() && groups_.empty()) {
    StagedGroup scalar;
    scalar.pos = std::numeric_limits<int64_t>::max();
    scalar.hash = HashTupleColumns(Tuple{}, key_identity);
    scalar.states.resize(aggs_.size());
    groups_.push_back(std::move(scalar));
  }
  shared_->AddInputBytes(input_bytes);
  for (StagedGroup& g : groups_) {
    shared_->Stage(worker_, std::move(g));
  }
  groups_.clear();
  group_index_.clear();
  // Barrier with the other replicas, then merge the one partition this
  // worker owns; the merged groups (sorted by first-seen rank) are what
  // Next() emits. The Grace spill charge is settled inside, exactly once.
  MAGICDB_RETURN_IF_ERROR(shared_->MergeOwnPartition(worker_, ctx, &groups_));
  aggregated_ = true;
  return Status::OK();
}

Status HashAggregateOp::Next(Tuple* out, bool* eof) {
  MAGICDB_CHECK(aggregated_);
  if (next_group_ >= groups_.size()) {
    *eof = true;
    return Status::OK();
  }
  const StagedGroup& g = groups_[next_group_++];
  last_group_pos_ = g.pos;
  last_group_sub_ = g.sub;
  Tuple result = g.key;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    MAGICDB_ASSIGN_OR_RETURN(Value v, Finalize(aggs_[a], g.states[a]));
    result.push_back(std::move(v));
  }
  ctx_->counters().tuples_processed += 1;
  *out = std::move(result);
  *eof = false;
  return Status::OK();
}

Status HashAggregateOp::Close() {
  groups_.clear();
  group_index_.clear();
  if (ctx_ != nullptr) {
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  return Status::OK();
}

std::string HashAggregateOp::Describe() const {
  std::string s = "HashAggregate(groups=" + std::to_string(group_by_.size()) +
                  ", aggs=[";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) s += ", ";
    s += AggFuncName(aggs_[i].func);
  }
  return s + "])";
}

}  // namespace magicdb
