#include "src/exec/aggregate_op.h"

#include <limits>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/scan_ops.h"

namespace magicdb {

HashAggregateOp::HashAggregateOp(OpPtr child, std::vector<ExprPtr> group_by,
                                 std::vector<AggSpec> aggs, Schema schema)
    : Operator(std::move(schema)),
      child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {}

Status HashAggregateOp::Accumulate(const Tuple& row, StagedGroup* group) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggSpec& spec = aggs_[a];
    AggState& st = group->states[a];
    if (spec.func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    ctx_->counters().exprs_evaluated += 1;
    MAGICDB_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(row));
    if (v.is_null()) continue;  // SQL aggregates skip NULLs
    ++st.count;
    switch (spec.func) {
      case AggFunc::kCount:
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        MAGICDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
        st.sum += d;
        if (v.type() == DataType::kInt64 && st.int_sum) {
          st.isum += v.AsInt64();
        } else {
          st.int_sum = false;
        }
        break;
      }
      case AggFunc::kMin:
        if (st.min.is_null() || v.Compare(st.min) < 0) st.min = v;
        break;
      case AggFunc::kMax:
        if (st.max.is_null() || v.Compare(st.max) > 0) st.max = v;
        break;
      case AggFunc::kCountStar:
        break;
    }
  }
  return Status::OK();
}

StatusOr<Value> HashAggregateOp::Finalize(const AggSpec& spec,
                                          const AggState& st) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      if (st.int_sum) return Value::Int64(st.isum);
      return Value::Double(st.sum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum / static_cast<double>(st.count));
    case AggFunc::kMin:
      return st.min;
    case AggFunc::kMax:
      return st.max;
  }
  return Status::Internal("bad aggregate function");
}

Status HashAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  groups_.clear();
  group_index_.clear();
  next_group_ = 0;
  aggregated_ = false;
  charged_bytes_ = 0;
  agg_spill_.reset();
  const bool parallel = shared_ != nullptr;

  MAGICDB_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<int> key_identity(group_by_.size());
  for (size_t i = 0; i < group_by_.size(); ++i) {
    key_identity[i] = static_cast<int>(i);
  }
  int64_t input_bytes = 0;
  int64_t rows_seen = 0;
  int64_t input_pos = -1;
  int64_t input_sub = 0;
  while (true) {
    Tuple row;
    bool eof = false;
    MAGICDB_RETURN_IF_ERROR(child_->Next(&row, &eof));
    if (eof) break;
    // Build-loop cancellation checkpoint, mirroring the scan's
    // page-boundary cadence: a child pipeline whose rows are expensive
    // (filter-join probes, wide expressions) must not push cancellation
    // latency past one block of input rows.
    if ((++rows_seen & 1023) == 0) {
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    MAGICDB_FAILPOINT("exec.aggregate.build");
    if (parallel) {
      const int64_t p = pos_filter_join_ != nullptr
                            ? pos_filter_join_->last_probe_global_pos()
                            : pos_scan_->last_global_row();
      if (p == input_pos) {
        ++input_sub;  // same driving position: next emission index
      } else {
        input_pos = p;
        input_sub = 0;
      }
    } else {
      // Sequential rank: the input row index. Monotone, so groups_ in
      // first-seen order is already sorted by (pos, sub) — the order the
      // spill merge (if engaged) reproduces.
      input_pos = rows_seen - 1;
      input_sub = 0;
    }
    input_bytes += TupleByteWidth(row);
    // Compute the group key.
    Tuple key;
    key.reserve(group_by_.size());
    for (const ExprPtr& g : group_by_) {
      ctx->counters().exprs_evaluated += 1;
      MAGICDB_ASSIGN_OR_RETURN(Value v, g->Eval(row));
      key.push_back(std::move(v));
    }
    ctx->counters().hash_operations += 1;
    const uint64_t h = HashTupleColumns(key, key_identity);
    StagedGroup* group = nullptr;
    while (true) {
      if (agg_spill_ != nullptr && agg_spill_->IsSpilled(h)) {
        // This hash partition has been evicted: fold the row into a one-row
        // partial state and append it to the partition file; it is combined
        // during re-aggregation at end of input.
        StagedGroup partial;
        partial.pos = input_pos;
        partial.sub = input_sub;
        partial.hash = h;
        partial.key = std::move(key);
        partial.states.resize(aggs_.size());
        MAGICDB_RETURN_IF_ERROR(Accumulate(row, &partial));
        MAGICDB_RETURN_IF_ERROR(agg_spill_->AddPartial(partial, ctx));
        break;
      }
      std::vector<int64_t>& chain = group_index_[h];
      for (int64_t gi : chain) {
        if (CompareTuples(groups_[gi].key, key) == 0) {
          group = &groups_[gi];
          break;
        }
      }
      if (group != nullptr) break;
      // New group: governed memory — the key tuple plus one AggState per
      // aggregate, retained until the groups are finalized.
      const int64_t group_bytes =
          TupleByteWidth(key) +
          static_cast<int64_t>(aggs_.size() * sizeof(AggState));
      Status charge = ctx->ChargeMemory(group_bytes);
      if (charge.ok()) {
        charged_bytes_ += group_bytes;
        chain.push_back(static_cast<int64_t>(groups_.size()));
        StagedGroup fresh;
        fresh.pos = input_pos;
        fresh.sub = input_sub;
        fresh.hash = h;
        fresh.key = std::move(key);
        fresh.states.resize(aggs_.size());
        groups_.push_back(std::move(fresh));
        group = &groups_.back();
        break;
      }
      // A governed breach turns into victim-partition eviction when a spill
      // area is attached (sequential mode only; parallel replicas fail the
      // gang and the service retries sequentially with spilling).
      if (charge.code() != StatusCode::kResourceExhausted ||
          !ctx->spill_enabled() || parallel) {
        return charge;
      }
      if (agg_spill_ == nullptr) {
        agg_spill_ =
            std::make_unique<AggSpill>(ctx->spill_manager(), aggs_.size());
        MAGICDB_RETURN_IF_ERROR(agg_spill_->Start(ctx));
      }
      // Every partition already evicted and one group still does not fit:
      // eviction cannot help any further.
      if (agg_spill_->AllSpilled()) return charge;
      // Evicting rebuilds groups_/group_index_, so retry the lookup (the
      // victim may or may not be this row's partition).
      MAGICDB_RETURN_IF_ERROR(agg_spill_->EvictNextPartition(
          &groups_, &group_index_, &charged_bytes_, ctx));
    }
    if (group != nullptr) {
      MAGICDB_RETURN_IF_ERROR(Accumulate(row, group));
    }
  }
  MAGICDB_RETURN_IF_ERROR(child_->Close());

  if (!parallel) {
    if (agg_spill_ != nullptr) {
      // Out of core: evict the remaining resident partitions too, so the
      // re-aggregation passes start from an (almost) empty tracker — the
      // resident set can sit just under the limit, and keeping it charged
      // while a partition's groups are rebuilt would double-count nearly
      // the whole budget. Rank metadata rides along in the records, so the
      // merge still emits global first-seen order. Real page I/O was
      // charged by the spill files, so the heuristic below is skipped.
      while (!agg_spill_->AllSpilled()) {
        MAGICDB_RETURN_IF_ERROR(agg_spill_->EvictNextPartition(
            &groups_, &group_index_, &charged_bytes_, ctx));
      }
      MAGICDB_RETURN_IF_ERROR(agg_spill_->FinishInput(ctx));
      MAGICDB_RETURN_IF_ERROR(agg_spill_->BuildOutput(std::move(groups_), ctx));
      groups_.clear();
      group_index_.clear();
      aggregated_ = true;
      return Status::OK();
    }
    // Input over the memory budget: charge the predicted Grace partitioning
    // passes, mirroring the hash-join spill model.
    if (input_bytes > ctx->memory_budget_bytes()) {
      const int64_t passes =
          SpillPasses(static_cast<double>(input_bytes),
                      static_cast<double>(ctx->memory_budget_bytes()));
      const int64_t pages = (input_bytes + CostConstants::kPageSizeBytes - 1) /
                            CostConstants::kPageSizeBytes;
      ctx->counters().pages_written += pages * passes;
      ctx->counters().pages_read += pages * passes;
    }
    // Scalar aggregate over empty input still yields one row.
    if (group_by_.empty() && groups_.empty()) {
      StagedGroup scalar;
      scalar.states.resize(aggs_.size());
      groups_.push_back(std::move(scalar));
    }
    aggregated_ = true;
    return Status::OK();
  }

  // Parallel: every worker contributes the scalar group even over an empty
  // input slice, so the merged result has exactly one row (zero states
  // combine as the identity). The INT64_MAX rank sorts it after any real
  // first-seen rank, so a worker that did see input decides the group's
  // position — and with no input anywhere, the single row still emerges.
  if (group_by_.empty() && groups_.empty()) {
    StagedGroup scalar;
    scalar.pos = std::numeric_limits<int64_t>::max();
    scalar.hash = HashTupleColumns(Tuple{}, key_identity);
    scalar.states.resize(aggs_.size());
    groups_.push_back(std::move(scalar));
  }
  shared_->AddInputBytes(input_bytes);
  for (StagedGroup& g : groups_) {
    shared_->Stage(worker_, std::move(g));
  }
  groups_.clear();
  group_index_.clear();
  // Barrier with the other replicas, then merge the one partition this
  // worker owns; the merged groups (sorted by first-seen rank) are what
  // Next() emits. The Grace spill charge is settled inside, exactly once.
  MAGICDB_RETURN_IF_ERROR(shared_->MergeOwnPartition(worker_, ctx, &groups_));
  aggregated_ = true;
  return Status::OK();
}

Status HashAggregateOp::Next(Tuple* out, bool* eof) {
  MAGICDB_CHECK(aggregated_);
  if (agg_spill_ != nullptr) {
    StagedGroup g;
    bool has_group = false;
    MAGICDB_RETURN_IF_ERROR(agg_spill_->NextGroup(&g, &has_group, ctx_));
    if (!has_group) {
      *eof = true;
      return Status::OK();
    }
    last_group_pos_ = g.pos;
    last_group_sub_ = g.sub;
    Tuple result = std::move(g.key);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      MAGICDB_ASSIGN_OR_RETURN(Value v, Finalize(aggs_[a], g.states[a]));
      result.push_back(std::move(v));
    }
    ctx_->counters().tuples_processed += 1;
    *out = std::move(result);
    *eof = false;
    return Status::OK();
  }
  if (next_group_ >= groups_.size()) {
    *eof = true;
    return Status::OK();
  }
  const StagedGroup& g = groups_[next_group_++];
  last_group_pos_ = g.pos;
  last_group_sub_ = g.sub;
  Tuple result = g.key;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    MAGICDB_ASSIGN_OR_RETURN(Value v, Finalize(aggs_[a], g.states[a]));
    result.push_back(std::move(v));
  }
  ctx_->counters().tuples_processed += 1;
  *out = std::move(result);
  *eof = false;
  return Status::OK();
}

Status HashAggregateOp::Close() {
  groups_.clear();
  group_index_.clear();
  agg_spill_.reset();
  if (ctx_ != nullptr) {
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  return Status::OK();
}

std::string HashAggregateOp::Describe() const {
  std::string s = "HashAggregate(groups=" + std::to_string(group_by_.size()) +
                  ", aggs=[";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) s += ", ";
    s += AggFuncName(aggs_[i].func);
  }
  return s + "])";
}

}  // namespace magicdb
