#include "src/exec/aggregate_op.h"

#include <limits>

#include "src/common/failpoint.h"
#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/exec/filter_join_op.h"
#include "src/exec/scan_ops.h"

namespace magicdb {

namespace {

/// Key sources abstract where DispatchRow's group key comes from, so the
/// hot path (the group already exists) never materializes a key Tuple:
/// Equals compares in place, and Materialize is called at most once per
/// dispatched row — only for a fresh group or a spill partial.
struct TupleKeySource {
  Tuple* key;
  bool Equals(const Tuple& other) const {
    return CompareTuples(*key, other) == 0;
  }
  Tuple Materialize() const { return std::move(*key); }
  int64_t ByteWidth() const { return TupleByteWidth(*key); }
};

/// Batch-drain key source: reads group-key values for physical row `r`
/// straight from the resolved operand views.
struct OperandKeySource {
  const std::vector<BatchOperand>* ops;
  size_t r;
  bool Equals(const Tuple& other) const {
    if (other.size() != ops->size()) return false;
    for (size_t i = 0; i < ops->size(); ++i) {
      if (other[i].Compare((*ops)[i].at(r)) != 0) return false;
    }
    return true;
  }
  Tuple Materialize() const {
    Tuple key;
    key.reserve(ops->size());
    for (const BatchOperand& op : *ops) key.push_back(op.at(r));
    return key;
  }
  int64_t ByteWidth() const {
    int64_t w = 0;
    for (const BatchOperand& op : *ops) w += op.at(r).ByteWidth();
    return w;
  }
  /// Same fold as HashTupleColumns over the materialized key.
  uint64_t Hash() const {
    uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const BatchOperand& op : *ops) h = HashCombine(h, op.at(r).Hash());
    return h;
  }
};

}  // namespace

HashAggregateOp::HashAggregateOp(OpPtr child, std::vector<ExprPtr> group_by,
                                 std::vector<AggSpec> aggs, Schema schema)
    : Operator(std::move(schema)),
      child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {}

Status HashAggregateOp::FoldValue(const AggSpec& spec, const Value& v,
                                  AggState* st) {
  if (v.is_null()) return Status::OK();  // SQL aggregates skip NULLs
  ++st->count;
  switch (spec.func) {
    case AggFunc::kCount:
      break;
    case AggFunc::kSum:
    case AggFunc::kAvg: {
      MAGICDB_ASSIGN_OR_RETURN(double d, v.AsNumeric());
      st->sum += d;
      if (v.type() == DataType::kInt64 && st->int_sum) {
        st->isum += v.AsInt64();
      } else {
        st->int_sum = false;
      }
      break;
    }
    case AggFunc::kMin:
      if (st->min.is_null() || v.Compare(st->min) < 0) st->min = v;
      break;
    case AggFunc::kMax:
      if (st->max.is_null() || v.Compare(st->max) > 0) st->max = v;
      break;
    case AggFunc::kCountStar:
      break;
  }
  return Status::OK();
}

Status HashAggregateOp::Accumulate(const Tuple& row, StagedGroup* group) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggSpec& spec = aggs_[a];
    AggState& st = group->states[a];
    if (spec.func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    ctx_->counters().exprs_evaluated += 1;
    MAGICDB_ASSIGN_OR_RETURN(Value v, spec.arg->Eval(row));
    MAGICDB_RETURN_IF_ERROR(FoldValue(spec, v, &st));
  }
  return Status::OK();
}

Status HashAggregateOp::FoldPreEvaluated(
    const std::vector<BatchOperand>& agg_ops, int32_t r, StagedGroup* group) {
  for (size_t a = 0; a < aggs_.size(); ++a) {
    const AggSpec& spec = aggs_[a];
    AggState& st = group->states[a];
    if (spec.func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    MAGICDB_RETURN_IF_ERROR(
        FoldValue(spec, agg_ops[a].at(static_cast<size_t>(r)), &st));
  }
  return Status::OK();
}

StatusOr<Value> HashAggregateOp::Finalize(const AggSpec& spec,
                                          const AggState& st) const {
  switch (spec.func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return Value::Int64(st.count);
    case AggFunc::kSum:
      if (st.count == 0) return Value::Null();
      if (st.int_sum) return Value::Int64(st.isum);
      return Value::Double(st.sum);
    case AggFunc::kAvg:
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum / static_cast<double>(st.count));
    case AggFunc::kMin:
      return st.min;
    case AggFunc::kMax:
      return st.max;
  }
  return Status::Internal("bad aggregate function");
}

template <typename KeySrc, typename Fold>
Status HashAggregateOp::DispatchRow(ExecContext* ctx, const KeySrc& key_src,
                                    uint64_t h, int64_t input_pos,
                                    int64_t input_sub, bool parallel,
                                    bool coalesce_charges, const Fold& fold) {
  StagedGroup* group = nullptr;
  while (true) {
    if (agg_spill_ != nullptr && agg_spill_->IsSpilled(h)) {
      // This hash partition has been evicted: fold the row into a one-row
      // partial state and append it to the partition file; it is combined
      // during re-aggregation at end of input.
      StagedGroup partial;
      partial.pos = input_pos;
      partial.sub = input_sub;
      partial.hash = h;
      partial.key = key_src.Materialize();
      partial.states.resize(aggs_.size());
      MAGICDB_RETURN_IF_ERROR(fold(&partial));
      return agg_spill_->AddPartial(partial, ctx);
    }
    std::vector<int64_t>& chain = group_index_[h];
    for (int64_t gi : chain) {
      if (key_src.Equals(groups_[gi].key)) {
        group = &groups_[gi];
        break;
      }
    }
    if (group != nullptr) break;
    // New group: governed memory — the key tuple plus one AggState per
    // aggregate, retained until the groups are finalized.
    const int64_t group_bytes =
        key_src.ByteWidth() +
        static_cast<int64_t>(aggs_.size() * sizeof(AggState));
    Status charge = coalesce_charges ? group_reserve_.Take(ctx, group_bytes)
                                     : ctx->ChargeMemory(group_bytes);
    if (charge.ok()) {
      charged_bytes_ += group_bytes;
      chain.push_back(static_cast<int64_t>(groups_.size()));
      StagedGroup fresh;
      fresh.pos = input_pos;
      fresh.sub = input_sub;
      fresh.hash = h;
      fresh.key = key_src.Materialize();
      fresh.states.resize(aggs_.size());
      groups_.push_back(std::move(fresh));
      group = &groups_.back();
      break;
    }
    // A governed breach turns into victim-partition eviction when a spill
    // area is attached (sequential mode only; parallel replicas fail the
    // gang and the service retries sequentially with spilling).
    if (charge.code() != StatusCode::kResourceExhausted ||
        !ctx->spill_enabled() || parallel) {
      return charge;
    }
    if (agg_spill_ == nullptr) {
      agg_spill_ =
          std::make_unique<AggSpill>(ctx->spill_manager(), aggs_.size());
      MAGICDB_RETURN_IF_ERROR(agg_spill_->Start(ctx));
    }
    // Every partition already evicted and one group still does not fit:
    // eviction cannot help any further.
    if (agg_spill_->AllSpilled()) return charge;
    // Evicting rebuilds groups_/group_index_, so retry the lookup (the
    // victim may or may not be this row's partition).
    MAGICDB_RETURN_IF_ERROR(agg_spill_->EvictNextPartition(
        &groups_, &group_index_, &charged_bytes_, ctx));
  }
  return fold(group);
}

Status HashAggregateOp::Open(ExecContext* ctx) {
  ctx_ = ctx;
  groups_.clear();
  group_index_.clear();
  next_group_ = 0;
  aggregated_ = false;
  charged_bytes_ = 0;
  agg_spill_.reset();
  group_reserve_ = BatchReserve();
  const bool parallel = shared_ != nullptr;

  MAGICDB_RETURN_IF_ERROR(child_->Open(ctx));
  std::vector<int> key_identity(group_by_.size());
  for (size_t i = 0; i < group_by_.size(); ++i) {
    key_identity[i] = static_cast<int>(i);
  }
  int64_t input_bytes = 0;
  int64_t rows_seen = 0;
  int64_t input_pos = -1;
  int64_t input_sub = 0;
  // Batch input drain: expressions (group keys + aggregate arguments)
  // evaluate vectorized, memory charges coalesce, and cancellation is
  // checked per batch. In parallel mode the rank tags ride in the batches —
  // except below a Filter Join, whose position provider is inherently
  // row-at-a-time, so that chain stays on the row drain.
  const bool batch_input =
      ctx->batch_size() > 0 && !(parallel && pos_filter_join_ != nullptr);
  if (batch_input) {
    RowBatch in(static_cast<int32_t>(ctx->batch_size()));
    // Operand views resolve plain-column keys and arguments to zero-copy
    // pointers into the input batch; the scratch vectors fill in only for
    // computed expressions. Views alias `in`, so the row loop below copies
    // key values out rather than moving them (two keys may reference the
    // same column, and BatchRowByteWidth also reads the input row).
    std::vector<std::vector<Value>> key_vals(group_by_.size());
    std::vector<std::vector<uint8_t>> key_errs(group_by_.size());
    std::vector<std::vector<Value>> agg_vals(aggs_.size());
    std::vector<std::vector<uint8_t>> agg_errs(aggs_.size());
    std::vector<BatchOperand> key_ops(group_by_.size());
    std::vector<BatchOperand> agg_ops(aggs_.size());
    bool ieof = false;
    while (!ieof) {
      MAGICDB_RETURN_IF_ERROR(child_->NextBatch(&in, &ieof));
      const std::vector<int32_t>* sel =
          in.sel_active() ? &in.selection() : nullptr;
      const int32_t n =
          sel ? static_cast<int32_t>(sel->size()) : in.num_rows();
      if (n > 0) {
        if (parallel && !in.has_ranks()) {
          return Status::Internal(
              "parallel aggregation requires rank-tagged batches");
        }
        for (size_t i = 0; i < group_by_.size(); ++i) {
          ctx->counters().exprs_evaluated += n;
          Status first_error;
          ResolveBatchOperand(*group_by_[i], in, &key_vals[i], &key_errs[i],
                              &first_error, &key_ops[i]);
          MAGICDB_RETURN_IF_ERROR(first_error);
        }
        for (size_t a = 0; a < aggs_.size(); ++a) {
          if (aggs_[a].func == AggFunc::kCountStar) continue;
          ctx->counters().exprs_evaluated += n;
          Status first_error;
          ResolveBatchOperand(*aggs_[a].arg, in, &agg_vals[a], &agg_errs[a],
                              &first_error, &agg_ops[a]);
          MAGICDB_RETURN_IF_ERROR(first_error);
        }
      }
      for (int32_t k = 0; k < n; ++k) {
        const int32_t r = sel ? (*sel)[k] : k;
        ++rows_seen;
        MAGICDB_FAILPOINT("exec.aggregate.build");
        if (parallel) {
          const int64_t p = in.pos()[static_cast<size_t>(r)];
          if (p == input_pos) {
            ++input_sub;  // same driving position: next emission index
          } else {
            input_pos = p;
            input_sub = 0;
          }
        } else {
          input_pos = rows_seen - 1;
          input_sub = 0;
        }
        input_bytes += BatchRowByteWidth(in, r);
        // Group keys hash and compare straight from the operand views; the
        // key Tuple materializes only when a new group is created.
        const OperandKeySource key_src{&key_ops, static_cast<size_t>(r)};
        ctx->counters().hash_operations += 1;
        const uint64_t h = key_src.Hash();
        MAGICDB_RETURN_IF_ERROR(DispatchRow(
            ctx, key_src, h, input_pos, input_sub, parallel,
            /*coalesce_charges=*/true,
            [&](StagedGroup* g) { return FoldPreEvaluated(agg_ops, r, g); }));
      }
      // One cancellation check per batch replaces the per-1024-rows cadence
      // of the row drain.
      MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
    }
    group_reserve_.ReleaseHeadroom(ctx);
  } else {
    while (true) {
      Tuple row;
      bool eof = false;
      MAGICDB_RETURN_IF_ERROR(child_->Next(&row, &eof));
      if (eof) break;
      // Build-loop cancellation checkpoint, mirroring the scan's
      // page-boundary cadence: a child pipeline whose rows are expensive
      // (filter-join probes, wide expressions) must not push cancellation
      // latency past one block of input rows.
      if ((++rows_seen & 1023) == 0) {
        MAGICDB_RETURN_IF_ERROR(ctx->CheckCancelled());
      }
      MAGICDB_FAILPOINT("exec.aggregate.build");
      if (parallel) {
        const int64_t p = pos_filter_join_ != nullptr
                              ? pos_filter_join_->last_probe_global_pos()
                              : pos_scan_->last_global_row();
        if (p == input_pos) {
          ++input_sub;  // same driving position: next emission index
        } else {
          input_pos = p;
          input_sub = 0;
        }
      } else {
        // Sequential rank: the input row index. Monotone, so groups_ in
        // first-seen order is already sorted by (pos, sub) — the order the
        // spill merge (if engaged) reproduces.
        input_pos = rows_seen - 1;
        input_sub = 0;
      }
      input_bytes += TupleByteWidth(row);
      // Compute the group key.
      Tuple key;
      key.reserve(group_by_.size());
      for (const ExprPtr& g : group_by_) {
        ctx->counters().exprs_evaluated += 1;
        MAGICDB_ASSIGN_OR_RETURN(Value v, g->Eval(row));
        key.push_back(std::move(v));
      }
      ctx->counters().hash_operations += 1;
      const uint64_t h = HashTupleColumns(key, key_identity);
      MAGICDB_RETURN_IF_ERROR(DispatchRow(
          ctx, TupleKeySource{&key}, h, input_pos, input_sub, parallel,
          /*coalesce_charges=*/false,
          [&](StagedGroup* g) { return Accumulate(row, g); }));
    }
  }
  MAGICDB_RETURN_IF_ERROR(child_->Close());

  if (!parallel) {
    if (agg_spill_ != nullptr) {
      // Out of core: evict the remaining resident partitions too, so the
      // re-aggregation passes start from an (almost) empty tracker — the
      // resident set can sit just under the limit, and keeping it charged
      // while a partition's groups are rebuilt would double-count nearly
      // the whole budget. Rank metadata rides along in the records, so the
      // merge still emits global first-seen order. Real page I/O was
      // charged by the spill files, so the heuristic below is skipped.
      while (!agg_spill_->AllSpilled()) {
        MAGICDB_RETURN_IF_ERROR(agg_spill_->EvictNextPartition(
            &groups_, &group_index_, &charged_bytes_, ctx));
      }
      MAGICDB_RETURN_IF_ERROR(agg_spill_->FinishInput(ctx));
      MAGICDB_RETURN_IF_ERROR(agg_spill_->BuildOutput(std::move(groups_), ctx));
      groups_.clear();
      group_index_.clear();
      aggregated_ = true;
      return Status::OK();
    }
    // Input over the memory budget: charge the predicted Grace partitioning
    // passes, mirroring the hash-join spill model.
    if (input_bytes > ctx->memory_budget_bytes()) {
      const int64_t passes =
          SpillPasses(static_cast<double>(input_bytes),
                      static_cast<double>(ctx->memory_budget_bytes()));
      const int64_t pages = (input_bytes + CostConstants::kPageSizeBytes - 1) /
                            CostConstants::kPageSizeBytes;
      ctx->counters().pages_written += pages * passes;
      ctx->counters().pages_read += pages * passes;
    }
    // Scalar aggregate over empty input still yields one row.
    if (group_by_.empty() && groups_.empty()) {
      StagedGroup scalar;
      scalar.states.resize(aggs_.size());
      groups_.push_back(std::move(scalar));
    }
    if (!feedback_key_.empty()) {
      MAGICDB_RETURN_IF_ERROR(ctx->RecordCardinality(
          feedback_key_, "aggregate_build", feedback_est_groups_,
          static_cast<double>(groups_.size()), /*exact=*/true,
          /*can_trigger=*/false));
    }
    aggregated_ = true;
    return Status::OK();
  }

  // Parallel: every worker contributes the scalar group even over an empty
  // input slice, so the merged result has exactly one row (zero states
  // combine as the identity). The INT64_MAX rank sorts it after any real
  // first-seen rank, so a worker that did see input decides the group's
  // position — and with no input anywhere, the single row still emerges.
  if (group_by_.empty() && groups_.empty()) {
    StagedGroup scalar;
    scalar.pos = std::numeric_limits<int64_t>::max();
    scalar.hash = HashTupleColumns(Tuple{}, key_identity);
    scalar.states.resize(aggs_.size());
    groups_.push_back(std::move(scalar));
  }
  shared_->AddInputBytes(input_bytes);
  for (StagedGroup& g : groups_) {
    shared_->Stage(worker_, std::move(g));
  }
  groups_.clear();
  group_index_.clear();
  // Barrier with the other replicas, then merge the one partition this
  // worker owns; the merged groups (sorted by first-seen rank) are what
  // Next() emits. The Grace spill charge is settled inside, exactly once.
  MAGICDB_RETURN_IF_ERROR(shared_->MergeOwnPartition(worker_, ctx, &groups_));
  aggregated_ = true;
  return Status::OK();
}

Status HashAggregateOp::Next(Tuple* out, bool* eof) {
  MAGICDB_CHECK(aggregated_);
  if (agg_spill_ != nullptr) {
    StagedGroup g;
    bool has_group = false;
    MAGICDB_RETURN_IF_ERROR(agg_spill_->NextGroup(&g, &has_group, ctx_));
    if (!has_group) {
      *eof = true;
      return Status::OK();
    }
    last_group_pos_ = g.pos;
    last_group_sub_ = g.sub;
    Tuple result = std::move(g.key);
    for (size_t a = 0; a < aggs_.size(); ++a) {
      MAGICDB_ASSIGN_OR_RETURN(Value v, Finalize(aggs_[a], g.states[a]));
      result.push_back(std::move(v));
    }
    ctx_->counters().tuples_processed += 1;
    *out = std::move(result);
    *eof = false;
    return Status::OK();
  }
  if (next_group_ >= groups_.size()) {
    *eof = true;
    return Status::OK();
  }
  const StagedGroup& g = groups_[next_group_++];
  last_group_pos_ = g.pos;
  last_group_sub_ = g.sub;
  Tuple result = g.key;
  for (size_t a = 0; a < aggs_.size(); ++a) {
    MAGICDB_ASSIGN_OR_RETURN(Value v, Finalize(aggs_[a], g.states[a]));
    result.push_back(std::move(v));
  }
  ctx_->counters().tuples_processed += 1;
  *out = std::move(result);
  *eof = false;
  return Status::OK();
}

Status HashAggregateOp::NextBatch(RowBatch* out, bool* eof) {
  MAGICDB_CHECK(aggregated_);
  // The out-of-core output path streams merged groups from spill partitions
  // one at a time; the row adapter is the natural fit there.
  if (agg_spill_ != nullptr) return Operator::NextBatch(out, eof);
  out->ResetForWrite(schema_.num_columns());
  if (shared_ != nullptr) out->EnableRanks();
  while (!out->full() && next_group_ < groups_.size()) {
    const StagedGroup& g = groups_[next_group_++];
    last_group_pos_ = g.pos;
    last_group_sub_ = g.sub;
    Tuple result = g.key;
    for (size_t a = 0; a < aggs_.size(); ++a) {
      MAGICDB_ASSIGN_OR_RETURN(Value v, Finalize(aggs_[a], g.states[a]));
      result.push_back(std::move(v));
    }
    ctx_->counters().tuples_processed += 1;
    out->AppendTuple(std::move(result));
    if (out->has_ranks()) {
      out->pos().push_back(g.pos);
      out->sub().push_back(g.sub);
    }
  }
  *eof = next_group_ >= groups_.size();
  return Status::OK();
}

Status HashAggregateOp::Close() {
  groups_.clear();
  group_index_.clear();
  agg_spill_.reset();
  if (ctx_ != nullptr) {
    group_reserve_.ReleaseHeadroom(ctx_);
    ctx_->ReleaseMemory(charged_bytes_);
    charged_bytes_ = 0;
  }
  return Status::OK();
}

std::string HashAggregateOp::Describe() const {
  std::string s = "HashAggregate(groups=" + std::to_string(group_by_.size()) +
                  ", aggs=[";
  for (size_t i = 0; i < aggs_.size(); ++i) {
    if (i > 0) s += ", ";
    s += AggFuncName(aggs_[i].func);
  }
  return s + "])";
}

}  // namespace magicdb
